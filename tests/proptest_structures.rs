//! Property tests for the structural substrates: octree rebuilds, the
//! cell-page codec, and per-zone mappings.

use multimap::core::{GridSpec, Mapping, ZonedMultiMapping};
use multimap::disksim::profiles;
use multimap::octree::{BoxRefinement, Octree};
use multimap::store::CellPage;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Octrees rebuilt from their own leaf sets are identical.
    #[test]
    fn octree_from_leaves_roundtrips(
        max_level in 2u32..=5,
        bx in 0u64..4,
        by in 0u64..4,
        depth in 0u32..=2,
    ) {
        let side = 1u64 << max_level;
        let q = side / 4;
        let lo = [bx.min(3) * q, by.min(3) * q, 0];
        let hi = [
            (lo[0] + q - 1).min(side - 1),
            (lo[1] + q - 1).min(side - 1),
            side / 2 - 1,
        ];
        let tree = Octree::build(
            max_level,
            &BoxRefinement {
                background: 1,
                boxes: vec![(lo, hi, 1 + depth)],
            },
        );
        let rebuilt = Octree::from_leaves(max_level, &tree.leaves());
        prop_assert!(rebuilt.is_some());
        let rebuilt = rebuilt.unwrap();
        prop_assert_eq!(rebuilt.leaf_count(), tree.leaf_count());
        prop_assert_eq!(rebuilt.leaves(), tree.leaves());
    }

    /// Cell pages round-trip any record content at any fill level.
    #[test]
    fn cell_page_roundtrips(
        record_len in 1usize..=100,
        fill in 0u32..=64,
        seed in 0u64..u64::MAX,
    ) {
        let cap = CellPage::capacity(record_len);
        let n = fill.min(cap);
        let mut page = CellPage::new(record_len);
        let mut x = seed | 1;
        for _ in 0..n {
            let rec: Vec<u8> = (0..record_len)
                .map(|i| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(17);
                    (x >> (i % 57)) as u8
                })
                .collect();
            page.push(&rec).unwrap();
        }
        let bytes = page.to_bytes();
        prop_assert_eq!(bytes.len(), 512);
        let back = CellPage::from_bytes(bytes, record_len).unwrap();
        prop_assert_eq!(&back, &page);
        prop_assert_eq!(back.len() as u32, n);
    }

    /// Zoned mappings stay injective and invertible for random datasets
    /// that may or may not span zones.
    #[test]
    fn zoned_mapping_invariants(
        e0 in 10u64..=120,
        e1 in 1u64..=6,
        e2 in 1u64..=40,
    ) {
        let geom = profiles::small();
        let grid = GridSpec::new([e0, e1, e2]);
        let Ok(m) = ZonedMultiMapping::new(&geom, grid.clone()) else {
            // Tiny disks can legitimately reject large datasets.
            return Ok(());
        };
        let mut seen = std::collections::HashSet::new();
        let mut ok = true;
        grid.for_each_cell(|c| {
            let l = m.lbn_of(c).unwrap();
            ok &= seen.insert(l);
            ok &= m.coord_of(l).as_deref() == Some(c);
        });
        prop_assert!(ok, "zoned mapping violated injectivity/inverse");
    }
}
