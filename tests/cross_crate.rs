//! Cross-crate integration: earthquake and OLAP pipelines end to end,
//! multi-disk volumes, and the update path.

use multimap::core::{GridSpec, Mapping, MultiMapping, NaiveMapping};
use multimap::disksim::{profiles, Request};
use multimap::lvm::{Cyclic, Declustering, LogicalVolume, RoundRobin, SchedulePolicy};
use multimap::octree::{
    beam_box, earthquake_tree, EarthquakeConfig, LeafLinearMapping, LeafOrder, SkewedMultiMap,
};
use multimap::olap::{self, OlapQuery};
use multimap::query::{service_lbns, workload_rng, QueryExecutor, QueryRequest};

/// Earthquake pipeline: tree -> regions -> placements -> beam queries,
/// with MultiMap winning the cross-stride (Z) beams.
#[test]
fn earthquake_pipeline_end_to_end() {
    let cfg = EarthquakeConfig::small();
    let tree = earthquake_tree(&cfg);
    let geom = profiles::small();
    let volume = LogicalVolume::new(geom.clone(), 1);

    let naive = LeafLinearMapping::new(&tree, LeafOrder::XMajor, 0);
    let (skewed, stats) = SkewedMultiMap::build(&geom, &tree, 32).unwrap();
    assert_eq!(
        stats.multimapped_leaves + stats.leftover_leaves,
        tree.leaf_count()
    );

    let (lo, hi) = beam_box(&tree, 2, [3, 5, 0]);
    let leaves = tree.leaves_intersecting(lo, hi);
    assert!(!leaves.is_empty());

    let naive_lbns: Vec<u64> = leaves.iter().map(|l| naive.lbn_of_leaf(l)).collect();
    let mm_lbns: Vec<u64> = leaves.iter().map(|l| skewed.lbn_of_leaf(l)).collect();
    let rn = service_lbns(&volume, 0, &naive_lbns, false).unwrap();
    volume.reset();
    let rm = service_lbns(&volume, 0, &mm_lbns, true).unwrap();
    assert_eq!(rn.cells, rm.cells);
    assert!(
        rm.total_io_ms <= rn.total_io_ms * 1.2,
        "MultiMap Z-beam {:.2} vs Naive {:.2}",
        rm.total_io_ms,
        rn.total_io_ms
    );
}

/// OLAP pipeline: rows -> cube -> chunk mapping -> Q1..Q5 run and fetch
/// the right cell counts.
#[test]
fn olap_pipeline_end_to_end() {
    let chunk = olap::cube::small_chunk();
    let rows = olap::generate_rows(&olap::RowGenConfig {
        rows: 10_000,
        seed: 5,
    });
    let counts = olap::rows::load_into_cube(&rows, &olap::rolled_up_cube());
    assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 10_000);

    let geom = profiles::cheetah_36es();
    let volume = LogicalVolume::new(geom.clone(), 1);
    let mm = MultiMapping::new(&geom, chunk.clone()).unwrap();
    let exec = QueryExecutor::new(&volume, 0);
    let mut rng = workload_rng(1);
    for q in olap::ALL_QUERIES {
        let region = q.region(&chunk, &mut rng);
        let r = if q.is_beam() {
            exec.execute(QueryRequest::beam(&mm, &region)).unwrap()
        } else {
            exec.execute(QueryRequest::range(&mm, &region)).unwrap()
        };
        assert_eq!(r.cells, region.cells(), "{}", q.label());
        assert!(r.total_io_ms > 0.0);
    }
    // Q1 streams on the major order; Q2 is semi-sequential.
    let mut rng = workload_rng(2);
    let q1 = exec.execute(QueryRequest::beam(&mm, &OlapQuery::Q1.region(&chunk, &mut rng))).unwrap();
    let q2 = exec.execute(QueryRequest::beam(&mm, &OlapQuery::Q2.region(&chunk, &mut rng))).unwrap();
    assert!(q1.per_cell_ms() < q2.per_cell_ms());
}

/// Multi-disk volume: declustering spreads chunks; striped service
/// reports the makespan of the slowest disk.
#[test]
fn multi_disk_declustered_volume() {
    let geom = profiles::small();
    let volume = LogicalVolume::new(geom.clone(), 4);
    let strategy = RoundRobin;
    // 8 chunks declustered over 4 disks, each chunk one batch.
    let batches: Vec<(usize, Vec<Request>, SchedulePolicy)> = (0..8u64)
        .map(|chunk| {
            let disk = strategy.disk_for(chunk, std::num::NonZeroUsize::new(4).unwrap());
            let reqs = (0..16u64)
                .map(|i| Request::single(chunk * 4096 + i * 37))
                .collect();
            (disk, reqs, SchedulePolicy::AscendingLbn)
        })
        .collect();
    let t = volume.service_striped(&batches).unwrap();
    assert_eq!(t.blocks(), 8 * 16);
    // Every disk got exactly two chunks' worth of requests.
    for d in 0..4 {
        assert_eq!(t.per_disk[d].requests, 32);
    }
    assert!(t.makespan_ms <= t.total_busy_ms());
    assert!(t.makespan_ms >= t.total_busy_ms() / 4.0);

    // Cyclic declustering with coprime skip also balances.
    let cyc = Cyclic::new(3);
    let mut counts = [0; 4];
    for u in 0..100 {
        counts[cyc.disk_for(u, std::num::NonZeroUsize::new(4).unwrap())] += 1;
    }
    assert!(counts.iter().all(|&c| c == 25));
}

/// The update path (Section 4.6) composes with a mapping: overflow pages
/// land outside the mapped span, and queries read base + overflow.
#[test]
fn updates_compose_with_mapping() {
    let geom = profiles::small();
    let grid = GridSpec::new([40u64, 8, 4]);
    let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
    let overflow_base = mm.layout().end_lbn(&geom);
    let mut store = multimap::core::CellStore::new(
        multimap::core::UpdateConfig {
            cell_capacity: 8,
            fill_factor: 0.75,
            reclaim_threshold: 0.25,
        },
        overflow_base,
    );
    // Bulk-load everything, then hammer one cell.
    for i in 0..grid.cells() {
        store.bulk_load(i);
    }
    let hot = grid.linear_index(&[3, 2, 1]);
    for _ in 0..20 {
        store.insert(hot);
    }
    let overflow = store.overflow_lbns(hot);
    assert!(!overflow.is_empty());
    assert!(overflow.iter().all(|&l| l >= overflow_base));
    // A query for the hot cell reads its block plus the overflow chain.
    let volume = LogicalVolume::new(geom.clone(), 1);
    let mut lbns = vec![mm.lbn_of(&[3, 2, 1]).unwrap()];
    lbns.extend_from_slice(overflow);
    let r = service_lbns(&volume, 0, &lbns, false).unwrap();
    assert_eq!(r.cells as usize, 1 + overflow.len());
}

/// Naive and MultiMap agree on which cells exist (same grid domain).
#[test]
fn mappings_cover_identical_domains() {
    let geom = profiles::small();
    let grid = GridSpec::new([30u64, 6, 4]);
    let naive = NaiveMapping::new(grid.clone(), 0);
    let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
    grid.for_each_cell(|c| {
        assert!(naive.lbn_of(c).is_ok());
        assert!(mm.lbn_of(c).is_ok());
    });
    assert!(naive.lbn_of(&[30, 0, 0]).is_err());
    assert!(mm.lbn_of(&[30, 0, 0]).is_err());
}
