//! Backend dispatch equivalence: the rotating disk served behind the
//! [`DeviceModel`] trait — concretely, boxed as `dyn DeviceModel` via
//! the backend registry, or wrapped in the pre-trait `LogicalVolume` —
//! must be **byte-identical** in every caller-visible output: batch
//! timings (bit-exact `total_ms`), payload checksums, and full
//! `ServiceEvent` logs. The equivalence must also survive the
//! experiment engine at 1, 2, 4 and 8 threads, since that is how the
//! bench and conformance suites actually drive the backends.

use multimap::disksim::{
    build_backend, profiles, DeviceModel, Discipline, DiskSim, Request, ServiceLog,
};
use multimap::lvm::LogicalVolume;

type Run = (u64, u64, u64, u64, ServiceLog);

/// One deterministic scattered workload, seeded so each sweep cell
/// serves a distinct batch.
fn workload(total: u64, seed: u64) -> Vec<Request> {
    (0..96u64)
        .map(|i| {
            let lbn = i
                .wrapping_mul(48_611)
                .wrapping_add(seed.wrapping_mul(7_907_693))
                % (total - 8);
            Request::new(lbn, 1 + (i + seed) % 4)
        })
        .collect()
}

/// Serve `reqs` on a fresh rotating device through one of the three
/// dispatch paths, returning every caller-visible output.
fn serve(path: usize, reqs: &[Request], policy: Discipline) -> Run {
    let geom = profiles::small();
    let mut log = ServiceLog::new();
    let timing = match path {
        // (a) The pre-trait logical volume.
        0 => {
            let volume = LogicalVolume::new(geom, 1);
            let (t, l) = volume
                .service_batch_logged(0, reqs, policy)
                .expect("workload is in range");
            log = l;
            t
        }
        // (b) The concrete simulator through the trait's methods.
        1 => {
            let mut sim = DiskSim::new(geom);
            sim.service_batch_observed(reqs, policy, &mut log.recorder())
                .expect("workload is in range")
        }
        // (c) A registry-built boxed trait object.
        _ => {
            let mut dev = build_backend("disk", &geom).expect("disk is registered");
            dev.service_batch_observed(reqs, policy, &mut log.recorder())
                .expect("workload is in range")
        }
    };
    (
        timing.requests,
        timing.blocks,
        timing.total_ms.to_bits(),
        timing.payload,
        log,
    )
}

#[test]
fn trait_dispatch_is_byte_identical_for_every_policy() {
    let total = profiles::small().total_blocks();
    for policy in [
        Discipline::InOrder,
        Discipline::AscendingLbn,
        Discipline::Sptf,
        Discipline::QueuedSptf(16),
    ] {
        let reqs = workload(total, 7);
        let reference = serve(0, &reqs, policy);
        for path in [1usize, 2] {
            let run = serve(path, &reqs, policy);
            assert_eq!(run, reference, "path {path} diverged under {policy:?}");
        }
    }
}

/// The three dispatch paths, fanned across the experiment engine: the
/// full (path × seed) matrix is identical at 1, 2, 4 and 8 threads,
/// and within each thread count the three paths agree cell for cell.
#[test]
fn trait_dispatch_is_thread_count_invariant() {
    let total = profiles::small().total_blocks();
    let cells: Vec<(usize, u64)> = (0..3usize)
        .flat_map(|p| (0..4u64).map(move |s| (p, s)))
        .collect();
    let run_all = |threads: usize| {
        multimap::engine::set_threads(threads);
        multimap::engine::sweep(&cells, |&(path, seed)| {
            let reqs = workload(total, seed);
            serve(path, &reqs, Discipline::QueuedSptf(8))
        })
    };
    let reference = run_all(1);
    // Within one thread count, every path serves each seed identically.
    for seed in 0..4usize {
        let base = &reference[seed];
        for path in 1..3usize {
            assert_eq!(
                &reference[path * 4 + seed],
                base,
                "path {path} diverged on seed {seed}"
            );
        }
    }
    for threads in [2usize, 4, 8] {
        assert_eq!(
            run_all(threads),
            reference,
            "dispatch matrix diverged at {threads} threads"
        );
    }
}
