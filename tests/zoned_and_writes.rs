//! Integration: per-zone cube shapes through the executor, and the
//! write/bulk-load path end to end.

use multimap::core::{
    append_slab, bulk_load, BoxRegion, GridSpec, Mapping, MultiMapping, NaiveMapping,
    ZonedMultiMapping,
};
use multimap::disksim::{profiles, DiskSim};
use multimap::lvm::LogicalVolume;
use multimap::query::{QueryExecutor, QueryRequest};

/// The zoned mapping behaves like any other mapping under the executor:
/// exact cell counts, and non-primary beams still semi-sequential.
#[test]
fn zoned_mapping_through_the_executor() {
    let geom = profiles::small();
    let volume = LogicalVolume::new(geom.clone(), 1);
    let grid = GridSpec::new([100u64, 8, 300]);
    let zoned = ZonedMultiMapping::new(&geom, grid.clone()).unwrap();
    let exec = QueryExecutor::new(&volume, 0);

    let beam = BoxRegion::beam(&grid, 1, &[50, 0, 10]);
    let r = exec.execute(QueryRequest::beam(&zoned, &beam)).unwrap();
    assert_eq!(r.cells, 8);
    // Settle-bound, like the single-shape MultiMap.
    assert!(r.per_cell_ms() < geom.revolution_ms() / 2.0);

    let range = BoxRegion::new([0u64, 0, 0], [49u64, 3, 5]);
    volume.reset();
    let r = exec.execute(QueryRequest::range(&zoned, &range)).unwrap();
    assert_eq!(r.cells, range.cells());
}

/// A beam crossing the segment boundary still fetches every cell.
#[test]
fn zoned_mapping_cross_segment_beam() {
    let geom = profiles::small();
    let volume = LogicalVolume::new(geom.clone(), 1);
    // Deep enough along Dim2 to overflow zone 0 into zone 1.
    let grid = GridSpec::new([100u64, 8, 500]);
    let zoned = ZonedMultiMapping::new(&geom, grid.clone()).unwrap();
    assert!(zoned.segment_count() >= 2, "dataset must span zones");
    let exec = QueryExecutor::new(&volume, 0);
    // Dim2 is the split dimension: this beam crosses every segment.
    let beam = BoxRegion::beam(&grid, 2, &[10, 3, 0]);
    let r = exec.execute(QueryRequest::beam(&zoned, &beam)).unwrap();
    assert_eq!(r.cells, 500);
}

/// Bulk loads are much faster with coalesced sequential writes than the
/// same cells written in random order, and slab appends cost a fraction
/// of a full load.
#[test]
fn bulk_load_and_slab_append_costs() {
    let geom = profiles::small();
    let grid = GridSpec::new([100u64, 8, 6]);
    let mm = MultiMapping::new(&geom, grid.clone()).unwrap();

    let mut sim = DiskSim::new(geom.clone());
    let full = bulk_load(&mut sim, &mm).unwrap();
    assert_eq!(full.cells, grid.cells());

    let mut sim2 = DiskSim::new(geom.clone());
    let slab = append_slab(&mut sim2, &mm, 2, 0).unwrap();
    assert_eq!(slab.cells, 100 * 8);
    assert!(
        slab.total_ms < full.total_ms,
        "one slab must cost less than the whole dataset"
    );

    // Random-order per-cell writes of the same slab are far slower.
    let mut sim3 = DiskSim::new(geom.clone());
    let mut cost_random = 0.0;
    let mut coords: Vec<Vec<u64>> = Vec::new();
    BoxRegion::new([0u64, 0, 0], [99u64, 7, 0]).for_each_cell(|c| coords.push(c.to_vec()));
    // Deterministic shuffle.
    coords.sort_by_key(|c| (c[0].wrapping_mul(2654435761) ^ c[1]) % 977);
    for c in &coords {
        let lbn = mm.lbn_of(c).unwrap();
        cost_random += sim3
            .service_write(multimap::disksim::Request::single(lbn))
            .unwrap()
            .total_ms();
    }
    assert!(
        slab.total_ms * 3.0 < cost_random,
        "coalesced {:.1} ms vs random {:.1} ms",
        slab.total_ms,
        cost_random
    );
}

/// Naive and zoned MultiMap load the same cells; the zoned layout's
/// writes stay within its segments' zones.
#[test]
fn zoned_load_covers_all_cells() {
    let geom = profiles::small();
    let grid = GridSpec::new([100u64, 8, 500]);
    let zoned = ZonedMultiMapping::new(&geom, grid.clone()).unwrap();
    let naive = NaiveMapping::new(grid.clone(), 0);
    let mut sim = DiskSim::new(geom.clone());
    let a = bulk_load(&mut sim, &zoned).unwrap();
    let mut sim2 = DiskSim::new(geom);
    let b = bulk_load(&mut sim2, &naive).unwrap();
    assert_eq!(a.cells, b.cells);
    assert_eq!(a.blocks, b.blocks);
}

/// `GET_TRACK_BOUNDARIES` and `GET_ADJACENT` must tell one consistent
/// story right across every zone transition of both paper evaluation
/// drives: track windows tile the LBN space with the correct per-zone
/// width even where `T` changes, the volume interface agrees with the
/// raw geometry, and adjacency never silently crosses a zone edge.
#[test]
fn zone_transition_boundaries_and_adjacency_agree() {
    use multimap::disksim::adjacent_lbn;

    for geom in [profiles::cheetah_36es(), profiles::atlas_10k_iii()] {
        let volume = LogicalVolume::new(geom.clone(), 1);
        let zones = geom.zones();
        assert!(zones.len() >= 2, "{}: need zoned geometry", geom.name);

        for pair in zones.windows(2) {
            let (outer, inner) = (&pair[0], &pair[1]);
            let boundary = inner.first_lbn;

            // Probe a window straddling the transition: the last two
            // tracks of `outer` and the first two tracks of `inner`.
            let window = 2 * outer.sectors_per_track as u64;
            for lbn in (boundary - window)..(boundary + 2 * inner.sectors_per_track as u64) {
                let (first, last) = volume.get_track_boundaries(lbn).unwrap();
                assert_eq!(
                    (first, last),
                    geom.track_boundaries(lbn).unwrap(),
                    "{}: volume and geometry disagree at lbn {lbn}",
                    geom.name
                );
                assert!(first <= lbn && lbn <= last);
                let spt = if lbn < boundary {
                    outer.sectors_per_track
                } else {
                    inner.sectors_per_track
                };
                assert_eq!(
                    last - first + 1,
                    spt as u64,
                    "{}: track at lbn {lbn} has the wrong zone's width",
                    geom.name
                );
            }

            // Track windows tile: walking first LBNs track by track
            // through the transition leaves no gap and no overlap.
            let mut lbn = boundary - window;
            while lbn < boundary + inner.sectors_per_track as u64 {
                let (first, last) = volume.get_track_boundaries(lbn).unwrap();
                assert_eq!(first, lbn, "{}: track tiling broke at {lbn}", geom.name);
                lbn = last + 1;
            }
            assert_eq!(
                volume.get_track_boundaries(boundary).unwrap().0,
                boundary,
                "{}: zone {} must open on a track boundary",
                geom.name,
                inner.index
            );

            // Adjacency: a block on the last track of `outer` has no
            // adjacent block (the next track is another zone's), and the
            // volume agrees with the raw model about it.
            let last_track_lbn = boundary - 1;
            assert!(volume.get_adjacent(last_track_lbn, 1).is_err());
            assert!(adjacent_lbn(&geom, last_track_lbn, 1).is_err());
            // From `D+1` tracks above the edge, every advertised step
            // resolves, agrees across interfaces, and stays in-zone.
            let d = volume.adjacency_limit();
            let deep_lbn = boundary - (d as u64 + 1) * outer.sectors_per_track as u64;
            for step in [1u32, 2, d / 2, d] {
                let via_volume = volume.get_adjacent(deep_lbn, step).unwrap();
                assert_eq!(via_volume, adjacent_lbn(&geom, deep_lbn, step).unwrap());
                assert!(
                    via_volume < boundary && via_volume >= outer.first_lbn,
                    "{}: step {step} escaped zone {}",
                    geom.name,
                    outer.index
                );
            }
            // One track closer and the deepest step crosses: error, not
            // a silent wrap into the next zone.
            let edge_lbn = boundary - d as u64 * outer.sectors_per_track as u64;
            assert!(volume.get_adjacent(edge_lbn, d).is_err());
        }
    }
}
