//! Scheduler equivalence suite: the incremental rotational-band SPTF
//! selector must be *behaviorally identical* to the retained naive
//! O(n²) reference scan — same serve order, same timings, same
//! eviction decisions — on every input, including exact
//! positioning-time ties.
//!
//! The suite drives both implementations directly (bypassing the
//! window-size dispatch in `service_batch_serving`, which would
//! otherwise make small-batch comparisons vacuous) over random
//! workloads × both evaluation drives × all four mappings, plus
//! explicit regression cases for ties, single-request windows, and the
//! queued-SPTF edge cases (empty batch, depth 0, depth > n).
//!
//! Comparison is *semantic*: full `ServiceEvent` streams (order, ranks,
//! queue lengths, mechanical before/after states, per-request timings)
//! and the semantic `BatchTiming` fields (requests, blocks, bit-exact
//! `total_ms`, payload checksum, window evictions). The
//! implementation-level `SchedStats` counters (memo hits, candidates
//! examined, bucket scans, repairs) differ by design — that asymmetry
//! is the whole point of the rewrite.

use multimap::core::{
    hilbert_mapping, zorder_mapping, GridSpec, Mapping, MultiMapping, NaiveMapping,
};
use multimap::disksim::{
    plain_serve, profiles, service_batch_queued_sptf_incremental,
    service_batch_queued_sptf_reference, service_batch_sptf_incremental,
    service_batch_sptf_reference, BatchTiming, DeviceModel, Discipline, DiskError, DiskGeometry,
    DiskSim, Request, ServiceEvent, ServiceLog, SPTF_INCREMENTAL_MIN_WINDOW,
};
use proptest::prelude::*;

type Run = (BatchTiming, Vec<ServiceEvent>);

fn run_full(geom: &DiskGeometry, reqs: &[Request], incremental: bool) -> Run {
    let mut sim = DiskSim::new(geom.clone());
    let mut log = ServiceLog::new();
    let t = if incremental {
        service_batch_sptf_incremental(&mut sim, reqs, &mut plain_serve, &mut log.recorder())
    } else {
        service_batch_sptf_reference(&mut sim, reqs, &mut plain_serve, &mut log.recorder())
    }
    .expect("equivalence workloads are valid");
    (t, log.events().to_vec())
}

fn run_queued(geom: &DiskGeometry, reqs: &[Request], depth: usize, incremental: bool) -> Run {
    let mut sim = DiskSim::new(geom.clone());
    let mut log = ServiceLog::new();
    let t = if incremental {
        service_batch_queued_sptf_incremental(
            &mut sim,
            reqs,
            depth,
            &mut plain_serve,
            &mut log.recorder(),
        )
    } else {
        service_batch_queued_sptf_reference(
            &mut sim,
            reqs,
            depth,
            &mut plain_serve,
            &mut log.recorder(),
        )
    }
    .expect("equivalence workloads are valid");
    (t, log.events().to_vec())
}

/// Semantic equality: identical event streams and identical
/// caller-visible `BatchTiming` fields. Counters are excluded (the two
/// implementations count different things).
fn assert_same(reference: &Run, incremental: &Run, ctx: &str) {
    let (ta, ea) = reference;
    let (tb, eb) = incremental;
    assert_eq!(ta.requests, tb.requests, "{ctx}: request count");
    assert_eq!(ta.blocks, tb.blocks, "{ctx}: block count");
    assert_eq!(
        ta.total_ms.to_bits(),
        tb.total_ms.to_bits(),
        "{ctx}: total time diverged ({} vs {})",
        ta.total_ms,
        tb.total_ms
    );
    assert_eq!(ta.payload, tb.payload, "{ctx}: payload checksum");
    assert_eq!(
        ta.sched.window_evictions, tb.sched.window_evictions,
        "{ctx}: eviction decisions"
    );
    assert_eq!(ea.len(), eb.len(), "{ctx}: event count");
    for (i, (x, y)) in ea.iter().zip(eb.iter()).enumerate() {
        assert_eq!(x, y, "{ctx}: event {i} diverged");
    }
}

/// Check full SPTF plus a spread of queue depths on one workload.
fn check_workload(geom: &DiskGeometry, reqs: &[Request], ctx: &str) {
    assert_same(
        &run_full(geom, reqs, false),
        &run_full(geom, reqs, true),
        &format!("{ctx} full"),
    );
    for depth in [1usize, 7, SPTF_INCREMENTAL_MIN_WINDOW, 64] {
        assert_same(
            &run_queued(geom, reqs, depth, false),
            &run_queued(geom, reqs, depth, true),
            &format!("{ctx} queued depth {depth}"),
        );
    }
}

/// LBNs of pseudo-randomly picked cells of a 3-D grid under one of the
/// paper's four mappings (Naive, Z-order, Hilbert, MultiMap). Repeated
/// picks produce duplicate LBNs — exact positioning-time ties.
fn mapping_lbns(geom: &DiskGeometry, mapping: usize, picks: &[usize]) -> Vec<u64> {
    let grid = GridSpec::new([24u64, 12, 6]);
    let naive;
    let zord;
    let hilb;
    let mm;
    let m: &dyn Mapping = match mapping {
        0 => {
            naive = NaiveMapping::new(grid.clone(), 0);
            &naive
        }
        1 => {
            zord = zorder_mapping(grid.clone(), 0, 1).expect("grid fits");
            &zord
        }
        2 => {
            hilb = hilbert_mapping(grid.clone(), 0, 1).expect("grid fits");
            &hilb
        }
        _ => {
            mm = MultiMapping::new(geom, grid.clone()).expect("chunk fits the disk");
            &mm
        }
    };
    let mut all = Vec::new();
    grid.for_each_cell(|c| all.push(m.lbn_of(c).expect("cell in grid")));
    picks.iter().map(|&i| all[i % all.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random cell picks under all four mappings, on both evaluation
    /// drives: identical serve order, timings and evictions.
    #[test]
    fn equivalent_over_mappings_and_drives(
        picks in proptest::collection::vec(0usize..4_000_000, 1..100),
    ) {
        for geom in profiles::evaluation_disks() {
            for mapping in 0..4usize {
                let reqs: Vec<Request> = mapping_lbns(&geom, mapping, &picks)
                    .into_iter()
                    .map(Request::single)
                    .collect();
                check_workload(&geom, &reqs, &format!("mapping {mapping}"));
            }
        }
    }

    /// Scattered multi-block batches with duplicates and interleaved
    /// sequential runs (exercising the prefetch fast path).
    #[test]
    fn equivalent_on_scattered_and_sequential_batches(
        pairs in proptest::collection::vec((0u64..u64::MAX, 1u64..6, 0u8..2), 1..110),
    ) {
        for geom in profiles::evaluation_disks() {
            let total = geom.total_blocks();
            let mut reqs = Vec::new();
            for &(raw, nblocks, chain) in &pairs {
                let lbn = raw % (total - 16);
                reqs.push(Request::new(lbn, nblocks));
                if chain == 1 {
                    // A contiguous continuation: once its predecessor is
                    // served, this request is a read-ahead candidate.
                    reqs.push(Request::new(lbn + nblocks, nblocks));
                }
            }
            check_workload(&geom, &reqs, "scattered");
        }
    }

    /// Long requests crossing track (and cylinder) boundaries take the
    /// selector's exhaustive multi-track side path; mixed with short
    /// ones they must still serve in reference order.
    #[test]
    fn equivalent_with_multi_track_requests(
        pairs in proptest::collection::vec((0u64..u64::MAX, 1u64..700), 1..40),
    ) {
        for geom in profiles::evaluation_disks() {
            let total = geom.total_blocks();
            let reqs: Vec<Request> = pairs
                .iter()
                .map(|&(raw, nblocks)| Request::new(raw % (total - 1024), nblocks))
                .collect();
            check_workload(&geom, &reqs, "multi-track");
        }
    }
}

/// Regression: exact positioning-time ties (duplicate requests) must
/// resolve to the reference scan's winner — first strictly-smaller
/// estimate over the swap_remove-compacted pending vec — at any batch
/// size, below and above the dispatch threshold.
#[test]
fn positioning_time_ties_resolve_identically() {
    for geom in profiles::evaluation_disks() {
        let total = geom.total_blocks();
        for n in [2usize, 6, 96] {
            // All-duplicates: every round is an n-way exact tie.
            let reqs: Vec<Request> = (0..n).map(|_| Request::single(total / 3)).collect();
            check_workload(&geom, &reqs, &format!("{n} duplicates"));
            // Duplicates mixed with distinct near/far requests.
            let reqs: Vec<Request> = (0..n)
                .map(|i| match i % 3 {
                    0 => Request::single(total / 3),
                    1 => Request::single(total / 3),
                    _ => Request::single((i as u64 * 7_907_693) % (total - 8)),
                })
                .collect();
            check_workload(&geom, &reqs, &format!("{n} mixed ties"));
        }
    }
}

/// Regression: a single-request window has exactly one legal decision;
/// both implementations must make it with identical accounting.
#[test]
fn single_request_windows_are_identical() {
    for geom in profiles::evaluation_disks() {
        let req = [Request::new(12_345, 3)];
        check_workload(&geom, &req, "single request");
        // Depth-1 queued service over many requests: a window of one is
        // in-order service in both implementations.
        let reqs: Vec<Request> =
            (0..70u64).map(|i| Request::single((i * 48_611) % 1_000_000)).collect();
        assert_same(
            &run_queued(&geom, &reqs, 1, false),
            &run_queued(&geom, &reqs, 1, true),
            "depth-1 window",
        );
    }
}

/// The public entry points dispatch across the window-size threshold
/// without a visible seam: straddling batch sizes all match the
/// reference scan run directly.
#[test]
fn dispatch_is_invisible_across_the_threshold() {
    let geom = profiles::cheetah_36es();
    let total = geom.total_blocks();
    for n in [
        SPTF_INCREMENTAL_MIN_WINDOW - 1,
        SPTF_INCREMENTAL_MIN_WINDOW,
        SPTF_INCREMENTAL_MIN_WINDOW + 1,
        200,
    ] {
        let reqs: Vec<Request> = (0..n as u64)
            .map(|i| Request::single((i * 7_907_693) % (total - 8)))
            .collect();
        let reference = run_full(&geom, &reqs, false);
        let mut sim = DiskSim::new(geom.clone());
        let mut log = ServiceLog::new();
        let t = {
            let mut obs = log.recorder();
            let mut observed = |e: ServiceEvent| obs(e);
            multimap::disksim::service_batch_serving(
                &mut sim,
                &reqs,
                Discipline::Sptf,
                &mut plain_serve,
                &mut observed,
            )
            .expect("valid batch")
        };
        assert_same(&reference, &(t, log.events().to_vec()), &format!("entry n={n}"));
    }
}

/// Edge case: an empty batch is a no-op for every implementation.
#[test]
fn empty_batch_is_a_no_op() {
    let geom = profiles::atlas_10k_iii();
    let mut sim = DiskSim::new(geom.clone());
    let t = sim
        .service_batch(&[], Discipline::Sptf)
        .expect("empty batch is valid");
    assert_eq!(t, BatchTiming::default());
    let empty = run_full(&geom, &[], true);
    assert_eq!(empty.0, BatchTiming::default());
    assert!(empty.1.is_empty());
    let mut sim = DiskSim::new(geom.clone());
    let t = sim
        .service_batch(&[], Discipline::QueuedSptf(8))
        .expect("empty batch is valid");
    assert_eq!(t, BatchTiming::default());
}

/// Edge case: queue depth 0 is a typed error on every queued entry
/// point (it used to be silently clamped to 1), even for empty batches.
#[test]
fn zero_queue_depth_is_a_typed_error() {
    let geom = profiles::atlas_10k_iii();
    let reqs = [Request::single(5), Request::single(99)];
    let mut sim = DiskSim::new(geom.clone());
    assert_eq!(
        sim.service_batch(&reqs, Discipline::QueuedSptf(0)),
        Err(DiskError::ZeroQueueDepth)
    );
    assert_eq!(
        sim.service_batch(&[], Discipline::QueuedSptf(0)),
        Err(DiskError::ZeroQueueDepth)
    );
    let mut log = ServiceLog::new();
    assert_eq!(
        service_batch_queued_sptf_reference(
            &mut sim,
            &reqs,
            0,
            &mut plain_serve,
            &mut log.recorder()
        ),
        Err(DiskError::ZeroQueueDepth)
    );
    assert_eq!(
        service_batch_queued_sptf_incremental(
            &mut sim,
            &reqs,
            0,
            &mut plain_serve,
            &mut log.recorder()
        ),
        Err(DiskError::ZeroQueueDepth)
    );
    // The failed calls served nothing and left the clock untouched.
    assert_eq!(sim.state().time_ms.to_bits(), 0f64.to_bits());
}

/// Edge case: a queue depth of at least the batch size admits the whole
/// batch up front, making queued SPTF *identical* to full SPTF — same
/// events, zero evictions — in both implementations.
#[test]
fn depth_beyond_batch_size_equals_full_sptf() {
    for geom in profiles::evaluation_disks() {
        let total = geom.total_blocks();
        let reqs: Vec<Request> = (0..90u64)
            .map(|i| Request::new((i * 4_861_127) % (total - 8), 1 + i % 4))
            .collect();
        let full = run_full(&geom, &reqs, false);
        for depth in [reqs.len(), reqs.len() + 1, 4096] {
            for incremental in [false, true] {
                let queued = run_queued(&geom, &reqs, depth, incremental);
                assert_same(
                    &full,
                    &queued,
                    &format!("depth {depth} incremental {incremental}"),
                );
                assert_eq!(queued.0.sched.window_evictions, 0);
            }
        }
    }
}
