//! Property-based tests on the core invariants, across crates.

use multimap::core::{
    gray_mapping, hilbert_mapping, zorder_mapping, GridSpec, Mapping, MultiMapping,
};
use multimap::disksim::{adjacent_lbn, DiskBuilder, DiskGeometry, DiskSim, Request, ZoneSpec};
use multimap::sfc::{GrayCurve, HilbertCurve, SpaceFillingCurve, ZCurve};
use proptest::prelude::*;

/// Random but valid disk geometries.
fn arb_geometry() -> impl Strategy<Value = DiskGeometry> {
    (
        2u32..=6,    // surfaces
        20u32..=80,  // cylinders per zone
        1usize..=3,  // zones
        40u32..=200, // outer spt
        1u32..=10,   // settle cylinders
        0.5f64..2.0, // settle ms
    )
        .prop_map(|(surfaces, cyls, nzones, spt, c, settle)| {
            let zones = (0..nzones)
                .map(|i| ZoneSpec {
                    cylinders: cyls,
                    sectors_per_track: spt - 10 * i as u32,
                })
                .collect();
            DiskBuilder::new("prop-disk")
                .rpm(10_000.0)
                .surfaces(surfaces)
                .zones(zones)
                .settle_ms(settle)
                .settle_cylinders(c)
                .head_switch_ms(settle * 0.8)
                .command_overhead_ms(0.02)
                .build()
                .expect("generated geometry is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LBN -> physical -> LBN is the identity for random geometries.
    #[test]
    fn lbn_physical_roundtrip(geom in arb_geometry(), salt in 0u64..1_000_000) {
        let lbn = salt % geom.total_blocks();
        let loc = geom.locate(lbn).unwrap();
        prop_assert_eq!(geom.lbn_of(loc.cylinder, loc.surface, loc.sector).unwrap(), lbn);
    }

    /// Adjacent blocks are always on the requested later track, within
    /// the same zone, and share the angular offset with step 1.
    #[test]
    fn adjacency_invariants(geom in arb_geometry(), salt in 0u64..1_000_000) {
        let lbn = salt % geom.total_blocks();
        let src = geom.locate(lbn).unwrap();
        for step in [1u32, geom.adjacency_limit / 2, geom.adjacency_limit] {
            if step == 0 { continue; }
            match adjacent_lbn(&geom, lbn, step) {
                Ok(a) => {
                    let loc = geom.locate(a).unwrap();
                    prop_assert_eq!(loc.track, src.track + step as u64);
                    prop_assert_eq!(loc.zone, src.zone);
                }
                Err(_) => {
                    // Only legal near the zone's end.
                    let zone = &geom.zones()[src.zone];
                    let zone_last_track = zone.first_track
                        + zone.tracks(geom.surfaces) - 1;
                    prop_assert!(src.track + step as u64 > zone_last_track);
                }
            }
        }
    }

    /// Service times are always positive and the clock only moves forward.
    #[test]
    fn service_time_positive_and_monotone(
        geom in arb_geometry(),
        lbns in proptest::collection::vec(0u64..1_000_000, 1..20),
    ) {
        let mut sim = DiskSim::new(geom.clone());
        let mut last = 0.0f64;
        for salt in lbns {
            let lbn = salt % geom.total_blocks();
            let t = sim.service(Request::single(lbn)).unwrap();
            prop_assert!(t.total_ms() > 0.0);
            prop_assert!(sim.state().time_ms > last);
            last = sim.state().time_ms;
            // No component exceeds physics: rotation < one revolution,
            // seek <= full stroke + head switch.
            prop_assert!(t.rotation_ms < geom.revolution_ms());
            prop_assert!(t.seek_ms <= geom.max_seek_ms + geom.head_switch_ms + 1e-9);
        }
    }

    /// Space-filling curves are bijections: coords -> index -> coords.
    #[test]
    fn curve_roundtrips(dims in 2usize..=4, bits in 1u32..=5, salt in 0u64..u64::MAX) {
        let z = ZCurve::new(dims, bits).unwrap();
        let h = HilbertCurve::new(dims, bits).unwrap();
        let g = GrayCurve::new(dims, bits).unwrap();
        let idx = salt % z.len();
        prop_assert_eq!(z.index(&z.coords(idx)), idx);
        prop_assert_eq!(h.index(&h.coords(idx)), idx);
        prop_assert_eq!(g.index(&g.coords(idx)), idx);
    }

    /// Every mapping is injective and invertible over random small grids.
    #[test]
    fn mappings_injective_and_invertible(
        e0 in 2u64..40,
        e1 in 1u64..10,
        e2 in 1u64..6,
        base in 0u64..1000,
    ) {
        let grid = GridSpec::new([e0, e1, e2]);
        let geom = multimap::disksim::profiles::small();
        let mappings: Vec<Box<dyn Mapping>> = vec![
            Box::new(multimap::core::NaiveMapping::new(grid.clone(), base)),
            Box::new(zorder_mapping(grid.clone(), base, 1).unwrap()),
            Box::new(hilbert_mapping(grid.clone(), base, 1).unwrap()),
            Box::new(gray_mapping(grid.clone(), base, 1).unwrap()),
            Box::new(MultiMapping::new(&geom, grid.clone()).unwrap()),
        ];
        for m in &mappings {
            let mut seen = std::collections::HashSet::new();
            let mut ok = true;
            grid.for_each_cell(|c| {
                let l = m.lbn_of(c).unwrap();
                ok &= seen.insert(l);
                ok &= m.coord_of(l).as_deref() == Some(c);
            });
            prop_assert!(ok, "{} violated injectivity/inverse", m.name());
        }
    }

    /// MultiMap's closed form always equals the literal Figure 5
    /// adjacency walk.
    #[test]
    fn multimap_closed_form_equals_figure5(
        e0 in 2u64..60,
        e1 in 1u64..12,
        e2 in 1u64..8,
        salt in 0u64..10_000,
    ) {
        let grid = GridSpec::new([e0, e1, e2]);
        let geom = multimap::disksim::profiles::small();
        let m = MultiMapping::new(&geom, grid.clone()).unwrap();
        let idx = salt % grid.cells();
        let coord = grid.coord_of_linear(idx).unwrap();
        prop_assert_eq!(
            m.lbn_of(&coord).unwrap(),
            m.lbn_of_iterative(&coord).unwrap()
        );
    }

    /// Basic-cube shapes always satisfy Equations 1-3.
    #[test]
    fn solver_respects_equations(
        extents in proptest::collection::vec(1u64..300, 1..5),
        t in 50u64..800,
        d in 4u64..256,
        zt in 500u64..20_000,
    ) {
        let c = multimap::core::ShapeConstraints {
            track_cells: t,
            adjacency: d,
            zone_tracks: zt,
        };
        match multimap::core::solve_basic_cube(&extents, &c) {
            Ok(shape) => prop_assert!(shape.validate(&c).is_ok()),
            Err(_) => {
                // Infeasibility must come from dimensionality.
                prop_assert!(
                    extents.len() as u32 > multimap::core::max_dimensions(d)
                );
            }
        }
    }
}
