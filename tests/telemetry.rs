//! Telemetry determinism properties.
//!
//! The contract (docs/observability.md): metrics are *observations* of
//! the simulated service path, folded in submission order, so the merged
//! accumulator is bit-identical at any engine thread count — and
//! attaching a sink never changes what a query returns.

use multimap::core::{BoxRegion, GridSpec, MultiMapping};
use multimap::disksim::profiles;
use multimap::lvm::LogicalVolume;
use multimap::query::{
    random_anchor, random_range, workload_rng, QueryExecutor, QueryOp, QueryRequest,
};
use multimap::telemetry::{Counter, Metrics};
use proptest::prelude::*;

/// Serialise tests that override the engine's thread count (the
/// override is process-global).
static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    multimap::engine::set_threads(n);
    let out = f();
    multimap::engine::set_threads(0);
    out
}

/// One beam or range drawn from a seeded workload.
#[derive(Clone, Debug)]
struct Spec {
    op: QueryOp,
    region: BoxRegion,
}

fn draw_specs(grid: &GridSpec, seed: u64, queries: usize) -> Vec<Spec> {
    let mut rng = workload_rng(seed);
    (0..queries)
        .map(|q| {
            if q % 2 == 0 {
                let dim = q % grid.ndims();
                let anchor = random_anchor(grid, &mut rng);
                Spec {
                    op: QueryOp::Beam,
                    region: BoxRegion::beam(grid, dim, &anchor),
                }
            } else {
                Spec {
                    op: QueryOp::Range,
                    region: random_range(grid, 0.05, &mut rng),
                }
            }
        })
        .collect()
}

/// Run every spec as an independent engine cell (fresh volume each, so
/// results cannot depend on scheduling), recording into a per-cell
/// sink; fold the per-cell metrics in submission order.
fn sweep_metrics(specs: &[Spec]) -> (Metrics, Vec<u64>) {
    let geom = profiles::small();
    let grid = GridSpec::new([40u64, 10, 6]);
    let mapping = MultiMapping::new(&geom, grid).expect("grid fits the small disk");
    let cells = multimap::engine::sweep(specs, |spec| {
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);
        let mut m = Metrics::new();
        let result = exec
            .execute(QueryRequest::new(spec.op, &mapping, &spec.region).with_sink(&mut m))
            .expect("workload stays in-grid");
        (m, result.total_io_ms.to_bits())
    });
    let merged = Metrics::merge_ordered(cells.iter().map(|(m, _)| m));
    let totals = cells.into_iter().map(|(_, t)| t).collect();
    (merged, totals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merged telemetry is bit-identical at 1, 2, 4 and 8 threads, and
    /// so is every query's simulated total.
    #[test]
    fn merged_metrics_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        queries in 2usize..6,
    ) {
        let grid = GridSpec::new([40u64, 10, 6]);
        let specs = draw_specs(&grid, seed, queries);
        let (baseline, base_totals) = with_threads(1, || sweep_metrics(&specs));
        prop_assert!(baseline.counter_value(Counter::RequestsServiced) > 0);
        for threads in [2usize, 4, 8] {
            let (merged, totals) = with_threads(threads, || sweep_metrics(&specs));
            prop_assert!(
                merged.identical(&baseline),
                "merged metrics diverged at {threads} threads"
            );
            prop_assert_eq!(
                &totals, &base_totals,
                "query totals diverged at {} threads", threads
            );
        }
    }

    /// A sink is a pure observer: the same query with and without one
    /// returns bit-identical simulated totals, and the five phase sums
    /// reconstruct that total exactly.
    #[test]
    fn sink_never_perturbs_results(seed in 0u64..1_000_000) {
        let geom = profiles::small();
        let grid = GridSpec::new([40u64, 10, 6]);
        let mapping = MultiMapping::new(&geom, grid.clone()).expect("grid fits");
        let spec = &draw_specs(&grid, seed, 1)[0];

        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);
        let bare = exec
            .execute(QueryRequest::new(spec.op, &mapping, &spec.region))
            .expect("in-grid");

        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);
        let mut m = Metrics::new();
        let sinked = exec
            .execute(QueryRequest::new(spec.op, &mapping, &spec.region).with_sink(&mut m))
            .expect("in-grid");

        prop_assert_eq!(bare.total_io_ms.to_bits(), sinked.total_io_ms.to_bits());
        prop_assert_eq!(bare.requests, sinked.requests);
        prop_assert_eq!(m.counter_value(Counter::RequestsServiced), sinked.requests);
        prop_assert!((m.phase_sum_ms() - sinked.total_io_ms).abs() < 1e-6);
    }
}
