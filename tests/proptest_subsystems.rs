//! Property tests for the storage manager, striped volume, bulk loader
//! and Z-order range scanning.

use multimap::core::{write_schedule, BoxRegion, GridSpec, Mapping, MultiMapping, NaiveMapping};
use multimap::disksim::profiles;
use multimap::lvm::{LogicalVolume, StripedVolume};
use multimap::sfc::{SpaceFillingCurve, ZBoxScan, ZCurve};
use multimap::store::{LayoutChoice, StorageManager};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Striped-volume address translation is a bijection.
    #[test]
    fn striped_volume_translation_roundtrips(
        ndisks in 1usize..=5,
        stripe in 1u64..=4096,
        vlbn in 0u64..10_000_000,
    ) {
        let v = StripedVolume::new(
            LogicalVolume::new(profiles::small(), ndisks),
            stripe,
        );
        let (disk, local) = v.locate(vlbn);
        prop_assert!(disk < ndisks);
        prop_assert_eq!(v.volume_lbn(disk, local), vlbn);
        // Within a stripe unit, consecutive volume LBNs stay on one disk.
        if (vlbn + 1) % stripe != 0 {
            prop_assert_eq!(v.locate(vlbn + 1).0, disk);
        }
    }

    /// The bulk-load write schedule covers each mapped block exactly once.
    #[test]
    fn write_schedule_covers_region_exactly(
        e0 in 2u64..40,
        e1 in 1u64..8,
        e2 in 1u64..5,
    ) {
        let grid = GridSpec::new([e0, e1, e2]);
        let geom = profiles::small();
        for m in [
            Box::new(NaiveMapping::new(grid.clone(), 0)) as Box<dyn Mapping>,
            Box::new(MultiMapping::new(&geom, grid.clone()).unwrap()),
        ] {
            let schedule =
                write_schedule(m.as_ref(), &grid.bounding_region()).unwrap();
            let mut blocks: Vec<u64> = Vec::new();
            for r in &schedule {
                for b in r.lbn..r.end() {
                    blocks.push(b);
                }
            }
            blocks.sort_unstable();
            let dedup_len = {
                let mut d = blocks.clone();
                d.dedup();
                d.len()
            };
            prop_assert_eq!(dedup_len, blocks.len(), "{} overlaps", m.name());
            prop_assert_eq!(blocks.len() as u64, grid.cells());
            // And each block is a mapped cell's block.
            let mut expected: Vec<u64> = Vec::new();
            grid.for_each_cell(|c| expected.push(m.lbn_of(c).unwrap()));
            expected.sort_unstable();
            prop_assert_eq!(blocks, expected, "{} block set", m.name());
        }
    }

    /// Z-order box scans equal brute-force enumeration on random boxes.
    #[test]
    fn zscan_equals_enumeration(
        bits in 2u32..=6,
        seed in 0u64..1_000_000,
    ) {
        let curve = ZCurve::new(2, bits).unwrap();
        let side = 1u64 << bits;
        let x0 = seed % side;
        let y0 = (seed / side) % side;
        let x1 = x0 + (seed / 7) % (side - x0);
        let y1 = y0 + (seed / 13) % (side - y0);
        let got: Vec<u64> = ZBoxScan::new(&curve, &[x0, y0], &[x1, y1]).collect();
        let mut expect = Vec::new();
        for x in x0..=x1 {
            for y in y0..=y1 {
                expect.push(curve.index(&[x, y]));
            }
        }
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Storage-manager queries always fetch exactly the requested cells
    /// (plus overflow, which starts at zero).
    #[test]
    fn store_queries_fetch_exact_cells(
        e0 in 4u64..50,
        e1 in 2u64..8,
        lo0 in 0u64..3,
        len0 in 1u64..4,
    ) {
        let mut db = StorageManager::new(profiles::small(), 1);
        let grid = GridSpec::new([e0, e1]);
        db.create_table("t", grid.clone(), LayoutChoice::Auto).unwrap();
        db.load("t").unwrap();
        let hi0 = (lo0 + len0 - 1).min(e0 - 1);
        let lo0 = lo0.min(hi0);
        let region = BoxRegion::new([lo0, 0], [hi0, e1 - 1]);
        let r = db.range("t", &region).unwrap();
        prop_assert_eq!(r.cells, region.cells());
    }
}

/// Deterministic end-to-end: the storage manager's table survives a
/// load-insert-query cycle with consistent accounting.
#[test]
fn store_accounting_is_consistent() {
    let mut db = StorageManager::new(profiles::small(), 2);
    let grid = GridSpec::new([60u64, 10, 4]);
    db.create_table("t", grid.clone(), LayoutChoice::MultiMap)
        .unwrap();
    let load = db.load("t").unwrap();
    assert_eq!(load.cells, grid.cells());
    assert_eq!(load.blocks, grid.cells());
    // Hammer one hot cell until its first overflow page appears
    // (default config: capacity 64, fill factor 0.8 -> 13 free slots).
    let hot = [30u64, 5, 2];
    let cell = grid.linear_index(&hot);
    let mut overflowed = false;
    for _ in 0..100 {
        db.insert("t", &hot).unwrap();
        if !db
            .table("t")
            .unwrap()
            .cells()
            .overflow_lbns(cell)
            .is_empty()
        {
            overflowed = true;
            break;
        }
    }
    assert!(overflowed, "hot-cell inserts must eventually overflow");
    let stats = db.table("t").unwrap().cells().stats();
    assert!(stats.direct_inserts + stats.overflow_inserts > 0);
}
