//! End-to-end checks of the paper's headline claims, at reduced scale.
//!
//! These assert the *shape* of the results — who wins and by roughly what
//! factor — not absolute milliseconds.

use multimap::core::{
    hilbert_mapping, zorder_mapping, BoxRegion, GridSpec, Mapping, MultiMapping, NaiveMapping,
};
use multimap::disksim::profiles;
use multimap::lvm::LogicalVolume;
use multimap::query::{
    random_anchor, random_range, workload_rng, QueryExecutor, QueryRequest, QueryResult,
};

/// Paper-shaped synthetic chunk: Dim0 keeps the 259-cell extent so the
/// Naive baseline pays realistic strides.
fn grid() -> GridSpec {
    GridSpec::new([259u64, 64, 32])
}

fn mappings(geom: &multimap::disksim::DiskGeometry) -> Vec<Box<dyn Mapping>> {
    let g = grid();
    vec![
        Box::new(NaiveMapping::new(g.clone(), 0)),
        Box::new(zorder_mapping(g.clone(), 0, 1).unwrap()),
        Box::new(hilbert_mapping(g.clone(), 0, 1).unwrap()),
        Box::new(MultiMapping::new(geom, g).unwrap()),
    ]
}

fn beam_per_cell(volume: &LogicalVolume, m: &dyn Mapping, dim: usize, runs: usize) -> f64 {
    let g = grid();
    let exec = QueryExecutor::new(volume, 0);
    let mut rng = workload_rng(42);
    let mut acc = QueryResult::default();
    for _ in 0..runs {
        let anchor = random_anchor(&g, &mut rng);
        let region = BoxRegion::beam(&g, dim, &anchor);
        volume.idle_all(7.3);
        acc.accumulate(&exec.execute(QueryRequest::beam(m, &region)).unwrap());
    }
    acc.per_cell_ms()
}

/// "MultiMap matches the streaming performance of Naive along Dim0."
#[test]
fn multimap_matches_naive_streaming_on_dim0() {
    for geom in profiles::evaluation_disks() {
        let volume = LogicalVolume::new(geom.clone(), 1);
        let ms = mappings(&geom);
        let naive = beam_per_cell(&volume, ms[0].as_ref(), 0, 5);
        volume.reset();
        let mm = beam_per_cell(&volume, ms[3].as_ref(), 0, 5);
        assert!(
            mm < naive * 2.0,
            "{}: MultiMap Dim0 {mm:.3} vs Naive {naive:.3}",
            geom.name
        );
        // And both stream: well under a tenth of the settle time per cell.
        assert!(naive < 0.2, "Naive Dim0 must stream: {naive:.3}");
    }
}

/// "For scans of the primary dimension, MultiMap and traditional
/// linearized layouts provide almost two orders of magnitude higher
/// throughput than space-filling curve approaches."
#[test]
fn curves_lose_dim0_scans_by_an_order_of_magnitude() {
    for geom in profiles::evaluation_disks() {
        let volume = LogicalVolume::new(geom.clone(), 1);
        let ms = mappings(&geom);
        let naive = beam_per_cell(&volume, ms[0].as_ref(), 0, 5);
        volume.reset();
        let hilbert = beam_per_cell(&volume, ms[2].as_ref(), 0, 5);
        assert!(
            hilbert > 10.0 * naive,
            "{}: Hilbert Dim0 {hilbert:.3} vs Naive {naive:.3}",
            geom.name
        );
    }
}

/// "MultiMap outperforms Z-order and Hilbert for Dim1 and Dim2 by
/// 25%-35% and Naive by 62%-214%."
#[test]
fn multimap_wins_nonprimary_beams() {
    for geom in profiles::evaluation_disks() {
        let volume = LogicalVolume::new(geom.clone(), 1);
        let ms = mappings(&geom);
        for dim in 1..3 {
            volume.reset();
            let naive = beam_per_cell(&volume, ms[0].as_ref(), dim, 5);
            volume.reset();
            let hilbert = beam_per_cell(&volume, ms[2].as_ref(), dim, 5);
            volume.reset();
            let mm = beam_per_cell(&volume, ms[3].as_ref(), dim, 5);
            assert!(
                mm < naive,
                "{} dim {dim}: MultiMap {mm:.3} must beat Naive {naive:.3}",
                geom.name
            );
            assert!(
                mm < hilbert * 1.05,
                "{} dim {dim}: MultiMap {mm:.3} must be at least on par with Hilbert {hilbert:.3}",
                geom.name
            );
        }
    }
}

/// Semi-sequential beams cost roughly the settle time per cell, far below
/// half a revolution (the rotational-latency floor of strided access).
#[test]
fn multimap_nonprimary_beams_are_settle_bound() {
    for geom in profiles::evaluation_disks() {
        let volume = LogicalVolume::new(geom.clone(), 1);
        let ms = mappings(&geom);
        let mm = beam_per_cell(&volume, ms[3].as_ref(), 1, 5);
        let floor = geom.command_overhead_ms + geom.settle_ms;
        let half_rev = geom.revolution_ms() / 2.0;
        assert!(
            mm >= floor * 0.9 && mm < half_rev,
            "{}: Dim1 per-cell {mm:.3} should be settle-bound (floor {floor:.3}, half-rev {half_rev:.3})",
            geom.name
        );
    }
}

/// Range queries: MultiMap wins at low selectivity and never collapses;
/// at full selectivity every mapping converges (everything is read).
#[test]
fn range_query_selectivity_shape() {
    let geom = profiles::cheetah_36es();
    let volume = LogicalVolume::new(geom.clone(), 1);
    let ms = mappings(&geom);
    let g = grid();
    let exec = QueryExecutor::new(&volume, 0);

    // Low selectivity: MultiMap beats Naive.
    let mut rng = workload_rng(7);
    let region = random_range(&g, 0.01, &mut rng);
    volume.reset();
    let naive_low = exec.execute(QueryRequest::range(ms[0].as_ref(), &region)).expect("in-grid query").total_io_ms;
    volume.reset();
    let mm_low = exec.execute(QueryRequest::range(ms[3].as_ref(), &region)).expect("in-grid query").total_io_ms;
    assert!(
        mm_low < naive_low,
        "low selectivity: MultiMap {mm_low:.1} vs Naive {naive_low:.1}"
    );

    // Full scan of an aligned slab (contiguous for Naive): everything
    // within 2x of each other.
    let region = BoxRegion::new([0u64, 0, 0], [258u64, 63, 31]);
    let mut totals = Vec::new();
    for m in &ms {
        volume.reset();
        totals.push(exec.execute(QueryRequest::range(m.as_ref(), &region)).expect("in-grid query").total_io_ms);
    }
    let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = totals.iter().cloned().fold(0.0, f64::max);
    assert!(max < 2.0 * min, "full scans must converge: {totals:?}");
}

/// The executor fetches exactly the requested cells, for every mapping.
#[test]
fn executor_fetches_exactly_the_requested_cells() {
    let geom = profiles::small();
    let volume = LogicalVolume::new(geom.clone(), 1);
    let g = GridSpec::new([40u64, 10, 6]);
    let ms: Vec<Box<dyn Mapping>> = vec![
        Box::new(NaiveMapping::new(g.clone(), 0)),
        Box::new(zorder_mapping(g.clone(), 0, 1).unwrap()),
        Box::new(hilbert_mapping(g.clone(), 0, 1).unwrap()),
        Box::new(MultiMapping::new(&geom, g.clone()).unwrap()),
    ];
    let exec = QueryExecutor::new(&volume, 0);
    let region = BoxRegion::new([3u64, 2, 1], [17u64, 7, 4]);
    for m in &ms {
        volume.reset();
        let r = exec.execute(QueryRequest::range(m.as_ref(), &region)).unwrap();
        assert_eq!(r.cells, region.cells(), "{}", m.name());
        assert_eq!(r.blocks, region.cells(), "{}", m.name());
    }
}
