//! End-to-end "database" demo: the storage manager creates tables with
//! different placements on a two-disk volume, bulk-loads them, applies
//! online inserts (overflow pages, Section 4.6), and compares query
//! times — the full prototype pipeline of the paper's Section 5.1.
//!
//! Run with: `cargo run --release --example spatial_db`

use multimap::core::{BoxRegion, GridSpec};
use multimap::disksim::profiles;
use multimap::store::{LayoutChoice, StorageManager};

fn main() {
    let mut db = StorageManager::new(profiles::cheetah_36es(), 2);
    let grid = GridSpec::new([259u64, 64, 32]);

    for (name, layout) in [
        ("telemetry_multimap", LayoutChoice::MultiMap),
        ("telemetry_naive", LayoutChoice::Naive),
        ("telemetry_hilbert", LayoutChoice::Hilbert),
    ] {
        db.create_table(name, grid.clone(), layout)
            .expect("created");
        let t = db.table(name).expect("exists");
        println!(
            "created {name:<20} layout={:<9} disk={} zones={}..{} span={} blocks",
            format!("{}", t.mapping().kind()),
            t.grant().disk,
            t.grant().first_zone,
            t.grant().first_zone + t.grant().zones - 1,
            t.mapping().blocks_spanned(),
        );
    }

    println!("\nbulk loads:");
    for name in ["telemetry_multimap", "telemetry_naive", "telemetry_hilbert"] {
        let r = db.load(name).expect("loaded");
        println!(
            "  {name:<20} {} cells in {:>9.1} ms ({:>5.1} MB/s, {} writes)",
            r.cells,
            r.total_ms,
            r.bandwidth_mb_s(),
            r.requests
        );
    }

    // Online inserts hammer one hot cell until it overflows.
    for _ in 0..200 {
        db.insert("telemetry_multimap", &[100, 30, 15])
            .expect("insert");
    }
    {
        let t = db.table("telemetry_multimap").unwrap();
        let cell = t.grid().linear_index(&[100, 30, 15]);
        println!(
            "\nafter 200 inserts, hot cell has {} points over {} overflow pages",
            t.cells().points(cell),
            t.cells().overflow_lbns(cell).len()
        );
    }

    println!("\nqueries (beam along Dim1; 8^3 range):");
    let range = BoxRegion::new([96u64, 24, 12], [103u64, 31, 19]);
    for name in ["telemetry_multimap", "telemetry_naive", "telemetry_hilbert"] {
        let b = db.beam(name, 1, &[100, 0, 15]).expect("beam");
        let r = db.range(name, &range).expect("range");
        println!(
            "  {name:<20} beam {:>8.2} ms ({:>5.3} ms/cell)   range {:>8.2} ms",
            b.total_io_ms,
            b.per_cell_ms(),
            r.total_io_ms
        );
    }
}
