//! Mixed-workload throughput: a blend of beams and small ranges, the
//! traffic a spatial database actually sees, across all four mappings.
//!
//! Run with: `cargo run --release --example workload_mix`

use multimap::core::{
    hilbert_mapping, zorder_mapping, GridSpec, Mapping, MultiMapping, NaiveMapping,
};
use multimap::disksim::profiles;
use multimap::lvm::LogicalVolume;
use multimap::query::{workload_rng, QueryExecutor, WorkloadMix};

fn main() {
    let geom = profiles::atlas_10k_iii();
    let grid = GridSpec::new([259u64, 64, 32]);
    let volume = LogicalVolume::new(geom.clone(), 1);
    let queries = 60usize;

    // 50% small ranges, 20% streaming beams, 30% cross-dimension beams.
    let mix = WorkloadMix::builder()
        .range(12, 0.5)
        .beam(0, 0.2)
        .beam(1, 0.15)
        .beam(2, 0.15)
        .queries(queries)
        .build();

    let mappings: Vec<Box<dyn Mapping>> = vec![
        Box::new(NaiveMapping::new(grid.clone(), 0)),
        Box::new(zorder_mapping(grid.clone(), 0, 1).expect("fits")),
        Box::new(hilbert_mapping(grid.clone(), 0, 1).expect("fits")),
        Box::new(MultiMapping::new(&geom, grid.clone()).expect("fits")),
    ];

    println!(
        "mixed workload on {} — {} queries (50% 12^3 ranges, 50% beams)\n",
        geom.name, queries
    );
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "mapping", "total_io_ms", "ms/query", "queries/s"
    );
    for m in &mappings {
        volume.reset();
        let exec = QueryExecutor::new(&volume, 0);
        // Same query stream for every mapping.
        let mut rng = workload_rng(0x31337);
        let report = mix.run(&exec, m.as_ref(), &mut rng, 5.0).expect("in-grid mix");
        println!(
            "{:>10} {:>12.1} {:>12.2} {:>10.1}",
            m.name(),
            report.total.total_io_ms,
            report.total.total_io_ms / queries as f64,
            report.queries_per_second(queries as u64)
        );
    }
}
