//! Skewed-dataset demo (the paper's Section 5.4): build a synthetic
//! earthquake octree, detect uniform subareas, MultiMap each one, and
//! compare beam queries against the linearised leaf layouts.
//!
//! Run with: `cargo run --release --example earthquake`

use multimap::disksim::profiles;
use multimap::lvm::LogicalVolume;
use multimap::octree::{
    beam_box, detect_regions, earthquake_tree, EarthquakeConfig, LeafLinearMapping, LeafOrder,
    SkewedMultiMap,
};
use multimap::query::service_lbns;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let cfg = EarthquakeConfig::default();
    let tree = earthquake_tree(&cfg);
    println!(
        "earthquake octree: domain {}^3, {} leaf elements",
        tree.domain_size(),
        tree.leaf_count()
    );

    let regions = detect_regions(&tree);
    println!("uniform subareas after region growing: {}", regions.len());
    for (i, r) in regions.iter().take(5).enumerate() {
        println!(
            "  region {i}: level {} box {:?}..{:?} = {} elements ({:.1}%)",
            r.level,
            r.lo,
            r.hi,
            r.cells(),
            100.0 * r.cells() as f64 / tree.leaf_count() as f64
        );
    }

    let geom = profiles::atlas_10k_iii();
    let volume = LogicalVolume::new(geom.clone(), 1);
    let (skewed, stats) = SkewedMultiMap::build(&geom, &tree, 4_096).expect("dataset fits");
    println!(
        "\nMultiMap placement: {} regions mapped ({} leaves), {} leftover leaves -> linear tail",
        stats.multimapped_regions, stats.multimapped_leaves, stats.leftover_leaves
    );

    let baselines = [LeafOrder::XMajor, LeafOrder::ZOrder, LeafOrder::Hilbert]
        .map(|o| LeafLinearMapping::new(&tree, o, 0));

    // Beam queries along X, Y, Z through random anchors (paper Fig. 7a).
    let mut rng = StdRng::seed_from_u64(11);
    println!("\nbeam queries (avg I/O per element, ms; 5 runs each):");
    println!("{:>10} {:>8} {:>8} {:>8}", "mapping", "X", "Y", "Z");
    let runs = 5;
    let anchors: Vec<[u64; 3]> = (0..runs)
        .map(|_| {
            [
                rng.random_range(0..tree.domain_size()),
                rng.random_range(0..tree.domain_size()),
                rng.random_range(0..tree.domain_size() / 4),
            ]
        })
        .collect();

    for b in &baselines {
        let mut row = format!("{:>10}", b.name());
        for dim in 0..3 {
            let mut total = 0.0;
            let mut cells = 0u64;
            for anchor in &anchors {
                let (lo, hi) = beam_box(&tree, dim, *anchor);
                let leaves = tree.leaves_intersecting(lo, hi);
                let lbns: Vec<u64> = leaves.iter().map(|l| b.lbn_of_leaf(l)).collect();
                volume.reset();
                let r = service_lbns(&volume, 0, &lbns, false).expect("leaf LBNs serviceable");
                total += r.total_io_ms;
                cells += r.cells;
            }
            row.push_str(&format!(" {:>8.3}", total / cells as f64));
        }
        println!("{row}");
    }
    {
        let mut row = format!("{:>10}", "MultiMap");
        for dim in 0..3 {
            let mut total = 0.0;
            let mut cells = 0u64;
            for anchor in &anchors {
                let (lo, hi) = beam_box(&tree, dim, *anchor);
                let leaves = tree.leaves_intersecting(lo, hi);
                let lbns: Vec<u64> = leaves.iter().map(|l| skewed.lbn_of_leaf(l)).collect();
                volume.reset();
                let sptf = lbns.len() <= 2048;
                let r = service_lbns(&volume, 0, &lbns, sptf).expect("leaf LBNs serviceable");
                total += r.total_io_ms;
                cells += r.cells;
            }
            row.push_str(&format!(" {:>8.3}", total / cells as f64));
        }
        println!("{row}");
    }
    println!("\n(X is the major order of the Naive layout, so Naive streams on X;");
    println!(" MultiMap streams on X too and keeps Y/Z semi-sequential.)");
}
