//! Multi-disk scaling (Section 4.4): MultiMap declusters basic cubes
//! across the disks of a logical volume "just as traditional linear disk
//! models decluster stripe units", so throughput scales with disks while
//! per-disk latency stays constant.
//!
//! The paper's synthetic setup: a 1024³ dataset split into ≤259³ chunks,
//! one chunk per disk. Here each disk holds one chunk; a scan workload is
//! striped across all of them.
//!
//! Run with: `cargo run --release --example scaling`

use multimap::core::{BoxRegion, ChunkedDataset, GridSpec, Mapping, MultiMapping};
use multimap::disksim::{profiles, Request};
use multimap::lvm::{LogicalVolume, SchedulePolicy};

fn main() {
    let geom = profiles::cheetah_36es();
    // A smaller global dataset so every chunk fits the example quickly.
    let dataset = ChunkedDataset::new(
        GridSpec::new([1036u64, 80, 64]),
        [259u64, 80, 64], // four chunks along Dim0
    );
    println!(
        "global dataset {:?} -> {} chunks of {:?}",
        dataset.global().extents(),
        dataset.chunk_count(),
        dataset.chunk_extents()
    );

    for ndisks in [1usize, 2, 4] {
        let volume = LogicalVolume::new(geom.clone(), ndisks);
        // Build one MultiMap per chunk; chunks round-robin over disks.
        // (With more chunks than disks, several chunks share a disk.)
        let mappings: Vec<(usize, MultiMapping)> = (0..dataset.chunk_count())
            .map(|chunk| {
                let disk = dataset.disk_of(chunk, ndisks);
                let shape = dataset.chunk_shape(chunk);
                (disk, MultiMapping::new(&geom, shape).expect("chunk fits"))
            })
            .collect();

        // Workload: a Dim1 beam through every chunk (same local anchor),
        // all issued in parallel across the volume.
        let batches: Vec<(usize, Vec<Request>, SchedulePolicy)> = mappings
            .iter()
            .map(|(disk, m)| {
                let grid = m.grid().clone();
                let beam = BoxRegion::beam(&grid, 1, &[100, 0, 30]);
                let mut reqs = Vec::new();
                beam.for_each_cell(|c| {
                    reqs.push(Request::single(m.lbn_of(c).expect("cell maps")));
                });
                (*disk, reqs, SchedulePolicy::QueuedSptf(64))
            })
            .collect();

        let t = volume.service_striped(&batches).expect("serviceable");
        println!(
            "{ndisks} disk(s): {} blocks, makespan {:.1} ms, aggregate {:.1} blocks/ms \
             (busy {:.1} ms total)",
            t.blocks(),
            t.makespan_ms,
            t.blocks() as f64 / t.makespan_ms,
            t.total_busy_ms()
        );
    }
    println!(
        "\nThroughput scales with disks; per-request latency (the semi-sequential\n\
         settle time) is unchanged — exactly the paper's Section 4.4 claim."
    );
}
