//! OLAP demo (the paper's Section 5.5): run queries Q1–Q5 over a
//! TPC-H-shaped 4-D cube chunk under all four placements.
//!
//! Run with: `cargo run --release --example olap`
//! Add `--paper` for the full (591, 75, 25, 25) per-disk chunk.

use multimap::core::{hilbert_mapping, zorder_mapping, Mapping, MultiMapping, NaiveMapping};
use multimap::disksim::profiles;
use multimap::lvm::LogicalVolume;
use multimap::olap::{self, ALL_QUERIES};
use multimap::query::{workload_rng, QueryExecutor, QueryOp, QueryRequest};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let chunk = if paper_scale {
        olap::disk_chunk()
    } else {
        olap::cube::small_chunk()
    };
    let geom = profiles::cheetah_36es();
    let volume = LogicalVolume::new(geom.clone(), 1);
    println!(
        "OLAP chunk {:?} on {} ({} cells)",
        chunk.extents(),
        geom.name,
        chunk.cells()
    );

    // Materialise the cube from synthetic rows, just to show the full
    // pipeline (row counts do not affect I/O time).
    let rows = olap::generate_rows(&olap::RowGenConfig {
        rows: 50_000,
        seed: 3,
    });
    println!("loaded {} synthetic line items into the cube", rows.len());

    let mappings: Vec<Box<dyn Mapping>> = vec![
        Box::new(NaiveMapping::new(chunk.clone(), 0)),
        Box::new(zorder_mapping(chunk.clone(), 0, 1).expect("fits")),
        Box::new(hilbert_mapping(chunk.clone(), 0, 1).expect("fits")),
        Box::new(MultiMapping::new(&geom, chunk.clone()).expect("fits")),
    ];

    let exec = QueryExecutor::new(&volume, 0);
    println!("\navg I/O time per cell (ms), 3 runs per query:");
    print!("{:>10}", "mapping");
    for q in ALL_QUERIES {
        print!(" {:>8}", q.label());
    }
    println!();
    for m in &mappings {
        print!("{:>10}", m.name());
        for q in ALL_QUERIES {
            let mut rng = workload_rng(1000 + q.label().len() as u64);
            let mut total = 0.0;
            let mut cells = 0u64;
            for _ in 0..3 {
                let region = q.region(&chunk, &mut rng);
                volume.reset();
                let op = if q.is_beam() {
                    QueryOp::Beam
                } else {
                    QueryOp::Range
                };
                let r = exec
                    .execute(QueryRequest::new(op, m.as_ref(), &region))
                    .expect("in-grid query");
                total += r.total_io_ms;
                cells += r.cells;
            }
            print!(" {:>8.3}", total / cells as f64);
        }
        println!();
    }
    println!("\nQ1 = OrderDay beam, Q2 = Nation beam, Q3 = 2-D, Q4 = 3-D, Q5 = 4-D range");
}
