//! Tour of the disk model underlying MultiMap: the seek profile
//! (Figure 1a), adjacent blocks (Figure 1b), and the access-time
//! hierarchy (sequential ≪ semi-sequential ≪ random).
//!
//! Run with: `cargo run --release --example adjacency_tour`

use multimap::disksim::{adjacent_lbn, profiles, semi_sequential_path, DiskSim, Request};

fn main() {
    for geom in profiles::evaluation_disks() {
        println!("=== {} ===", geom.name);
        println!(
            "  {} cylinders x {} surfaces, {:.0} RPM, settle {:.2} ms over C = {} cylinders",
            geom.total_cylinders(),
            geom.surfaces,
            geom.rpm,
            geom.settle_ms,
            geom.settle_cylinders
        );

        // Figure 1(a): the seek profile's settle plateau.
        println!("  seek profile (cylinder distance -> ms):");
        for d in [1u64, 8, 32, 33, 128, 1024, 8192, geom.total_cylinders() - 1] {
            println!("    {:>8} -> {:.3}", d, geom.seek_ms(d));
        }

        // Figure 1(b): adjacent blocks of LBN 0.
        let d_limit = geom.adjacency_limit;
        println!("  D = {d_limit} adjacent blocks; the first few of LBN 0:");
        for step in [1u32, 2, 3, d_limit] {
            let a = adjacent_lbn(&geom, 0, step).unwrap();
            let loc = geom.locate(a).unwrap();
            println!(
                "    {:>3}-th adjacent = LBN {:>8} (track {:>4}, sector {:>3})",
                step, a, loc.track, loc.sector
            );
        }

        // Access-time hierarchy over 200 single-block reads.
        let mut sim = DiskSim::new(geom.clone());
        sim.service(Request::single(0)).unwrap();
        sim.reset_stats();
        for lbn in 1..=200u64 {
            sim.service(Request::single(lbn)).unwrap();
        }
        let seq = sim.stats().per_block_ms();

        let path = semi_sequential_path(&geom, 0, 1, 201);
        let mut sim = DiskSim::new(geom.clone());
        sim.service(Request::single(path[0])).unwrap();
        sim.reset_stats();
        for &lbn in &path[1..] {
            sim.service(Request::single(lbn)).unwrap();
        }
        let semi = sim.stats().per_block_ms();

        let mut sim = DiskSim::new(geom.clone());
        sim.service(Request::single(0)).unwrap();
        sim.reset_stats();
        let mut x: u64 = 0x853c49e6748fea9b;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sim.service(Request::single(x % geom.total_blocks()))
                .unwrap();
        }
        let random = sim.stats().per_block_ms();

        println!("  access hierarchy (ms/block):");
        println!("    sequential      {seq:>7.3}");
        println!(
            "    semi-sequential {semi:>7.3}  ({:.0}x sequential)",
            semi / seq
        );
        println!(
            "    random          {random:>7.3}  ({:.1}x semi-sequential)\n",
            random / semi
        );
    }
}
