//! Quickstart: map a 3-D dataset four ways and compare beam / range
//! query I/O times on a simulated disk.
//!
//! Run with: `cargo run --release --example quickstart`

use multimap::core::{
    hilbert_mapping, zorder_mapping, BoxRegion, GridSpec, Mapping, MultiMapping, NaiveMapping,
};
use multimap::disksim::profiles;
use multimap::lvm::LogicalVolume;
use multimap::query::{random_anchor, workload_rng, QueryExecutor, QueryRequest};

fn main() {
    // A two-zone test disk (use profiles::cheetah_36es() for the paper's
    // drive) and a 3-D dataset grid.
    let geom = profiles::small();
    println!(
        "disk: {} ({} blocks, {:.1} GB, D = {} adjacent blocks)",
        geom.name,
        geom.total_blocks(),
        geom.capacity_bytes() as f64 / 1e9,
        geom.adjacency_limit
    );
    let volume = LogicalVolume::new(geom.clone(), 1);
    let grid = GridSpec::new([100u64, 16, 10]);
    println!(
        "dataset: {:?} = {} cells of one 512-byte block each\n",
        grid.extents(),
        grid.cells()
    );

    // The four placements evaluated in the paper.
    let mappings: Vec<Box<dyn Mapping>> = vec![
        Box::new(NaiveMapping::new(grid.clone(), 0)),
        Box::new(zorder_mapping(grid.clone(), 0, 1).expect("fits")),
        Box::new(hilbert_mapping(grid.clone(), 0, 1).expect("fits")),
        Box::new(MultiMapping::new(&geom, grid.clone()).expect("fits")),
    ];

    let exec = QueryExecutor::new(&volume, 0);
    let mut rng = workload_rng(7);
    let anchor = random_anchor(&grid, &mut rng);

    // Beam queries along each dimension.
    println!("beam queries (avg I/O time per cell, ms):");
    println!(
        "{:>10} {:>8} {:>8} {:>8}",
        "mapping", "Dim0", "Dim1", "Dim2"
    );
    for m in &mappings {
        let mut row = format!("{:>10}", m.name());
        for dim in 0..3 {
            let region = BoxRegion::beam(&grid, dim, &anchor);
            volume.reset();
            let r = exec
                .execute(QueryRequest::beam(m.as_ref(), &region))
                .expect("in-grid query");
            row.push_str(&format!(" {:>8.3}", r.per_cell_ms()));
        }
        println!("{row}");
    }

    // A 10% selectivity range query.
    let query = multimap::query::random_range(&grid, 10.0, &mut rng);
    println!(
        "\nrange query {:?}..{:?} ({} cells, 10% selectivity), total I/O ms:",
        query.lo(),
        query.hi(),
        query.cells()
    );
    let mut naive_ms = 0.0;
    for m in &mappings {
        volume.reset();
        let r = exec
            .execute(QueryRequest::range(m.as_ref(), &query))
            .expect("in-grid query");
        if m.name() == "Naive" {
            naive_ms = r.total_io_ms;
        }
        println!(
            "{:>10} {:>10.2}  (speedup vs Naive: {:.2}x)",
            m.name(),
            r.total_io_ms,
            naive_ms / r.total_io_ms
        );
    }

    println!(
        "\nMultiMap basic cube for this dataset: K = {:?}",
        MultiMapping::new(&geom, grid).unwrap().shape().k
    );
}
