//! EXPLAIN-style access plans: how each mapping would fetch a query and
//! what it should cost, before touching the (simulated) disk.
//!
//! Run with: `cargo run --release --example explain`

use multimap::core::{
    hilbert_mapping, zorder_mapping, BoxRegion, GridSpec, Mapping, MultiMapping, NaiveMapping,
};
use multimap::disksim::profiles;
use multimap::query::{explain_beam, explain_range, ExecOptions};

fn main() {
    let geom = profiles::cheetah_36es();
    println!("{geom}\n");
    let grid = GridSpec::new([259u64, 64, 32]);
    let mappings: Vec<Box<dyn Mapping>> = vec![
        Box::new(NaiveMapping::new(grid.clone(), 0)),
        Box::new(zorder_mapping(grid.clone(), 0, 1).expect("fits")),
        Box::new(hilbert_mapping(grid.clone(), 0, 1).expect("fits")),
        Box::new(MultiMapping::new(&geom, grid.clone()).expect("fits")),
    ];
    let options = ExecOptions::default();

    println!("=== EXPLAIN beam along Dim1 through (100, *, 15) ===");
    let beam = BoxRegion::beam(&grid, 1, &[100, 0, 15]);
    for m in &mappings {
        println!("{}\n", explain_beam(&geom, m.as_ref(), &beam, &options).expect("in-grid"));
    }

    println!("=== EXPLAIN 16x16x16 range at (100, 20, 10) ===");
    let range = BoxRegion::new([100u64, 20, 10], [115u64, 35, 25]);
    for m in &mappings {
        println!("{}\n", explain_range(&geom, m.as_ref(), &range, &options).expect("in-grid"));
    }
}
