//! Validate the analytical I/O-cost model (crates/model) against the
//! simulator, the way the paper's tech report validates its model.
//!
//! Run with: `cargo run --release --example model_vs_sim`

use multimap::core::{BoxRegion, GridSpec, MultiMapping, NaiveMapping};
use multimap::disksim::profiles;
use multimap::lvm::LogicalVolume;
use multimap::model::{
    multimap_beam_per_cell_ms, multimap_range_total_ms, naive_beam_per_cell_ms,
    naive_range_total_ms, ModelParams,
};
use multimap::query::{random_anchor, random_range, workload_rng, QueryExecutor, QueryRequest};

fn main() {
    let geom = profiles::cheetah_36es();
    let grid = GridSpec::new([259u64, 64, 32]);
    let params = ModelParams::from_geometry(&geom, 0);
    let volume = LogicalVolume::new(geom.clone(), 1);
    let naive = NaiveMapping::new(grid.clone(), 0);
    let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
    let exec = QueryExecutor::new(&volume, 0);
    let mut rng = workload_rng(17);

    println!("disk: {} | dataset {:?}\n", geom.name, grid.extents());
    println!("beam queries (ms/cell): simulated vs analytical model");
    println!(
        "{:>8} {:>10} {:>10} {:>7}  {:>10} {:>10} {:>7}",
        "dim", "naive_sim", "naive_mod", "err%", "mm_sim", "mm_mod", "err%"
    );
    for dim in 0..3usize {
        let anchor = random_anchor(&grid, &mut rng);
        let region = BoxRegion::beam(&grid, dim, &anchor);
        volume.reset();
        let ns = exec
            .execute(QueryRequest::beam(&naive, &region))
            .expect("in-grid query")
            .per_cell_ms();
        let nm = naive_beam_per_cell_ms(&params, grid.extents(), dim);
        volume.reset();
        let ms_ = exec
            .execute(QueryRequest::beam(&mm, &region))
            .expect("in-grid query")
            .per_cell_ms();
        let mm_mod = multimap_beam_per_cell_ms(&params, grid.extents(), dim);
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>6.1}%  {:>10.3} {:>10.3} {:>6.1}%",
            dim,
            ns,
            nm,
            100.0 * (ns - nm).abs() / ns,
            ms_,
            mm_mod,
            100.0 * (ms_ - mm_mod).abs() / ms_
        );
    }

    println!("\nrange queries (total ms): simulated vs analytical model");
    println!(
        "{:>8} {:>10} {:>10} {:>7}  {:>10} {:>10} {:>7}",
        "sel%", "naive_sim", "naive_mod", "err%", "mm_sim", "mm_mod", "err%"
    );
    for sel in [0.01, 0.1, 1.0, 10.0] {
        let region = random_range(&grid, sel, &mut rng);
        let qext: Vec<u64> = (0..3).map(|d| region.extent(d)).collect();
        volume.reset();
        let ns = exec
            .execute(QueryRequest::range(&naive, &region))
            .expect("in-grid query")
            .total_io_ms;
        let nm = naive_range_total_ms(&params, grid.extents(), &qext);
        volume.reset();
        let ms_ = exec
            .execute(QueryRequest::range(&mm, &region))
            .expect("in-grid query")
            .total_io_ms;
        let mm_mod = multimap_range_total_ms(&params, grid.extents(), &qext);
        println!(
            "{:>8} {:>10.1} {:>10.1} {:>6.1}%  {:>10.1} {:>10.1} {:>6.1}%",
            sel,
            ns,
            nm,
            100.0 * (ns - nm).abs() / ns,
            ms_,
            mm_mod,
            100.0 * (ms_ - mm_mod).abs() / ms_
        );
    }
    println!("\n(The model ignores track skew accumulation and scheduler details,");
    println!(" so expect agreement within tens of percent, not exactness.)");
}
