//! # multimap — reproduction of *MultiMap: Preserving disk locality for
//! multidimensional datasets* (Shao et al., ICDE 2007)
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`disksim`] | `multimap-disksim` | zoned rotating-disk simulator + adjacency model |
//! | [`lvm`] | `multimap-lvm` | logical volume manager (`GET_ADJACENT`, `GET_TRACK_BOUNDARIES`) |
//! | [`sfc`] | `multimap-sfc` | Z-order / Hilbert / Gray space-filling curves |
//! | [`core`] | `multimap-core` | the MultiMap algorithm + Naive/curve baselines |
//! | [`octree`] | `multimap-octree` | octree substrate, skewed (earthquake) datasets |
//! | [`olap`] | `multimap-olap` | the 4-D TPC-H-shaped OLAP cube and Q1–Q5 |
//! | [`query`] | `multimap-query` | query executor: beam and range queries |
//! | [`store`] | `multimap-store` | database storage manager: tables, loads, updates |
//! | [`model`] | `multimap-model` | analytical I/O-cost model |
//! | [`engine`] | `multimap-engine` | deterministic parallel experiment engine |
//! | [`telemetry`] | `multimap-telemetry` | metrics sinks, histograms, spans (see `docs/observability.md`) |
//!
//! ## Quickstart
//!
//! ```
//! use multimap::core::{GridSpec, Mapping, MultiMapping, NaiveMapping};
//! use multimap::disksim::profiles;
//! use multimap::lvm::LogicalVolume;
//! use multimap::query::{QueryExecutor, QueryRequest};
//! use multimap::core::BoxRegion;
//!
//! // A small simulated disk and a 3-D dataset.
//! let volume = LogicalVolume::new(profiles::small(), 1);
//! let grid = GridSpec::new([60u64, 8, 6]);
//!
//! // Place it with MultiMap and with the naive row-major layout.
//! let multimap = MultiMapping::new(volume.geometry(), grid.clone()).unwrap();
//! let naive = NaiveMapping::new(grid.clone(), 0);
//!
//! // A beam along the second dimension: MultiMap fetches it
//! // semi-sequentially, the naive layout pays rotational latency.
//! let exec = QueryExecutor::new(&volume, 0);
//! let beam = BoxRegion::beam(&grid, 1, &[3, 0, 2]);
//! let t_mm = exec.execute(QueryRequest::beam(&multimap, &beam)).unwrap();
//! volume.reset();
//! let t_naive = exec.execute(QueryRequest::beam(&naive, &beam)).unwrap();
//! assert!(t_mm.total_io_ms < t_naive.total_io_ms);
//! ```

#![forbid(unsafe_code)]

pub use multimap_core as core;
pub use multimap_disksim as disksim;
pub use multimap_engine as engine;
pub use multimap_lvm as lvm;
pub use multimap_model as model;
pub use multimap_octree as octree;
pub use multimap_olap as olap;
pub use multimap_query as query;
pub use multimap_sfc as sfc;
pub use multimap_store as store;
pub use multimap_telemetry as telemetry;
