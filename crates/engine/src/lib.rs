//! # multimap-engine — deterministic parallel experiment engine
//!
//! The paper's evaluation is a sweep of independent (drive profile ×
//! mapping × workload) cells, and every simulator clock in this workspace
//! is *virtual*: a cell's result depends only on its inputs, never on
//! wall-clock interleaving. [`sweep`] exploits that by fanning cells
//! across a pool of scoped worker threads while guaranteeing the output
//! vector is in submission order — so a parallel run is byte-identical
//! to a serial one, and figures, conformance sweeps and prover sweeps can
//! all share the same engine without giving up reproducibility.
//!
//! ## Thread-count resolution
//!
//! Worker count is resolved, in priority order, from:
//!
//! 1. [`set_threads`] (a programmatic override, `0` = clear),
//! 2. the `MULTIMAP_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `MULTIMAP_THREADS=1` (or `set_threads(1)`) forces a fully serial,
//! in-caller-thread run — the reference against which parallel output is
//! asserted byte-identical.
//!
//! An *invalid* `MULTIMAP_THREADS` (zero or unparsable) is reported: a
//! one-time stderr warning from [`threads`] (which then falls back to
//! available parallelism), or a typed [`ThreadsError`] from
//! [`try_threads`] for callers that must not run misconfigured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Programmatic thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker-thread count for subsequent [`sweep`] calls.
///
/// Passing `0` clears the override, returning control to the
/// `MULTIMAP_THREADS` environment variable or the host's available
/// parallelism. Takes precedence over the environment so a benchmark
/// harness can flip between serial and parallel runs in-process.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// A misconfigured `MULTIMAP_THREADS` environment variable.
///
/// Returned by [`try_threads`] so callers that *depend* on an explicit
/// thread count (determinism pins, replay harnesses) can fail loudly
/// instead of silently running at [`std::thread::available_parallelism`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadsError {
    /// `MULTIMAP_THREADS=0`: zero workers is meaningless — use
    /// [`set_threads`]`(0)` (or unset the variable) to clear an override.
    Zero,
    /// `MULTIMAP_THREADS` did not parse as an unsigned integer.
    Unparsable(String),
}

impl std::fmt::Display for ThreadsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadsError::Zero => {
                write!(f, "MULTIMAP_THREADS=0 is invalid (unset it to use available parallelism)")
            }
            ThreadsError::Unparsable(val) => {
                write!(f, "MULTIMAP_THREADS={val:?} is not an unsigned integer")
            }
        }
    }
}

impl std::error::Error for ThreadsError {}

/// Parse a `MULTIMAP_THREADS` value: a positive thread count, or the
/// typed reason it is invalid.
fn parse_threads(val: &str) -> Result<usize, ThreadsError> {
    match val.trim().parse::<usize>() {
        Ok(0) => Err(ThreadsError::Zero),
        Ok(n) => Ok(n),
        Err(_) => Err(ThreadsError::Unparsable(val.to_string())),
    }
}

/// The worker-thread count a [`sweep`] started now would use, or a
/// [`ThreadsError`] when `MULTIMAP_THREADS` is set but invalid.
///
/// Resolution order matches [`threads`]: a [`set_threads`] override wins
/// (and is never an error), then the environment variable, then
/// available parallelism.
pub fn try_threads() -> Result<usize, ThreadsError> {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return Ok(forced);
    }
    if let Ok(val) = std::env::var("MULTIMAP_THREADS") {
        return parse_threads(&val);
    }
    Ok(std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1))
}

/// The worker-thread count a [`sweep`] started now would use.
///
/// An invalid `MULTIMAP_THREADS` (zero or unparsable) falls back to
/// [`std::thread::available_parallelism`] — but warns once on stderr,
/// because a run the caller believed was pinned serial would otherwise
/// silently go parallel. Callers that need the misconfiguration as an
/// error use [`try_threads`].
pub fn threads() -> usize {
    match try_threads() {
        Ok(n) => n,
        Err(err) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("multimap-engine: warning: {err}; falling back to available parallelism");
            });
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Evaluate `f` on every item of `items`, in parallel, returning results
/// in submission order.
///
/// Work distribution is self-scheduling: workers repeatedly claim the
/// next unclaimed index from a shared atomic counter, so an expensive
/// cell never blocks the cells behind it (work stealing by contention
/// rather than by deques — the cell counts here are small). Each worker
/// tags results with their submission index and the merged output is
/// sorted by that index, making the output independent of the thread
/// count and of scheduling order.
///
/// With a resolved thread count of 1 (or at most one item) the closure
/// runs inline on the caller's thread with no pool at all.
///
/// # Panics
/// If `f` panics for any item, the panic is propagated to the caller
/// after all workers have stopped (first panicking worker wins).
pub fn sweep<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let scope_result = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut pairs: Vec<(usize, T)> = Vec::with_capacity(n);
        let mut first_panic = None;
        for h in handles {
            match h.join() {
                Ok(mut local) => pairs.append(&mut local),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        match first_panic {
            None => Ok(pairs),
            Some(payload) => Err(payload),
        }
    });

    let mut pairs = match scope_result {
        Ok(Ok(pairs)) => pairs,
        Ok(Err(payload)) | Err(payload) => resume_unwind(payload),
    };
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), n, "every submitted cell must report");
    pairs.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise tests that touch the global override so they cannot
    /// observe each other's settings.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_override<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_threads(n);
        let out = f();
        set_threads(0);
        out
    }

    #[test]
    fn results_are_in_submission_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = sweep(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let work = |&x: &u64| {
            // An uneven per-cell cost so threads genuinely interleave.
            let mut acc = x;
            for i in 0..(x % 17) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let serial = with_override(1, || sweep(&items, work));
        for workers in [2usize, 3, 8] {
            let parallel = with_override(workers, || sweep(&items, work));
            assert_eq!(serial, parallel, "{workers} workers diverged");
        }
    }

    #[test]
    fn override_takes_precedence() {
        with_override(3, || assert_eq!(threads(), 3));
    }

    #[test]
    fn parse_threads_accepts_positive_counts() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 16 "), Ok(16));
    }

    #[test]
    fn parse_threads_rejects_zero_and_garbage_with_typed_errors() {
        assert_eq!(parse_threads("0"), Err(ThreadsError::Zero));
        assert_eq!(
            parse_threads("four"),
            Err(ThreadsError::Unparsable("four".to_string()))
        );
        assert_eq!(
            parse_threads("-2"),
            Err(ThreadsError::Unparsable("-2".to_string()))
        );
        // The Display impl names the variable so the one-time warning
        // is actionable.
        assert!(ThreadsError::Zero.to_string().contains("MULTIMAP_THREADS"));
        assert!(ThreadsError::Unparsable("x".into())
            .to_string()
            .contains("MULTIMAP_THREADS"));
    }

    #[test]
    fn try_threads_honours_override_without_error() {
        with_override(5, || assert_eq!(try_threads(), Ok(5)));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(sweep(&empty, |&x| x).is_empty());
        assert_eq!(sweep(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            with_override(4, || {
                sweep(&items, |&x| {
                    assert!(x != 13, "cell 13 exploded");
                    x
                })
            })
        });
        assert!(caught.is_err(), "a panicking cell must fail the sweep");
    }

    #[test]
    fn borrowed_state_is_visible_to_workers() {
        let base = [10u64, 20, 30, 40];
        let items: Vec<usize> = (0..base.len()).collect();
        let out = with_override(2, || sweep(&items, |&i| base[i] + 1));
        assert_eq!(out, vec![11, 21, 31, 41]);
    }
}
