//! Adjacency-distance invariants (the paper's Eq. 3 plus the FAST'05
//! settle-reachability condition behind `GET_ADJACENT`).
//!
//! MultiMap's non-primary dimensions are only semi-sequential if every
//! `+1` neighbor step along `Dim_i` (i ≥ 1) lands on the `step(i)`-th
//! adjacent block of the source, with `step(i) ≤ D` and `D` itself
//! settle-reachable. All of that is decidable from the shape and the
//! `DiskGeometry` constants without running the simulator.

use multimap_core::{Mapping, MultiMapping};
use multimap_disksim::{adjacency_offset_sectors, adjacent_lbn, DiskGeometry};

use crate::report::{Report, Verdict};
use crate::sample::sample_coords;

/// Neighbor-step probes per dimension in the sampled regime.
const NEIGHBOR_SAMPLES: usize = 2_048;

/// Run every adjacency invariant for `m`, recording outcomes under
/// `config`. `exhaustive` selects full cell enumeration for the
/// neighbor-step check.
pub fn check(m: &MultiMapping, exhaustive: bool, report: &mut Report, config: &str) {
    let geom = m.geometry();
    report.push(
        "adjacency-step-bound",
        "MultiMap",
        config,
        step_bound(m, geom),
    );
    report.push(
        "adjacency-depth-cap",
        geom.name.clone(),
        config,
        depth_cap(geom),
    );
    report.push(
        "adjacency-settle-reachable",
        geom.name.clone(),
        config,
        settle_reachable(m, geom),
    );
    report.push(
        "adjacency-neighbor-step",
        "MultiMap",
        config,
        neighbor_steps(m, geom, exhaustive),
    );
}

/// Eq. 3: every dimension's adjacency step stays within the advertised
/// depth `D`, so `GET_ADJACENT` can always serve it.
fn step_bound(m: &MultiMapping, geom: &DiskGeometry) -> Verdict {
    let shape = m.shape();
    let d = geom.adjacency_limit as u64;
    let mut details = Vec::new();
    for i in 1..shape.k.len() {
        // Dimension i only ever steps when some cell has y_i ≥ 1, which
        // requires K_i ≥ 2; a K_i = 1 dimension never steps.
        if shape.k[i] >= 2 && shape.step(i) > d {
            details.push(format!(
                "dim {i}: step {} exceeds adjacency depth D={d}",
                shape.step(i)
            ));
        }
    }
    verdict("shape-arithmetic", details)
}

/// The advertised depth never exceeds what the settle plateau covers:
/// `D ≤ surfaces · settle_cylinders`, so every adjacent track is reached
/// by a settle-cost repositioning.
fn depth_cap(geom: &DiskGeometry) -> Verdict {
    let cap = geom.surfaces as u64 * geom.settle_cylinders as u64;
    let mut details = Vec::new();
    if geom.adjacency_limit as u64 > cap {
        details.push(format!(
            "D={} exceeds surfaces*settle_cylinders = {cap}",
            geom.adjacency_limit
        ));
    }
    verdict("geometry-arithmetic", details)
}

/// Zero-rotational-latency condition, re-derived from first principles:
/// in every zone the mapping uses, the angular offset to an adjacent
/// block must give the head at least `transfer + overhead + settle` of
/// time, and must not have wrapped past a full revolution (which would
/// mean the zone's track is too short for settle-reachable adjacency).
fn settle_reachable(m: &MultiMapping, geom: &DiskGeometry) -> Verdict {
    let mut details = Vec::new();
    for za in m.layout().zones() {
        let zone = &geom.zones()[za.zone_index];
        let sector_ms = geom.sector_time_ms(zone);
        let needed_ms = sector_ms + geom.command_overhead_ms + geom.settle_ms;
        if needed_ms >= geom.revolution_ms() {
            details.push(format!(
                "zone {}: settle+overhead {needed_ms:.3} ms exceeds one revolution",
                za.zone_index
            ));
            continue;
        }
        let off = adjacency_offset_sectors(geom, zone) as f64;
        let granted_ms = off * sector_ms;
        if granted_ms + 1e-9 < needed_ms {
            details.push(format!(
                "zone {}: offset {off} sectors grants {granted_ms:.3} ms < needed {needed_ms:.3} ms",
                za.zone_index
            ));
        }
        // Tightness: the firmware margin is slack + at most one sector of
        // rounding; more would silently waste semi-sequential bandwidth.
        let ceiling_ms = needed_ms + geom.adjacency_slack_ms + sector_ms + 1e-9;
        if granted_ms > ceiling_ms {
            details.push(format!(
                "zone {}: offset {off} sectors grants {granted_ms:.3} ms, looser than {ceiling_ms:.3} ms",
                za.zone_index
            ));
        }
    }
    verdict("timing-arithmetic", details)
}

/// Every in-cube `+1` neighbor step along a non-primary dimension equals
/// the `step(i)`-th adjacent block of its source — i.e. the LBN the
/// `GET_ADJACENT` primitive returns, which itself enforces `step ≤ D`
/// and same-zone placement.
fn neighbor_steps(m: &MultiMapping, geom: &DiskGeometry, exhaustive: bool) -> Verdict {
    let grid = m.grid();
    let shape = m.shape();
    let mut details = Vec::new();
    let mut check_cell = |c: &[u64]| {
        if details.len() >= 8 {
            return;
        }
        for dim in 1..grid.ndims() {
            let in_cube = c[dim] % shape.k[dim];
            if in_cube + 1 >= shape.k[dim] || c[dim] + 1 >= grid.extent(dim) {
                continue; // The +1 neighbor lives in the next cube.
            }
            let mut up = c.to_vec();
            up[dim] += 1;
            let src = match m.lbn_of(c) {
                Ok(l) => l,
                Err(e) => {
                    details.push(format!("cell {c:?} failed to map: {e}"));
                    return;
                }
            };
            let via_map = match m.lbn_of(&up) {
                Ok(l) => l,
                Err(e) => {
                    details.push(format!("cell {up:?} failed to map: {e}"));
                    return;
                }
            };
            match adjacent_lbn(geom, src, shape.step(dim) as u32) {
                Ok(via_adjacent) if via_adjacent == via_map => {}
                Ok(via_adjacent) => details.push(format!(
                    "dim {dim} step at {c:?}: mapping gives {via_map}, GET_ADJACENT gives {via_adjacent}"
                )),
                Err(e) => details.push(format!(
                    "dim {dim} step at {c:?} is not settle-reachable: {e}"
                )),
            }
        }
    };
    if exhaustive {
        grid.for_each_cell(&mut check_cell);
    } else {
        for c in sample_coords(grid, NEIGHBOR_SAMPLES) {
            check_cell(&c);
        }
    }
    verdict(if exhaustive { "exhaustive" } else { "sampled" }, details)
}

fn verdict(method: &str, details: Vec<String>) -> Verdict {
    if details.is_empty() {
        Verdict::Proved {
            method: method.into(),
        }
    } else {
        Verdict::Violated { details }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::GridSpec;
    use multimap_disksim::profiles;

    #[test]
    fn toy_paper_example_passes_all_adjacency_checks() {
        let geom = profiles::toy();
        let m = MultiMapping::new(&geom, GridSpec::new([5u64, 3, 3])).unwrap();
        let mut r = Report::new();
        check(&m, true, &mut r, "toy 5x3x3");
        assert!(r.is_clean(), "{}", r.render_text());
        assert_eq!(r.outcomes.len(), 4);
    }

    #[test]
    fn evaluation_disks_pass_sampled_adjacency_checks() {
        for geom in profiles::evaluation_disks() {
            let m = MultiMapping::new(&geom, GridSpec::new([259u64, 259, 259])).unwrap();
            let mut r = Report::new();
            check(&m, false, &mut r, "chunk 259^3");
            assert!(r.is_clean(), "{}: {}", geom.name, r.render_text());
        }
    }

    #[test]
    fn depth_cap_flags_overdeep_adjacency() {
        let mut geom = profiles::toy();
        // Forge an inconsistent geometry: D beyond the settle plateau.
        geom.adjacency_limit = geom.surfaces * geom.settle_cylinders + 1;
        assert!(depth_cap(&geom).is_violation());
    }
}
