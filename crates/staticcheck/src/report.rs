//! Machine-readable results of a static-analysis run.
//!
//! Both prongs (the layout invariant prover and the source lint) reduce
//! to a [`Report`]: a list of named checks, each with a [`Verdict`].
//! Reports serialize to JSON (via the conformance crate's writer) so CI
//! can archive them, and `is_clean` drives the process exit code.

use std::collections::BTreeMap;

use multimap_conformance::json::Value;

/// Outcome of one invariant check or lint rule on one subject.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The invariant holds; `method` names the proof strategy
    /// (`"exhaustive"`, `"stride-symmetry"`, `"rank-table"`, …).
    Proved {
        /// How the invariant was established.
        method: String,
    },
    /// The invariant is violated; each entry is one concrete witness.
    Violated {
        /// Human-readable violation witnesses.
        details: Vec<String>,
    },
    /// The check did not apply to this subject.
    Skipped {
        /// Why the check was skipped.
        reason: String,
    },
}

impl Verdict {
    /// Whether this verdict represents a violation.
    #[inline]
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violated { .. })
    }
}

/// One named check applied to one subject under one configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Invariant or rule identifier (`bijection`, `adjacency-step`, …).
    pub invariant: String,
    /// What was checked (mapping name, file path, …).
    pub subject: String,
    /// Sweep configuration (profile and grid) or rule scope.
    pub config: String,
    /// The result.
    pub verdict: Verdict,
}

/// A full static-analysis report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// All check outcomes, in execution order.
    pub outcomes: Vec<CheckOutcome>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Record one outcome.
    pub fn push(
        &mut self,
        invariant: impl Into<String>,
        subject: impl Into<String>,
        config: impl Into<String>,
        verdict: Verdict,
    ) {
        self.outcomes.push(CheckOutcome {
            invariant: invariant.into(),
            subject: subject.into(),
            config: config.into(),
            verdict,
        });
    }

    /// Append all outcomes of another report.
    pub fn merge(&mut self, other: Report) {
        self.outcomes.extend(other.outcomes);
    }

    /// Outcomes that are violations.
    pub fn violations(&self) -> Vec<&CheckOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.is_violation())
            .collect()
    }

    /// Whether every check passed (or was skipped).
    pub fn is_clean(&self) -> bool {
        self.violations().is_empty()
    }

    /// Count of `(proved, violated, skipped)` outcomes.
    pub fn tallies(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for o in &self.outcomes {
            match o.verdict {
                Verdict::Proved { .. } => t.0 += 1,
                Verdict::Violated { .. } => t.1 += 1,
                Verdict::Skipped { .. } => t.2 += 1,
            }
        }
        t
    }

    /// Render as a JSON document.
    pub fn to_json(&self) -> Value {
        let (proved, violated, skipped) = self.tallies();
        let mut root = BTreeMap::new();
        let mut summary = BTreeMap::new();
        summary.insert("proved".into(), Value::Num(proved as f64));
        summary.insert("violated".into(), Value::Num(violated as f64));
        summary.insert("skipped".into(), Value::Num(skipped as f64));
        summary.insert("clean".into(), Value::Bool(self.is_clean()));
        root.insert("summary".into(), Value::Obj(summary));
        let checks = self
            .outcomes
            .iter()
            .map(|o| {
                let mut m = BTreeMap::new();
                m.insert("invariant".into(), Value::Str(o.invariant.clone()));
                m.insert("subject".into(), Value::Str(o.subject.clone()));
                m.insert("config".into(), Value::Str(o.config.clone()));
                let (status, extra) = match &o.verdict {
                    Verdict::Proved { method } => ("proved", ("method", method.clone(), None)),
                    Verdict::Violated { details } => {
                        ("violated", ("details", String::new(), Some(details)))
                    }
                    Verdict::Skipped { reason } => ("skipped", ("reason", reason.clone(), None)),
                };
                m.insert("status".into(), Value::Str(status.into()));
                match extra {
                    (key, _, Some(details)) => {
                        m.insert(
                            key.into(),
                            Value::Arr(details.iter().cloned().map(Value::Str).collect()),
                        );
                    }
                    (key, text, None) => {
                        m.insert(key.into(), Value::Str(text));
                    }
                }
                Value::Obj(m)
            })
            .collect();
        root.insert("checks".into(), Value::Arr(checks));
        Value::Obj(root)
    }

    /// One-line-per-check human summary; violations list their witnesses.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for o in &self.outcomes {
            let tag = match &o.verdict {
                Verdict::Proved { method } => format!("PROVED [{method}]"),
                Verdict::Violated { .. } => "VIOLATED".into(),
                Verdict::Skipped { reason } => format!("skipped ({reason})"),
            };
            let _ = writeln!(out, "{:<24} {:<28} {:<40} {tag}", o.invariant, o.subject, o.config);
            if let Verdict::Violated { details } = &o.verdict {
                for d in details.iter().take(8) {
                    let _ = writeln!(out, "    !! {d}");
                }
                if details.len() > 8 {
                    let _ = writeln!(out, "    !! … and {} more", details.len() - 8);
                }
            }
        }
        let (proved, violated, skipped) = self.tallies();
        let _ = writeln!(
            out,
            "{} checks: {proved} proved, {violated} violated, {skipped} skipped",
            self.outcomes.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_and_cleanliness() {
        let mut r = Report::new();
        r.push("a", "x", "cfg", Verdict::Proved { method: "m".into() });
        r.push("b", "y", "cfg", Verdict::Skipped { reason: "n/a".into() });
        assert!(r.is_clean());
        assert_eq!(r.tallies(), (1, 0, 1));
        r.push(
            "c",
            "z",
            "cfg",
            Verdict::Violated {
                details: vec!["boom".into()],
            },
        );
        assert!(!r.is_clean());
        assert_eq!(r.violations().len(), 1);
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let mut r = Report::new();
        r.push("bijection", "MultiMap", "toy 5x3x3", Verdict::Proved { method: "exhaustive".into() });
        r.push(
            "adjacency",
            "MultiMap",
            "toy 5x3x3",
            Verdict::Violated {
                details: vec!["step 4 > D".into()],
            },
        );
        let text = r.to_json().to_pretty();
        let back = multimap_conformance::json::parse(&text).unwrap();
        assert_eq!(back.get("summary").unwrap().get("clean"), Some(&Value::Bool(false)));
        assert_eq!(back.get("checks").unwrap().as_arr().unwrap().len(), 2);
        let rendered = r.render_text();
        assert!(rendered.contains("VIOLATED"));
        assert!(rendered.contains("step 4 > D"));
    }
}
