//! Deterministic cell sampling for large-grid spot checks.
//!
//! Structural proofs carry the quantifier over all cells; sampling exists
//! only to cross-check that the *implementation* matches the structure the
//! proof reasoned about. Samples are deterministic (corners plus an
//! equally-spaced strided scan) so failures reproduce exactly.

use multimap_core::{Coord, GridSpec};

/// All corners of the grid (up to 2^N, capped at 256 for high-N grids).
pub fn corner_coords(grid: &GridSpec) -> Vec<Coord> {
    let n = grid.ndims();
    let count = 1u64 << n.min(8);
    let mut out = Vec::with_capacity(count as usize);
    for mask in 0..count {
        let c: Coord = (0..n)
            .map(|d| {
                if mask >> d.min(63) & 1 == 1 {
                    grid.extent(d) - 1
                } else {
                    0
                }
            })
            .collect();
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

/// Corners plus an equally-spaced strided scan of the linearised grid,
/// at most `max` coordinates in total.
pub fn sample_coords(grid: &GridSpec, max: usize) -> Vec<Coord> {
    let mut out = corner_coords(grid);
    let cells = grid.cells();
    let budget = max.saturating_sub(out.len()).max(1) as u64;
    let stride = (cells / budget).max(1);
    // Offset successive probes by their index so samples do not all share
    // the same residues modulo small extents.
    let mut idx = 0u64;
    let mut probe = 0u64;
    while idx < cells && out.len() < max {
        if let Some(c) = grid.coord_of_linear(idx) {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        probe += 1;
        idx = probe * stride + probe % stride.max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_of_small_grid() {
        let g = GridSpec::new([3u64, 4]);
        let corners = corner_coords(&g);
        assert_eq!(corners.len(), 4);
        assert!(corners.contains(&vec![0, 0]));
        assert!(corners.contains(&vec![2, 3]));
    }

    #[test]
    fn samples_are_in_grid_and_bounded() {
        let g = GridSpec::new([100u64, 100, 10]);
        let s = sample_coords(&g, 500);
        assert!(s.len() <= 500);
        assert!(s.len() >= 100);
        assert!(s.iter().all(|c| g.contains(c)));
    }
}
