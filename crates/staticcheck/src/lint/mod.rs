//! The custom source lint pass (prong 2).
//!
//! Walks every workspace crate's `src/` tree (vendor shims excluded),
//! scrubs each file with [`lexer`], applies the [`rules`], and filters
//! findings through the justification-carrying allowlist:
//!
//! ```text
//! // staticcheck: allow(no-unwrap) — shape was validated two lines up
//! let k = shape.k.first().unwrap();
//! ```
//!
//! A directive suppresses findings of its rule on its own line and up to
//! two lines below it. `allow-file(rule)` suppresses the rule for the
//! whole file. The justification text is mandatory (≥ 10 characters);
//! a bare `allow` is itself reported as `allow-missing-justification`,
//! and a directive naming an unknown rule as `allow-unknown-rule`.

pub mod ast;
pub mod determinism;
pub mod lexer;
pub mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::report::{Report, Verdict};
use lexer::Scrubbed;
use rules::{Family, Finding, RULES};

/// Which rule families a lint run applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleSelection {
    /// The classic hygiene rules only (`staticcheck lint`).
    Classic,
    /// The determinism family only (`staticcheck determinism`).
    Determinism,
    /// Both families (`staticcheck all`).
    All,
}

impl RuleSelection {
    fn includes(self, family: Family) -> bool {
        match self {
            RuleSelection::Classic => family == Family::Classic,
            RuleSelection::Determinism => family == Family::Determinism,
            RuleSelection::All => true,
        }
    }
}

/// Classification of one source file for rule applicability.
#[derive(Clone, Debug)]
pub struct FileClass {
    /// Workspace crate the file belongs to (`"root"` for the root crate).
    pub crate_name: String,
    /// Library code: subject to `no-unwrap`. Binaries (`main.rs`,
    /// `src/bin/`) and build scripts are exempt — aborting is their
    /// error-reporting channel.
    pub is_lib_code: bool,
    /// A crate root (`lib.rs`), subject to `unsafe-attr`.
    pub is_crate_root: bool,
}

/// Classify a workspace-relative path such as `crates/lvm/src/volume.rs`.
pub fn classify(rel: &Path) -> FileClass {
    let parts: Vec<&str> = rel
        .iter()
        .map(|p| p.to_str().unwrap_or_default())
        .collect();
    let crate_name = if parts.first() == Some(&"crates") {
        parts.get(1).copied().unwrap_or("unknown").to_string()
    } else {
        "root".to_string()
    };
    let file = parts.last().copied().unwrap_or_default();
    let in_bin = parts.contains(&"bin");
    let is_lib_code = !in_bin && file != "main.rs" && file != "build.rs";
    let src_pos = parts.iter().position(|&p| p == "src");
    let is_crate_root =
        file == "lib.rs" && src_pos.is_some_and(|p| p + 2 == parts.len());
    FileClass {
        crate_name,
        is_lib_code,
        is_crate_root,
    }
}

/// One allowlist directive parsed from a line comment.
#[derive(Clone, Debug)]
struct Directive {
    rule: String,
    file_level: bool,
    justified: bool,
    line: usize,
}

fn parse_directives(s: &Scrubbed) -> Vec<Directive> {
    let mut out = Vec::new();
    for (line, text) in &s.comments {
        let Some(pos) = text.find("staticcheck:") else {
            continue;
        };
        let rest = text[pos + "staticcheck:".len()..].trim_start();
        let file_level = rest.starts_with("allow-file(");
        let prefix = if file_level { "allow-file(" } else { "allow(" };
        if !rest.starts_with(prefix) {
            continue;
        }
        let body = &rest[prefix.len()..];
        let Some(close) = body.find(')') else {
            continue;
        };
        let rule = body[..close].trim().to_string();
        let justification = body[close + 1..]
            .trim_start_matches([' ', '-', '—', ':', '–'])
            .trim();
        out.push(Directive {
            rule,
            file_level,
            justified: justification.chars().count() >= 10,
            line: *line,
        });
    }
    out
}

/// The allowlist state for one file.
struct Allowlist {
    file_level: BTreeSet<String>,
    by_line: BTreeMap<String, Vec<usize>>,
}

impl Allowlist {
    fn new(directives: &[Directive]) -> Self {
        let mut file_level = BTreeSet::new();
        let mut by_line: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for d in directives.iter().filter(|d| d.justified) {
            if d.file_level {
                file_level.insert(d.rule.clone());
            } else {
                by_line.entry(d.rule.clone()).or_default().push(d.line);
            }
        }
        Allowlist {
            file_level,
            by_line,
        }
    }

    /// A directive covers its own line plus the two lines below it
    /// (comment-above-statement style).
    fn allows(&self, rule: &str, line: usize) -> bool {
        if self.file_level.contains(rule) {
            return true;
        }
        self.by_line
            .get(rule)
            .is_some_and(|lines| lines.iter().any(|&l| line >= l && line <= l + 2))
    }
}

/// Result of linting a set of files.
pub struct LintOutcome {
    /// The report (one outcome per violation plus per-rule summaries).
    pub report: Report,
    /// Files scanned.
    pub files: usize,
    /// Findings suppressed by the allowlist, per rule.
    pub allowed: BTreeMap<String, usize>,
}

/// Lint every workspace source file under `root` with the classic rules.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintOutcome> {
    lint_workspace_selected(root, RuleSelection::Classic)
}

/// Lint every workspace source file under `root` with the selected
/// rule families.
pub fn lint_workspace_selected(
    root: &Path,
    sel: RuleSelection,
) -> std::io::Result<LintOutcome> {
    let files = workspace_rs_files(root)?;
    lint_files(root, &files, sel)
}

/// Lint the given files (workspace-relative reporting against `root`).
pub fn lint_files(
    root: &Path,
    files: &[PathBuf],
    sel: RuleSelection,
) -> std::io::Result<LintOutcome> {
    let mut violations: Vec<(String, Finding)> = Vec::new();
    let mut allowed: BTreeMap<String, usize> = BTreeMap::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        let class = classify(&rel);
        let src = std::fs::read_to_string(path)?;
        let scrubbed = Scrubbed::new(&src);
        let directives = parse_directives(&scrubbed);
        let allowlist = Allowlist::new(&directives);
        let rel_str = rel.to_string_lossy().replace('\\', "/");

        // Malformed directives are findings themselves (never allowable).
        for d in &directives {
            if !RULES.iter().any(|(r, _, _)| *r == d.rule) {
                violations.push((
                    rel_str.clone(),
                    Finding {
                        rule: "allow-unknown-rule",
                        line: d.line,
                        excerpt: format!("directive names unknown rule {:?}", d.rule),
                    },
                ));
            } else if !d.justified {
                violations.push((
                    rel_str.clone(),
                    Finding {
                        rule: "allow-missing-justification",
                        line: d.line,
                        excerpt: "allow directive without a justification".into(),
                    },
                ));
            }
        }

        let mut raw: Vec<Finding> = Vec::new();
        if sel.includes(Family::Classic) {
            if class.is_lib_code {
                raw.extend(rules::no_unwrap(&scrubbed));
            }
            raw.extend(rules::float_cmp(&scrubbed));
            if class.crate_name != "disksim" {
                raw.extend(rules::no_direct_service(&scrubbed));
            }
            if class.is_crate_root {
                raw.extend(rules::unsafe_attr(&scrubbed));
            }
        }
        if sel.includes(Family::Determinism) {
            let toks = ast::tokenize(&scrubbed);
            raw.extend(determinism::unordered_collection(&scrubbed, &toks));
            raw.extend(determinism::unordered_iter(&scrubbed, &toks));
            // The telemetry crate is the blessed home of pinned-order
            // float merges (`merge_ordered`, histograms) and of the span
            // module — the one place allowed to read the wall clock.
            if class.crate_name != "telemetry" {
                raw.extend(determinism::float_sum(&scrubbed, &toks));
                raw.extend(determinism::wall_clock(&scrubbed, &toks));
            }
            raw.extend(determinism::entropy(&scrubbed, &toks));
        }
        for f in raw {
            if allowlist.allows(f.rule, f.line) {
                *allowed.entry(f.rule.to_string()).or_default() += 1;
            } else {
                violations.push((rel_str.clone(), f));
            }
        }
    }

    let mut report = Report::new();
    for (file, f) in &violations {
        report.push(
            f.rule,
            format!("{file}:{}", f.line + 1),
            "lint",
            Verdict::Violated {
                details: vec![f.excerpt.clone()],
            },
        );
    }
    for (rule, family, _) in RULES {
        if !sel.includes(*family) {
            continue;
        }
        if !violations.iter().any(|(_, f)| f.rule == *rule) {
            let n = allowed.get(*rule).copied().unwrap_or(0);
            report.push(
                *rule,
                "workspace",
                "lint",
                Verdict::Proved {
                    method: format!("clean ({n} allowlisted)"),
                },
            );
        }
    }
    Ok(LintOutcome {
        report,
        files: files.len(),
        allowed,
    })
}

/// Every `.rs` file of every workspace crate: `crates/*/src/**` plus the
/// root crate's `src/**`. Vendor shims, tests, benches and examples are
/// out of scope (test code is also exempted span-by-span).
pub fn workspace_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut out)?;
        }
    }
    collect_rs(&root.join("src"), &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let c = classify(Path::new("crates/lvm/src/volume.rs"));
        assert_eq!(c.crate_name, "lvm");
        assert!(c.is_lib_code);
        assert!(!c.is_crate_root);
        let c = classify(Path::new("crates/staticcheck/src/main.rs"));
        assert!(!c.is_lib_code);
        let c = classify(Path::new("src/lib.rs"));
        assert_eq!(c.crate_name, "root");
        assert!(c.is_crate_root);
        let c = classify(Path::new("crates/core/src/multimap/map.rs"));
        assert!(c.is_lib_code);
        assert!(!c.is_crate_root);
    }

    #[test]
    fn directive_parsing_and_coverage() {
        let src = "\
// staticcheck: allow(no-unwrap) — construction above validates the shape\n\
let a = x.unwrap();\n\
let b = y.unwrap();\n\
let c = z.unwrap();\n";
        let s = Scrubbed::new(src);
        let d = parse_directives(&s);
        assert_eq!(d.len(), 1);
        assert!(d[0].justified);
        let al = Allowlist::new(&d);
        assert!(al.allows("no-unwrap", 0));
        assert!(al.allows("no-unwrap", 2));
        assert!(!al.allows("no-unwrap", 3));
        assert!(!al.allows("float-cmp", 1));
    }

    #[test]
    fn unjustified_directive_is_not_an_allow() {
        let src = "// staticcheck: allow(no-unwrap)\nlet a = x.unwrap();\n";
        let s = Scrubbed::new(src);
        let d = parse_directives(&s);
        assert_eq!(d.len(), 1);
        assert!(!d[0].justified);
        assert!(!Allowlist::new(&d).allows("no-unwrap", 1));
    }

    #[test]
    fn file_level_allow_covers_everything() {
        let src = "// staticcheck: allow-file(no-unwrap) — figure binary, abort acceptable\n\
fn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n";
        let s = Scrubbed::new(src);
        let al = Allowlist::new(&parse_directives(&s));
        assert!(al.allows("no-unwrap", 1));
        assert!(al.allows("no-unwrap", 2));
    }
}
