//! Token-level syntax pass over scrubbed source.
//!
//! The determinism rules need more structure than substring matching can
//! provide: a method call's *receiver*, the name a `HashMap` binding
//! introduces, the expression a `for` loop iterates. The workspace
//! vendors no Rust parser (`syn` is unavailable offline), so this module
//! implements the minimal syntactic layer those rules need: a lossless
//! tokenizer over the [`Scrubbed`] text (comments and literal interiors
//! already blanked) plus pattern extractors for method calls, collection
//! bindings and `for` loops. Offsets index into the original source, so
//! findings keep exact lines.
//!
//! This is deliberately not a full grammar: extractors resolve names
//! *within one file* (fields and locals declared in the same file), which
//! is exactly the scope a per-file lint can reason about. Cross-file
//! types are out of scope and handled by rule design (crate/module
//! exemptions) instead.

use super::lexer::Scrubbed;

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal; `float` when it carries a decimal point, an
    /// exponent or an `f32`/`f64` suffix.
    Num {
        /// Whether the literal is floating-point.
        float: bool,
    },
    /// One punctuation byte (multi-byte operators appear as adjacent
    /// tokens; adjacency is checked through offsets).
    Punct(u8),
    /// String, byte-string or char literal (interior already blanked).
    Lit,
    /// Lifetime such as `'a`.
    Lifetime,
}

/// One token of the scrubbed source.
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    /// What kind of token this is.
    pub kind: Kind,
    /// The token's text in the scrubbed source.
    pub text: &'a str,
    /// Byte offset of the token start.
    pub off: usize,
}

impl Tok<'_> {
    /// Whether this token is the identifier `s`.
    #[inline]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this token is the punctuation byte `b`.
    #[inline]
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == Kind::Punct(b)
    }

    /// Byte offset one past the token end.
    #[inline]
    pub fn end(&self) -> usize {
        self.off + self.text.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize the scrubbed text.
pub fn tokenize(s: &Scrubbed) -> Vec<Tok<'_>> {
    let text = s.text.as_str();
    let b = text.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 4);
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(Tok {
                kind: Kind::Ident,
                text: &text[start..i],
                off: start,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            let mut float = false;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
            // Fractional part — only when a digit follows the dot, so
            // `1.max(2)` stays an integer plus a method call.
            if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                float = true;
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
            }
            // Exponent.
            if i < b.len()
                && (b[i] == b'e' || b[i] == b'E')
                && (b.get(i + 1).is_some_and(u8::is_ascii_digit)
                    || (matches!(b.get(i + 1), Some(b'+') | Some(b'-'))
                        && b.get(i + 2).is_some_and(u8::is_ascii_digit)))
            {
                float = true;
                i += 1;
                if matches!(b.get(i), Some(b'+') | Some(b'-')) {
                    i += 1;
                }
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            // Type suffix (`u64`, `f64`, `usize`…).
            let suffix_start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            if text[suffix_start..i].starts_with('f') {
                float = true;
            }
            out.push(Tok {
                kind: Kind::Num { float },
                text: &text[start..i],
                off: start,
            });
        } else if c == b'"' {
            // Scrubbing blanked the interior and kept the quotes.
            let start = i;
            i += 1;
            while i < b.len() && b[i] != b'"' {
                i += 1;
            }
            i = (i + 1).min(b.len());
            out.push(Tok {
                kind: Kind::Lit,
                text: &text[start..i],
                off: start,
            });
        } else if c == b'\'' {
            let next = b.get(i + 1).copied().unwrap_or(0);
            let is_lifetime = is_ident_start(next) && b.get(i + 2) != Some(&b'\'');
            let start = i;
            if is_lifetime {
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(Tok {
                    kind: Kind::Lifetime,
                    text: &text[start..i],
                    off: start,
                });
            } else {
                // Char literal (interior blanked); bail at end of line on
                // malformed input, mirroring the scrubber.
                i += 1;
                while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                    i += 1;
                }
                i = (i + 1).min(b.len());
                out.push(Tok {
                    kind: Kind::Lit,
                    text: &text[start..i],
                    off: start,
                });
            }
        } else {
            out.push(Tok {
                kind: Kind::Punct(c),
                text: &text[i..i + 1],
                off: i,
            });
            i += 1;
        }
    }
    out
}

/// Whether tokens `i` and `i + 1` form the given two-byte operator with
/// no intervening space (`::`, `->`, …).
pub fn pair(toks: &[Tok<'_>], i: usize, a: u8, b: u8) -> bool {
    i + 1 < toks.len()
        && toks[i].is_punct(a)
        && toks[i + 1].is_punct(b)
        && toks[i].off + 1 == toks[i + 1].off
}

/// One `receiver.method(…)` call site.
#[derive(Clone, Debug)]
pub struct MethodCall<'a> {
    /// Method name.
    pub name: &'a str,
    /// Byte offset of the method name (anchors the finding).
    pub off: usize,
    /// Base identifier of the receiver — the identifier immediately left
    /// of the final dot (`self.by_lbn.iter()` → `by_lbn`), or `None`
    /// when the receiver is a call/index/parenthesized expression.
    pub receiver: Option<&'a str>,
    /// Token index of the method-name token.
    pub name_idx: usize,
    /// Token index of the opening `(` of the arguments, if present
    /// (absent for path references such as `Instant::now` used as a
    /// value — those are not method calls and never yield one of these).
    pub args_open: usize,
}

/// Extract every `recv.method(…)` call, including turbofished calls
/// (`sum::<f64>()`).
pub fn method_calls<'a>(toks: &'a [Tok<'a>]) -> Vec<MethodCall<'a>> {
    let mut out = Vec::new();
    for i in 1..toks.len() {
        if !toks[i - 1].is_punct(b'.') || toks[i].kind != Kind::Ident {
            continue;
        }
        // `1.0.max(…)` — the dot of a float literal never reaches here
        // because the tokenizer folds it into the literal.
        let mut j = i + 1;
        // Skip a turbofish `::<…>`.
        if pair(toks, j, b':', b':') && toks.get(j + 2).is_some_and(|t| t.is_punct(b'<')) {
            let mut depth = 0i32;
            j += 2;
            while j < toks.len() {
                if toks[j].is_punct(b'<') {
                    depth += 1;
                } else if toks[j].is_punct(b'>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|t| t.is_punct(b'(')) {
            continue;
        }
        // Receiver base: identifier directly before the dot.
        let receiver = if i >= 2 && toks[i - 2].kind == Kind::Ident {
            Some(toks[i - 2].text)
        } else {
            None
        };
        out.push(MethodCall {
            name: toks[i].text,
            off: toks[i].off,
            receiver,
            name_idx: i,
            args_open: j,
        });
    }
    out
}

/// Names this file binds to `HashMap`/`HashSet` (fields, locals, struct
/// literal fields, parameters), resolved by two local patterns:
///
/// * type position — `name: …HashMap<…>` / `name: …HashSet<…>`;
/// * constructor — `name = …HashMap::new()` / `with_capacity` / `default`.
pub fn hash_bound_names(toks: &[Tok<'_>]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over a `std :: collections ::`-style path prefix.
        let mut j = i;
        while j >= 2 && pair(toks, j - 2, b':', b':') && toks.get(j.wrapping_sub(3)).is_some_and(|t| t.kind == Kind::Ident) {
            j -= 3;
        }
        // `name :` or `name =` directly before the path start.
        let Some(sep) = j.checked_sub(1).map(|k| &toks[k]) else {
            continue;
        };
        let double_colon = j >= 2 && pair(toks, j - 2, b':', b':');
        let bind = match sep.kind {
            Kind::Punct(b':') if !double_colon => j.checked_sub(2),
            Kind::Punct(b'=') => j.checked_sub(2),
            _ => None,
        };
        if let Some(k) = bind {
            if toks[k].kind == Kind::Ident {
                let name = toks[k].text.to_string();
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Whether the token at `i` is part of a `use` declaration: scanning
/// left, a `use` keyword appears before any token that could not occur
/// inside a use tree.
pub fn in_use_decl(toks: &[Tok<'_>], i: usize) -> bool {
    let mut j = i;
    for _ in 0..64 {
        if j == 0 {
            return false;
        }
        j -= 1;
        match toks[j].kind {
            Kind::Ident if toks[j].text == "use" => return true,
            Kind::Ident | Kind::Punct(b':') | Kind::Punct(b',') | Kind::Punct(b'{') => {}
            _ => return false,
        }
    }
    false
}

/// One `for … in <expr> { … }` loop whose iterated expression is a plain
/// (optionally borrowed) name or field path; `base` is the path's last
/// identifier.
#[derive(Clone, Debug)]
pub struct ForLoop<'a> {
    /// Last identifier of the iterated path (`&self.map` → `map`).
    pub base: &'a str,
    /// Byte offset anchoring the finding (the `for` keyword).
    pub off: usize,
}

/// Extract `for` loops that iterate a simple name or field path directly
/// (`for x in map`, `for (k, v) in &self.index`). Loops over method-call
/// results are covered by [`method_calls`] instead.
pub fn for_loops<'a>(toks: &'a [Tok<'a>]) -> Vec<ForLoop<'a>> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        // Find the matching `in` at pattern depth 0.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut found_in = None;
        while j < toks.len() && j < i + 64 {
            match toks[j].kind {
                Kind::Punct(b'(') | Kind::Punct(b'[') => depth += 1,
                Kind::Punct(b')') | Kind::Punct(b']') => depth -= 1,
                Kind::Punct(b'{') | Kind::Punct(b';') => break,
                Kind::Ident if depth == 0 && toks[j].text == "in" => {
                    found_in = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_idx) = found_in else { continue };
        // Expression tokens up to the loop body `{`.
        let mut k = in_idx + 1;
        let mut expr: Vec<&Tok<'_>> = Vec::new();
        while k < toks.len() && !toks[k].is_punct(b'{') {
            expr.push(&toks[k]);
            k += 1;
            if expr.len() > 16 {
                break;
            }
        }
        // Accept `&`/`mut` prefixes and an ident path `a . b . c`; any
        // call parentheses or other operators disqualify (those surface
        // through method_calls).
        let mut base: Option<&str> = None;
        let mut ok = !expr.is_empty() && expr.len() <= 16;
        let mut expect_ident = true;
        for t in &expr {
            match t.kind {
                Kind::Punct(b'&') if base.is_none() => {}
                Kind::Ident if t.text == "mut" && base.is_none() => {}
                Kind::Ident if expect_ident => {
                    base = Some(t.text);
                    expect_ident = false;
                }
                Kind::Punct(b'.') if !expect_ident => expect_ident = true,
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && !expect_ident {
            if let Some(base) = base {
                out.push(ForLoop {
                    base,
                    off: toks[i].off,
                });
            }
        }
    }
    out
}

/// Token index of the start of the statement containing token `i`: one
/// past the previous `;`, `{` or `}` (clamped to the slice).
pub fn stmt_start(toks: &[Tok<'_>], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        match toks[j - 1].kind {
            Kind::Punct(b';') | Kind::Punct(b'{') | Kind::Punct(b'}') => return j,
            _ => j -= 1,
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> (Scrubbed, Vec<String>) {
        let s = Scrubbed::new(src);
        let t = tokenize(&s);
        let texts = t.iter().map(|t| t.text.to_string()).collect();
        (s, texts)
    }

    #[test]
    fn tokenizer_basics() {
        let (_, t) = toks("let x = a.iter().sum::<f64>(); // done\n");
        assert_eq!(
            t,
            ["let", "x", "=", "a", ".", "iter", "(", ")", ".", "sum", ":", ":", "<", "f64", ">",
             "(", ")", ";"]
        );
    }

    #[test]
    fn numbers_classify_floats() {
        let s = Scrubbed::new("a(1, 2.5, 1e-9, 0.5f32, 7u64, 3f64, 1.max(2))");
        let t = tokenize(&s);
        let floats: Vec<(&str, bool)> = t
            .iter()
            .filter_map(|t| match t.kind {
                Kind::Num { float } => Some((t.text, float)),
                _ => None,
            })
            .collect();
        assert_eq!(
            floats,
            [("1", false), ("2.5", true), ("1e-9", true), ("0.5f32", true), ("7u64", false),
             ("3f64", true), ("1", false), ("2", false)]
        );
    }

    #[test]
    fn method_calls_carry_receivers() {
        let s = Scrubbed::new("self.by_lbn.iter(); foo().keys(); m.get(&k); v.sum::<f64>();");
        let t = tokenize(&s);
        let calls = method_calls(&t);
        let summary: Vec<(Option<&str>, &str)> =
            calls.iter().map(|c| (c.receiver, c.name)).collect();
        assert_eq!(
            summary,
            [(Some("by_lbn"), "iter"), (None, "keys"), (Some("m"), "get"), (Some("v"), "sum")]
        );
    }

    #[test]
    fn hash_bindings_are_harvested() {
        let src = "struct S { map: HashMap<u64, f64>, v: Vec<u8> }\n\
                   fn f() { let mut seen = std::collections::HashSet::new(); \
                   let t: BTreeMap<u8, u8> = BTreeMap::new(); }\n";
        let s = Scrubbed::new(src);
        let names = hash_bound_names(&tokenize(&s));
        assert_eq!(names, ["map", "seen"]);
    }

    #[test]
    fn use_decls_are_recognized() {
        let src = "use std::collections::{HashMap, HashSet};\nfn f(m: HashMap<u8, u8>) {}\n";
        let s = Scrubbed::new(src);
        let t = tokenize(&s);
        let hash_positions: Vec<usize> = t
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("HashMap") || t.is_ident("HashSet"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hash_positions.len(), 3);
        assert!(in_use_decl(&t, hash_positions[0]));
        assert!(in_use_decl(&t, hash_positions[1]));
        assert!(!in_use_decl(&t, hash_positions[2]));
    }

    #[test]
    fn for_loops_extract_simple_paths() {
        let src = "for (k, v) in &self.index { } for x in items.iter() { } for y in list { }\n";
        let s = Scrubbed::new(src);
        let toks = tokenize(&s);
        let loops = for_loops(&toks);
        let bases: Vec<&str> = loops.iter().map(|l| l.base).collect();
        assert_eq!(bases, ["index", "list"]);
    }

    #[test]
    fn stmt_start_stops_at_separators() {
        let s = Scrubbed::new("let a = 1; let b: f64 = x.iter().sum();");
        let t = tokenize(&s);
        let sum_idx = t.iter().position(|t| t.is_ident("sum")).unwrap();
        let start = stmt_start(&t, sum_idx);
        assert!(t[start].is_ident("let"));
        assert_eq!(t[start + 1].text, "b");
    }
}
