//! The determinism rule family.
//!
//! The workspace's load-bearing guarantee is *replayability*: byte-
//! identical results — including every `f64` sum — at any thread count,
//! on any host. These rules statically fence the four ways source code
//! can leak nondeterminism into that contract:
//!
//! * [`unordered_collection`] / [`unordered_iter`] — `HashMap`/`HashSet`
//!   declarations and iteration. Hash iteration order varies per process
//!   (`RandomState`) and so must never reach serve order, metrics or
//!   serialized output. Keyed lookups are legal; a declaration passes
//!   via a justified allowlist entry arguing keyed-only access, or by
//!   conversion to `BTreeMap`/`BTreeSet`.
//! * [`float_sum`] — floating-point `sum`/`product`/`fold` reductions.
//!   IEEE addition is not associative, so a float reduction is only
//!   deterministic when its iteration order is pinned. The blessed
//!   homes (`telemetry`'s submission-order `merge_ordered` and the
//!   histogram module) are exempted by the driver; everything else
//!   needs a justification naming the order its iterator guarantees.
//!   `fold`s over `f64::max`/`f64::min` are exempt — those operators
//!   are commutative and associative, so order cannot matter.
//! * [`wall_clock`] — `Instant::now`/`SystemTime` reads. Wall-clock
//!   values are nondeterministic by definition; only `telemetry`'s span
//!   module (exempted by the driver) may observe them, and only into
//!   span fields that the determinism contract explicitly excludes.
//! * [`entropy`] — nondeterministic randomness (`thread_rng`,
//!   `from_entropy`, `OsRng`, `rand::random`). All simulation
//!   randomness must flow from seeded `StdRng`-style constructors so
//!   runs replay exactly.
//!
//! Rules operate on the token stream of [`super::ast`] — receiver names,
//! binding sites and statement windows — rather than raw substrings, and
//! skip `#[cfg(test)]` spans entirely.

use super::ast::{self, Kind, MethodCall, Tok};
use super::lexer::Scrubbed;
use super::rules::Finding;

/// Method names whose call iterates a collection.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

fn finding(rule: &'static str, s: &Scrubbed, off: usize) -> Finding {
    let line = s.line_of(off);
    Finding {
        rule,
        line,
        excerpt: s.line_text(line).trim().to_string(),
    }
}

/// `det-unordered-collection`: every `HashMap`/`HashSet` occurrence in
/// non-test code outside `use` declarations, one finding per line.
/// Convert to a `BTreeMap`/`BTreeSet`, or justify keyed-only access.
pub fn unordered_collection(s: &Scrubbed, toks: &[Tok<'_>]) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        if s.in_test_code(t.off) || ast::in_use_decl(toks, i) {
            continue;
        }
        let f = finding("det-unordered-collection", s, t.off);
        if out.last().is_none_or(|last| last.line != f.line) {
            out.push(f);
        }
    }
    out
}

/// `det-unordered-iter`: iteration (method or `for` loop) over a name
/// this file binds to a `HashMap`/`HashSet`.
pub fn unordered_iter(s: &Scrubbed, toks: &[Tok<'_>]) -> Vec<Finding> {
    let names = ast::hash_bound_names(toks);
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for call in ast::method_calls(toks) {
        if !ITER_METHODS.contains(&call.name) {
            continue;
        }
        let Some(recv) = call.receiver else { continue };
        if names.iter().any(|n| n == recv) && !s.in_test_code(call.off) {
            out.push(finding("det-unordered-iter", s, call.off));
        }
    }
    for l in ast::for_loops(toks) {
        if names.iter().any(|n| n == l.base) && !s.in_test_code(l.off) {
            out.push(finding("det-unordered-iter", s, l.off));
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

/// Tokens of the argument list starting at the `(` token `open`,
/// truncated at the matching close paren (bounded walk).
fn arg_tokens<'a>(toks: &'a [Tok<'a>], open: usize) -> &'a [Tok<'a>] {
    let mut depth = 0i32;
    for (n, t) in toks[open..].iter().enumerate().take(256) {
        match t.kind {
            Kind::Punct(b'(') => depth += 1,
            Kind::Punct(b')') => {
                depth -= 1;
                if depth == 0 {
                    return &toks[open + 1..open + n];
                }
            }
            _ => {}
        }
    }
    &toks[open + 1..(open + 256).min(toks.len())]
}

/// Whether a token window mentions floating point: an `f64`/`f32`
/// identifier, a float literal, or a `_ms`-suffixed timing identifier.
fn window_is_floaty(window: &[Tok<'_>]) -> bool {
    window.iter().any(|t| match t.kind {
        Kind::Num { float } => float,
        Kind::Ident => {
            t.text == "f64" || t.text == "f32" || t.text.ends_with("_ms")
        }
        _ => false,
    })
}

/// Whether the fold arguments reduce through `f64::max`/`f64::min`
/// (commutative and associative — order-independent by construction).
fn fold_is_minmax(args: &[Tok<'_>]) -> bool {
    args.windows(4).any(|w| {
        w[0].is_ident("f64")
            && w[1].is_punct(b':')
            && w[2].is_punct(b':')
            && (w[3].is_ident("max") || w[3].is_ident("min"))
    })
}

/// The turbofish tokens between a method name and its argument list.
fn turbofish<'a>(toks: &'a [Tok<'a>], call: &MethodCall<'a>) -> &'a [Tok<'a>] {
    &toks[call.name_idx + 1..call.args_open]
}

/// Start of the float-context window for a reduction at token `i`: one
/// past the previous `;` or `}`. Unlike [`ast::stmt_start`] this walks
/// through `{`, so a reduction that is a function's whole body still
/// sees the signature's types (`fn total(&self) -> f64 { …sum() }`).
fn window_start(toks: &[Tok<'_>], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        match toks[j - 1].kind {
            Kind::Punct(b';') | Kind::Punct(b'}') => return j,
            _ => j -= 1,
        }
    }
    0
}

/// The primitive integer type names, for ascription checks.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Whether the statement window carries an explicit integer type
/// ascription (`let n: u64 = …`) — authoritative evidence that the
/// reduction is integral even when the enclosing function's signature
/// mentions floats.
fn has_int_ascription(window: &[Tok<'_>]) -> bool {
    window.windows(3).any(|w| {
        w[0].is_punct(b':')
            && w[1].kind == Kind::Ident
            && INT_TYPES.contains(&w[1].text)
            && w[2].is_punct(b'=')
    })
}

/// Float-context decision for a reduction call: the turbofish/argument
/// window first, then the statement (which can overrule with an integer
/// ascription), then the wider window reaching the enclosing signature.
fn reduction_is_floaty(toks: &[Tok<'_>], call: &MethodCall<'_>, near: &[Tok<'_>]) -> bool {
    let stmt = &toks[ast::stmt_start(toks, call.name_idx)..call.name_idx];
    if window_is_floaty(near) || window_is_floaty(stmt) {
        return true;
    }
    if has_int_ascription(stmt) {
        return false;
    }
    window_is_floaty(&toks[window_start(toks, call.name_idx)..call.name_idx])
}

/// `det-float-sum`: floating-point `sum`/`product`/`fold` reductions.
pub fn float_sum(s: &Scrubbed, toks: &[Tok<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    for call in ast::method_calls(toks) {
        if s.in_test_code(call.off) {
            continue;
        }
        let floaty = match call.name {
            "sum" | "product" => {
                let fish = turbofish(toks, &call);
                let int_fish = fish.iter().any(|t| {
                    t.kind == Kind::Ident
                        && (t.text.starts_with('u') || t.text.starts_with('i'))
                        && t.text != "if"
                });
                !int_fish && reduction_is_floaty(toks, &call, fish)
            }
            "fold" => {
                let args = arg_tokens(toks, call.args_open);
                !fold_is_minmax(args) && reduction_is_floaty(toks, &call, args)
            }
            _ => false,
        };
        if floaty {
            out.push(finding("det-float-sum", s, call.off));
        }
    }
    out
}

/// `det-wall-clock`: `Instant::now`, `SystemTime::now` and `UNIX_EPOCH`
/// reads (as calls or as function references).
pub fn wall_clock(s: &Scrubbed, toks: &[Tok<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if s.in_test_code(t.off) {
            continue;
        }
        let hit = if t.is_ident("Instant") || t.is_ident("SystemTime") {
            ast::pair(toks, i + 1, b':', b':')
                && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        } else {
            t.is_ident("UNIX_EPOCH")
        };
        if hit {
            out.push(finding("det-wall-clock", s, t.off));
        }
    }
    out
}

/// `det-entropy`: nondeterministic randomness sources.
pub fn entropy(s: &Scrubbed, toks: &[Tok<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident || s.in_test_code(t.off) {
            continue;
        }
        let hit = match t.text {
            "thread_rng" | "ThreadRng" | "from_entropy" | "OsRng" => true,
            "random" => {
                // `rand::random` — a path through the rand crate.
                i >= 3
                    && toks[i - 3].is_ident("rand")
                    && ast::pair(toks, i - 2, b':', b':')
            }
            _ => false,
        };
        if hit {
            out.push(finding("det-entropy", s, t.off));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: fn(&Scrubbed, &[Tok<'_>]) -> Vec<Finding>, src: &str) -> Vec<usize> {
        let s = Scrubbed::new(src);
        let toks = ast::tokenize(&s);
        rule(&s, &toks).iter().map(|f| f.line).collect()
    }

    #[test]
    fn collection_decls_flagged_outside_use_and_tests() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u64, u32> }\n\
                   #[cfg(test)]\nmod t { fn f() { let h = std::collections::HashMap::<u8, u8>::new(); } }\n";
        assert_eq!(run(unordered_collection, src), [1]);
    }

    #[test]
    fn iteration_over_bound_hash_names_flagged() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   impl S {\n\
                   fn bad(&self) -> Vec<u64> { self.m.keys().copied().collect() }\n\
                   fn good(&self, k: u64) -> Option<&u32> { self.m.get(&k) }\n\
                   fn loops(&self) { for (k, v) in &self.m { drop((k, v)); } }\n\
                   }\n";
        assert_eq!(run(unordered_iter, src), [2, 4]);
    }

    #[test]
    fn vec_iteration_is_not_flagged() {
        let src = "struct S { v: Vec<u64> }\n\
                   impl S { fn ok(&self) -> u64 { self.v.iter().sum() } }\n";
        assert!(run(unordered_iter, src).is_empty());
    }

    #[test]
    fn float_sums_flagged_int_sums_not() {
        let src = "fn a(xs: &[f64]) -> f64 { xs.iter().sum() }\n\
                   fn b(xs: &[u64]) -> u64 { xs.iter().sum() }\n\
                   fn c(xs: &[f64]) -> f64 { xs.iter().copied().fold(0.0, |a, b| a + b) }\n\
                   fn d(xs: &[f64]) -> f64 { xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) }\n\
                   fn e(ts: &[T]) -> f64 { ts.iter().map(|t| t.total_ms()).sum() }\n\
                   fn g(xs: &[u32]) -> u64 { xs.iter().map(|&c| c as u64).sum::<u64>() }\n";
        assert_eq!(run(float_sum, src), [0, 2, 4]);
    }

    #[test]
    fn int_ascription_overrules_a_floaty_signature() {
        // The signature mentions f64, but the binding is ascribed u64 —
        // an integral product, not a float reduction.
        let src = "fn score(k: &[u64], r: f64) -> Option<(u64, f64)> {\n\
                   let prod: u64 = k.iter().product();\n\
                   let v: f64 = r * prod as f64;\n\
                   let s: f64 = k.iter().map(|&x| x as f64).sum();\n\
                   Some((prod, v + s)) }\n";
        assert_eq!(run(float_sum, src), [3]);
    }

    #[test]
    fn wall_clock_reads_flagged() {
        let src = "use std::time::Instant;\n\
                   fn t() -> Instant { Instant::now() }\n\
                   fn r(timed: bool) -> Option<Instant> { timed.then(Instant::now) }\n";
        assert_eq!(run(wall_clock, src), [1, 2]);
    }

    #[test]
    fn entropy_sources_flagged_seeded_rng_not() {
        let src = "fn a() -> u64 { rand::random() }\n\
                   fn b() { let mut r = rand::thread_rng(); drop(r); }\n\
                   fn c() { let r = StdRng::seed_from_u64(7); drop(r); }\n";
        assert_eq!(run(entropy, src), [0, 1]);
    }
}
