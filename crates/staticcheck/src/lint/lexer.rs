//! A small Rust source scanner for the lint pass.
//!
//! Not a full parser: the lint rules are textual patterns that only make
//! sense *outside* of comments, string literals and `#[cfg(test)]` code,
//! so this module produces a *scrubbed* copy of the source — identical
//! byte offsets, with comment and string interiors blanked — plus the
//! extracted line comments (for allowlist directives) and the byte spans
//! of test-only items.

/// A scrubbed source file.
pub struct Scrubbed {
    /// The source with comment and string interiors replaced by spaces.
    /// Byte length and line structure match the original exactly.
    pub text: String,
    /// Line comments, as `(0-based line, full comment text)`.
    pub comments: Vec<(usize, String)>,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items, merged.
    test_spans: Vec<(usize, usize)>,
}

impl Scrubbed {
    /// Scan `src` and build the scrubbed view.
    pub fn new(src: &str) -> Self {
        let (text, comments) = scrub(src);
        let line_starts = std::iter::once(0)
            .chain(
                text.bytes()
                    .enumerate()
                    .filter(|&(_, b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let test_spans = find_test_spans(&text);
        Scrubbed {
            text,
            comments,
            line_starts,
            test_spans,
        }
    }

    /// 0-based line containing the byte at `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts
            .partition_point(|&s| s <= offset)
            .saturating_sub(1)
    }

    /// The scrubbed text of the given 0-based line (no newline).
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line];
        let end = self
            .line_starts
            .get(line + 1)
            .map(|&e| e - 1)
            .unwrap_or(self.text.len());
        &self.text[start..end]
    }

    /// Whether the byte at `offset` lies inside test-only code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        let i = self.test_spans.partition_point(|&(_, end)| end <= offset);
        self.test_spans
            .get(i)
            .is_some_and(|&(start, _)| start <= offset)
    }
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Blank comments and string/char-literal interiors, preserving length
/// and newlines; collect line comments.
fn scrub(src: &str) -> (String, Vec<(usize, String)>) {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut comments = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            out.push(c);
            i += 1;
        } else if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            comments.push((line, src[start..i].to_string()));
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            out.extend_from_slice(b"  ");
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b[i] == b'\n' {
                        line += 1;
                        b'\n'
                    } else {
                        b' '
                    });
                    i += 1;
                }
            }
        } else if (c == b'r' || c == b'b') && !prev_is_ident(b, i) && raw_string_at(b, i).is_some()
        {
            let (quote, hashes) = raw_string_at(b, i).unwrap_or((i, 0));
            // Copy the prefix (r/br + hashes + quote) verbatim.
            out.extend_from_slice(&b[i..=quote]);
            i = quote + 1;
            loop {
                if i >= b.len() {
                    break;
                }
                if b[i] == b'"' && b[i + 1..].len() >= hashes
                    && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
                {
                    out.extend_from_slice(&b[i..i + 1 + hashes]);
                    i += 1 + hashes;
                    break;
                }
                out.push(if b[i] == b'\n' {
                    line += 1;
                    b'\n'
                } else {
                    b' '
                });
                i += 1;
            }
        } else if c == b'b' && b.get(i + 1) == Some(&b'"') && !prev_is_ident(b, i) {
            out.push(b'b');
            i += 1; // Fall through to the string case on the next loop.
        } else if c == b'"' {
            out.push(b'"');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'"' {
                    out.push(b'"');
                    i += 1;
                    break;
                } else {
                    out.push(if b[i] == b'\n' {
                        line += 1;
                        b'\n'
                    } else {
                        b' '
                    });
                    i += 1;
                }
            }
        } else if c == b'\'' {
            let next = b.get(i + 1).copied().unwrap_or(0);
            let is_lifetime = (next.is_ascii_alphabetic() || next == b'_')
                && b.get(i + 2) != Some(&b'\'');
            if is_lifetime {
                out.push(c);
                i += 1;
            } else {
                out.push(b'\'');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'\'' {
                        out.push(b'\'');
                        i += 1;
                        break;
                    } else if b[i] == b'\n' {
                        break; // Malformed literal; bail out of it.
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    let text = String::from_utf8(out).unwrap_or_default();
    (text, comments)
}

/// If a raw (byte) string starts at `i`, return the byte offset of its
/// opening quote and its hash count.
fn raw_string_at(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some((j, hashes))
    } else {
        None
    }
}

/// Byte ranges of `#[cfg(test)]` / `#[test]` items, found by brace
/// matching on the scrubbed text.
fn find_test_spans(text: &str) -> Vec<(usize, usize)> {
    let b = text.as_bytes();
    let mut spans = Vec::new();
    for pat in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(pos) = text[from..].find(pat) {
            let attr_start = from + pos;
            let mut i = attr_start + pat.len();
            // Skip whitespace and any further attributes on the item.
            loop {
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                if b.get(i) == Some(&b'#') {
                    let mut depth = 0i32;
                    while i < b.len() {
                        match b[i] {
                            b'[' => depth += 1,
                            b']' => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                } else {
                    break;
                }
            }
            // The item body: everything to the matching close brace (or
            // the semicolon of a braceless item).
            while i < b.len() && b[i] != b'{' && b[i] != b';' {
                i += 1;
            }
            if b.get(i) == Some(&b'{') {
                let mut depth = 0i32;
                while i < b.len() {
                    match b[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            spans.push((attr_start, i.min(b.len())));
            from = attr_start + pat.len();
        }
    }
    spans.sort_unstable();
    // Merge overlaps (a #[test] fn inside a #[cfg(test)] mod).
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked_but_lines_survive() {
        let src = "let a = \"un.wrap()\"; // trailing .unwrap()\nlet b = 1;\n";
        let s = Scrubbed::new(src);
        assert_eq!(s.text.len(), src.len());
        assert!(!s.text.contains("un.wrap"));
        assert!(!s.text.contains("trailing"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].0, 0);
        assert!(s.comments[0].1.contains("trailing"));
        assert_eq!(s.line_of(src.find("let b").unwrap()), 1);
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let src = "let r = r#\"panic!(\"x\")\"#; let c = '\\n'; let lt: &'static str = \"\";";
        let s = Scrubbed::new(src);
        assert!(!s.text.contains("panic!"));
        assert!(s.text.contains("'static"), "lifetime survives: {}", s.text);
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "a /* x /* y */ z */ b\nc\n";
        let s = Scrubbed::new(src);
        assert!(s.text.starts_with("a "));
        assert!(s.text.contains(" b\nc\n"));
        assert!(!s.text.contains('y'));
    }

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn tail() {}\n";
        let s = Scrubbed::new(src);
        let lib_off = src.find("x.unwrap").unwrap();
        let test_off = src.find("y.unwrap").unwrap();
        let tail_off = src.find("fn tail").unwrap();
        assert!(!s.in_test_code(lib_off));
        assert!(s.in_test_code(test_off));
        assert!(!s.in_test_code(tail_off));
    }

    #[test]
    fn char_literal_quote_does_not_eat_the_file() {
        let src = "let q = '\"'; x.unwrap();\n";
        let s = Scrubbed::new(src);
        assert!(s.text.contains(".unwrap("), "{}", s.text);
    }
}
