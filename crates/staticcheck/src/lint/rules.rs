//! The lint rules.
//!
//! Each rule scans the scrubbed text of one file and yields findings;
//! the driver in [`super`] applies the allowlist and file-class
//! exemptions. Rules are deliberately textual — the workspace vendors no
//! Rust parser — but operate only outside comments, strings and
//! `#[cfg(test)]` code, which removes essentially all false positives
//! these patterns admit.

use super::lexer::Scrubbed;

/// Which pass a rule belongs to: the classic hygiene pass (`lint`) or
/// the determinism family (`determinism`). `all` runs both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// General source hygiene (unwrap, float equality, service paths).
    Classic,
    /// Nondeterminism fences (hash order, float reductions, wall clock,
    /// entropy) — see [`super::determinism`].
    Determinism,
}

/// Every rule the lint pass knows: identifier, family, rationale.
pub const RULES: &[(&str, Family, &str)] = &[
    (
        "no-unwrap",
        Family::Classic,
        "library code must return typed errors, not abort the process",
    ),
    (
        "float-cmp",
        Family::Classic,
        "exact f64 equality in timing code hides representation drift",
    ),
    (
        "no-direct-service",
        Family::Classic,
        "requests must flow through ServiceLog-observed paths",
    ),
    (
        "unsafe-attr",
        Family::Classic,
        "every crate root must carry #![forbid(unsafe_code)] or deny",
    ),
    (
        "det-unordered-collection",
        Family::Determinism,
        "HashMap/HashSet iteration order varies per process; convert to a B-tree or justify keyed-only access",
    ),
    (
        "det-unordered-iter",
        Family::Determinism,
        "iterating a hash collection leaks RandomState order into results",
    ),
    (
        "det-float-sum",
        Family::Determinism,
        "float reductions are order-sensitive; only pinned-order iterators may sum f64",
    ),
    (
        "det-wall-clock",
        Family::Determinism,
        "wall-clock reads are nondeterministic; only telemetry spans may observe time",
    ),
    (
        "det-entropy",
        Family::Determinism,
        "all randomness must flow from seeded constructors so runs replay exactly",
    ),
];

/// One raw finding before allowlisting.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// 0-based line of the finding.
    pub line: usize,
    /// The offending (scrubbed) source line, trimmed.
    pub excerpt: String,
}

fn finding(rule: &'static str, s: &Scrubbed, offset: usize) -> Finding {
    let line = s.line_of(offset);
    Finding {
        rule,
        line,
        excerpt: s.line_text(line).trim().to_string(),
    }
}

/// Occurrences of `pat` in non-test scrubbed code.
fn scan<'a>(s: &'a Scrubbed, pat: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while let Some(pos) = s.text[from..].find(pat) {
            let off = from + pos;
            from = off + pat.len();
            if !s.in_test_code(off) {
                return Some(off);
            }
        }
        None
    })
}

/// `no-unwrap`: no `.unwrap()`, `.expect(...)` or `panic!` in library
/// code. (`.unwrap_or*` and `.expect_err` do not match these patterns.)
pub fn no_unwrap(s: &Scrubbed) -> Vec<Finding> {
    let mut out = Vec::new();
    for pat in [".unwrap()", ".expect(", "panic!"] {
        out.extend(scan(s, pat).map(|off| finding("no-unwrap", s, off)));
    }
    out.sort_by_key(|f| f.line);
    out
}

/// `float-cmp`: no `==`/`!=` where either operand is a float literal or
/// a `_ms`-suffixed timing identifier.
pub fn float_cmp(s: &Scrubbed) -> Vec<Finding> {
    let mut out = Vec::new();
    let b = s.text.as_bytes();
    for pat in ["==", "!="] {
        for off in scan(s, pat) {
            // Not part of `<=`, `>=`, `=>`, `===`-like runs.
            let prev = off.checked_sub(1).map(|i| b[i]);
            let next = b.get(off + 2).copied();
            if matches!(prev, Some(b'<' | b'>' | b'=' | b'!')) || next == Some(b'=') {
                continue;
            }
            if pat == "==" && prev == Some(b'(') {
                continue; // Closure/pattern artifacts such as `(==`.
            }
            let line = s.line_of(off);
            let text = s.line_text(line);
            let col = off - s.text[..off].rfind('\n').map(|p| p + 1).unwrap_or(0);
            let (left, right) = text.split_at(col.min(text.len()));
            let right = &right[pat.len().min(right.len())..];
            if operand_is_floaty(left, true) || operand_is_floaty(right, false) {
                out.push(finding("float-cmp", s, off));
            }
        }
    }
    out.sort_by_key(|f| f.line);
    out.dedup_by(|a, b| a.line == b.line);
    out
}

/// Whether the operand adjacent to the comparison looks like timing math:
/// a float literal (`1.0`, `6e-9`) or an identifier ending in `_ms`.
/// `tail` selects which end of the slice touches the operator.
fn operand_is_floaty(slice: &str, tail: bool) -> bool {
    // Cut at the nearest expression separator so unrelated floats on the
    // same line do not trigger.
    let cut: &[&str] = &["&&", "||", ",", ";", "{", "}"];
    let mut s = slice;
    if tail {
        for c in cut {
            if let Some(p) = s.rfind(c) {
                s = &s[p + c.len()..];
            }
        }
    } else {
        for c in cut {
            if let Some(p) = s.find(c) {
                s = &s[..p];
            }
        }
    }
    has_float_literal(s) || has_ms_ident(s)
}

fn has_float_literal(s: &str) -> bool {
    let b = s.as_bytes();
    for i in 1..b.len().saturating_sub(1) {
        if b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit() {
            return true;
        }
        if (b[i] == b'e' || b[i] == b'E')
            && b[i - 1].is_ascii_digit()
            && (b[i + 1].is_ascii_digit() || b[i + 1] == b'-')
            && !b[..i]
                .iter()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || **c == b'_')
                .any(|c| c.is_ascii_alphabetic())
        {
            return true;
        }
    }
    false
}

fn has_ms_ident(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0usize;
    while let Some(pos) = s[i..].find("_ms") {
        let off = i + pos;
        let end = off + 3;
        let next = b.get(end).copied().unwrap_or(b' ');
        if !(next.is_ascii_alphanumeric() || next == b'_' || next == b'(') {
            return true;
        }
        i = end;
    }
    false
}

/// `no-direct-service`: no `.service(` outside the disk simulator crate
/// (requests must go through the ServiceLog-observed batch paths).
pub fn no_direct_service(s: &Scrubbed) -> Vec<Finding> {
    scan(s, ".service(")
        .map(|off| finding("no-direct-service", s, off))
        .collect()
}

/// `unsafe-attr`: crate roots must carry `#![forbid(unsafe_code)]` (or
/// `deny`).
pub fn unsafe_attr(s: &Scrubbed) -> Vec<Finding> {
    let ok = s.text.contains("#![forbid(unsafe_code)]")
        || s.text.contains("#![deny(unsafe_code)]");
    if ok {
        Vec::new()
    } else {
        vec![Finding {
            rule: "unsafe-attr",
            line: 0,
            excerpt: "crate root lacks #![forbid(unsafe_code)] / #![deny(unsafe_code)]".into(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrub(src: &str) -> Scrubbed {
        Scrubbed::new(src)
    }

    #[test]
    fn unwrap_found_outside_tests_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }\n\
                   #[cfg(test)]\nmod t { fn g() { z.unwrap(); } }\n";
        let f = no_unwrap(&scrub(src));
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.line == 0));
    }

    #[test]
    fn unwrap_or_and_strings_do_not_match() {
        let src = "fn f() { x.unwrap_or(0); let s = \".unwrap()\"; } // .expect(\n";
        assert!(no_unwrap(&scrub(src)).is_empty());
    }

    #[test]
    fn float_eq_flagged_int_eq_not() {
        let src = "fn f() { if a == 1.0 {} if b == 1 {} if t_ms != c {} if d <= 2.0 {} }\n";
        let f = float_cmp(&scrub(src));
        assert_eq!(f.len(), 1, "{f:?}"); // Lines dedup: 1.0 and t_ms share a line.
        let src2 = "fn f() { if a == 1 && b > 1.5 {} }\n";
        assert!(float_cmp(&scrub(src2)).is_empty(), "separator cut failed");
    }

    #[test]
    fn exponent_literals_are_floaty_but_idents_are_not() {
        assert!(has_float_literal("x - 1e-9"));
        assert!(has_float_literal("delta == 0.5"));
        assert!(!has_float_literal("case9 == other"));
        assert!(!has_float_literal("base9e4_name"));
        assert!(has_ms_ident("settle_ms"));
        assert!(!has_ms_ident("settle_msg"));
        assert!(!has_ms_ident("sector_time_ms(zone)"));
    }

    #[test]
    fn direct_service_flagged() {
        let src = "fn f(d: &mut Sim) { d.service(req); }\n";
        assert_eq!(no_direct_service(&scrub(src)).len(), 1);
    }

    #[test]
    fn unsafe_attr_requires_deny_or_forbid() {
        assert_eq!(unsafe_attr(&scrub("#![warn(missing_docs)]\n")).len(), 1);
        assert!(unsafe_attr(&scrub("#![forbid(unsafe_code)]\n")).is_empty());
        assert!(unsafe_attr(&scrub("#![deny(unsafe_code)]\n")).is_empty());
    }
}
