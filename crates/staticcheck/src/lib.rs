//! # staticcheck — static invariant analyzer and source lint
//!
//! Two prongs of offline correctness tooling for the MultiMap workspace:
//!
//! 1. **Layout invariant prover** ([`sweep`], [`bijection`],
//!    [`adjacency`], [`zones`]): for a sweep of (drive profile × dataset
//!    geometry) configurations, statically verify — without running the
//!    simulator — that the four mappings are bijections onto their LBN
//!    ranges, that every non-primary-dimension neighbor step in MultiMap
//!    lands within the adjacency distance `D`, and that zone-transition
//!    cells respect `GET_TRACK_BOUNDARIES` constraints.
//! 2. **Source lint** ([`lint`]): repo-specific rules the stock clippy
//!    set cannot express — no `f64` equality in timing code, no
//!    `unwrap`/`expect`/`panic!` in library code, no `service()` calls
//!    bypassing the `ServiceLog` observed paths, and `deny(unsafe_code)`
//!    in every crate root — with a justification-carrying allowlist.
//!
//! Both prongs reduce to a [`report::Report`] that serializes to JSON and
//! drives the CI exit code. Run them with
//! `cargo run --release -p staticcheck -- verify` and
//! `cargo run -p staticcheck -- lint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod bijection;
pub mod lint;
pub mod report;
pub mod sample;
pub mod sweep;
pub mod zones;

pub use report::{CheckOutcome, Report, Verdict};
