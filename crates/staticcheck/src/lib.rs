//! # staticcheck — static invariant analyzer, source lint and
//! determinism analyzer
//!
//! Three prongs of offline correctness tooling for the MultiMap
//! workspace:
//!
//! 1. **Layout invariant prover** ([`sweep`], [`bijection`],
//!    [`adjacency`], [`zones`]): for a sweep of (drive profile × dataset
//!    geometry) configurations, statically verify — without running the
//!    simulator — that the four mappings are bijections onto their LBN
//!    ranges, that every non-primary-dimension neighbor step in MultiMap
//!    lands within the adjacency distance `D`, and that zone-transition
//!    cells respect `GET_TRACK_BOUNDARIES` constraints.
//! 2. **Source lint** ([`lint`]): repo-specific rules the stock clippy
//!    set cannot express — no `f64` equality in timing code, no
//!    `unwrap`/`expect`/`panic!` in library code, no `service()` calls
//!    bypassing the `ServiceLog` observed paths, and `deny(unsafe_code)`
//!    in every crate root — with a justification-carrying allowlist.
//! 3. **Determinism analyzer** ([`lint::determinism`],
//!    [`selector_bounds`]): a rule family fencing the four ways source
//!    code leaks nondeterminism into the replayability contract (hash
//!    iteration order, float reductions, wall-clock reads, unseeded
//!    entropy), built on the token-level syntax layer in [`lint::ast`],
//!    plus a prover that machine-checks the incremental SPTF selector's
//!    pruning bounds against the reference estimator over the sweep.
//!
//! All prongs reduce to a [`report::Report`] that serializes to JSON and
//! drives the CI exit code. Run them with
//! `cargo run --release -p staticcheck -- verify`,
//! `cargo run -p staticcheck -- lint`, and
//! `cargo run --release -p staticcheck -- determinism`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod bijection;
pub mod lint;
pub mod report;
pub mod sample;
pub mod selector_bounds;
pub mod sweep;
pub mod zones;

pub use report::{CheckOutcome, Report, Verdict};
