//! Zone-boundary invariants (`GET_TRACK_BOUNDARIES` constraints,
//! Sections 4.2/4.4).
//!
//! Basic cubes must never span a zone boundary, `Dim0` runs must stay
//! inside one physical track, and the cube rows of consecutive zones must
//! occupy disjoint track ranges. All three are decidable from the
//! [`CubeLayout`](multimap_core::CubeLayout) and the zone table.

use multimap_core::{Mapping, MultiMapping};
use multimap_disksim::DiskGeometry;

use crate::report::{Report, Verdict};
use crate::sample::sample_coords;

/// Cells sampled for the track-boundary spot check.
const BOUNDARY_SAMPLES: usize = 1_024;

/// Run every zone invariant for `m`, recording outcomes under `config`.
pub fn check(m: &MultiMapping, report: &mut Report, config: &str) {
    let geom = m.geometry();
    report.push(
        "zone-cube-containment",
        geom.name.clone(),
        config,
        cube_containment(m, geom),
    );
    report.push(
        "zone-transition-disjoint",
        geom.name.clone(),
        config,
        transitions_disjoint(m, geom),
    );
    report.push(
        "zone-track-boundaries",
        "MultiMap",
        config,
        track_boundaries(m, geom),
    );
}

/// Every cube slot's track range `[base_track, base_track + tracks_per_cube)`
/// and sector window `[base_sector, base_sector + K0)` lie inside the
/// owning zone. Placement is affine in (row, pos), so checking the four
/// extreme slots of each zone covers all of them.
fn cube_containment(m: &MultiMapping, geom: &DiskGeometry) -> Verdict {
    let layout = m.layout();
    let k0 = m.shape().k[0];
    let tpc = layout.tracks_per_cube();
    let mut details = Vec::new();
    for za in layout.zones() {
        let zone = &geom.zones()[za.zone_index];
        let zone_track_end = zone.first_track + zone.tracks(geom.surfaces);
        // The last zone may be only partially used: probe allocated slots.
        let last_used = (za.first_slot + za.capacity - 1).min(layout.total_slots() - 1);
        let extremes = [
            za.first_slot,
            (za.first_slot + za.cubes_per_row - 1).min(last_used),
            (za.first_slot + za.capacity - za.cubes_per_row).min(last_used),
            last_used,
        ];
        for slot in extremes {
            let p = layout.place(geom, slot);
            if p.zone_index != za.zone_index {
                details.push(format!(
                    "slot {slot}: placed in zone {} but allocated to {}",
                    p.zone_index, za.zone_index
                ));
                continue;
            }
            if p.base_track < zone.first_track || p.base_track + tpc > zone_track_end {
                details.push(format!(
                    "slot {slot}: tracks [{}, {}) leave zone {} [{}, {})",
                    p.base_track,
                    p.base_track + tpc,
                    za.zone_index,
                    zone.first_track,
                    zone_track_end
                ));
            }
            if p.base_sector as u64 + k0 > zone.sectors_per_track as u64 {
                details.push(format!(
                    "slot {slot}: sectors [{}, {}) overflow T={}",
                    p.base_sector,
                    p.base_sector as u64 + k0,
                    zone.sectors_per_track
                ));
            }
        }
    }
    verdict("affine-extremes", details)
}

/// Consecutive zone allocations occupy strictly increasing, disjoint
/// track ranges: the last cube of one zone ends before the first cube of
/// the next begins, so no cube straddles a zone transition.
fn transitions_disjoint(m: &MultiMapping, geom: &DiskGeometry) -> Verdict {
    let layout = m.layout();
    let tpc = layout.tracks_per_cube();
    let mut details = Vec::new();
    let mut prev_end: Option<(usize, u64)> = None;
    for za in layout.zones() {
        let last_used = (za.first_slot + za.capacity - 1).min(layout.total_slots() - 1);
        let first = layout.place(geom, za.first_slot);
        let last = layout.place(geom, last_used);
        if let Some((prev_zone, end_track)) = prev_end {
            if first.base_track < end_track {
                details.push(format!(
                    "zone {} starts at track {} inside zone {}'s range ending {}",
                    za.zone_index, first.base_track, prev_zone, end_track
                ));
            }
        }
        prev_end = Some((za.zone_index, last.base_track + tpc));
    }
    verdict("ordered-ranges", details)
}

/// `GET_TRACK_BOUNDARIES` consistency: for sampled cells, the whole
/// `Dim0` run of the cell's cube row stays within the track boundaries
/// of its first cell, and those boundaries lie inside the owning zone.
fn track_boundaries(m: &MultiMapping, geom: &DiskGeometry) -> Verdict {
    let grid = m.grid();
    let k0 = m.shape().k[0];
    let mut details = Vec::new();
    for mut c in sample_coords(grid, BOUNDARY_SAMPLES) {
        if details.len() >= 8 {
            break;
        }
        c[0] -= c[0] % k0; // Rewind to the start of the cube's Dim0 run.
        let base = match m.lbn_of(&c) {
            Ok(l) => l,
            Err(e) => {
                details.push(format!("cell {c:?} failed to map: {e}"));
                continue;
            }
        };
        let (first, last) = match geom.track_boundaries(base) {
            Ok(b) => b,
            Err(e) => {
                details.push(format!("cell {c:?}: no track boundaries: {e}"));
                continue;
            }
        };
        let zone = match geom.zone_of_lbn(base) {
            Ok(z) => z,
            Err(e) => {
                details.push(format!("cell {c:?}: no zone: {e}"));
                continue;
            }
        };
        if first < zone.first_lbn || last >= zone.end_lbn() {
            details.push(format!(
                "cell {c:?}: track [{first}, {last}] leaves zone {} [{}, {})",
                zone.index,
                zone.first_lbn,
                zone.end_lbn()
            ));
        }
        let run_end = (c[0] + k0).min(grid.extent(0));
        for x0 in c[0] + 1..run_end {
            let mut cc = c.clone();
            cc[0] = x0;
            match m.lbn_of(&cc) {
                Ok(l) if (first..=last).contains(&l) => {}
                Ok(l) => {
                    details.push(format!(
                        "cell {cc:?}: LBN {l} left track [{first}, {last}] of its Dim0 run"
                    ));
                    break;
                }
                Err(e) => {
                    details.push(format!("cell {cc:?} failed to map: {e}"));
                    break;
                }
            }
        }
    }
    verdict("sampled", details)
}

fn verdict(method: &str, details: Vec<String>) -> Verdict {
    if details.is_empty() {
        Verdict::Proved {
            method: method.into(),
        }
    } else {
        Verdict::Violated { details }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::GridSpec;
    use multimap_disksim::profiles;

    #[test]
    fn toy_and_small_layouts_respect_zone_invariants() {
        for (geom, grid) in [
            (profiles::toy(), GridSpec::new([5u64, 3, 3])),
            (profiles::small(), GridSpec::new([60u64, 8, 6])),
        ] {
            let m = MultiMapping::new(&geom, grid).unwrap();
            let mut r = Report::new();
            check(&m, &mut r, "test");
            assert!(r.is_clean(), "{}: {}", geom.name, r.render_text());
            assert_eq!(r.outcomes.len(), 3);
        }
    }

    #[test]
    fn multi_zone_layout_keeps_transitions_disjoint() {
        // A shape with K0 = 4 fits both toy zones; 14 cubes of 9 tracks
        // overflow zone 0 (capacity 13), forcing a zone transition.
        let geom = profiles::toy();
        let m = MultiMapping::with_options(
            &geom,
            GridSpec::new([4u64, 3, 42]),
            multimap_core::MultiMapOptions {
                first_zone: 0,
                shape_override: Some(vec![4, 3, 3]),
                zone_limit: None,
            },
        )
        .unwrap();
        assert_eq!(m.layout().zones().len(), 2, "transition not exercised");
        let mut r = Report::new();
        check(&m, &mut r, "toy two-zone");
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn evaluation_disks_pass_zone_invariants() {
        for geom in profiles::evaluation_disks() {
            let m = MultiMapping::new(&geom, GridSpec::new([259u64, 259, 259])).unwrap();
            let mut r = Report::new();
            check(&m, &mut r, "chunk 259^3");
            assert!(r.is_clean(), "{}: {}", geom.name, r.render_text());
        }
    }
}
