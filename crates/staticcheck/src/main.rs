//! `staticcheck` CLI: run the invariant prover, the source lint and/or
//! the determinism analyzer.
//!
//! ```text
//! staticcheck verify      [--quick] [--json PATH]        layout invariant sweep
//! staticcheck lint        [--json PATH] [ROOT]           classic source lint
//! staticcheck determinism [--quick] [--json PATH] [ROOT] det lints + selector bounds
//! staticcheck all         [--quick] [--json PATH] [ROOT] every prong
//! ```
//!
//! Exit code 0 when every check passes (or is skipped), 1 on any
//! violation, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use staticcheck::lint::{self, RuleSelection};
use staticcheck::report::Report;
use staticcheck::selector_bounds;
use staticcheck::sweep;

struct Args {
    command: String,
    quick: bool,
    json: Option<PathBuf>,
    root: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!("usage: staticcheck <verify|lint|determinism|all> [--quick] [--json PATH] [ROOT]");
    ExitCode::from(2)
}

fn parse_args() -> Option<Args> {
    let mut args = std::env::args().skip(1);
    let command = args.next()?;
    let mut parsed = Args {
        command,
        quick: false,
        json: None,
        root: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => parsed.quick = true,
            "--json" => parsed.json = Some(PathBuf::from(args.next()?)),
            _ if a.starts_with("--") => return None,
            _ => parsed.root = Some(PathBuf::from(a)),
        }
    }
    Some(parsed)
}

fn run_verify(quick: bool) -> Report {
    let configs = if quick {
        sweep::quick_sweep()
    } else {
        sweep::default_sweep()
    };
    eprintln!("staticcheck: proving layout invariants over {} configurations…", configs.len());
    sweep::run_sweep(&configs)
}

fn run_lint(root: &std::path::Path, sel: RuleSelection) -> std::io::Result<Report> {
    let outcome = lint::lint_workspace_selected(root, sel)?;
    let allowed: usize = outcome.allowed.values().sum();
    eprintln!(
        "staticcheck: linted {} files ({allowed} findings allowlisted)",
        outcome.files
    );
    Ok(outcome.report)
}

fn run_selector_bounds(quick: bool) -> Report {
    let configs = if quick {
        selector_bounds::quick_configs()
    } else {
        selector_bounds::default_configs()
    };
    eprintln!(
        "staticcheck: proving selector bounds over {} configurations…",
        configs.len()
    );
    selector_bounds::run(&configs)
}

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(r) = explicit {
        return r;
    }
    // The manifest dir is crates/staticcheck; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let mut report = Report::new();
    match args.command.as_str() {
        "verify" => report.merge(run_verify(args.quick)),
        "lint" => match run_lint(&workspace_root(args.root.clone()), RuleSelection::Classic) {
            Ok(r) => report.merge(r),
            Err(e) => {
                eprintln!("staticcheck: lint failed: {e}");
                return ExitCode::from(2);
            }
        },
        "determinism" => {
            match run_lint(
                &workspace_root(args.root.clone()),
                RuleSelection::Determinism,
            ) {
                Ok(r) => report.merge(r),
                Err(e) => {
                    eprintln!("staticcheck: lint failed: {e}");
                    return ExitCode::from(2);
                }
            }
            report.merge(run_selector_bounds(args.quick));
        }
        "all" => {
            report.merge(run_verify(args.quick));
            match run_lint(&workspace_root(args.root.clone()), RuleSelection::All) {
                Ok(r) => report.merge(r),
                Err(e) => {
                    eprintln!("staticcheck: lint failed: {e}");
                    return ExitCode::from(2);
                }
            }
            report.merge(run_selector_bounds(args.quick));
        }
        _ => return usage(),
    }
    print!("{}", report.render_text());
    if let Some(path) = &args.json {
        let doc = report.to_json().to_pretty();
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("staticcheck: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("staticcheck: wrote {}", path.display());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        let (_, violated, _) = report.tallies();
        eprintln!("staticcheck: {violated} violation(s)");
        ExitCode::FAILURE
    }
}
