//! Bijection proofs: every mapping is a bijection between grid cells and
//! its LBN image.
//!
//! Two proof regimes:
//!
//! * **Exhaustive** (small grids): enumerate every cell, demand distinct
//!   LBNs, an exact inverse via `coord_of`, and — for the linearised
//!   mappings — dense coverage of `[base, base + cells·cell_blocks)`.
//! * **Structural** (large grids): a stride/symmetry argument per mapping
//!   family whose side conditions are checked numerically, backed by a
//!   deterministic sample of cells to pin the implementation to the
//!   structure the argument reasoned about.

use std::collections::HashSet;

use multimap_core::{CurveMapping, Mapping, MultiMapping, NaiveMapping};
use multimap_sfc::SpaceFillingCurve;

use crate::report::Verdict;
use crate::sample::sample_coords;

/// Cell-count ceiling for the exhaustive regime.
pub const EXHAUSTIVE_CELL_LIMIT: u64 = 150_000;

/// Cells sampled per structural spot check.
const STRUCTURAL_SAMPLES: usize = 4_096;

/// Exhaustively verify that `m` maps its grid injectively, invertibly
/// and — when `dense` — onto a gap-free LBN range.
pub fn check_exhaustive(m: &dyn Mapping, dense: bool) -> Verdict {
    let grid = m.grid();
    let cells = grid.cells();
    // staticcheck: allow(det-unordered-collection) — membership-only duplicate detector: insert/contains by exact LBN, never iterated; verdict text orders findings by cell walk, not by set order.
    let mut seen = HashSet::with_capacity(cells as usize);
    let mut details = Vec::new();
    let mut min_lbn = u64::MAX;
    let mut max_lbn = 0u64;
    grid.for_each_cell(|c| {
        if details.len() >= 8 {
            return;
        }
        let lbn = match m.lbn_of(c) {
            Ok(l) => l,
            Err(e) => {
                details.push(format!("cell {c:?} failed to map: {e}"));
                return;
            }
        };
        min_lbn = min_lbn.min(lbn);
        max_lbn = max_lbn.max(lbn);
        if !seen.insert(lbn) {
            details.push(format!("LBN {lbn} mapped twice (second cell {c:?})"));
        }
        match m.coord_of(lbn) {
            Some(back) if back == c => {}
            Some(back) => details.push(format!(
                "inverse mismatch: cell {c:?} -> LBN {lbn} -> {back:?}"
            )),
            None => details.push(format!("LBN {lbn} of cell {c:?} has no inverse")),
        }
    });
    if details.is_empty() && seen.len() as u64 != cells {
        details.push(format!("{} distinct LBNs for {cells} cells", seen.len()));
    }
    if details.is_empty() && dense {
        let span = max_lbn - min_lbn + m.cell_blocks();
        if span != cells * m.cell_blocks() {
            details.push(format!(
                "image spans {span} blocks but {cells} cells occupy {}",
                cells * m.cell_blocks()
            ));
        }
    }
    if details.is_empty() {
        Verdict::Proved {
            method: "exhaustive".into(),
        }
    } else {
        Verdict::Violated { details }
    }
}

/// Structural proof for [`NaiveMapping`]: `lbn = base + linear(c)·b` where
/// `linear` is the mixed-radix index of the grid. Mixed-radix indexing is
/// injective and onto `[0, cells)` whenever the per-dimension strides are
/// the exact products of the lower extents, so the side condition is just
/// that stride identity — verified numerically — plus sampled roundtrips.
pub fn check_naive_structural(m: &NaiveMapping) -> Verdict {
    let grid = m.grid();
    let mut details = Vec::new();
    let mut stride = m.cell_blocks();
    for d in 0..grid.ndims() {
        if m.stride(d) != stride {
            details.push(format!(
                "stride({d}) = {} but mixed radix requires {stride}",
                m.stride(d)
            ));
        }
        stride *= grid.extent(d);
    }
    // stride is now cells*cell_blocks: the exact span of a dense image.
    if m.blocks_spanned() != stride {
        details.push(format!(
            "blocks_spanned {} != cells*cell_blocks {stride}",
            m.blocks_spanned()
        ));
    }
    spot_check_roundtrip(m, &mut details);
    verdict("stride", details)
}

/// Structural proof for [`CurveMapping`]: the mapping sends the cell with
/// the k-th smallest curve key to `base + k·b` (rank compaction). The key
/// table has one entry per cell; if it is *strictly* ascending every cell
/// owns a distinct rank and ranks are exactly `0..cells`, hence the image
/// is the dense range `[base, base + cells·b)` and the table lookup in
/// `coord_of` is the exact inverse.
pub fn check_curve_structural<C>(m: &CurveMapping<C>) -> Verdict
where
    C: SpaceFillingCurve + Send + Sync,
{
    let mut details = Vec::new();
    let keys = m.curve_keys();
    let cells = m.grid().cells();
    if keys.len() as u64 != cells {
        details.push(format!("{} curve keys for {cells} cells", keys.len()));
    }
    if let Some(w) = keys.windows(2).find(|w| w[0] >= w[1]) {
        details.push(format!(
            "curve keys not strictly ascending: {} then {}",
            w[0], w[1]
        ));
    }
    spot_check_roundtrip(m, &mut details);
    verdict("rank-table", details)
}

/// Structural proof for [`MultiMapping`] — the stride/symmetry argument.
///
/// A cell decomposes into (cube slot, in-cube offsets `y`). The proof
/// shows distinct cells map to distinct (track, angular slot) pairs, which
/// `DiskGeometry::lbn_of` translates injectively into LBNs:
///
/// * **S1** — zone slot ranges `[first_slot, first_slot+capacity)`
///   partition `[0, total_slots)`, so each cube has one owning zone.
/// * **S2** — per zone: `cubes_per_row·K0 ≤ T` and
///   `rows·tracks_per_cube ≤ zone tracks`, so cube rows neither overflow
///   a track nor the zone.
/// * **S3** — the in-cube track offset `Σ_{i≥1} y_i·step(i)` is a pure
///   mixed-radix number: `step(1) = 1`, `step(i+1) = step(i)·K_i`, and the
///   maximal offset is `tracks_per_cube − 1`. Distinct `y` vectors hit
///   distinct in-cube tracks, covering `[0, tracks_per_cube)` exactly.
/// * **S4** — on one physical track, cube windows `[pos·K0, (pos+1)·K0)`
///   are disjoint (S2) and the per-track rotation (skew compensation plus
///   `jumps·adjacency_offset`, both constant across a track's residents
///   that share `y`) is a bijection of `Z_T`, preserving disjointness.
/// * **S5** — spot check: representative cubes (first/last of every zone
///   plus strided samples of cells) roundtrip through
///   `lbn_of`/`coord_of` with no collisions, pinning the code to S1–S4.
pub fn check_multimap_structural(m: &MultiMapping) -> Verdict {
    let mut details = Vec::new();
    let geom = m.geometry();
    let layout = m.layout();
    let shape = m.shape();
    let k0 = shape.k[0];
    let tracks_per_cube = layout.tracks_per_cube();

    // S1: slot ranges partition [0, total_slots).
    let mut next_slot = 0u64;
    for za in layout.zones() {
        if za.first_slot != next_slot {
            details.push(format!(
                "zone {}: first_slot {} leaves a gap after {next_slot}",
                za.zone_index, za.first_slot
            ));
        }
        if za.capacity != za.cubes_per_row * za.rows {
            details.push(format!(
                "zone {}: capacity {} != cubes_per_row*rows",
                za.zone_index, za.capacity
            ));
        }
        next_slot = za.first_slot + za.capacity;
    }
    if next_slot < layout.total_slots() {
        details.push(format!(
            "zones hold {next_slot} slots but layout claims {}",
            layout.total_slots()
        ));
    }

    // S2: rows fit their track and their zone.
    for za in layout.zones() {
        let zone = &geom.zones()[za.zone_index];
        if za.cubes_per_row * k0 > zone.sectors_per_track as u64 {
            details.push(format!(
                "zone {}: {} cubes of K0={k0} overflow T={}",
                za.zone_index, za.cubes_per_row, zone.sectors_per_track
            ));
        }
        if za.rows * tracks_per_cube > zone.tracks(geom.surfaces) {
            details.push(format!(
                "zone {}: {} rows of {tracks_per_cube} tracks overflow {} zone tracks",
                za.zone_index,
                za.rows,
                zone.tracks(geom.surfaces)
            ));
        }
    }

    // S3: the in-cube step system is exactly mixed-radix.
    let n = shape.k.len();
    if n >= 2 {
        let mut expect = 1u64;
        for i in 1..n {
            if shape.step(i) != expect {
                details.push(format!(
                    "step({i}) = {} breaks mixed radix (expected {expect})",
                    shape.step(i)
                ));
            }
            expect *= shape.k[i];
        }
        if expect != tracks_per_cube {
            details.push(format!(
                "in-cube offsets cover {expect} tracks but cube occupies {tracks_per_cube}"
            ));
        }
    } else if tracks_per_cube != 1 {
        details.push(format!("1-D cube spans {tracks_per_cube} tracks"));
    }

    // S4 is implied by S2 + the modular-rotation argument; its only
    // numeric side condition (K0·cubes_per_row ≤ T) is checked above.

    // S5: spot check representative cells.
    spot_check_roundtrip(m, &mut details);
    for za in layout.zones() {
        // The last zone may be only partially used by the grid's cubes.
        let last_used = (za.first_slot + za.capacity - 1).min(layout.total_slots() - 1);
        for slot in [za.first_slot, last_used] {
            let place = layout.place(geom, slot);
            if place.zone_index != za.zone_index {
                details.push(format!(
                    "slot {slot} placed in zone {} but allocated to zone {}",
                    place.zone_index, za.zone_index
                ));
            }
            if let Some(cube) = m.cube_grid().coord_of_linear(slot) {
                // First in-grid cell of the cube.
                let c: Vec<u64> = cube.iter().zip(&shape.k).map(|(&q, &k)| q * k).collect();
                if m.grid().contains(&c) {
                    match m.lbn_of(&c) {
                        Ok(lbn) if m.coord_of(lbn).as_deref() == Some(&c[..]) => {}
                        Ok(lbn) => details.push(format!(
                            "cube {cube:?} base cell {c:?} fails roundtrip via LBN {lbn}"
                        )),
                        Err(e) => details.push(format!("cube {cube:?} base cell: {e}")),
                    }
                }
            }
        }
    }
    verdict("stride-symmetry", details)
}

/// Dispatch: exhaustive when the grid is small enough, structural above.
pub fn check_auto(kind: MappingClass<'_>) -> Verdict {
    let (m, dense): (&dyn Mapping, bool) = match kind {
        MappingClass::Naive(m) => (m, true),
        MappingClass::ZOrder(m) => (m, true),
        MappingClass::Hilbert(m) => (m, true),
        MappingClass::MultiMap(m) => (m, false),
    };
    if m.grid().cells() <= EXHAUSTIVE_CELL_LIMIT {
        return check_exhaustive(m, dense);
    }
    match kind {
        MappingClass::Naive(m) => check_naive_structural(m),
        MappingClass::ZOrder(m) => check_curve_structural(m),
        MappingClass::Hilbert(m) => check_curve_structural(m),
        MappingClass::MultiMap(m) => check_multimap_structural(m),
    }
}

/// A mapping together with its concrete type, so the structural path can
/// reach family-specific accessors the `Mapping` trait does not expose.
#[derive(Clone, Copy)]
pub enum MappingClass<'a> {
    /// Row-major baseline.
    Naive(&'a NaiveMapping),
    /// Z-order curve baseline.
    ZOrder(&'a CurveMapping<multimap_sfc::ZCurve>),
    /// Hilbert curve baseline.
    Hilbert(&'a CurveMapping<multimap_sfc::HilbertCurve>),
    /// The MultiMap mapping.
    MultiMap(&'a MultiMapping),
}

fn spot_check_roundtrip(m: &dyn Mapping, details: &mut Vec<String>) {
    // staticcheck: allow(det-unordered-collection) — membership-only duplicate detector over sampled coords; never iterated.
    let mut seen = HashSet::new();
    for c in sample_coords(m.grid(), STRUCTURAL_SAMPLES) {
        if details.len() >= 8 {
            return;
        }
        match m.lbn_of(&c) {
            Ok(lbn) => {
                if !seen.insert(lbn) {
                    details.push(format!("sampled LBN {lbn} mapped twice (cell {c:?})"));
                }
                match m.coord_of(lbn) {
                    Some(back) if back == c => {}
                    Some(back) => {
                        details.push(format!("sample {c:?} -> LBN {lbn} -> {back:?}"));
                    }
                    None => details.push(format!("sample {c:?} LBN {lbn} has no inverse")),
                }
            }
            Err(e) => details.push(format!("sample {c:?} failed to map: {e}")),
        }
    }
}

fn verdict(method: &str, details: Vec<String>) -> Verdict {
    if details.is_empty() {
        Verdict::Proved {
            method: method.into(),
        }
    } else {
        Verdict::Violated { details }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::{zorder_mapping, GridSpec};
    use multimap_disksim::profiles;

    #[test]
    fn exhaustive_proves_all_families_on_toy_grids() {
        let geom = profiles::toy();
        let grid = GridSpec::new([5u64, 3, 3]);
        let naive = NaiveMapping::new(grid.clone(), 0);
        assert!(!check_exhaustive(&naive, true).is_violation());
        let z = zorder_mapping(grid.clone(), 0, 1).unwrap();
        assert!(!check_exhaustive(&z, true).is_violation());
        let mm = MultiMapping::new(&geom, grid).unwrap();
        assert!(!check_exhaustive(&mm, false).is_violation());
    }

    #[test]
    fn structural_proofs_agree_with_exhaustive_on_small_grids() {
        let geom = profiles::small();
        let grid = GridSpec::new([60u64, 8, 6]);
        let naive = NaiveMapping::new(grid.clone(), 7);
        assert!(!check_naive_structural(&naive).is_violation());
        let z = zorder_mapping(grid.clone(), 7, 1).unwrap();
        assert!(!check_curve_structural(&z).is_violation());
        let mm = MultiMapping::new(&geom, grid).unwrap();
        assert!(!check_multimap_structural(&mm).is_violation());
    }

    #[test]
    fn structural_proof_scales_to_the_paper_chunk() {
        let geom = profiles::cheetah_36es();
        let grid = GridSpec::new([259u64, 259, 259]);
        let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
        assert!(!check_multimap_structural(&mm).is_violation());
        let naive = NaiveMapping::new(grid, 0);
        assert!(!check_naive_structural(&naive).is_violation());
    }
}
