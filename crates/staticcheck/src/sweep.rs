//! The (drive profile × dataset geometry) configuration sweep.
//!
//! [`default_sweep`] covers both evaluation drives (Cheetah 36ES and
//! Atlas 10k III), the paper's running examples on the toy disk, the
//! integration-test disk, and a density-trend projection. For every
//! configuration the prover checks bijection, adjacency-distance and
//! zone-boundary invariants for all four mappings, picking the exhaustive
//! regime on small grids and structural arguments above
//! [`EXHAUSTIVE_CELL_LIMIT`](crate::bijection::EXHAUSTIVE_CELL_LIMIT).

use multimap_core::{
    hilbert_mapping, zorder_mapping, GridSpec, Mapping, MappingError, MultiMapping, NaiveMapping,
};
use multimap_disksim::{profiles, DiskGeometry};
use multimap_sfc::SpaceFillingCurve;

use crate::bijection::{self, MappingClass, EXHAUSTIVE_CELL_LIMIT};
use crate::report::{Report, Verdict};
use crate::{adjacency, zones};

/// Rank-table ceiling for the space-filling-curve mappings: above this
/// the table build dominates the sweep, and the rank-table argument has
/// already been discharged on smaller grids plus the curve lemma.
pub const SFC_CELL_LIMIT: u64 = 4_000_000;

/// One sweep entry: a drive profile paired with a dataset geometry.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Profile name resolvable by [`profile_by_name`].
    pub profile: &'static str,
    /// Dataset extents.
    pub extents: Vec<u64>,
}

impl SweepConfig {
    fn label(&self) -> String {
        let dims: Vec<String> = self.extents.iter().map(u64::to_string).collect();
        format!("{} {}", self.profile, dims.join("x"))
    }
}

/// Resolve a drive profile by its sweep name.
pub fn profile_by_name(name: &str) -> Option<DiskGeometry> {
    match name {
        "toy" => Some(profiles::toy()),
        "small" => Some(profiles::small()),
        "cheetah-36es" => Some(profiles::cheetah_36es()),
        "atlas-10k-iii" => Some(profiles::atlas_10k_iii()),
        "trend-gen1" => Some(profiles::density_trend(1)),
        _ => None,
    }
}

/// The full CI sweep: paper examples, both evaluation drives at the
/// paper's dataset scales (Sections 5.3–5.5), and a trend projection.
pub fn default_sweep() -> Vec<SweepConfig> {
    let mut cfgs = vec![
        // Paper running examples (Figures 2–4) on the toy disk.
        cfg("toy", &[5, 3]),
        cfg("toy", &[5, 3, 3]),
        cfg("toy", &[5, 3, 3, 2]),
        // Integration-scale grids on the small test disk.
        cfg("small", &[500]),
        cfg("small", &[60, 30]),
        cfg("small", &[60, 8, 6]),
        cfg("small", &[100, 4, 4]),
        cfg("small", &[150, 40, 12]),
    ];
    for profile in ["cheetah-36es", "atlas-10k-iii"] {
        // Exhaustive-regime 3-D grid, then the paper's 259^3 chunk
        // (Section 5.3), a mid-size structural grid exercising the
        // rank-table argument, and the 4-D OLAP chunk (Section 5.5).
        cfgs.push(cfg(profile, &[120, 40, 20]));
        cfgs.push(cfg(profile, &[259, 128, 82]));
        cfgs.push(cfg(profile, &[259, 259, 259]));
        cfgs.push(cfg(profile, &[591, 75, 25, 25]));
    }
    cfgs.push(cfg("trend-gen1", &[259, 259, 259]));
    cfgs
}

/// A fast subset of the sweep (exhaustive-regime configs only) used by
/// the test suite so `cargo test` stays quick.
pub fn quick_sweep() -> Vec<SweepConfig> {
    vec![
        cfg("toy", &[5, 3]),
        cfg("toy", &[5, 3, 3]),
        cfg("toy", &[5, 3, 3, 2]),
        cfg("small", &[500]),
        cfg("small", &[60, 30]),
        cfg("small", &[60, 8, 6]),
    ]
}

fn cfg(profile: &'static str, extents: &[u64]) -> SweepConfig {
    SweepConfig {
        profile,
        extents: extents.to_vec(),
    }
}

/// Run every invariant over every configuration.
///
/// Configurations are independent, so they fan out across the
/// experiment engine; per-config reports are merged back in sweep order,
/// making the report identical to a serial run.
pub fn run_sweep(configs: &[SweepConfig]) -> Report {
    let mut report = Report::new();
    curve_lemma(&mut report);
    let partials = multimap_engine::sweep(configs, |c| {
        let mut partial = Report::new();
        run_config(c, &mut partial);
        partial
    });
    for partial in partials {
        report.merge(partial);
    }
    report
}

/// Run one configuration, appending outcomes to `report`.
pub fn run_config(config: &SweepConfig, report: &mut Report) {
    let label = config.label();
    let Some(geom) = profile_by_name(config.profile) else {
        report.push(
            "config",
            config.profile,
            label,
            Verdict::Violated {
                details: vec![format!("unknown drive profile {:?}", config.profile)],
            },
        );
        return;
    };
    let grid = GridSpec::new(config.extents.clone());
    let cells = grid.cells();
    let exhaustive = cells <= EXHAUSTIVE_CELL_LIMIT;

    // Naive.
    let naive = NaiveMapping::new(grid.clone(), 0);
    report.push(
        "bijection",
        naive.name().to_string(),
        &label,
        bijection::check_auto(MappingClass::Naive(&naive)),
    );

    // Space-filling curves.
    if cells > SFC_CELL_LIMIT {
        let reason = format!(
            "rank table for {cells} cells exceeds the sweep budget; \
             rank-table argument discharged on smaller grids"
        );
        for name in ["Z-order", "Hilbert"] {
            report.push(
                "bijection",
                name,
                &label,
                Verdict::Skipped {
                    reason: reason.clone(),
                },
            );
        }
    } else {
        match zorder_mapping(grid.clone(), 0, 1) {
            Ok(z) => report.push(
                "bijection",
                z.name().to_string(),
                &label,
                bijection::check_auto(MappingClass::ZOrder(&z)),
            ),
            Err(e) => report.push("bijection", "Z-order", &label, construction_verdict(e)),
        }
        match hilbert_mapping(grid.clone(), 0, 1) {
            Ok(h) => report.push(
                "bijection",
                h.name().to_string(),
                &label,
                bijection::check_auto(MappingClass::Hilbert(&h)),
            ),
            Err(e) => report.push("bijection", "Hilbert", &label, construction_verdict(e)),
        }
    }

    // MultiMap: bijection plus the adjacency and zone invariants.
    match MultiMapping::new(&geom, grid) {
        Ok(mm) => {
            report.push(
                "bijection",
                mm.name().to_string(),
                &label,
                bijection::check_auto(MappingClass::MultiMap(&mm)),
            );
            adjacency::check(&mm, exhaustive, report, &label);
            zones::check(&mm, report, &label);
        }
        Err(e) => report.push(
            "bijection",
            "MultiMap",
            &label,
            Verdict::Violated {
                details: vec![format!("sweep config failed to map: {e}")],
            },
        ),
    }
}

/// A curve construction failure is a *skip* only when the grid genuinely
/// exceeds the curve's representable range; anything else is a violation.
fn construction_verdict(e: MappingError) -> Verdict {
    match e {
        MappingError::DoesNotFit { reason } => Verdict::Skipped { reason },
        other => Verdict::Violated {
            details: vec![other.to_string()],
        },
    }
}

/// The curve lemma: each space-filling curve is a bijection on its full
/// power-of-two hypercube, verified exhaustively for every (dims, bits)
/// pair small enough to enumerate. Rank compaction (checked per config)
/// lifts this to arbitrary extents.
fn curve_lemma(report: &mut Report) {
    use multimap_sfc::{GrayCurve, HilbertCurve, ZCurve};
    for dims in [1usize, 2, 3, 4] {
        for bits in [1u32, 2, 3] {
            if dims as u32 * bits > 12 {
                continue;
            }
            let curves: Vec<(&str, Box<dyn SpaceFillingCurve>)> = vec![
                ("Z-order", Box::new(match ZCurve::new(dims, bits) {
                    Ok(c) => c,
                    Err(_) => continue,
                })),
                ("Hilbert", Box::new(match HilbertCurve::new(dims, bits) {
                    Ok(c) => c,
                    Err(_) => continue,
                })),
                ("Gray", Box::new(match GrayCurve::new(dims, bits) {
                    Ok(c) => c,
                    Err(_) => continue,
                })),
            ];
            let total = 1u64 << (dims as u32 * bits);
            let side = 1u64 << bits;
            for (name, curve) in curves {
                let mut details = Vec::new();
                for idx in 0..total {
                    if details.len() >= 8 {
                        break;
                    }
                    let coords = curve.coords(idx);
                    if coords.len() != dims || coords.iter().any(|&c| c >= side) {
                        details.push(format!("index {idx} decodes outside the cube: {coords:?}"));
                        continue;
                    }
                    let back = curve.index(&coords);
                    if back != idx {
                        details.push(format!("index {idx} -> {coords:?} -> {back}"));
                    }
                }
                report.push(
                    "curve-lemma",
                    name,
                    format!("dims={dims} bits={bits}"),
                    if details.is_empty() {
                        Verdict::Proved {
                            method: "exhaustive".into(),
                        }
                    } else {
                        Verdict::Violated { details }
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_clean() {
        let report = run_sweep(&quick_sweep());
        assert!(report.is_clean(), "{}", report.render_text());
        let (proved, _, _) = report.tallies();
        assert!(proved >= 30, "expected a substantive sweep, got {proved}");
    }

    #[test]
    fn unknown_profile_is_a_violation() {
        let mut r = Report::new();
        run_config(
            &SweepConfig {
                profile: "no-such-disk",
                extents: vec![4, 4],
            },
            &mut r,
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn default_sweep_names_resolve_and_cover_both_drives() {
        let cfgs = default_sweep();
        assert!(cfgs.iter().all(|c| profile_by_name(c.profile).is_some()));
        for drive in ["cheetah-36es", "atlas-10k-iii"] {
            assert!(cfgs.iter().filter(|c| c.profile == drive).count() >= 4);
        }
    }
}
