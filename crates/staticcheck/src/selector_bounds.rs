//! Selector-bound prover: machine-check the pruning bounds of the
//! incremental SPTF selector against the reference estimator.
//!
//! The incremental selector in `multimap-disksim` claims bit-identical
//! serve order to the reference scan while skipping most candidates. The
//! claim rests on three inequalities and one classification property,
//! all argued in comments in `crates/disksim/src/selector.rs`. This
//! module discharges them mechanically over a (drive profile × dataset
//! geometry) sweep, with requests produced by all four mappings and head
//! states produced by actually servicing a deterministic request spread:
//!
//! 1. **Seek-floor monotonicity** — `seek_floor_ms(d)` is weakly
//!    monotone in the cylinder distance, checked exhaustively over every
//!    distance the drive admits. This is what lets the outward cylinder
//!    walk stop early.
//! 2. **Rotational-band seek floor** — for every captured head state and
//!    every profiled request, `(overhead + seek_floor(dist)) +
//!    first_segment_xfer` never exceeds the reference estimate, with the
//!    additions in exactly `RequestTiming::total_ms` order. IEEE
//!    addition is monotone, so this per-request inequality (plus 1.)
//!    soundly justifies pruning whole cylinder groups.
//! 3. **Bucket lower bound** — `((overhead + positioning) + wait) +
//!    first_segment_xfer` never exceeds the estimate either; for
//!    single-track requests the two are required to be *bit-identical*
//!    (the bound is the estimate), and for multi-track requests the
//!    first-segment bound must sit at or below the exact per-segment
//!    walk. The profiled estimate is also cross-checked bitwise against
//!    `DiskSim::estimate` on the raw request.
//! 4. **Wrap-guard clamp replay** — the selector's `partition_point`
//!    predicate replays the clamp expressions of
//!    `rotational_wait_from_angle` verbatim. Over every track bucket the
//!    sweep produces — plus synthetic boundary buckets probing angles
//!    within ulps of the platter phase and of the
//!    [`ROTATION_WRAP_GUARD`] window — the prover checks that the
//!    predicate partitions each angle-sorted bucket (true prefix, false
//!    suffix), that clamp-window items wait exactly `0.0`, and that the
//!    circular scan from the partition point yields non-decreasing
//!    waits — the property the per-bucket early break relies on.
//!    A headroom lemma (`(spt-1)/spt < 1 - guard` per zone) shows real
//!    sector angles can never land a *forward* delta inside the clamp
//!    window, so the zero-wait clamp can only occur at the scan start.

use multimap_core::{
    hilbert_mapping, zorder_mapping, GridSpec, Mapping, MultiMapping, NaiveMapping,
};
use multimap_disksim::{
    DiskGeometry, DiskSim, Request, RequestProfile, SeekMemo, ROTATION_WRAP_GUARD,
};

use crate::report::{Report, Verdict};
use crate::sample;
use crate::sweep::{profile_by_name, SweepConfig};

/// The CI sweep: both evaluation drives, each with an exhaustive-regime
/// 3-D grid and a flatter grid that shifts the track-boundary mix.
pub fn default_configs() -> Vec<SweepConfig> {
    let mut cfgs = Vec::new();
    for profile in ["cheetah-36es", "atlas-10k-iii"] {
        cfgs.push(SweepConfig {
            profile,
            extents: vec![120, 40, 20],
        });
        cfgs.push(SweepConfig {
            profile,
            extents: vec![150, 40, 12],
        });
    }
    cfgs
}

/// A fast subset used by the test suite.
pub fn quick_configs() -> Vec<SweepConfig> {
    vec![
        SweepConfig {
            profile: "small",
            extents: vec![60, 8, 6],
        },
        SweepConfig {
            profile: "small",
            extents: vec![100, 4, 4],
        },
    ]
}

/// Run the selector-bound checks over every configuration, fanning the
/// independent configs across the experiment engine and merging their
/// reports in sweep order (identical to a serial run).
pub fn run(configs: &[SweepConfig]) -> Report {
    let mut report = Report::new();
    let partials = multimap_engine::sweep(configs, |c| {
        let mut partial = Report::new();
        run_config(c, &mut partial);
        partial
    });
    for partial in partials {
        report.merge(partial);
    }
    report
}

fn label_of(config: &SweepConfig) -> String {
    let dims: Vec<String> = config.extents.iter().map(u64::to_string).collect();
    format!("{} {}", config.profile, dims.join("x"))
}

/// Run one configuration, appending outcomes to `report`.
pub fn run_config(config: &SweepConfig, report: &mut Report) {
    let label = label_of(config);
    let Some(geom) = profile_by_name(config.profile) else {
        report.push(
            "selector-bounds",
            config.profile,
            label,
            Verdict::Violated {
                details: vec![format!("unknown drive profile {:?}", config.profile)],
            },
        );
        return;
    };

    check_seek_floor_monotone(&geom, report, &label);
    check_wrap_guard_headroom(&geom, report, &label);

    let profiles = build_profiles(&geom, config, report, &label);
    if profiles.is_empty() {
        return;
    }
    let snapshots = build_snapshots(&geom, &profiles);

    check_estimate_bounds(&snapshots, &profiles, report, &label);
    check_wrap_guard_replay(&geom, &snapshots, &profiles, report, &label);
}

/// 1. `seek_floor_ms` is weakly monotone over every admissible cylinder
///    distance, so the suffix minimum of the seek curve is the floor
///    itself.
fn check_seek_floor_monotone(geom: &DiskGeometry, report: &mut Report, label: &str) {
    let max_d = geom.total_cylinders();
    let mut details = Vec::new();
    let mut prev = geom.seek_floor_ms(0);
    if prev < 0.0 {
        details.push(format!("seek_floor_ms(0) = {prev} is negative"));
    }
    for d in 1..max_d {
        let cur = geom.seek_floor_ms(d);
        if cur < prev && details.len() < 8 {
            details.push(format!(
                "seek_floor_ms({d}) = {cur} < seek_floor_ms({}) = {prev}",
                d - 1
            ));
        }
        prev = cur;
    }
    report.push(
        "selector-seek-monotone",
        geom.name.clone(),
        label,
        verdict(details, format!("exhaustive over {max_d} distances")),
    );
}

/// 4a. Headroom lemma: every real sector start angle is `< 1 - guard`,
/// so a forward (`delta >= 0`) rotational wait can never be clamped to
/// zero — the clamp only fires for wrapped deltas, which the partition
/// predicate places at the scan start.
fn check_wrap_guard_headroom(geom: &DiskGeometry, report: &mut Report, label: &str) {
    let mut details = Vec::new();
    for (i, zone) in geom.zones().iter().enumerate() {
        let spt = zone.sectors_per_track as f64;
        let max_angle = (spt - 1.0) / spt;
        if max_angle >= 1.0 - ROTATION_WRAP_GUARD {
            details.push(format!(
                "zone {i}: max sector angle {max_angle} reaches the wrap-guard window"
            ));
        }
    }
    let zones = geom.zones().len();
    report.push(
        "selector-wrap-headroom",
        geom.name.clone(),
        label,
        verdict(details, format!("exhaustive over {zones} zones")),
    );
}

/// Profiled requests for all four mappings on this configuration:
/// sampled cells mapped to LBNs, at mixed request lengths, plus
/// track-boundary-spanning variants so multi-track requests are
/// represented.
fn build_profiles(
    geom: &DiskGeometry,
    config: &SweepConfig,
    report: &mut Report,
    label: &str,
) -> Vec<RequestProfile> {
    let grid = GridSpec::new(config.extents.clone());
    let mut mappings: Vec<(String, Vec<u64>)> = Vec::new();
    let coords = sample::sample_coords(&grid, 48);
    let mut push_mapping = |name: &str, lbns: Result<Vec<u64>, String>| match lbns {
        Ok(l) => mappings.push((name.to_string(), l)),
        Err(e) => report.push(
            "selector-bounds",
            name,
            label,
            Verdict::Violated {
                details: vec![format!("mapping construction failed: {e}")],
            },
        ),
    };
    let naive = NaiveMapping::new(grid.clone(), 0);
    push_mapping("Naive", map_all(&naive, &coords));
    match zorder_mapping(grid.clone(), 0, 1) {
        Ok(z) => push_mapping("Z-order", map_all(&z, &coords)),
        Err(e) => push_mapping("Z-order", Err(e.to_string())),
    }
    match hilbert_mapping(grid.clone(), 0, 1) {
        Ok(h) => push_mapping("Hilbert", map_all(&h, &coords)),
        Err(e) => push_mapping("Hilbert", Err(e.to_string())),
    }
    match MultiMapping::new(geom, grid) {
        Ok(mm) => push_mapping("MultiMap", map_all(&mm, &coords)),
        Err(e) => push_mapping("MultiMap", Err(e.to_string())),
    }

    let total = geom.total_blocks();
    let mut out = Vec::new();
    let mut details = Vec::new();
    for (name, lbns) in &mappings {
        for (i, &lbn) in lbns.iter().enumerate() {
            // Mixed single-track-leaning lengths…
            let mut reqs = vec![Request::new(lbn, 1 + (lbn % 8))];
            // …plus a span across this LBN's track boundary, so the
            // multi-track fallback path is exercised (every third cell).
            if i % 3 == 0 {
                if let Ok((_, end)) = geom.track_boundaries(lbn) {
                    let start = end.saturating_sub(3);
                    reqs.push(Request::new(start, 8));
                }
            }
            for req in reqs {
                if req.end() > total {
                    continue;
                }
                match RequestProfile::new(geom, req) {
                    Ok(p) => out.push(p),
                    Err(e) => {
                        if details.len() < 8 {
                            details.push(format!(
                                "{name}: profile for lbn {} failed: {e}",
                                req.lbn
                            ));
                        }
                    }
                }
            }
        }
    }
    if !details.is_empty() {
        report.push(
            "selector-bounds",
            "profiles",
            label,
            Verdict::Violated { details },
        );
    }
    out
}

fn map_all(mapping: &dyn Mapping, coords: &[Vec<u64>]) -> Result<Vec<u64>, String> {
    coords
        .iter()
        .map(|c| mapping.lbn_of(c).map_err(|e| e.to_string()))
        .collect()
}

/// Head-state snapshots: clone the simulator after servicing a
/// deterministic spread of the profiled requests, with occasional idle
/// periods so the rotational phase at arrival varies.
fn build_snapshots(geom: &DiskGeometry, profiles: &[RequestProfile]) -> Vec<DiskSim> {
    let mut sim = DiskSim::new(geom.clone());
    let mut out = vec![sim.clone()];
    let stride = (profiles.len() / 9).max(1);
    for (i, p) in profiles.iter().step_by(stride).enumerate() {
        // staticcheck: allow(no-direct-service) — the prover drives a private throwaway simulator to mint head states; no observed scheduling path is bypassed.
        if sim.service(p.request()).is_err() {
            continue;
        }
        if i % 3 == 1 {
            sim.idle(0.37 + i as f64 * 0.113);
        }
        out.push(sim.clone());
        if out.len() >= 10 {
            break;
        }
    }
    out
}

/// Checks 2 and 3 — over every (head state × request) pair: the
/// cylinder-walk seek floor and the bucket lower bound never exceed the
/// reference estimate; single-track bounds are bit-identical to it; and
/// the profiled estimate is bit-identical to `DiskSim::estimate`.
fn check_estimate_bounds(
    snapshots: &[DiskSim],
    profiles: &[RequestProfile],
    report: &mut Report,
    label: &str,
) {
    let mut floor_details = Vec::new();
    let mut bucket_details = Vec::new();
    let mut exact_details = Vec::new();
    let mut pairs = 0u64;
    let mut multi_track = 0u64;
    for sim in snapshots {
        let geom = sim.geometry();
        let state = sim.state();
        let oh = geom.command_overhead_ms;
        let mut memo = SeekMemo::new();
        for p in profiles {
            let req = p.request();
            let est = match sim.estimate_profiled(p, &mut memo) {
                Ok(e) => e,
                Err(e) => {
                    if exact_details.len() < 8 {
                        exact_details.push(format!("estimate_profiled({}) failed: {e}", req.lbn));
                    }
                    continue;
                }
            };
            // The profiled estimate must be the reference expression.
            let reference = match sim.estimate(req) {
                Ok(e) => e,
                Err(e) => {
                    if exact_details.len() < 8 {
                        exact_details.push(format!("estimate({}) failed: {e}", req.lbn));
                    }
                    continue;
                }
            };
            if est.to_bits() != reference.to_bits() && exact_details.len() < 8 {
                exact_details.push(format!(
                    "lbn {}: estimate_profiled {est} != estimate {reference}",
                    req.lbn
                ));
            }
            // The selector evaluates read-ahead continuations outside
            // the band structure precisely because the bounds below do
            // not cover their positioning-free estimates.
            if state.last_end_lbn == Some(req.lbn) {
                continue;
            }
            pairs += 1;
            if p.single_track_xfer_ms().is_none() {
                multi_track += 1;
            }
            let (cyl, surface) = p.track();
            let xfer = p.first_segment_xfer_ms();

            // 2. Outward-walk floor, in total_ms addition order.
            let dist = state.cylinder.abs_diff(cyl);
            let floor = (oh + geom.seek_floor_ms(dist)) + xfer;
            if floor > est && floor_details.len() < 8 {
                floor_details.push(format!(
                    "lbn {} dist {dist}: floor {floor} > estimate {est}",
                    req.lbn
                ));
            }

            // 3. Bucket bound: the estimator's own intermediates,
            // combined left-to-right exactly as total_ms does.
            let pos = geom.positioning_ms(state.cylinder, state.surface, cyl, surface);
            let t_arrive = (state.time_ms + oh) + pos;
            let wait = geom.rotational_wait_from_angle(p.start_angle(), t_arrive);
            let bound = ((oh + pos) + wait) + xfer;
            if bound > est && bucket_details.len() < 8 {
                bucket_details.push(format!(
                    "lbn {}: bucket bound {bound} > estimate {est}",
                    req.lbn
                ));
            }
            if p.single_track_xfer_ms().is_some()
                && bound.to_bits() != est.to_bits()
                && bucket_details.len() < 8
            {
                bucket_details.push(format!(
                    "lbn {}: single-track bound {bound} not bit-identical to estimate {est}",
                    req.lbn
                ));
            }
        }
    }
    let method = format!(
        "exhaustive over {pairs} (state x request) pairs, {multi_track} multi-track"
    );
    if multi_track == 0 {
        floor_details.push("no multi-track request reached the bound checks".into());
    }
    report.push(
        "selector-estimate-exact",
        "estimate_profiled",
        label,
        verdict(exact_details, method.clone()),
    );
    report.push(
        "selector-seek-floor",
        "cylinder walk",
        label,
        verdict(floor_details, method.clone()),
    );
    report.push(
        "selector-bucket-bound",
        "rotational band",
        label,
        verdict(bucket_details, method),
    );
}

/// The selector's partition predicate, replaying the clamp's exact float
/// expressions (`angle - phase`, `+ 1.0`, `1.0 - ROTATION_WRAP_GUARD`).
fn wrapped(angle: f64, phase: f64) -> bool {
    let delta = angle - phase;
    delta < 0.0 && delta + 1.0 <= 1.0 - ROTATION_WRAP_GUARD
}

/// 4. Wrap-guard clamp replay: over every real track bucket and a set
///    of synthetic boundary buckets, the predicate partitions the
///    angle-sorted items, clamp-window items wait exactly zero, and the
///    circular scan from the partition point yields non-decreasing
///    waits.
fn check_wrap_guard_replay(
    geom: &DiskGeometry,
    snapshots: &[DiskSim],
    profiles: &[RequestProfile],
    report: &mut Report,
    label: &str,
) {
    // Real buckets: angle lists per physical track, sorted by bit
    // pattern exactly as `TrackBucket::items` is.
    let mut tracks: Vec<((u64, u32), Vec<u64>)> = Vec::new();
    for p in profiles {
        let key = p.track();
        let bits = p.start_angle().to_bits();
        match tracks.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(bits),
            None => tracks.push((key, vec![bits])),
        }
    }
    for (_, v) in &mut tracks {
        v.sort_unstable();
        v.dedup();
    }

    let oh = geom.command_overhead_ms;
    let mut details = Vec::new();
    let mut buckets = 0u64;
    let mut probes = 0u64;
    for sim in snapshots {
        let state = sim.state();
        for (key, items) in &tracks {
            let pos = geom.positioning_ms(state.cylinder, state.surface, key.0, key.1);
            let t_arrive = (state.time_ms + oh) + pos;
            buckets += 1;
            check_bucket(geom, items, t_arrive, &mut details);
        }
        // Synthetic boundary buckets: angles within ulps of the phase
        // and of the clamp window, at the arrival time itself.
        let t_arrive = state.time_ms + oh;
        let phase = geom.phase_at(t_arrive);
        let mut angles: Vec<u64> = Vec::new();
        for cand in [
            phase,
            next_up(phase),
            next_down(phase),
            phase - ROTATION_WRAP_GUARD / 2.0,
            phase - ROTATION_WRAP_GUARD,
            phase - 2.0 * ROTATION_WRAP_GUARD,
            phase + ROTATION_WRAP_GUARD,
            phase - 0.25,
            phase + 0.25,
            0.0,
            ROTATION_WRAP_GUARD,
        ] {
            // Wrap into [0, 1) and keep the proven sector-angle headroom
            // (`check_wrap_guard_headroom`): real angles never reach the
            // guard window from below 1.0.
            let a = if cand < 0.0 { cand + 1.0 } else { cand };
            if (0.0..1.0 - ROTATION_WRAP_GUARD).contains(&a) {
                angles.push(a.to_bits());
            }
        }
        angles.sort_unstable();
        angles.dedup();
        probes += angles.len() as u64;
        check_bucket(geom, &angles, t_arrive, &mut details);
    }
    report.push(
        "selector-wrap-guard",
        "clamp replay",
        label,
        verdict(
            details,
            format!("exhaustive over {buckets} buckets + {probes} boundary probes"),
        ),
    );
}

/// Check one angle-sorted bucket at one arrival time.
fn check_bucket(geom: &DiskGeometry, items: &[u64], t_arrive: f64, details: &mut Vec<String>) {
    if items.is_empty() || details.len() >= 8 {
        return;
    }
    let phase = geom.phase_at(t_arrive);
    // (a) The predicate partitions the sorted bucket: a true prefix
    // followed by a false suffix, so `partition_point` is sound.
    let flags: Vec<bool> = items
        .iter()
        .map(|&bits| wrapped(f64::from_bits(bits), phase))
        .collect();
    let start = flags.iter().take_while(|&&f| f).count();
    if flags[start..].iter().any(|&f| f) {
        details.push(format!(
            "phase {phase}: predicate is not a prefix over {flags:?}"
        ));
        return;
    }
    // (b) Clamp-window items report a wait of exactly zero, and every
    // classification agrees with the wait the estimator computes.
    let n = items.len();
    let mut prev = f64::NEG_INFINITY;
    for k in 0..n {
        let bits = items[(start + k) % n];
        let angle = f64::from_bits(bits);
        let wait = geom.rotational_wait_from_angle(angle, t_arrive);
        let delta = angle - phase;
        let in_clamp = delta < 0.0 && delta + 1.0 > 1.0 - ROTATION_WRAP_GUARD;
        // staticcheck: allow(float-cmp) — exactness is the property under proof: the clamp must report a wait of literal 0.0, not merely a small one.
        if in_clamp && wait != 0.0 {
            details.push(format!(
                "angle {angle} phase {phase}: clamp-window wait {wait} != 0"
            ));
            return;
        }
        // (c) The circular scan from the partition point must see
        // non-decreasing waits — the per-bucket early break depends
        // on it.
        if wait < prev {
            details.push(format!(
                "phase {phase}: wait {wait} at scan offset {k} after {prev}"
            ));
            return;
        }
        prev = wait;
    }
}

fn next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

fn next_down(x: f64) -> f64 {
    if x <= 0.0 {
        return x;
    }
    f64::from_bits(x.to_bits() - 1)
}

fn verdict(details: Vec<String>, method: String) -> Verdict {
    if details.is_empty() {
        Verdict::Proved { method }
    } else {
        Verdict::Violated { details }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_configs_prove_clean() {
        let report = run(&quick_configs());
        assert!(report.is_clean(), "{}", report.render_text());
        let (proved, _, _) = report.tallies();
        // 6 checks per config x 2 configs.
        assert!(proved >= 12, "expected a substantive run, got {proved}");
    }

    #[test]
    fn multi_track_requests_reach_the_bound_checks() {
        let mut report = Report::new();
        let cfg = &quick_configs()[0];
        run_config(cfg, &mut report);
        // A zero multi-track count is itself reported as a violation, so
        // cleanliness implies the multi-track path was exercised.
        assert!(report.is_clean(), "{}", report.render_text());
        let json = report.to_json().to_pretty();
        assert!(json.contains("multi-track"), "{json}");
    }

    #[test]
    fn predicate_matches_clamp_classification_at_boundaries() {
        let geom = profile_by_name("small").unwrap();
        let t = 7.03;
        let phase = geom.phase_at(t);
        // Exactly on phase: forward hit, wait 0, not wrapped.
        assert!(!wrapped(phase, phase));
        assert_eq!(geom.rotational_wait_from_angle(phase, t), 0.0);
        // Just below phase, inside the guard window: clamped to 0 and
        // excluded from the wrapped prefix.
        let a = phase - ROTATION_WRAP_GUARD / 2.0;
        if a >= 0.0 {
            assert!(!wrapped(a, phase));
            assert_eq!(geom.rotational_wait_from_angle(a, t), 0.0);
        }
        // Below the guard window: a near-full-revolution wait, wrapped.
        let b = phase - 2.0 * ROTATION_WRAP_GUARD;
        if b >= 0.0 {
            assert!(wrapped(b, phase));
            assert!(geom.rotational_wait_from_angle(b, t) > 0.0);
        }
    }

    #[test]
    fn violated_bounds_are_reported() {
        // A bucket whose items are deliberately out of order must fail
        // the partition check.
        let geom = profile_by_name("small").unwrap();
        let t = 3.1;
        let phase = geom.phase_at(t);
        let lo = (phase * 0.5).max(ROTATION_WRAP_GUARD);
        let hi = (phase + 0.4).min(1.0 - 2.0 * ROTATION_WRAP_GUARD);
        let items = vec![hi.to_bits(), lo.to_bits()]; // unsorted on purpose
        let mut details = Vec::new();
        check_bucket(&geom, &items, t, &mut details);
        assert!(
            !details.is_empty(),
            "unsorted bucket must fail the partition or monotonicity check"
        );
    }
}
