//! Fixture-based tests of the lint engine: known-bad source snippets
//! must produce exactly the expected rule IDs at the expected lines, and
//! known-good snippets must stay clean — for both the classic and the
//! determinism rule families, through the full driver (file
//! classification, allowlist, family selection), not just the per-rule
//! functions.

use std::fs;
use std::path::PathBuf;

use staticcheck::lint::{lint_files, RuleSelection};

/// Write fixtures into a fresh temp workspace shaped like the real one
/// (`crates/<name>/src/<file>`), lint them, and return `(rule, line)`
/// pairs of every violation (1-based lines, as reported).
fn lint_fixture(files: &[(&str, &str)], sel: RuleSelection) -> Vec<(String, usize)> {
    let root = std::env::temp_dir().join(format!(
        "staticcheck-fixture-{}-{:?}",
        std::process::id(),
        files.as_ptr()
    ));
    let mut paths = Vec::new();
    for (rel, src) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture path has a parent"))
            .expect("create fixture dirs");
        fs::write(&path, src).expect("write fixture");
        paths.push(path);
    }
    let outcome = lint_files(&root, &paths, sel).expect("lint fixture files");
    fs::remove_dir_all(&root).ok();
    outcome
        .report
        .violations()
        .iter()
        .map(|o| {
            let line = o
                .subject
                .rsplit(':')
                .next()
                .and_then(|l| l.parse().ok())
                .unwrap_or(0);
            (o.invariant.clone(), line)
        })
        .collect()
}

fn det(files: &[(&str, &str)]) -> Vec<(String, usize)> {
    lint_fixture(files, RuleSelection::Determinism)
}

#[test]
fn unordered_collection_fires_and_btree_is_clean() {
    let bad = "use std::collections::HashMap;\n\
               pub struct S { m: HashMap<u64, u32> }\n";
    let got = det(&[("crates/x/src/lib.rs", bad)]);
    assert_eq!(got, [("det-unordered-collection".to_string(), 2)]);

    let good = "#![forbid(unsafe_code)]\n\
                use std::collections::BTreeMap;\n\
                pub struct S { m: BTreeMap<u64, u32> }\n";
    assert!(det(&[("crates/x/src/lib.rs", good)]).is_empty());
}

#[test]
fn unordered_iter_fires_on_hash_bound_names_only() {
    let bad = "use std::collections::HashMap;\n\
               fn f(index: HashMap<u64, u32>, v: Vec<u64>) -> usize {\n\
               let a = v.iter().count();\n\
               for (k, _) in index.iter() { let _ = k; }\n\
               a }\n";
    let got = det(&[("crates/x/src/helper.rs", bad)]);
    assert!(
        got.contains(&("det-unordered-iter".to_string(), 4)),
        "{got:?}"
    );
    // Vec iteration on line 3 must not fire.
    assert!(!got.iter().any(|(r, l)| r == "det-unordered-iter" && *l == 3));
}

#[test]
fn float_sum_fires_and_integer_sums_stay_clean() {
    let bad = "fn t(xs: &[f64]) -> f64 { xs.iter().sum() }\n";
    let got = det(&[("crates/x/src/sums.rs", bad)]);
    assert_eq!(got, [("det-float-sum".to_string(), 1)]);

    let good = "fn n(xs: &[u64]) -> u64 { xs.iter().sum() }\n\
                fn m(xs: &[f64]) -> f64 { xs.iter().copied().fold(f64::MIN, f64::max) }\n";
    assert!(det(&[("crates/x/src/sums.rs", good)]).is_empty());
}

#[test]
fn wall_clock_fires_outside_telemetry_but_not_inside() {
    let bad = "use std::time::Instant;\nfn t() { let _ = Instant::now(); }\n";
    let got = det(&[("crates/x/src/clock.rs", bad)]);
    assert_eq!(got, [("det-wall-clock".to_string(), 2)]);

    // The telemetry crate is the blessed home of span timing.
    assert!(det(&[("crates/telemetry/src/metrics.rs", bad)]).is_empty());
}

#[test]
fn entropy_fires_on_thread_rng_but_not_seeded_rng() {
    let bad = "fn r() -> u64 { let mut rng = rand::thread_rng(); rng.next_u64() }\n";
    let got = det(&[("crates/x/src/rng.rs", bad)]);
    assert_eq!(got, [("det-entropy".to_string(), 1)]);

    let good = "fn r(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }\n";
    assert!(det(&[("crates/x/src/rng.rs", good)]).is_empty());
}

#[test]
fn test_code_is_exempt_from_determinism_rules() {
    let src = "pub fn ok() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               use std::collections::HashMap;\n\
               fn t(m: HashMap<u64, u32>) -> f64 {\n\
               m.values().map(|&v| v as f64).sum() }\n\
               }\n";
    assert!(det(&[("crates/x/src/exempt.rs", src)]).is_empty());
}

#[test]
fn justified_allow_suppresses_and_bare_allow_is_a_finding() {
    let justified = "use std::collections::HashMap;\n\
         // staticcheck: allow(det-unordered-collection) — keyed-only lookup table, never iterated.\n\
         pub struct S { m: HashMap<u64, u32> }\n";
    assert!(det(&[("crates/x/src/allowed.rs", justified)]).is_empty());

    let bare = "use std::collections::HashMap;\n\
                // staticcheck: allow(det-unordered-collection)\n\
                pub struct S { m: HashMap<u64, u32> }\n";
    let got = det(&[("crates/x/src/allowed.rs", bare)]);
    // The unjustified directive does not suppress, and is itself a
    // finding.
    assert!(
        got.contains(&("allow-missing-justification".to_string(), 2)),
        "{got:?}"
    );
    assert!(
        got.contains(&("det-unordered-collection".to_string(), 3)),
        "{got:?}"
    );

    let unknown = "// staticcheck: allow(det-no-such-rule) — long enough justification here.\n";
    let got = det(&[("crates/x/src/allowed.rs", unknown)]);
    assert_eq!(got, [("allow-unknown-rule".to_string(), 1)]);
}

#[test]
fn family_selection_separates_classic_from_determinism() {
    // One classic violation (unwrap in lib code) and one determinism
    // violation (hash collection) in the same file.
    let src = "use std::collections::HashMap;\n\
               pub fn f(m: &HashMap<u64, u32>) -> u32 { *m.get(&0).unwrap() }\n";
    let files = [("crates/x/src/mixed.rs", src)];

    let classic = lint_fixture(&files, RuleSelection::Classic);
    assert!(classic.iter().any(|(r, _)| r == "no-unwrap"), "{classic:?}");
    assert!(
        !classic.iter().any(|(r, _)| r.starts_with("det-")),
        "{classic:?}"
    );

    let determinism = lint_fixture(&files, RuleSelection::Determinism);
    assert!(
        determinism
            .iter()
            .any(|(r, _)| r == "det-unordered-collection"),
        "{determinism:?}"
    );
    assert!(
        !determinism.iter().any(|(r, _)| r == "no-unwrap"),
        "{determinism:?}"
    );

    let all = lint_fixture(&files, RuleSelection::All);
    assert!(all.iter().any(|(r, _)| r == "no-unwrap"), "{all:?}");
    assert!(
        all.iter().any(|(r, _)| r == "det-unordered-collection"),
        "{all:?}"
    );
}

#[test]
fn strings_and_comments_never_fire() {
    let src = "pub fn f() -> &'static str {\n\
               // HashMap::new() and Instant::now() in a comment\n\
               \"HashMap Instant::now thread_rng .sum()\" }\n";
    assert!(det(&[("crates/x/src/quoted.rs", src)]).is_empty());
    assert!(lint_fixture(&[("crates/x/src/quoted.rs", src)], RuleSelection::All).is_empty());
}

/// The workspace itself must be clean under the determinism family —
/// the same gate CI's `staticcheck determinism` step enforces (minus
/// the selector-bound sweep, covered by the crate's unit tests).
#[test]
fn workspace_determinism_lint_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let outcome = staticcheck::lint::lint_workspace_selected(&root, RuleSelection::Determinism)
        .expect("lint reads workspace sources");
    assert!(
        outcome.report.is_clean(),
        "workspace determinism lint found violations:\n{}",
        outcome.report.render_text()
    );
    // The allowlist is load-bearing: the justified keyed-only maps
    // (seek memo, selector by-LBN index) must be flowing through it.
    let allowed: usize = outcome.allowed.values().sum();
    assert!(allowed >= 5, "expected justified allows, got {allowed}");
}
