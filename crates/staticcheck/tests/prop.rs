//! Property tests pinning the analyzer to ground truth.
//!
//! The invariant prover must agree with an independent brute-force
//! enumeration on every small grid it could be handed — for all four
//! mapping families, in both directions: correct mappings prove clean,
//! and deliberately corrupted mappings are flagged. A final self-test
//! runs the quick sweep and the workspace lint so `cargo test` fails the
//! moment either prong regresses.

use std::collections::HashSet;

use multimap_core::{
    hilbert_mapping, zorder_mapping, GridSpec, Mapping, MappingKind, MultiMapping, NaiveMapping,
};
use multimap_disksim::{adjacent_lbn, profiles, Lbn};
use proptest::prelude::*;
use staticcheck::bijection::{check_auto, check_exhaustive, MappingClass};
use staticcheck::report::Report;
use staticcheck::{adjacency, lint, sweep};

/// Brute-force bijection oracle, independent of the analyzer: enumerate
/// every cell, demand distinct LBNs and exact inverses, and (for dense
/// mappings) a gap-free image.
fn brute_force_bijection(m: &dyn Mapping, dense: bool) -> bool {
    let grid = m.grid();
    let mut lbns: HashSet<Lbn> = HashSet::new();
    let mut ok = true;
    let mut min = u64::MAX;
    let mut max = 0u64;
    grid.for_each_cell(|c| {
        if !ok {
            return;
        }
        match m.lbn_of(c) {
            Ok(l) => {
                min = min.min(l);
                max = max.max(l);
                if !lbns.insert(l) || m.coord_of(l).as_deref() != Some(c) {
                    ok = false;
                }
            }
            Err(_) => ok = false,
        }
    });
    ok = ok && lbns.len() as u64 == grid.cells();
    if ok && dense {
        ok = max - min + m.cell_blocks() == grid.cells() * m.cell_blocks();
    }
    ok
}

/// Brute-force adjacency oracle: every `+1` neighbor step along a
/// non-primary dimension must land exactly on the `step(i)`-th adjacent
/// block of the source LBN.
fn brute_force_adjacency(m: &MultiMapping) -> bool {
    let geom = m.geometry();
    let shape = m.shape();
    let grid = m.grid();
    let mut ok = true;
    grid.for_each_cell(|c| {
        if !ok {
            return;
        }
        for i in 1..grid.ndims() {
            if c[i] + 1 >= grid.extent(i) {
                continue;
            }
            let mut n = c.to_vec();
            n[i] += 1;
            // Neighbor steps are only semi-sequential within one basic
            // cube; crossing a cube boundary repositions.
            if c[i] / shape.k[i] != n[i] / shape.k[i] {
                continue;
            }
            let (Ok(l0), Ok(l1)) = (m.lbn_of(c), m.lbn_of(&n)) else {
                ok = false;
                return;
            };
            match adjacent_lbn(geom, l0, shape.step(i) as u32) {
                Ok(adj) if adj == l1 => {}
                _ => ok = false,
            }
        }
    });
    ok
}

/// A deliberately corrupted wrapper the analyzer must flag.
struct BrokenMapping {
    inner: NaiveMapping,
    victim: u64,
    mode: BreakMode,
}

#[derive(Clone, Copy, Debug)]
enum BreakMode {
    /// The victim cell collides with cell 0's LBN.
    Collide,
    /// The victim LBN's inverse is shifted off by one cell.
    BadInverse,
}

impl Mapping for BrokenMapping {
    fn name(&self) -> &str {
        "Broken"
    }
    fn kind(&self) -> MappingKind {
        MappingKind::Naive
    }
    fn grid(&self) -> &GridSpec {
        self.inner.grid()
    }
    fn lbn_of(&self, coord: &[u64]) -> multimap_core::Result<Lbn> {
        let lin = self.grid().linear_index(coord);
        match self.mode {
            BreakMode::Collide if lin == self.victim => {
                self.inner.lbn_of(&vec![0u64; coord.len()])
            }
            _ => self.inner.lbn_of(coord),
        }
    }
    fn coord_of(&self, lbn: Lbn) -> Option<Vec<u64>> {
        let back = self.inner.coord_of(lbn)?;
        match self.mode {
            BreakMode::BadInverse if self.grid().linear_index(&back) == self.victim => {
                self.grid().coord_of_linear((self.victim + 1) % self.grid().cells())
            }
            _ => Some(back),
        }
    }
    fn blocks_spanned(&self) -> u64 {
        self.inner.blocks_spanned()
    }
}

/// Small random grids: 1–4 dimensions, 1–6 cells per side.
fn small_grid() -> impl Strategy<Value = GridSpec> {
    proptest::collection::vec(1u64..=6, 1..=4).prop_map(GridSpec::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exhaustive prover and the brute-force oracle agree on every
    /// correct mapping family: both report a bijection.
    #[test]
    fn exhaustive_matches_brute_force_on_correct_mappings(
        grid in small_grid(),
        base in 0u64..1024,
    ) {
        let naive = NaiveMapping::new(grid.clone(), base);
        prop_assert!(brute_force_bijection(&naive, true));
        prop_assert!(!check_exhaustive(&naive, true).is_violation());

        let z = zorder_mapping(grid.clone(), base, 1).unwrap();
        prop_assert!(brute_force_bijection(&z, true));
        prop_assert!(!check_exhaustive(&z, true).is_violation());

        let h = hilbert_mapping(grid.clone(), base, 1).unwrap();
        prop_assert!(brute_force_bijection(&h, true));
        prop_assert!(!check_exhaustive(&h, true).is_violation());

        if let Ok(mm) = MultiMapping::new(&profiles::toy(), grid) {
            prop_assert!(brute_force_bijection(&mm, false));
            prop_assert!(!check_exhaustive(&mm, false).is_violation());
        }
    }

    /// A corrupted mapping is flagged by the analyzer exactly when the
    /// brute-force oracle rejects it (always, for these corruptions).
    #[test]
    fn broken_mappings_are_flagged(
        grid in small_grid(),
        victim_seed in 1u64..10_000,
        collide in 0u64..2,
    ) {
        if grid.cells() < 2 {
            return Ok(());
        }
        let mode = if collide == 1 { BreakMode::Collide } else { BreakMode::BadInverse };
        let victim = 1 + victim_seed % (grid.cells() - 1);
        let broken = BrokenMapping {
            inner: NaiveMapping::new(grid, 0),
            victim,
            mode,
        };
        let brute = brute_force_bijection(&broken, matches!(mode, BreakMode::Collide));
        let verdict = check_exhaustive(&broken, matches!(mode, BreakMode::Collide));
        prop_assert!(!brute, "oracle must reject a corrupted mapping ({mode:?})");
        prop_assert!(
            verdict.is_violation(),
            "analyzer must flag what the oracle rejects ({mode:?}, victim {victim})"
        );
    }

    /// `check_auto` (which may choose a structural proof) never disagrees
    /// with the exhaustive regime on grids small enough to enumerate.
    #[test]
    fn auto_dispatch_agrees_with_exhaustive(grid in small_grid(), base in 0u64..64) {
        let naive = NaiveMapping::new(grid.clone(), base);
        prop_assert_eq!(
            check_auto(MappingClass::Naive(&naive)).is_violation(),
            check_exhaustive(&naive, true).is_violation()
        );
        let z = zorder_mapping(grid.clone(), base, 1).unwrap();
        prop_assert_eq!(
            check_auto(MappingClass::ZOrder(&z)).is_violation(),
            check_exhaustive(&z, true).is_violation()
        );
        if let Ok(mm) = MultiMapping::new(&profiles::toy(), grid) {
            prop_assert_eq!(
                check_auto(MappingClass::MultiMap(&mm)).is_violation(),
                check_exhaustive(&mm, false).is_violation()
            );
        }
    }

    /// The adjacency prover agrees with brute-force neighbor stepping:
    /// a clean report implies every in-cube neighbor step lands on the
    /// `step(i)`-th adjacent block, and vice versa.
    #[test]
    fn adjacency_verdicts_match_brute_force(grid in small_grid()) {
        let geom = profiles::toy();
        let Ok(mm) = MultiMapping::new(&geom, grid) else {
            return Ok(());
        };
        let mut report = Report::new();
        adjacency::check(&mm, true, &mut report, "prop");
        prop_assert_eq!(report.is_clean(), brute_force_adjacency(&mm));
        prop_assert!(report.is_clean(), "correct MultiMap must prove adjacency");
    }
}

/// Self-test: the quick invariant sweep and the workspace lint must both
/// be clean, so plain `cargo test` enforces what CI enforces.
#[test]
fn quick_sweep_and_workspace_lint_are_clean() {
    let report = sweep::run_sweep(&sweep::quick_sweep());
    assert!(
        report.is_clean(),
        "quick sweep found violations:\n{}",
        report.render_text()
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let outcome = lint::lint_workspace(&root).expect("lint reads workspace sources");
    assert!(
        outcome.report.is_clean(),
        "workspace lint found violations:\n{}",
        outcome.report.render_text()
    );
}
