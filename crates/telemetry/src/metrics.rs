//! The sink trait, counters, phases, spans and the default accumulator.

use std::fmt::Write as _;

use crate::hist::Histogram;

/// Minimum lookups a hit/miss pair needs before its rate is reported:
/// below this, [`Metrics::hit_rate_floored`] answers `None` and reports
/// print `n/a` — a rate over a few dozen lookups is start-up transient,
/// not steady state.
pub const HIT_RATE_FLOOR: u64 = 256;

/// Service-time components, as charged by the disk simulator.
///
/// The simulator's `RequestTiming` folds seek, settle and head-switch
/// time into one positioning figure; telemetry splits it back out by
/// classifying each transition against the geometry's settle plateau
/// (`ServiceEvent::transition` in `multimap-disksim`): positioning that
/// fits under the plateau is an adjacency hop and lands in
/// [`Phase::Settle`], anything longer is a real [`Phase::Seek`]. The
/// phase sums add up *exactly* to the observed total service time —
/// the conformance oracle checks this. Requests that hit an injected
/// fault additionally charge their retry/remap time to
/// [`Phase::Recovery`]; fault-free runs never record that phase, so
/// their metrics stay bit-identical to builds without fault support.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Command/controller overhead.
    Overhead,
    /// Positioning beyond the settle plateau (a real arm movement).
    Seek,
    /// Positioning within the settle plateau (adjacency hops and head
    /// switches — the semi-sequential currency of the paper).
    Settle,
    /// Rotational latency.
    Rotation,
    /// Media transfer.
    Transfer,
    /// Fault-recovery time: retry backoff, timeout burn and the extra
    /// positioning paid by remapped (degraded) segments.
    Recovery,
    /// Cache write-back flush time — a *memo* phase: the flush batch
    /// total recorded by the page cache's write-back batcher on top of
    /// the per-event decomposition (which already lands in the phases
    /// above). Excluded from [`Metrics::phase_sum_ms`] so the
    /// phase-sum = total-service-time reconciliation stays exact; it
    /// labels how much of that total was write-back traffic.
    Writeback,
}

impl Phase {
    /// Every phase, in reporting order.
    pub const ALL: [Phase; 7] = [
        Phase::Overhead,
        Phase::Seek,
        Phase::Settle,
        Phase::Rotation,
        Phase::Transfer,
        Phase::Recovery,
        Phase::Writeback,
    ];

    /// Stable snake_case name (JSON field).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Overhead => "overhead",
            Phase::Seek => "seek",
            Phase::Settle => "settle",
            Phase::Rotation => "rotation",
            Phase::Transfer => "transfer",
            Phase::Recovery => "recovery",
            Phase::Writeback => "writeback",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Overhead => 0,
            Phase::Seek => 1,
            Phase::Settle => 2,
            Phase::Rotation => 3,
            Phase::Transfer => 4,
            Phase::Recovery => 5,
            Phase::Writeback => 6,
        }
    }

    /// Whether this phase is a memo line (an overlay labelling part of
    /// the total) rather than a disjoint component of service time.
    /// Memo phases are excluded from [`Metrics::phase_sum_ms`].
    pub fn is_memo(self) -> bool {
        matches!(self, Phase::Writeback)
    }
}

/// Event counters on the service path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Counter {
    /// `SeekMemo` positioning lookups answered from the per-round memo.
    SeekMemoHit,
    /// `SeekMemo` positioning lookups that ran the seek curve.
    SeekMemoMiss,
    /// Region translations served from the shared flat-table cache.
    TranslationCacheHit,
    /// Region translations that built (or bypassed) a flat table.
    TranslationCacheMiss,
    /// Queued-SPTF serves that evicted a request from a full window to
    /// admit the next pending one (SCSI TCQ window pressure).
    SptfWindowEviction,
    /// Transitions that settled within the adjacency plateau
    /// (semi-sequential hops).
    AdjacencyHop,
    /// Transitions that paid a real seek.
    SeekTransition,
    /// Requests that continued the previous read-ahead stream.
    PrefetchHit,
    /// Requests serviced.
    RequestsServiced,
    /// Injected transient (timeout) faults observed on the service path.
    TransientFault,
    /// Injected hard media errors observed on the service path.
    MediaFault,
    /// Injected slow-read tail-latency events observed.
    SlowRead,
    /// Retries issued by the recovery path (one per transient, with the
    /// bounded-retry policy — the conformance sweep checks equality).
    RetryAttempt,
    /// Hard-failed blocks remapped into a track's spare region.
    BadBlockRemap,
    /// Rotational-band buckets scanned by the incremental SPTF
    /// selector; zero when batches ran on the linear reference scan.
    SptfBucketScan,
    /// Candidate service-time estimates evaluated during SPTF selection
    /// (reference scan: every pending request per serve; incremental
    /// selector: only candidates its pruning bounds cannot exclude).
    SptfCandidateExamined,
    /// Incremental selector structure repairs (admissions + removals).
    SptfSelectorRepair,
    /// Page-cache probes answered from a resident page (no disk I/O).
    PageCacheHit,
    /// Page-cache probes that fell through to a demand read.
    PageCacheMiss,
    /// Pages fetched speculatively by the cache's prefetcher (batched
    /// with the demand reads, riding the same scheduler).
    CachePrefetchIssued,
    /// First hit on a page the prefetcher brought in — a prefetch that
    /// paid off. Never exceeds [`Counter::CachePrefetchIssued`].
    CachePrefetchUsed,
    /// Dirty pages written out by the write-back batcher.
    WritebackFlush,
    /// Neighbor-track rewrites an IMR backend performed to preserve
    /// interlaced top tracks across bottom-track writes (read-modify-
    /// write amplification observed by the device store's flusher).
    NeighborRewrite,
}

impl Counter {
    /// Every counter, in reporting order.
    pub const ALL: [Counter; 23] = [
        Counter::SeekMemoHit,
        Counter::SeekMemoMiss,
        Counter::TranslationCacheHit,
        Counter::TranslationCacheMiss,
        Counter::SptfWindowEviction,
        Counter::AdjacencyHop,
        Counter::SeekTransition,
        Counter::PrefetchHit,
        Counter::RequestsServiced,
        Counter::TransientFault,
        Counter::MediaFault,
        Counter::SlowRead,
        Counter::RetryAttempt,
        Counter::BadBlockRemap,
        Counter::SptfBucketScan,
        Counter::SptfCandidateExamined,
        Counter::SptfSelectorRepair,
        Counter::PageCacheHit,
        Counter::PageCacheMiss,
        Counter::CachePrefetchIssued,
        Counter::CachePrefetchUsed,
        Counter::WritebackFlush,
        Counter::NeighborRewrite,
    ];

    /// Stable snake_case name (JSON field).
    pub fn name(self) -> &'static str {
        match self {
            Counter::SeekMemoHit => "seek_memo_hit",
            Counter::SeekMemoMiss => "seek_memo_miss",
            Counter::TranslationCacheHit => "translation_cache_hit",
            Counter::TranslationCacheMiss => "translation_cache_miss",
            Counter::SptfWindowEviction => "sptf_window_eviction",
            Counter::AdjacencyHop => "adjacency_hop",
            Counter::SeekTransition => "seek_transition",
            Counter::PrefetchHit => "prefetch_hit",
            Counter::RequestsServiced => "requests_serviced",
            Counter::TransientFault => "transient_fault",
            Counter::MediaFault => "media_fault",
            Counter::SlowRead => "slow_read",
            Counter::RetryAttempt => "retry_attempt",
            Counter::BadBlockRemap => "bad_block_remap",
            Counter::SptfBucketScan => "sptf_bucket_scan",
            Counter::SptfCandidateExamined => "sptf_candidate_examined",
            Counter::SptfSelectorRepair => "sptf_selector_repair",
            Counter::PageCacheHit => "page_cache_hit",
            Counter::PageCacheMiss => "page_cache_miss",
            Counter::CachePrefetchIssued => "cache_prefetch_issued",
            Counter::CachePrefetchUsed => "cache_prefetch_used",
            Counter::WritebackFlush => "writeback_flush",
            Counter::NeighborRewrite => "neighbor_rewrite",
        }
    }

    fn index(self) -> usize {
        match self {
            Counter::SeekMemoHit => 0,
            Counter::SeekMemoMiss => 1,
            Counter::TranslationCacheHit => 2,
            Counter::TranslationCacheMiss => 3,
            Counter::SptfWindowEviction => 4,
            Counter::AdjacencyHop => 5,
            Counter::SeekTransition => 6,
            Counter::PrefetchHit => 7,
            Counter::RequestsServiced => 8,
            Counter::TransientFault => 9,
            Counter::MediaFault => 10,
            Counter::SlowRead => 11,
            Counter::RetryAttempt => 12,
            Counter::BadBlockRemap => 13,
            Counter::SptfBucketScan => 14,
            Counter::SptfCandidateExamined => 15,
            Counter::SptfSelectorRepair => 16,
            Counter::PageCacheHit => 17,
            Counter::PageCacheMiss => 18,
            Counter::CachePrefetchIssued => 19,
            Counter::CachePrefetchUsed => 20,
            Counter::WritebackFlush => 21,
            Counter::NeighborRewrite => 22,
        }
    }
}

/// Executor phases timed span-style (wall clock, *not* simulated time).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Span {
    /// Fit checks and policy resolution.
    Plan,
    /// Cell→LBN translation (direct or via the flat-table cache).
    Translate,
    /// Request building, sorting and coalescing.
    Schedule,
    /// The simulated service call itself.
    Service,
}

impl Span {
    /// Every span, in reporting order.
    pub const ALL: [Span; 4] = [Span::Plan, Span::Translate, Span::Schedule, Span::Service];

    /// Stable snake_case name (JSON field).
    pub fn name(self) -> &'static str {
        match self {
            Span::Plan => "plan",
            Span::Translate => "translate",
            Span::Schedule => "schedule",
            Span::Service => "service",
        }
    }

    fn index(self) -> usize {
        match self {
            Span::Plan => 0,
            Span::Translate => 1,
            Span::Schedule => 2,
            Span::Service => 3,
        }
    }
}

/// Accumulated wall-clock time of one span kind.
///
/// Spans measure the *host's* time, so unlike counters and histograms
/// they are not deterministic across runs; they are reported for humans
/// and excluded from determinism assertions ([`Metrics::identical`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanStat {
    /// Number of spans recorded.
    pub count: u64,
    /// Total wall-clock milliseconds across them.
    pub wall_ms: f64,
}

/// The interface the query path records into.
///
/// Implementations must be cheap: the executor calls these once per
/// serviced request. The default implementation is [`Metrics`]; use
/// [`NullSink`] where an API requires a sink but no one is listening.
pub trait MetricsSink {
    /// Add `delta` to a counter.
    fn counter(&mut self, counter: Counter, delta: u64);
    /// Record one service-time component of one request.
    fn phase(&mut self, phase: Phase, ms: f64);
    /// Record one request's total service time.
    fn service_time(&mut self, ms: f64);
    /// Record one executor phase's wall-clock duration.
    fn span(&mut self, span: Span, wall_ms: f64);
}

/// A sink that drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn counter(&mut self, _counter: Counter, _delta: u64) {}
    fn phase(&mut self, _phase: Phase, _ms: f64) {}
    fn service_time(&mut self, _ms: f64) {}
    fn span(&mut self, _span: Span, _wall_ms: f64) {}
}

/// The default sink: a plain, private accumulator.
///
/// Each unit of work (a query, a figure cell) owns its own `Metrics`,
/// records into it without any synchronisation, and hands it upward to
/// be merged — under `multimap_engine::sweep`, in submission order via
/// [`Metrics::merge_ordered`], which makes the merged f64 sums (and
/// thus the whole object) identical at any thread count.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: [u64; Counter::ALL.len()],
    phases: [Histogram; Phase::ALL.len()],
    service: Histogram,
    spans: [SpanStat; Span::ALL.len()],
}

impl Metrics {
    /// An empty accumulator.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Current value of one counter.
    pub fn counter_value(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Histogram of one service-time component.
    pub fn phase_hist(&self, phase: Phase) -> &Histogram {
        &self.phases[phase.index()]
    }

    /// Histogram of per-request total service times.
    pub fn service_hist(&self) -> &Histogram {
        &self.service
    }

    /// Accumulated wall-clock time of one span kind.
    pub fn span_stat(&self, span: Span) -> SpanStat {
        self.spans[span.index()]
    }

    /// Sum of all *component* phase-histogram sums — by construction
    /// equal to the total observed service time (the oracle cross-checks
    /// this). Memo phases ([`Phase::is_memo`], currently only
    /// [`Phase::Writeback`]) overlay the same time a second way and are
    /// excluded to keep the reconciliation exact.
    pub fn phase_sum_ms(&self) -> f64 {
        Phase::ALL
            .iter()
            .filter(|p| !p.is_memo())
            .map(|&p| self.phase_hist(p).sum_ms())
            .sum()
    }

    /// Hit rate of a hit/miss counter pair, or `None` with no lookups.
    pub fn hit_rate(&self, hit: Counter, miss: Counter) -> Option<f64> {
        let h = self.counter_value(hit);
        let m = self.counter_value(miss);
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Fraction of prefetched pages that were hit before eviction
    /// (`cache_prefetch_used / cache_prefetch_issued`), or `None` when
    /// no prefetches were issued.
    pub fn prefetch_efficiency(&self) -> Option<f64> {
        let issued = self.counter_value(Counter::CachePrefetchIssued);
        if issued == 0 {
            None
        } else {
            Some(self.counter_value(Counter::CachePrefetchUsed) as f64 / issued as f64)
        }
    }

    /// Like [`Metrics::hit_rate`] but `None` when the pair saw fewer
    /// than [`HIT_RATE_FLOOR`] total lookups: a rate computed over a
    /// handful of lookups (64 hits / 0 misses at quick bench scale
    /// reads as a flawless 1.0000) says nothing about steady state, so
    /// reports render it as `n/a` instead.
    pub fn hit_rate_floored(&self, hit: Counter, miss: Counter) -> Option<f64> {
        if self.counter_value(hit) + self.counter_value(miss) < HIT_RATE_FLOOR {
            None
        } else {
            self.hit_rate(hit, miss)
        }
    }

    /// Fold another accumulator into this one. Call in a deterministic
    /// order (submission order under `sweep`) to keep sums bit-stable.
    pub fn merge(&mut self, other: &Metrics) {
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += o;
        }
        for (h, o) in self.phases.iter_mut().zip(other.phases.iter()) {
            h.merge(o);
        }
        self.service.merge(&other.service);
        for (s, o) in self.spans.iter_mut().zip(other.spans.iter()) {
            s.count += o.count;
            s.wall_ms += o.wall_ms;
        }
    }

    /// Merge an iterator of accumulators in iteration order — the
    /// deterministic reduction for `multimap_engine::sweep` output.
    pub fn merge_ordered<'a>(parts: impl IntoIterator<Item = &'a Metrics>) -> Metrics {
        let mut out = Metrics::new();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Whether two accumulators carry bit-identical *deterministic*
    /// observations: counters, phase histograms and the service
    /// histogram. Span wall-clock times are deliberately excluded —
    /// they measure the host, not the simulation.
    pub fn identical(&self, other: &Metrics) -> bool {
        self.counters == other.counters
            && self
                .phases
                .iter()
                .zip(other.phases.iter())
                .all(|(a, b)| a.identical(b))
            && self.service.identical(&other.service)
    }

    /// Render as a JSON object (two-space indent, stable field order).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = String::from("{\n");
        let _ = writeln!(out, "{inner}\"counters\": {{");
        for (i, c) in Counter::ALL.iter().enumerate() {
            let comma = if i + 1 < Counter::ALL.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "{inner}  \"{}\": {}{comma}",
                c.name(),
                self.counter_value(*c)
            );
        }
        let _ = writeln!(out, "{inner}}},");
        let _ = writeln!(out, "{inner}\"hit_rates\": {{");
        let rate = |r: Option<f64>| match r {
            Some(v) => format!("{v:.4}"),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "{inner}  \"seek_memo\": {},",
            rate(self.hit_rate(Counter::SeekMemoHit, Counter::SeekMemoMiss))
        );
        // Low-volume pairs render as null (n/a): see `hit_rate_floored`.
        let _ = writeln!(
            out,
            "{inner}  \"translation_cache\": {},",
            rate(self.hit_rate_floored(Counter::TranslationCacheHit, Counter::TranslationCacheMiss))
        );
        let _ = writeln!(
            out,
            "{inner}  \"page_cache\": {},",
            rate(self.hit_rate(Counter::PageCacheHit, Counter::PageCacheMiss))
        );
        let _ = writeln!(
            out,
            "{inner}  \"cache_prefetch\": {}",
            rate(self.prefetch_efficiency())
        );
        let _ = writeln!(out, "{inner}}},");
        let _ = writeln!(out, "{inner}\"phases_ms\": {{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            let comma = if i + 1 < Phase::ALL.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "{inner}  \"{}\": {}{comma}",
                p.name(),
                hist_json(self.phase_hist(*p))
            );
        }
        let _ = writeln!(out, "{inner}}},");
        let _ = writeln!(out, "{inner}\"service_ms\": {},", hist_json(&self.service));
        let _ = writeln!(out, "{inner}\"spans_wall_ms\": {{");
        for (i, s) in Span::ALL.iter().enumerate() {
            let comma = if i + 1 < Span::ALL.len() { "," } else { "" };
            let st = self.span_stat(*s);
            let _ = writeln!(
                out,
                "{inner}  \"{}\": {{\"count\": {}, \"wall_ms\": {:.3}}}{comma}",
                s.name(),
                st.count,
                st.wall_ms
            );
        }
        let _ = writeln!(out, "{inner}}}");
        let _ = write!(out, "{pad}}}");
        out
    }
}

fn hist_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
    // An empty histogram has no measurements: `mean` and `max` render
    // as null rather than a fake 0.0 reading, matching the
    // `hit_rate_floored` n/a convention (`sum` stays 0.0 — an exact
    // total over zero observations is a real quantity).
    let (mean, max) = if h.count() == 0 {
        ("null".to_string(), "null".to_string())
    } else {
        (format!("{:.6}", h.mean_ms()), format!("{:.6}", h.max_ms()))
    };
    format!(
        "{{\"count\": {}, \"sum\": {:.6}, \"mean\": {mean}, \"max\": {max}, \"buckets\": [{}]}}",
        h.count(),
        h.sum_ms(),
        buckets.join(", ")
    )
}

impl MetricsSink for Metrics {
    fn counter(&mut self, counter: Counter, delta: u64) {
        self.counters[counter.index()] += delta;
    }

    fn phase(&mut self, phase: Phase, ms: f64) {
        self.phases[phase.index()].record(ms);
    }

    fn service_time(&mut self, ms: f64) {
        self.service.record(ms);
    }

    fn span(&mut self, span: Span, wall_ms: f64) {
        let s = &mut self.spans[span.index()];
        s.count += 1;
        s.wall_ms += wall_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_indices_match_reporting_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{p:?}");
        }
        for (i, s) in Span::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{s:?}");
        }
    }

    #[test]
    fn merge_ordered_equals_serial_recording() {
        let record = |m: &mut Metrics, base: f64| {
            m.counter(Counter::AdjacencyHop, 2);
            m.phase(Phase::Settle, base);
            m.phase(Phase::Transfer, base / 10.0);
            m.service_time(base + base / 10.0);
            m.span(Span::Service, 0.5);
        };
        let mut serial = Metrics::new();
        record(&mut serial, 1.1);
        record(&mut serial, 0.07);

        let mut a = Metrics::new();
        record(&mut a, 1.1);
        let mut b = Metrics::new();
        record(&mut b, 0.07);
        let merged = Metrics::merge_ordered([&a, &b]);

        assert!(merged.identical(&serial));
        assert_eq!(merged.counter_value(Counter::AdjacencyHop), 4);
        assert_eq!(merged.span_stat(Span::Service).count, 2);
        assert!((merged.phase_sum_ms() - serial.phase_sum_ms()).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut m = Metrics::new();
        assert!(m
            .hit_rate(Counter::SeekMemoHit, Counter::SeekMemoMiss)
            .is_none());
        m.counter(Counter::SeekMemoHit, 3);
        m.counter(Counter::SeekMemoMiss, 1);
        let r = m
            .hit_rate(Counter::SeekMemoHit, Counter::SeekMemoMiss)
            .unwrap();
        assert!((r - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_has_stable_fields() {
        let mut m = Metrics::new();
        m.counter(Counter::RequestsServiced, 7);
        m.phase(Phase::Seek, 3.2);
        m.service_time(3.2);
        let j = m.to_json(0);
        assert!(j.contains("\"requests_serviced\": 7"));
        assert!(j.contains("\"seek\""));
        assert!(j.contains("\"translation_cache\": null"));
        assert!(j.contains("\"spans_wall_ms\""));
    }

    #[test]
    fn empty_histograms_render_null_mean_and_max() {
        let mut m = Metrics::new();
        m.phase(Phase::Seek, 3.2);
        let j = m.to_json(0);
        // The recorded phase carries real measurements...
        assert!(j.contains("\"seek\": {\"count\": 1, \"sum\": 3.200000, \"mean\": 3.200000, \"max\": 3.200000"));
        // ...while untouched histograms report n/a, not a fake 0.0
        // reading (the hit_rate_floored convention).
        assert!(j.contains("\"rotation\": {\"count\": 0, \"sum\": 0.000000, \"mean\": null, \"max\": null"));
        assert!(j.contains("\"service_ms\": {\"count\": 0, \"sum\": 0.000000, \"mean\": null, \"max\": null"));
    }

    #[test]
    fn hit_rate_floor_suppresses_low_volume_rates() {
        let mut m = Metrics::new();
        m.counter(Counter::TranslationCacheHit, 64);
        // 64 hits / 0 misses would read as a meaningless 1.0000.
        assert!(m
            .hit_rate_floored(Counter::TranslationCacheHit, Counter::TranslationCacheMiss)
            .is_none());
        assert!(m.to_json(0).contains("\"translation_cache\": null"));
        m.counter(Counter::TranslationCacheMiss, HIT_RATE_FLOOR);
        let r = m
            .hit_rate_floored(Counter::TranslationCacheHit, Counter::TranslationCacheMiss)
            .unwrap();
        assert!((r - 64.0 / (64.0 + HIT_RATE_FLOOR as f64)).abs() < 1e-12);
    }

    #[test]
    fn writeback_is_a_memo_phase_outside_the_component_sum() {
        let mut m = Metrics::new();
        m.phase(Phase::Seek, 3.0);
        m.phase(Phase::Transfer, 1.0);
        m.phase(Phase::Writeback, 4.0);
        m.service_time(4.0);
        // The memo overlay does not perturb phase-sum reconciliation.
        assert!((m.phase_sum_ms() - 4.0).abs() < 1e-12);
        assert!((m.phase_hist(Phase::Writeback).sum_ms() - 4.0).abs() < 1e-12);
        assert!(Phase::Writeback.is_memo());
        assert_eq!(Phase::ALL.iter().filter(|p| p.is_memo()).count(), 1);
    }

    #[test]
    fn page_cache_rates_render_in_json() {
        let mut m = Metrics::new();
        assert!(m.to_json(0).contains("\"page_cache\": null"));
        assert!(m.to_json(0).contains("\"cache_prefetch\": null"));
        m.counter(Counter::PageCacheHit, 3);
        m.counter(Counter::PageCacheMiss, 1);
        m.counter(Counter::CachePrefetchIssued, 4);
        m.counter(Counter::CachePrefetchUsed, 1);
        let j = m.to_json(0);
        assert!(j.contains("\"page_cache\": 0.7500"), "{j}");
        assert!(j.contains("\"cache_prefetch\": 0.2500"), "{j}");
        assert!(j.contains("\"writeback_flush\": 0"));
        assert!((m.prefetch_efficiency().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn null_sink_discards_everything() {
        let mut n = NullSink;
        n.counter(Counter::PrefetchHit, 5);
        n.phase(Phase::Rotation, 1.0);
        n.service_time(1.0);
        n.span(Span::Plan, 1.0);
    }
}
