//! The process-wide registry: labelled sections collected off the hot
//! path, plus the global enable gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::metrics::Metrics;

/// Whether telemetry collection is on (default: on). The gate is
/// advisory: recording into a private [`Metrics`] is always safe, but
/// callers that would otherwise allocate sinks per cell check it first,
/// which is what the perf smoke's overhead measurement flips.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn telemetry collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether telemetry collection is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// A collection point for merged [`Metrics`], one labelled section per
/// unit of reporting (a figure, a benchmark phase).
///
/// Recording on the hot path never touches the registry: work
/// accumulates into thread-local `Metrics` owned by each sweep cell,
/// the caller merges them **in submission order** (see
/// [`Metrics::merge_ordered`]), and only the merged result is recorded
/// here — one lock acquisition per sweep, in program order, so the
/// registry contents are deterministic at any thread count.
#[derive(Debug, Default)]
pub struct Registry {
    sections: Mutex<Vec<(String, Metrics)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Record a merged section under `label` (appended in call order;
    /// labels may repeat — sections are not keyed).
    pub fn record(&self, label: impl Into<String>, metrics: Metrics) {
        self.sections.lock().push((label.into(), metrics));
    }

    /// Snapshot all sections in recording order.
    pub fn sections(&self) -> Vec<(String, Metrics)> {
        self.sections.lock().clone()
    }

    /// Merge every section, in recording order, into one accumulator.
    pub fn merged(&self) -> Metrics {
        let sections = self.sections.lock();
        Metrics::merge_ordered(sections.iter().map(|(_, m)| m))
    }

    /// Drop all sections (the perf harness clears between passes).
    pub fn clear(&self) {
        self.sections.lock().clear();
    }

    /// Whether any section has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sections.lock().is_empty()
    }

    /// Render all sections as one JSON object keyed by label (repeated
    /// labels get a `#n` suffix to stay valid JSON).
    pub fn to_json(&self) -> String {
        let sections = self.sections.lock();
        let mut out = String::from("{\n");
        let mut seen: Vec<&str> = Vec::new();
        for (i, (label, metrics)) in sections.iter().enumerate() {
            let dups = seen.iter().filter(|&&l| l == label).count();
            seen.push(label);
            let key = if dups == 0 {
                label.clone()
            } else {
                format!("{label}#{dups}")
            };
            let comma = if i + 1 < sections.len() { "," } else { "" };
            out.push_str(&format!(
                "  \"{}\": {}{}\n",
                json_escape(&key),
                metrics.to_json(2),
                comma
            ));
        }
        out.push('}');
        out
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The process-wide registry the figure generators and the perf smoke
/// report into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, MetricsSink};

    #[test]
    fn sections_merge_in_recording_order() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        let mut a = Metrics::new();
        a.counter(Counter::PrefetchHit, 1);
        let mut b = Metrics::new();
        b.counter(Counter::PrefetchHit, 2);
        reg.record("first", a);
        reg.record("second", b);
        assert_eq!(reg.sections().len(), 2);
        assert_eq!(reg.merged().counter_value(Counter::PrefetchHit), 3);
        let json = reg.to_json();
        assert!(json.contains("\"first\""));
        assert!(json.contains("\"second\""));
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    fn duplicate_labels_stay_distinct_in_json() {
        let reg = Registry::new();
        reg.record("fig", Metrics::new());
        reg.record("fig", Metrics::new());
        let json = reg.to_json();
        assert!(json.contains("\"fig\""));
        assert!(json.contains("\"fig#1\""));
    }

    #[test]
    fn enable_gate_round_trips() {
        let was = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(was);
    }
}
