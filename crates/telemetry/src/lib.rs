//! # multimap-telemetry — metrics and spans for the service path
//!
//! A lightweight observation layer threaded through the whole query
//! path (query → plan → lvm → disksim → scheduler) without perturbing
//! the engine's determinism contract: recording only *reads* simulator
//! outputs, never its inputs, so every figure TSV is byte-identical
//! with telemetry on or off.
//!
//! Three pieces:
//!
//! * [`MetricsSink`] — the trait the executor records into. The default
//!   implementation is [`Metrics`], a plain accumulator each unit of
//!   work owns privately (lock-free recording: no atomics, no shared
//!   state on the hot path).
//! * [`Histogram`] — fixed-bucket latency histograms (a 1–2–5 decade
//!   grid from 1 µs to 200 ms) for the per-request service-time
//!   decomposition into overhead / seek / settle / rotation / transfer.
//! * [`Registry`] — the process-wide collection point. Work that runs
//!   under `multimap_engine::sweep` accumulates one [`Metrics`] per
//!   cell and merges them **in submission order** (the order `sweep`
//!   returns results), so the merged totals — including every f64 sum —
//!   are identical at any thread count.
//!
//! See `docs/observability.md` for the determinism rules and the
//! `BENCH_pr5.json` field reference.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod hist;
mod metrics;
mod registry;

pub use hist::{Histogram, BUCKET_EDGES_MS, NUM_BUCKETS};
pub use metrics::{
    Counter, Metrics, MetricsSink, NullSink, Phase, Span, SpanStat, HIT_RATE_FLOOR,
};
pub use registry::{enabled, global, set_enabled, Registry};
