//! Fixed-bucket latency histograms.

/// Upper bucket edges in milliseconds: a 1–2–5 decade grid from 1 µs to
/// 200 ms. Bucket `i` covers `[edge[i-1], edge[i])` (bucket 0 starts at
/// zero); one final bucket catches everything at or past the last edge.
/// The grid is fixed so histograms from different runs, threads and
/// figure cells merge bucket-for-bucket.
pub const BUCKET_EDGES_MS: [f64; 16] = [
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
];

/// Total bucket count: one per edge plus the overflow bucket.
pub const NUM_BUCKETS: usize = BUCKET_EDGES_MS.len() + 1;

/// A fixed-bucket latency histogram over simulated milliseconds.
///
/// Alongside the bucket counts it tracks the exact running sum, so a
/// conformance oracle can cross-check that the per-phase sums add up to
/// the observed total service time (`Histogram::sum_ms` loses nothing
/// to bucketing). Merging adds `other`'s sum once, which keeps merged
/// sums bit-identical as long as merges happen in a deterministic
/// order — the registry's submission-order rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum_ms: f64,
    max_ms: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
        }
    }

    /// The bucket a value falls in.
    pub fn bucket_index(ms: f64) -> usize {
        BUCKET_EDGES_MS
            .iter()
            .position(|&edge| ms < edge)
            .unwrap_or(BUCKET_EDGES_MS.len())
    }

    /// Record one observation.
    ///
    /// Durations are non-negative by definition; a negative or NaN
    /// input is a caller bug (typically an uninitialised or subtracted
    /// timestamp). Rather than poisoning `sum_ms` forever — NaN never
    /// washes out of a running sum, and a negative value silently
    /// deflates every downstream mean — such inputs are clamped to zero
    /// (and trip a `debug_assert!` so tests catch the caller).
    pub fn record(&mut self, ms: f64) {
        debug_assert!(
            ms >= 0.0, // false for NaN as well
            "histogram observation must be a non-negative number, got {ms}"
        );
        let ms = if ms >= 0.0 { ms } else { 0.0 };
        self.counts[Self::bucket_index(ms)] += 1;
        self.count += 1;
        self.sum_ms += ms;
        if ms > self.max_ms {
            self.max_ms = ms;
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.count += other.count;
        self.sum_ms += other.sum_ms;
        if other.max_ms > self.max_ms {
            self.max_ms = other.max_ms;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (not reconstructed from buckets).
    pub fn sum_ms(&self) -> f64 {
        self.sum_ms
    }

    /// Largest observation seen.
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Mean observation, or zero for an empty histogram.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// The value at quantile `q` as the **upper edge** of the bucket
    /// holding the `⌈q·count⌉`-th smallest observation, or `None` for
    /// an empty histogram. `q` is clamped to `[0.0, 1.0]`; `q = 0.0`
    /// reads as "the first observation's bucket".
    ///
    /// Fixed buckets make this a conservative quantile: the true value
    /// lies at or below the returned edge — except when the rank lands
    /// in the overflow bucket, where the last [`BUCKET_EDGES_MS`] entry
    /// is returned and must be read as `>=` that edge (the histogram
    /// caps resolution there; [`Histogram::max_ms`] still carries the
    /// exact maximum).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(BUCKET_EDGES_MS[i.min(BUCKET_EDGES_MS.len() - 1)]);
            }
        }
        // Unreachable: the bucket counts sum to `count >= rank`.
        None
    }

    /// Whether two histograms carry bit-identical observations
    /// (counts, exact sums and maxima — the determinism witness).
    pub fn identical(&self, other: &Histogram) -> bool {
        self.counts == other.counts
            && self.count == other.count
            // staticcheck: allow(float-cmp) — bit-equality is the point:
            // this is the determinism witness, not a tolerance check.
            && self.sum_ms.to_bits() == other.sum_ms.to_bits()
            // staticcheck: allow(float-cmp) — same: exact-bits witness.
            && self.max_ms.to_bits() == other.max_ms.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_strictly_ascending() {
        for w in BUCKET_EDGES_MS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn bucketing_covers_the_whole_axis() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(0.0005), 0);
        assert_eq!(Histogram::bucket_index(0.001), 1);
        assert_eq!(Histogram::bucket_index(0.3), 8);
        assert_eq!(Histogram::bucket_index(99.0), 15);
        assert_eq!(Histogram::bucket_index(100.0), NUM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(1e9), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_and_merge_agree_with_serial_recording() {
        let values = [0.004, 1.7, 0.0, 23.5, 0.09];
        let mut serial = Histogram::new();
        for &v in &values {
            serial.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &values[..2] {
            a.record(v);
        }
        for &v in &values[2..] {
            b.record(v);
        }
        let mut merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert!(merged.identical(&serial), "{merged:?} vs {serial:?}");
        assert_eq!(merged.count(), 5);
        assert!((merged.mean_ms() - serial.sum_ms() / 5.0).abs() < 1e-12);
        assert!((merged.max_ms() - 23.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_returns_exact_bucket_edges() {
        let mut h = Histogram::new();
        // 100 observations: 50 in bucket 0 (below the 0.001 edge), 49
        // in the [0.05, 0.1) bucket, and 1 in the overflow bucket.
        for _ in 0..50 {
            h.record(0.0005);
        }
        for _ in 0..49 {
            h.record(0.09);
        }
        h.record(250.0);
        // Edge-exact pins against BUCKET_EDGES_MS semantics. The
        // returned values are copied verbatim from the edge table, so
        // exact comparison is the correct check (no arithmetic).
        assert_eq!(h.quantile(0.0), Some(BUCKET_EDGES_MS[0]));
        assert_eq!(h.quantile(0.5), Some(BUCKET_EDGES_MS[0]));
        assert_eq!(h.quantile(0.51), Some(BUCKET_EDGES_MS[6]));
        assert_eq!(h.quantile(0.99), Some(BUCKET_EDGES_MS[6]));
        // Rank 100 lands in the overflow bucket: reported as the last
        // edge, read as ">= 100 ms".
        assert_eq!(h.quantile(0.999), Some(BUCKET_EDGES_MS[15]));
        assert_eq!(h.quantile(1.0), Some(BUCKET_EDGES_MS[15]));
        // Out-of-range and NaN inputs clamp rather than panic.
        assert_eq!(h.quantile(-3.0), Some(BUCKET_EDGES_MS[0]));
        assert_eq!(h.quantile(7.0), Some(BUCKET_EDGES_MS[15]));
        assert_eq!(h.quantile(f64::NAN), Some(BUCKET_EDGES_MS[0]));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn quantile_single_observation_is_its_bucket_edge_at_every_q() {
        let mut h = Histogram::new();
        h.record(0.3); // [0.2, 0.5) bucket, upper edge 0.5
        for q in [0.0, 0.25, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), Some(BUCKET_EDGES_MS[8]), "q={q}");
        }
    }

    #[test]
    fn quantile_agrees_with_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut serial = Histogram::new();
        for i in 0..200u64 {
            let v = (i as f64) * 0.11;
            serial.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), serial.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_has_zero_mean() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.mean_ms().abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-negative")]
    fn negative_observation_trips_debug_assert() {
        Histogram::new().record(-0.5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-negative")]
    fn nan_observation_trips_debug_assert() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn invalid_observations_clamp_to_zero_in_release() {
        let mut h = Histogram::new();
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(1.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.counts()[0], 2, "clamped values land in bucket 0");
        assert!((h.sum_ms() - 1.0).abs() < 1e-12, "sum stays finite");
        assert!((h.max_ms() - 1.0).abs() < 1e-12);
    }
}
