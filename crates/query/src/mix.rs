//! Mixed workloads: weighted blends of beam and range queries, executed
//! as one measured batch — the way a spatial database sees traffic.

use multimap_core::{BoxRegion, GridSpec, Mapping};
use rand::RngExt;

use crate::executor::{QueryExecutor, QueryResult};
use crate::workload::{random_anchor, random_range_with_edge, WorkloadRng};

/// One query archetype in a mix.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryKind {
    /// A beam along the given dimension through a random anchor.
    Beam {
        /// Dimension the beam runs along.
        dim: usize,
    },
    /// A random cube range of the given edge length (cells).
    Range {
        /// Edge length in cells (clamped per dimension).
        edge: u64,
    },
}

/// A weighted query archetype.
#[derive(Clone, Debug, PartialEq)]
pub struct MixEntry {
    /// The query shape.
    pub kind: QueryKind,
    /// Relative weight (probability mass) of this entry.
    pub weight: f64,
}

/// A workload mix: archetypes plus the number of queries to draw.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    entries: Vec<MixEntry>,
    queries: usize,
}

/// Per-archetype and overall outcome of a mix run.
#[derive(Clone, Debug, Default)]
pub struct MixReport {
    /// Results per archetype, in the mix's entry order.
    pub per_entry: Vec<QueryResult>,
    /// Aggregate over the whole run.
    pub total: QueryResult,
}

impl MixReport {
    /// Queries per simulated second the disk sustained for this mix.
    pub fn queries_per_second(&self, queries: u64) -> f64 {
        // staticcheck: allow(float-cmp) — sentinel: an empty mix accumulates exactly 0.0 total I/O; avoids 0/0.
        if self.total.total_io_ms == 0.0 {
            0.0
        } else {
            queries as f64 * 1000.0 / self.total.total_io_ms
        }
    }
}

impl WorkloadMix {
    /// A mix of `queries` draws over the given entries.
    ///
    /// # Panics
    /// Panics if no entry has positive weight.
    pub fn new(entries: Vec<MixEntry>, queries: usize) -> Self {
        assert!(
            entries.iter().any(|e| e.weight > 0.0),
            "mix needs at least one positively weighted entry"
        );
        WorkloadMix { entries, queries }
    }

    /// The classic OLAP-ish default: mostly small ranges, some beams.
    pub fn default_mix(grid: &GridSpec, queries: usize) -> Self {
        let edge = (grid.cells() as f64 * 0.001).powf(1.0 / grid.ndims() as f64) as u64;
        WorkloadMix::new(
            vec![
                MixEntry {
                    kind: QueryKind::Range { edge: edge.max(2) },
                    weight: 0.6,
                },
                MixEntry {
                    kind: QueryKind::Beam { dim: 0 },
                    weight: 0.2,
                },
                MixEntry {
                    kind: QueryKind::Beam { dim: 1 },
                    weight: 0.2,
                },
            ],
            queries,
        )
    }

    /// Draw an entry index according to the weights.
    fn draw(&self, rng: &mut WorkloadRng) -> usize {
        let total: f64 = self.entries.iter().map(|e| e.weight.max(0.0)).sum();
        let mut x = rng.random_range(0.0..total);
        for (i, e) in self.entries.iter().enumerate() {
            let w = e.weight.max(0.0);
            if x < w {
                return i;
            }
            x -= w;
        }
        self.entries.len() - 1
    }

    /// Execute the mix against one mapping, drawing queries from `rng`.
    ///
    /// The disk idles briefly between queries (modelling think time) so
    /// rotational phases decorrelate.
    pub fn run(
        &self,
        exec: &QueryExecutor<'_>,
        mapping: &dyn Mapping,
        rng: &mut WorkloadRng,
        idle_between_ms: f64,
    ) -> crate::error::Result<MixReport> {
        let grid = mapping.grid().clone();
        let mut report = MixReport {
            per_entry: vec![QueryResult::default(); self.entries.len()],
            ..MixReport::default()
        };
        for _ in 0..self.queries {
            let i = self.draw(rng);
            let result = match self.entries[i].kind {
                QueryKind::Beam { dim } => {
                    let anchor = random_anchor(&grid, rng);
                    let region = BoxRegion::beam(&grid, dim, &anchor);
                    exec.beam(mapping, &region)?
                }
                QueryKind::Range { edge } => {
                    let region = random_range_with_edge(&grid, edge, rng);
                    exec.range(mapping, &region)?
                }
            };
            report.per_entry[i].accumulate(&result);
            report.total.accumulate(&result);
        }
        let _ = idle_between_ms; // idling is handled by the volume owner
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::workload_rng;
    use multimap_core::{MultiMapping, NaiveMapping};
    use multimap_disksim::profiles;
    use multimap_lvm::LogicalVolume;

    fn setup() -> (LogicalVolume, GridSpec) {
        (
            LogicalVolume::new(profiles::small(), 1),
            GridSpec::new([60u64, 8, 6]),
        )
    }

    #[test]
    fn mix_runs_all_queries() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        let mix = WorkloadMix::default_mix(&grid, 30);
        let mut rng = workload_rng(9);
        let report = mix.run(&exec, &naive, &mut rng, 0.0).unwrap();
        let per_entry_cells: u64 = report.per_entry.iter().map(|r| r.cells).sum();
        assert_eq!(per_entry_cells, report.total.cells);
        assert!(report.total.total_io_ms > 0.0);
        assert!(report.queries_per_second(30) > 0.0);
    }

    #[test]
    fn weights_bias_the_draw() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        let mix = WorkloadMix::new(
            vec![
                MixEntry {
                    kind: QueryKind::Beam { dim: 0 },
                    weight: 1.0,
                },
                MixEntry {
                    kind: QueryKind::Beam { dim: 2 },
                    weight: 0.0,
                },
            ],
            20,
        );
        let mut rng = workload_rng(4);
        let report = mix.run(&exec, &naive, &mut rng, 0.0).unwrap();
        assert_eq!(report.per_entry[1].cells, 0);
        assert_eq!(report.per_entry[0].cells, 20 * 60);
    }

    #[test]
    fn multimap_wins_a_cross_dimensional_mix() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let mix = WorkloadMix::new(
            vec![
                MixEntry {
                    kind: QueryKind::Beam { dim: 1 },
                    weight: 0.5,
                },
                MixEntry {
                    kind: QueryKind::Beam { dim: 2 },
                    weight: 0.5,
                },
            ],
            20,
        );
        vol.reset();
        let rn = mix.run(&exec, &naive, &mut workload_rng(5), 0.0).unwrap();
        vol.reset();
        let rm = mix.run(&exec, &mm, &mut workload_rng(5), 0.0).unwrap();
        assert!(rm.total.total_io_ms < rn.total.total_io_ms);
    }

    #[test]
    #[should_panic(expected = "positively weighted")]
    fn empty_mix_panics() {
        let _ = WorkloadMix::new(vec![], 5);
    }
}
