//! Mixed workloads: weighted blends of beam and range queries, executed
//! as one measured batch — the way a spatial database sees traffic.

use multimap_core::{BoxRegion, GridSpec, Mapping};
use multimap_telemetry::MetricsSink;
use rand::RngExt;

use crate::executor::{QueryExecutor, QueryRequest, QueryResult};
use crate::workload::{random_anchor, random_range_with_edge, WorkloadRng};

/// One query archetype in a mix.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryKind {
    /// A beam along the given dimension through a random anchor.
    Beam {
        /// Dimension the beam runs along.
        dim: usize,
    },
    /// A random cube range of the given edge length (cells).
    Range {
        /// Edge length in cells (clamped per dimension).
        edge: u64,
    },
}

/// A weighted query archetype.
///
/// Non-exhaustive: construct with [`MixEntry::new`] so later additions
/// (per-entry options, think time, …) are not breaking changes.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct MixEntry {
    /// The query shape.
    pub kind: QueryKind,
    /// Relative weight (probability mass) of this entry.
    pub weight: f64,
}

impl MixEntry {
    /// An entry for `kind` with relative weight `weight`.
    pub fn new(kind: QueryKind, weight: f64) -> Self {
        MixEntry { kind, weight }
    }
}

/// A workload mix: archetypes plus the number of queries to draw.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    entries: Vec<MixEntry>,
    queries: usize,
}

/// Builder for [`WorkloadMix`].
///
/// ```
/// use multimap_query::WorkloadMix;
/// let mix = WorkloadMix::builder()
///     .range(16, 0.6)
///     .beam(0, 0.2)
///     .beam(1, 0.2)
///     .queries(100)
///     .build();
/// ```
#[derive(Clone, Debug, Default)]
pub struct WorkloadMixBuilder {
    entries: Vec<MixEntry>,
    queries: usize,
}

impl WorkloadMixBuilder {
    /// Add an arbitrary entry.
    pub fn entry(mut self, kind: QueryKind, weight: f64) -> Self {
        self.entries.push(MixEntry::new(kind, weight));
        self
    }

    /// Add a beam archetype along `dim`.
    pub fn beam(self, dim: usize, weight: f64) -> Self {
        self.entry(QueryKind::Beam { dim }, weight)
    }

    /// Add a cube-range archetype of `edge` cells per dimension.
    pub fn range(self, edge: u64, weight: f64) -> Self {
        self.entry(QueryKind::Range { edge }, weight)
    }

    /// Set the number of queries to draw.
    pub fn queries(mut self, queries: usize) -> Self {
        self.queries = queries;
        self
    }

    /// Finish the build.
    ///
    /// # Panics
    /// Panics if no entry has positive weight (same contract as
    /// [`WorkloadMix::new`]).
    pub fn build(self) -> WorkloadMix {
        WorkloadMix::new(self.entries, self.queries)
    }
}

/// Per-archetype and overall outcome of a mix run.
#[derive(Clone, Debug, Default)]
pub struct MixReport {
    /// Results per archetype, in the mix's entry order.
    pub per_entry: Vec<QueryResult>,
    /// Aggregate over the whole run.
    pub total: QueryResult,
}

impl MixReport {
    /// Queries per simulated second the disk sustained for this mix.
    pub fn queries_per_second(&self, queries: u64) -> f64 {
        // staticcheck: allow(float-cmp) — sentinel: an empty mix accumulates exactly 0.0 total I/O; avoids 0/0.
        if self.total.total_io_ms == 0.0 {
            0.0
        } else {
            queries as f64 * 1000.0 / self.total.total_io_ms
        }
    }
}

impl WorkloadMix {
    /// A mix of `queries` draws over the given entries.
    ///
    /// # Panics
    /// Panics if no entry has positive weight.
    pub fn new(entries: Vec<MixEntry>, queries: usize) -> Self {
        assert!(
            entries.iter().any(|e| e.weight > 0.0),
            "mix needs at least one positively weighted entry"
        );
        WorkloadMix { entries, queries }
    }

    /// An empty builder.
    pub fn builder() -> WorkloadMixBuilder {
        WorkloadMixBuilder::default()
    }

    /// The classic OLAP-ish default: mostly small ranges, some beams.
    pub fn default_mix(grid: &GridSpec, queries: usize) -> Self {
        let edge = (grid.cells() as f64 * 0.001).powf(1.0 / grid.ndims() as f64) as u64;
        WorkloadMix::builder()
            .range(edge.max(2), 0.6)
            .beam(0, 0.2)
            .beam(1, 0.2)
            .queries(queries)
            .build()
    }

    /// Draw an entry index according to the weights.
    fn draw(&self, rng: &mut WorkloadRng) -> usize {
        // staticcheck: allow(det-float-sum) — `entries` is a Vec in builder order; the weight sum is order-pinned and feeds a seeded RNG draw.
        let total: f64 = self.entries.iter().map(|e| e.weight.max(0.0)).sum();
        let mut x = rng.random_range(0.0..total);
        for (i, e) in self.entries.iter().enumerate() {
            let w = e.weight.max(0.0);
            if x < w {
                return i;
            }
            x -= w;
        }
        self.entries.len() - 1
    }

    /// Execute the mix against one mapping, drawing queries from `rng`.
    ///
    /// The disk idles briefly between queries (modelling think time) so
    /// rotational phases decorrelate.
    pub fn run(
        &self,
        exec: &QueryExecutor<'_>,
        mapping: &dyn Mapping,
        rng: &mut WorkloadRng,
        idle_between_ms: f64,
    ) -> crate::error::Result<MixReport> {
        self.run_sinked(exec, mapping, rng, idle_between_ms, None)
    }

    /// [`WorkloadMix::run`] with an optional metrics sink shared by all
    /// queries in the mix (phase histograms accumulate across queries).
    pub fn run_sinked(
        &self,
        exec: &QueryExecutor<'_>,
        mapping: &dyn Mapping,
        rng: &mut WorkloadRng,
        idle_between_ms: f64,
        mut sink: Option<&mut dyn MetricsSink>,
    ) -> crate::error::Result<MixReport> {
        let grid = mapping.grid().clone();
        let mut report = MixReport {
            per_entry: vec![QueryResult::default(); self.entries.len()],
            ..MixReport::default()
        };
        for _ in 0..self.queries {
            let i = self.draw(rng);
            let (region, op) = match self.entries[i].kind {
                QueryKind::Beam { dim } => {
                    let anchor = random_anchor(&grid, rng);
                    (
                        BoxRegion::beam(&grid, dim, &anchor),
                        crate::executor::QueryOp::Beam,
                    )
                }
                QueryKind::Range { edge } => (
                    random_range_with_edge(&grid, edge, rng),
                    crate::executor::QueryOp::Range,
                ),
            };
            let mut req = QueryRequest::new(op, mapping, &region);
            if let Some(s) = sink.as_deref_mut() {
                req = req.with_sink(s);
            }
            let result = exec.execute(req)?;
            report.per_entry[i].accumulate(&result);
            report.total.accumulate(&result);
        }
        let _ = idle_between_ms; // idling is handled by the volume owner
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::workload_rng;
    use multimap_core::{MultiMapping, NaiveMapping};
    use multimap_disksim::profiles;
    use multimap_lvm::LogicalVolume;
    use multimap_telemetry::{Counter, Metrics};

    fn setup() -> (LogicalVolume, GridSpec) {
        (
            LogicalVolume::new(profiles::small(), 1),
            GridSpec::new([60u64, 8, 6]),
        )
    }

    #[test]
    fn mix_runs_all_queries() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        let mix = WorkloadMix::default_mix(&grid, 30);
        let mut rng = workload_rng(9);
        let report = mix.run(&exec, &naive, &mut rng, 0.0).unwrap();
        let per_entry_cells: u64 = report.per_entry.iter().map(|r| r.cells).sum();
        assert_eq!(per_entry_cells, report.total.cells);
        assert!(report.total.total_io_ms > 0.0);
        assert!(report.queries_per_second(30) > 0.0);
    }

    #[test]
    fn weights_bias_the_draw() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        let mix = WorkloadMix::builder()
            .beam(0, 1.0)
            .beam(2, 0.0)
            .queries(20)
            .build();
        let mut rng = workload_rng(4);
        let report = mix.run(&exec, &naive, &mut rng, 0.0).unwrap();
        assert_eq!(report.per_entry[1].cells, 0);
        assert_eq!(report.per_entry[0].cells, 20 * 60);
    }

    #[test]
    fn multimap_wins_a_cross_dimensional_mix() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let mix = WorkloadMix::builder()
            .beam(1, 0.5)
            .beam(2, 0.5)
            .queries(20)
            .build();
        vol.reset();
        let rn = mix.run(&exec, &naive, &mut workload_rng(5), 0.0).unwrap();
        vol.reset();
        let rm = mix.run(&exec, &mm, &mut workload_rng(5), 0.0).unwrap();
        assert!(rm.total.total_io_ms < rn.total.total_io_ms);
    }

    /// A shared sink accumulates one record per serviced request across
    /// the whole mix, without changing the measured result.
    #[test]
    fn sinked_mix_is_transparent() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        let mix = WorkloadMix::default_mix(&grid, 10);
        let bare = mix
            .run(&exec, &naive, &mut workload_rng(11), 0.0)
            .unwrap();
        vol.reset();
        let mut metrics = Metrics::new();
        let sinked = mix
            .run_sinked(
                &exec,
                &naive,
                &mut workload_rng(11),
                0.0,
                Some(&mut metrics),
            )
            .unwrap();
        assert_eq!(
            bare.total.total_io_ms.to_bits(),
            sinked.total.total_io_ms.to_bits()
        );
        assert_eq!(
            metrics.counter_value(Counter::RequestsServiced),
            sinked.total.requests
        );
    }

    #[test]
    #[should_panic(expected = "positively weighted")]
    fn empty_mix_panics() {
        let _ = WorkloadMix::new(vec![], 5);
    }
}
