//! # multimap-query — storage manager and query executor
//!
//! Implements the paper's storage manager (Section 5.2): beam and range
//! queries against any [`multimap_core::Mapping`], with the
//! request-issuing policy the paper describes for each mapping family:
//!
//! * **Linearised mappings** (Naive, Z-order, Hilbert, Gray): identify
//!   the LBNs, sort ascending, and issue in that order.
//! * **MultiMap beams**: issue all blocks at once and let the disk's
//!   internal SPTF scheduler fetch them along the semi-sequential path.
//! * **MultiMap ranges**: favour sequential access — fetch runs along
//!   `Dim0` first, in ascending LBN order.
//!
//! Only I/O time is measured; query results are the simulated timings.
//!
//! ```
//! use multimap_core::{BoxRegion, GridSpec, MultiMapping};
//! use multimap_disksim::profiles;
//! use multimap_lvm::LogicalVolume;
//! use multimap_query::{QueryExecutor, QueryRequest};
//!
//! let volume = LogicalVolume::new(profiles::small(), 1);
//! let grid = GridSpec::new([60u64, 8, 6]);
//! let mapping = MultiMapping::new(volume.geometry(), grid.clone()).unwrap();
//! let exec = QueryExecutor::new(&volume, 0);
//! let result = exec
//!     .execute(QueryRequest::beam(&mapping, &BoxRegion::beam(&grid, 1, &[3, 0, 2])))
//!     .unwrap();
//! assert_eq!(result.cells, 8);
//! assert!(result.total_io_ms > 0.0);
//! ```
//!
//! Every query flows through [`QueryExecutor::execute`] with a
//! [`QueryRequest`]; a request can carry a per-request observer and a
//! [`multimap_telemetry::MetricsSink`] without perturbing simulated
//! timings (see `docs/observability.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod error;
pub mod executor;
pub mod mix;
pub mod plan;
pub mod workload;

pub use backend::BackendExecutor;
pub use cache::{BlockCache, CacheProbe, PrefetchContext};
pub use error::{QueryError, Result};
pub use executor::{
    record_classified_event, record_service_event, service_lbns, service_lbns_sinked, BeamPolicy,
    ExecOptions, ExecOptionsBuilder, QueryExecutor, QueryOp, QueryRequest, QueryResult, RangeOrder,
};
pub use mix::{MixEntry, MixReport, QueryKind, WorkloadMix, WorkloadMixBuilder};
pub use plan::{explain_beam, explain_range, AccessPlan, PlanKind};
pub use workload::{
    random_anchor, random_range, random_range_with_edge, range_edge_for_selectivity, workload_rng,
    WorkloadRng,
};
