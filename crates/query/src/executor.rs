//! The query executor.
//!
//! All queries flow through one entry point,
//! [`QueryExecutor::execute`], which takes a [`QueryRequest`]
//! describing the mapping, the region, the operation and (optionally)
//! a per-request [`ServiceEvent`] observer and a
//! [`multimap_telemetry::MetricsSink`]. The former `beam`/`range`
//! method quartet is gone; [`QueryRequest::beam`] and
//! [`QueryRequest::range`] are the shorthand constructors.
//!
//! The planning pipeline (validate → translate → schedule) is shared
//! with the backend-generic executor in [`crate::backend`], so a query
//! issues the identical request batch whichever device model serves it.

// staticcheck: allow-file(det-wall-clock) — span endpoints recorded here feed telemetry SpanStat fields that the determinism contract explicitly excludes; no simulated timing or serve order ever reads them.
use std::time::Instant;

use multimap_core::{shared_cache, BoxRegion, GridSpec, Mapping, MappingKind, MIN_CACHED_LOOKUPS};
use multimap_disksim::{
    coalesce_sorted, request_payload, BatchTiming, DiskGeometry, Lbn, Request, ServiceEvent,
    Transition,
};
use multimap_lvm::{LogicalVolume, SchedulePolicy};
use multimap_telemetry::{Counter, MetricsSink, Phase, Span};

use crate::cache::{BlockCache, CacheProbe, PrefetchContext};
use crate::error::{QueryError, Result};

/// [`QueryError::RegionOutsideGrid`] for a region/grid pair.
pub(crate) fn region_outside(region: &BoxRegion, grid: &GridSpec) -> QueryError {
    QueryError::RegionOutsideGrid {
        region: format!("lo {:?} hi {:?}", region.lo(), region.hi()),
        grid: grid.extents().to_vec(),
    }
}

/// How beam-query blocks are handed to the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeamPolicy {
    /// Paper behaviour: SPTF for MultiMap (within a size limit),
    /// ascending LBN order for the linearised mappings.
    Auto,
    /// Always sort ascending.
    Ascending,
    /// Always SPTF.
    Sptf,
    /// Issue in the dataset's natural cell order (no sorting) — the
    /// ablation for the paper's remark that sorting "significantly
    /// improves performance in practice".
    Natural,
}

/// How range-query blocks are ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RangeOrder {
    /// Sort all LBNs ascending, coalesce contiguous runs, and let the
    /// disk's queue-limited SPTF scheduler reorder within its command
    /// queue (paper behaviour for every mapping: the storage manager
    /// sorts; the disk's internal scheduler does the rest).
    SortedCoalesced,
    /// Like [`RangeOrder::SortedCoalesced`] but strictly FIFO at the
    /// disk (ablation: no command queueing).
    SortedCoalescedFifo,
    /// Sort ascending but issue single-block requests (no coalescing).
    SortedSingles,
    /// Issue cell by cell in row-major order (ablation).
    NaturalCellOrder,
}

/// Executor tunables.
///
/// Non-exhaustive: construct with [`ExecOptions::default`] or
/// [`ExecOptions::builder`], so future knobs are not breaking changes.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct ExecOptions {
    /// Beam policy (default [`BeamPolicy::Auto`]).
    pub beam: BeamPolicy,
    /// Range policy (default [`RangeOrder::SortedCoalesced`]).
    pub range: RangeOrder,
    /// Largest batch the full-SPTF scheduler is applied to; larger
    /// MultiMap beams fall back to queued SPTF. With the profiled
    /// estimator the selection loop is cheap per round, so the default
    /// covers every paper-scale beam (the largest is `S_i` cells).
    pub sptf_limit: usize,
    /// Disk command-queue depth for queued-SPTF service (SCSI TCQ).
    pub queue_depth: usize,
    /// Serve large-region translations from the process-wide flat
    /// cell→LBN table cache (see [`multimap_core::TranslationCache`]).
    /// Purely an executor-side optimisation — results are identical.
    pub translation_cache: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            beam: BeamPolicy::Auto,
            range: RangeOrder::SortedCoalesced,
            sptf_limit: 4096,
            queue_depth: 64,
            translation_cache: true,
        }
    }
}

impl ExecOptions {
    /// A builder starting from the default (paper) options.
    pub fn builder() -> ExecOptionsBuilder {
        ExecOptionsBuilder::default()
    }
}

/// Builder for [`ExecOptions`]; every knob defaults to the paper value.
///
/// ```
/// use multimap_query::{BeamPolicy, ExecOptions};
/// let opts = ExecOptions::builder()
///     .beam(BeamPolicy::Sptf)
///     .translation_cache(false)
///     .build();
/// assert!(!opts.translation_cache);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptionsBuilder {
    opts: ExecOptions,
}

impl ExecOptionsBuilder {
    /// Set the beam policy.
    pub fn beam(mut self, beam: BeamPolicy) -> Self {
        self.opts.beam = beam;
        self
    }

    /// Set the range ordering policy.
    pub fn range(mut self, range: RangeOrder) -> Self {
        self.opts.range = range;
        self
    }

    /// Set the full-SPTF batch-size limit.
    pub fn sptf_limit(mut self, limit: usize) -> Self {
        self.opts.sptf_limit = limit;
        self
    }

    /// Set the queued-SPTF command-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.opts.queue_depth = depth;
        self
    }

    /// Enable or disable the flat-translation cache.
    pub fn translation_cache(mut self, on: bool) -> Self {
        self.opts.translation_cache = on;
        self
    }

    /// Finish the build.
    pub fn build(self) -> ExecOptions {
        self.opts
    }
}

/// The operation a [`QueryRequest`] performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOp {
    /// Fetch every cell of the region as individual cell requests (the
    /// region is usually a line along one dimension).
    Beam,
    /// Fetch every cell of an N-D box, ordered per
    /// [`ExecOptions::range`].
    Range,
}

/// One query for [`QueryExecutor::execute`]: the mapping and region to
/// fetch, the operation, and optional observation hooks.
///
/// ```
/// use multimap_core::{BoxRegion, GridSpec, NaiveMapping};
/// use multimap_disksim::profiles;
/// use multimap_lvm::LogicalVolume;
/// use multimap_query::{QueryExecutor, QueryRequest};
///
/// let volume = LogicalVolume::new(profiles::small(), 1);
/// let grid = GridSpec::new([60u64, 8, 6]);
/// let mapping = NaiveMapping::new(grid.clone(), 0);
/// let exec = QueryExecutor::new(&volume, 0);
/// let result = exec
///     .execute(QueryRequest::beam(&mapping, &BoxRegion::beam(&grid, 1, &[3, 0, 2])))
///     .unwrap();
/// assert_eq!(result.cells, 8);
/// ```
pub struct QueryRequest<'a> {
    pub(crate) mapping: &'a dyn Mapping,
    pub(crate) region: &'a BoxRegion,
    pub(crate) op: QueryOp,
    pub(crate) observer: Option<&'a mut dyn FnMut(ServiceEvent)>,
    pub(crate) sink: Option<&'a mut dyn MetricsSink>,
    pub(crate) cache: Option<&'a dyn BlockCache>,
}

impl<'a> QueryRequest<'a> {
    /// A request for `op` over `region` under `mapping`.
    pub fn new(op: QueryOp, mapping: &'a dyn Mapping, region: &'a BoxRegion) -> Self {
        QueryRequest {
            mapping,
            region,
            op,
            observer: None,
            sink: None,
            cache: None,
        }
    }

    /// A beam query (shorthand for [`QueryRequest::new`]).
    pub fn beam(mapping: &'a dyn Mapping, region: &'a BoxRegion) -> Self {
        QueryRequest::new(QueryOp::Beam, mapping, region)
    }

    /// A range query (shorthand for [`QueryRequest::new`]).
    pub fn range(mapping: &'a dyn Mapping, region: &'a BoxRegion) -> Self {
        QueryRequest::new(QueryOp::Range, mapping, region)
    }

    /// Attach a per-request observer: the scheduler emits one
    /// [`ServiceEvent`] per serviced request, letting a conformance
    /// oracle audit every disk decision the query caused.
    pub fn with_observer(mut self, observer: &'a mut dyn FnMut(ServiceEvent)) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attach a metrics sink recording phase histograms, cache counters
    /// and span timings for this query (see `multimap-telemetry`).
    pub fn with_sink(mut self, sink: &'a mut dyn MetricsSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a page cache: resident cells are delivered without disk
    /// I/O and the cache's prefetch plan rides the demand batch (see
    /// [`BlockCache`]). Without a cache the executor takes the exact
    /// pre-cache code path — byte-identical timings.
    pub fn with_cache(mut self, cache: &'a dyn BlockCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The operation requested.
    pub fn op(&self) -> QueryOp {
        self.op
    }

    /// The mapping queried.
    pub fn mapping(&self) -> &dyn Mapping {
        self.mapping
    }

    /// The region queried.
    pub fn region(&self) -> &BoxRegion {
        self.region
    }
}

/// Measured outcome of one query.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Cells fetched.
    pub cells: u64,
    /// Blocks transferred.
    pub blocks: u64,
    /// Requests issued to the disk.
    pub requests: u64,
    /// Total I/O time in milliseconds.
    pub total_io_ms: f64,
    /// Order-independent checksum of the logical blocks delivered (see
    /// [`multimap_disksim::request_payload`]): two runs of the same
    /// query that report equal payloads returned exactly the same data,
    /// however scheduling or fault recovery reordered or split it. The
    /// conformance fault sweep pins this against the fault-free run.
    pub payload: u64,
}

impl QueryResult {
    fn from_batch(batch: BatchTiming, cells: u64) -> Self {
        QueryResult {
            cells,
            blocks: batch.blocks,
            requests: batch.requests,
            total_io_ms: batch.total_ms,
            payload: batch.payload,
        }
    }

    /// Average I/O time per cell (the paper's beam-query metric).
    pub fn per_cell_ms(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.total_io_ms / self.cells as f64
        }
    }

    /// Accumulate another query's result (for multi-run averages).
    pub fn accumulate(&mut self, other: &QueryResult) {
        self.cells += other.cells;
        self.blocks += other.blocks;
        self.requests += other.requests;
        self.total_io_ms += other.total_io_ms;
        self.payload = self.payload.wrapping_add(other.payload);
    }
}

/// Record one serviced request's timing decomposition into a sink.
///
/// The positioning charge lands in exactly one of [`Phase::Seek`] /
/// [`Phase::Settle`] (per the transition classification) and zero
/// charges are skipped, so the five phase sums add up *exactly* to the
/// batch's total service time — the conformance oracle's cross-check.
/// Public so other service paths (the store's write-back batcher) can
/// record the identical decomposition.
pub fn record_service_event(sink: &mut dyn MetricsSink, geom: &DiskGeometry, e: &ServiceEvent) {
    record_classified_event(sink, e.transition(geom), e)
}

/// [`record_service_event`] with the transition classification supplied
/// by the caller — the form the backend-generic executor uses, where
/// classification is the backend's job
/// ([`multimap_disksim::DeviceModel::classify`]) rather than a
/// settle-plateau comparison against rotating-disk geometry.
pub fn record_classified_event(sink: &mut dyn MetricsSink, transition: Transition, e: &ServiceEvent) {
    let t = e.timing;
    sink.counter(Counter::RequestsServiced, 1);
    if e.is_prefetch_hit() {
        sink.counter(Counter::PrefetchHit, 1);
    }
    sink.phase(Phase::Overhead, t.overhead_ms);
    match transition {
        Transition::Sequential => {}
        Transition::AdjacencyHop => {
            sink.counter(Counter::AdjacencyHop, 1);
            sink.phase(Phase::Settle, t.seek_ms);
        }
        Transition::Seek => {
            sink.counter(Counter::SeekTransition, 1);
            sink.phase(Phase::Seek, t.seek_ms);
        }
    }
    sink.phase(Phase::Rotation, t.rotation_ms);
    sink.phase(Phase::Transfer, t.transfer_ms);
    if !e.fault.is_clean() {
        let f = e.fault;
        sink.counter(Counter::TransientFault, f.transients as u64);
        sink.counter(Counter::MediaFault, f.media_errors as u64);
        sink.counter(Counter::SlowRead, f.slow_reads as u64);
        sink.counter(Counter::RetryAttempt, f.retries as u64);
        sink.counter(Counter::BadBlockRemap, f.remaps as u64);
        // recovery_ms is `elapsed - components` and can carry a tiny
        // negative float residue on recovered requests whose components
        // happen to sum high; only a positive charge is a real phase.
        if f.recovery_ms > 0.0 {
            sink.phase(Phase::Recovery, f.recovery_ms);
        }
    }
    // Clean requests record exactly the component total, keeping
    // fault-free runs bit-identical to builds without fault support.
    sink.service_time(e.elapsed_ms());
}

/// Serve a batch, splitting out requests that touch remapped blocks.
///
/// A hard media error relocates a block into its track's spare region,
/// so the cell loses the adjacency the mapping promised: semi-sequential
/// scheduling (SPTF hop chains, prefetch runs) no longer describes its
/// true position. When the disk carries remaps, requests overlapping a
/// remapped range are pulled out of the primary batch and served
/// afterwards as plain scheduled seeks in ascending LBN order; healthy
/// requests keep the chosen policy. On a disk with no remaps (including
/// every fault-free run) this is exactly one batch under `policy` —
/// byte-identical to the pre-fault-injection executor.
fn serve_split_degraded(
    volume: &LogicalVolume,
    disk: usize,
    requests: &[Request],
    policy: SchedulePolicy,
    record: &mut dyn FnMut(ServiceEvent),
) -> Result<BatchTiming> {
    if volume.has_recovery() && volume.remap_count(disk)? > 0 {
        let mut healthy = Vec::with_capacity(requests.len());
        let mut degraded = Vec::new();
        for &r in requests {
            if volume.is_degraded_range(disk, r.lbn, r.nblocks)? {
                degraded.push(r);
            } else {
                healthy.push(r);
            }
        }
        if !degraded.is_empty() {
            let mut batch = volume.service_batch_observed(disk, &healthy, policy, record)?;
            let tail = volume.service_batch_observed(
                disk,
                &degraded,
                SchedulePolicy::AscendingLbn,
                record,
            )?;
            batch.merge(&tail);
            return Ok(batch);
        }
    }
    Ok(volume.service_batch_observed(disk, requests, policy, record)?)
}

/// Record a batch's scheduler-internal counters into a sink (the tail
/// block shared by every service path).
pub(crate) fn record_sched_stats(s: &mut dyn MetricsSink, batch: &BatchTiming) {
    s.counter(Counter::SeekMemoHit, batch.sched.seek_memo_hits);
    s.counter(Counter::SeekMemoMiss, batch.sched.seek_memo_misses);
    s.counter(Counter::SptfWindowEviction, batch.sched.window_evictions);
    s.counter(Counter::SptfBucketScan, batch.sched.bucket_scans);
    s.counter(Counter::SptfCandidateExamined, batch.sched.candidates_examined);
    s.counter(Counter::SptfSelectorRepair, batch.sched.selector_repairs);
}

/// The translated, policy-resolved inputs [`QueryExecutor::execute`]
/// hands to the cached service path.
struct CachedPlan<'a> {
    mapping: &'a dyn Mapping,
    region: &'a BoxRegion,
    op: QueryOp,
    beam_policy: Option<SchedulePolicy>,
    cell_blocks: u64,
    lbns: Vec<Lbn>,
}

/// Span bookkeeping carried into the cached service path (the schedule
/// span opens before the probe loop, in `execute`).
struct CachedServiceTiming {
    timed: bool,
    t_schedule: Option<Instant>,
}

/// Close a span opened with `Instant::now()` (no-op without a sink).
fn finish_span(sink: &mut Option<&mut dyn MetricsSink>, span: Span, started: Option<Instant>) {
    if let (Some(s), Some(t)) = (sink.as_deref_mut(), started) {
        s.span(span, t.elapsed().as_secs_f64() * 1e3);
    }
}

/// Executes beam and range queries for one mapping on one disk of a
/// logical volume.
pub struct QueryExecutor<'a> {
    volume: &'a LogicalVolume,
    disk: usize,
    options: ExecOptions,
}

impl<'a> QueryExecutor<'a> {
    /// Executor with default (paper) options.
    pub fn new(volume: &'a LogicalVolume, disk: usize) -> Self {
        Self::with_options(volume, disk, ExecOptions::default())
    }

    /// Executor with explicit options.
    pub fn with_options(volume: &'a LogicalVolume, disk: usize, options: ExecOptions) -> Self {
        QueryExecutor {
            volume,
            disk,
            options,
        }
    }

    /// The options in effect.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Map every cell of `region` to the first LBN of its cell, in
    /// row-major cell order. The second value reports the translation
    /// cache outcome: `None` when the cache was not consulted.
    fn region_lbns(
        &self,
        mapping: &dyn Mapping,
        region: &BoxRegion,
    ) -> Result<(Vec<Lbn>, Option<bool>)> {
        translate_region(&self.options, mapping, region)
    }

    /// Resolve the schedule policy for a beam of `ncells` requests.
    fn beam_schedule(&self, mapping: &dyn Mapping, ncells: u64) -> SchedulePolicy {
        resolve_beam_schedule(&self.options, mapping, ncells)
    }

    /// Run one query end to end: plan, translate, schedule, service.
    ///
    /// This is the single entry point every query takes. When the
    /// request carries a sink, the four phases are span-timed
    /// (wall clock) and every serviced request's timing decomposition,
    /// transition class and cache outcome is recorded — reading only
    /// simulator *outputs*, so results and simulated clocks are
    /// byte-identical with or without a sink attached.
    pub fn execute(&self, req: QueryRequest<'_>) -> Result<QueryResult> {
        let QueryRequest {
            mapping,
            region,
            op,
            mut observer,
            mut sink,
            cache,
        } = req;
        let timed = sink.is_some();

        // Plan: validate the region and resolve the schedule policy.
        let t_plan = timed.then(Instant::now);
        if !region.fits(mapping.grid()) {
            return Err(region_outside(region, mapping.grid()));
        }
        let cell_blocks = mapping.cell_blocks();
        let beam_policy = match op {
            QueryOp::Beam => Some(self.beam_schedule(mapping, region.cells())),
            QueryOp::Range => None,
        };
        finish_span(&mut sink, Span::Plan, t_plan);

        // Translate: region cells → LBNs (direct or via the flat table).
        let t_translate = timed.then(Instant::now);
        let (lbns, cache_hit) = self.region_lbns(mapping, region)?;
        if let Some(s) = sink.as_deref_mut() {
            match cache_hit {
                Some(true) => s.counter(Counter::TranslationCacheHit, 1),
                Some(false) => s.counter(Counter::TranslationCacheMiss, 1),
                None => {}
            }
        }
        finish_span(&mut sink, Span::Translate, t_translate);
        let cells = lbns.len() as u64;

        // Cached path: probe resident pages, fetch only the misses
        // (plus the cache's prefetch plan) in one batch. Taken only
        // when a cache is attached, so cache-off runs stay
        // byte-identical to builds without cache support.
        if let Some(cache) = cache {
            let timing = CachedServiceTiming {
                timed,
                t_schedule: timed.then(Instant::now),
            };
            let plan = CachedPlan {
                mapping,
                region,
                op,
                beam_policy,
                cell_blocks,
                lbns,
            };
            return self.execute_cached(plan, cache, &mut observer, &mut sink, timing);
        }

        // Schedule: build the request batch in issue order.
        let t_schedule = timed.then(Instant::now);
        let (requests, policy) = self.build_requests(op, beam_policy, lbns, cell_blocks);
        finish_span(&mut sink, Span::Schedule, t_schedule);

        // Service: hand the batch to the volume's scheduler.
        let t_service = timed.then(Instant::now);
        let geom = self.volume.geometry();
        let batch = {
            let mut tap = sink.as_deref_mut();
            let mut record = |e: ServiceEvent| {
                if let Some(s) = tap.as_deref_mut() {
                    record_service_event(s, geom, &e);
                }
                if let Some(o) = observer.as_mut() {
                    o(e);
                }
            };
            serve_split_degraded(self.volume, self.disk, &requests, policy, &mut record)?
        };
        finish_span(&mut sink, Span::Service, t_service);
        if let Some(s) = sink {
            record_sched_stats(s, &batch);
        }
        Ok(QueryResult::from_batch(batch, cells))
    }

    /// Build the disk request batch (issue order plus schedule policy)
    /// for cell-start `lbns` under this executor's options. Shared by
    /// the cached and uncached paths, so a cache that misses every
    /// probe issues exactly the batch an uncached run would.
    fn build_requests(
        &self,
        op: QueryOp,
        beam_policy: Option<SchedulePolicy>,
        lbns: Vec<Lbn>,
        cell_blocks: u64,
    ) -> (Vec<Request>, SchedulePolicy) {
        plan_requests(&self.options, op, beam_policy, lbns, cell_blocks)
    }

    /// Serve one query through an attached [`BlockCache`].
    ///
    /// Resident cells are delivered without disk I/O; the misses are
    /// scheduled exactly as an uncached query over those cells would
    /// be, and the cache's prefetch plan is appended to the same batch
    /// so speculative reads ride the scheduler (SPTF and coalescing see
    /// demand + prefetch together). The result's `payload` covers every
    /// demanded cell — cached or fetched — so it equals the uncached
    /// run's payload; `blocks`/`requests`/`total_io_ms` report the disk
    /// traffic that actually happened.
    fn execute_cached(
        &self,
        plan: CachedPlan<'_>,
        cache: &dyn BlockCache,
        observer: &mut Option<&mut dyn FnMut(ServiceEvent)>,
        sink: &mut Option<&mut dyn MetricsSink>,
        timing: CachedServiceTiming,
    ) -> Result<QueryResult> {
        let CachedPlan {
            mapping,
            region,
            op,
            beam_policy,
            cell_blocks,
            lbns,
        } = plan;
        let cells = lbns.len() as u64;

        // Probe: split the demand set into resident hits and misses.
        let mut missed: Vec<Lbn> = Vec::new();
        let mut hits = 0u64;
        let mut prefetch_used = 0u64;
        for &l in &lbns {
            match cache.probe(l) {
                CacheProbe::Hit { first_prefetch_use } => {
                    hits += 1;
                    if first_prefetch_use {
                        prefetch_used += 1;
                    }
                }
                CacheProbe::Miss => missed.push(l),
            }
        }
        // The delivered data is the same whether a cell came from a
        // resident page or a fresh read, and `request_payload` is a
        // pure per-block sum — so charging every demanded cell keeps
        // the payload bit-identical to an uncached run of this query.
        let payload = lbns.iter().fold(0u64, |acc, &l| {
            acc.wrapping_add(request_payload(Request::new(l, cell_blocks)))
        });
        let misses = missed.len() as u64;

        // Plan prefetch — even on an all-hit query, so stream detection
        // keeps tracking the query sequence and can run ahead of it.
        let prefetch = cache.plan_prefetch(&PrefetchContext {
            mapping,
            region,
            demand: &lbns,
            missed: &missed,
            lbn_limit: self.volume.geometry().total_blocks(),
        });

        // Schedule the misses exactly as an uncached query over them
        // would be scheduled, then append the speculative reads.
        let (mut requests, policy) =
            self.build_requests(op, beam_policy, missed.clone(), cell_blocks);
        requests.extend(prefetch.iter().map(|&l| Request::new(l, cell_blocks)));
        finish_span(sink, Span::Schedule, timing.t_schedule);

        // Service the combined batch (skipped when everything was
        // resident and no prefetch is due).
        let t_service = timing.timed.then(Instant::now);
        let geom = self.volume.geometry();
        let batch = if requests.is_empty() {
            BatchTiming::default()
        } else {
            let mut tap = sink.as_deref_mut();
            let mut record = |e: ServiceEvent| {
                if let Some(s) = tap.as_deref_mut() {
                    record_service_event(s, geom, &e);
                }
                if let Some(o) = observer.as_mut() {
                    o(e);
                }
            };
            serve_split_degraded(self.volume, self.disk, &requests, policy, &mut record)?
        };
        finish_span(sink, Span::Service, t_service);

        // Admission order is part of the deterministic contract:
        // demand misses first (cell order), then prefetched pages.
        for &l in &missed {
            cache.admit(l, cell_blocks, false);
        }
        for &l in &prefetch {
            cache.admit(l, cell_blocks, true);
        }

        if let Some(s) = sink.as_deref_mut() {
            s.counter(Counter::PageCacheHit, hits);
            s.counter(Counter::PageCacheMiss, misses);
            s.counter(Counter::CachePrefetchIssued, prefetch.len() as u64);
            s.counter(Counter::CachePrefetchUsed, prefetch_used);
            record_sched_stats(s, &batch);
        }
        Ok(QueryResult {
            cells,
            blocks: batch.blocks,
            requests: batch.requests,
            total_io_ms: batch.total_ms,
            payload,
        })
    }

}

/// Map every cell of `region` to the first LBN of its cell, in
/// row-major cell order, under `options`' translation-cache setting.
/// The second value reports the translation cache outcome: `None` when
/// the cache was not consulted.
pub(crate) fn translate_region(
    options: &ExecOptions,
    mapping: &dyn Mapping,
    region: &BoxRegion,
) -> Result<(Vec<Lbn>, Option<bool>)> {
    let mut lbns = Vec::with_capacity(region.cells().min(1 << 26) as usize);
    // Large regions amortise a flat cell→LBN table (built once per
    // grid, shared process-wide); small ones — beams are `S_i` cells
    // — translate directly, as a table build would dwarf the query.
    if options.translation_cache && region.cells() >= MIN_CACHED_LOOKUPS {
        let (table, cache_hit) = shared_cache().translate_tracked(mapping)?;
        let mut failed = None;
        region.for_each_cell(|c| {
            if failed.is_some() {
                return;
            }
            match table.lbn_of(c) {
                Ok(lbn) => lbns.push(lbn),
                Err(e) => failed = Some(e),
            }
        });
        return match failed {
            Some(e) => Err(e.into()),
            None => Ok((lbns, Some(cache_hit))),
        };
    }
    let mut failed = None;
    region.for_each_cell(|c| {
        if failed.is_some() {
            return;
        }
        match mapping.lbn_of(c) {
            Ok(lbn) => lbns.push(lbn),
            Err(e) => failed = Some(e),
        }
    });
    match failed {
        Some(e) => Err(e.into()),
        None => Ok((lbns, None)),
    }
}

/// Resolve the schedule policy for a beam of `ncells` requests under
/// `options` — shared by the volume-bound and backend-generic executors.
pub(crate) fn resolve_beam_schedule(
    options: &ExecOptions,
    mapping: &dyn Mapping,
    ncells: u64,
) -> SchedulePolicy {
    match options.beam {
        BeamPolicy::Ascending => SchedulePolicy::AscendingLbn,
        BeamPolicy::Sptf => SchedulePolicy::Sptf,
        BeamPolicy::Natural => SchedulePolicy::InOrder,
        BeamPolicy::Auto => match mapping.kind() {
            MappingKind::MultiMap if ncells <= options.sptf_limit as u64 => SchedulePolicy::Sptf,
            MappingKind::MultiMap => SchedulePolicy::QueuedSptf(options.queue_depth),
            _ => SchedulePolicy::AscendingLbn,
        },
    }
}

/// Build the device request batch (issue order plus schedule policy)
/// for cell-start `lbns` under `options` — shared by the volume-bound
/// and backend-generic executors, so a query issues the identical batch
/// whichever device model serves it.
pub(crate) fn plan_requests(
    options: &ExecOptions,
    op: QueryOp,
    beam_policy: Option<SchedulePolicy>,
    mut lbns: Vec<Lbn>,
    cell_blocks: u64,
) -> (Vec<Request>, SchedulePolicy) {
    match (op, beam_policy) {
        (QueryOp::Beam, Some(policy)) => {
            let requests: Vec<Request> =
                lbns.iter().map(|&l| Request::new(l, cell_blocks)).collect();
            (requests, policy)
        }
        _ => match options.range {
            RangeOrder::NaturalCellOrder => {
                let requests: Vec<Request> =
                    lbns.iter().map(|&l| Request::new(l, cell_blocks)).collect();
                (requests, SchedulePolicy::InOrder)
            }
            RangeOrder::SortedSingles => {
                lbns.sort_unstable();
                let requests: Vec<Request> =
                    lbns.iter().map(|&l| Request::new(l, cell_blocks)).collect();
                (requests, SchedulePolicy::InOrder)
            }
            RangeOrder::SortedCoalesced | RangeOrder::SortedCoalescedFifo => {
                let policy = if options.range == RangeOrder::SortedCoalesced {
                    SchedulePolicy::QueuedSptf(options.queue_depth)
                } else {
                    SchedulePolicy::InOrder
                };
                lbns.sort_unstable();
                let requests = if cell_blocks == 1 {
                    coalesce_sorted(&lbns)
                } else {
                    // Expand cells into block runs before coalescing.
                    coalesce_cells(&lbns, cell_blocks)
                };
                (requests, policy)
            }
        },
    }
}

/// Service an explicit set of single-block LBNs (one per cell) on one
/// disk — the path used for octree-leaf datasets, where cells are leaves
/// rather than grid coordinates.
///
/// `sptf` issues the whole batch to the disk scheduler (MultiMap beams);
/// otherwise LBNs are sorted ascending and coalesced (the linearised
/// mappings' policy).
pub fn service_lbns(
    volume: &LogicalVolume,
    disk: usize,
    lbns: &[Lbn],
    sptf: bool,
) -> Result<QueryResult> {
    service_lbns_sinked(volume, disk, lbns, sptf, None)
}

/// [`service_lbns`] with an optional metrics sink recording the same
/// per-request decomposition the executor path records.
pub fn service_lbns_sinked(
    volume: &LogicalVolume,
    disk: usize,
    lbns: &[Lbn],
    sptf: bool,
    mut sink: Option<&mut dyn MetricsSink>,
) -> Result<QueryResult> {
    let cells = lbns.len() as u64;
    let geom = volume.geometry();
    let t_service = sink.is_some().then(Instant::now);
    let batch = {
        let mut tap = sink.as_deref_mut();
        let mut record = |e: ServiceEvent| {
            if let Some(s) = tap.as_deref_mut() {
                record_service_event(s, geom, &e);
            }
        };
        if sptf {
            let requests: Vec<Request> = lbns.iter().map(|&l| Request::single(l)).collect();
            serve_split_degraded(volume, disk, &requests, SchedulePolicy::Sptf, &mut record)?
        } else {
            let mut sorted = lbns.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let requests = coalesce_sorted(&sorted);
            serve_split_degraded(volume, disk, &requests, SchedulePolicy::InOrder, &mut record)?
        }
    };
    finish_span(&mut sink, Span::Service, t_service);
    if let Some(s) = sink {
        record_sched_stats(s, &batch);
    }
    Ok(QueryResult::from_batch(batch, cells))
}

/// Coalesce sorted cell-start LBNs (each `cell_blocks` long) into maximal
/// contiguous requests.
fn coalesce_cells(sorted_starts: &[Lbn], cell_blocks: u64) -> Vec<Request> {
    let mut out = Vec::new();
    let mut iter = sorted_starts.iter().copied();
    let Some(first) = iter.next() else {
        return out;
    };
    let mut start = first;
    let mut len = cell_blocks;
    let mut expected_next = first + cell_blocks;
    for lbn in iter {
        if lbn == expected_next {
            len += cell_blocks;
        } else {
            out.push(Request::new(start, len));
            start = lbn;
            len = cell_blocks;
        }
        expected_next = lbn + cell_blocks;
    }
    out.push(Request::new(start, len));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::{GridSpec, MultiMapping, NaiveMapping};
    use multimap_disksim::profiles;
    use multimap_telemetry::Metrics;

    fn setup() -> (LogicalVolume, GridSpec) {
        (
            LogicalVolume::new(profiles::small(), 1),
            GridSpec::new([60u64, 8, 6]),
        )
    }

    #[test]
    fn beam_fetches_every_cell_once() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::beam(&grid, 1, &[3, 0, 2]);
        let r = exec.execute(QueryRequest::beam(&naive, &region)).unwrap();
        assert_eq!(r.cells, 8);
        assert_eq!(r.blocks, 8);
        assert_eq!(r.requests, 8);
        assert!(r.total_io_ms > 0.0);
        assert!((r.per_cell_ms() - r.total_io_ms / 8.0).abs() < 1e-12);
    }

    #[test]
    fn range_coalesces_naive_dim0_runs() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::new([0u64, 0, 0], [59u64, 1, 0]);
        let r = exec.execute(QueryRequest::range(&naive, &region)).unwrap();
        assert_eq!(r.cells, 120);
        // Two Dim1 rows are LBN-contiguous under row-major order.
        assert_eq!(r.requests, 1);
    }

    #[test]
    fn multimap_beam_uses_semi_sequential_access() {
        let (vol, grid) = setup();
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::beam(&grid, 1, &[0, 0, 0]);
        let r = exec.execute(QueryRequest::beam(&mm, &region)).unwrap();
        assert_eq!(r.cells, 8);
        // Dominated by settle time, far below half-revolution latency.
        let settle = vol.geometry().settle_ms;
        assert!(
            r.per_cell_ms() < settle + 1.0,
            "per-cell {} too slow",
            r.per_cell_ms()
        );
    }

    #[test]
    fn multimap_beats_naive_on_nonprimary_beam() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::beam(&grid, 2, &[5, 3, 0]);
        let rn = exec.execute(QueryRequest::beam(&naive, &region)).unwrap();
        vol.reset();
        let rm = exec.execute(QueryRequest::beam(&mm, &region)).unwrap();
        assert!(
            rm.total_io_ms < rn.total_io_ms,
            "multimap {} vs naive {}",
            rm.total_io_ms,
            rn.total_io_ms
        );
    }

    /// The shorthand constructors are thin: byte-identical results to
    /// spelling out [`QueryRequest::new`], and an attached observer sees
    /// exactly one event per serviced request.
    #[test]
    fn request_shorthands_match_explicit_construction() {
        let (vol, grid) = setup();
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let beam = BoxRegion::beam(&grid, 1, &[3, 0, 2]);
        let short = exec.execute(QueryRequest::beam(&mm, &beam)).unwrap();
        vol.reset();
        let explicit = exec
            .execute(QueryRequest::new(QueryOp::Beam, &mm, &beam))
            .unwrap();
        assert_eq!(short, explicit);
        assert_eq!(short.total_io_ms.to_bits(), explicit.total_io_ms.to_bits());

        let range = BoxRegion::new([0u64, 0, 0], [20u64, 5, 3]);
        vol.reset();
        let short = exec.execute(QueryRequest::range(&mm, &range)).unwrap();
        vol.reset();
        let explicit = exec
            .execute(QueryRequest::new(QueryOp::Range, &mm, &range))
            .unwrap();
        assert_eq!(short, explicit);
        let mut events = 0usize;
        vol.reset();
        let mut count = |_: ServiceEvent| events += 1;
        let observed = exec
            .execute(QueryRequest::beam(&mm, &beam).with_observer(&mut count))
            .unwrap();
        assert_eq!(events as u64, observed.requests);
    }

    #[test]
    fn sorted_range_no_slower_than_natural_order() {
        let (vol, grid) = setup();
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let region = BoxRegion::new([0u64, 0, 0], [40u64, 5, 3]);

        let sorted = QueryExecutor::new(&vol, 0)
            .execute(QueryRequest::range(&mm, &region))
            .unwrap();
        vol.reset();
        let natural = QueryExecutor::with_options(
            &vol,
            0,
            ExecOptions::builder()
                .range(RangeOrder::NaturalCellOrder)
                .build(),
        )
        .execute(QueryRequest::range(&mm, &region))
        .unwrap();
        assert_eq!(sorted.cells, natural.cells);
        assert!(sorted.total_io_ms <= natural.total_io_ms * 1.01 + 0.5);
    }

    /// The flat-table fast path must be invisible: a range big enough to
    /// engage the cache yields bit-identical timing to the direct path.
    #[test]
    fn translation_cache_is_transparent() {
        let vol = LogicalVolume::new(profiles::small(), 1);
        // > MIN_CACHED_LOOKUPS cells so the cached path engages.
        let grid = GridSpec::new([60u64, 12, 8]);
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let region = grid.bounding_region();
        assert!(region.cells() >= multimap_core::MIN_CACHED_LOOKUPS);

        let cached = QueryExecutor::new(&vol, 0)
            .execute(QueryRequest::range(&mm, &region))
            .unwrap();
        vol.reset();
        let direct = QueryExecutor::with_options(
            &vol,
            0,
            ExecOptions::builder().translation_cache(false).build(),
        )
        .execute(QueryRequest::range(&mm, &region))
        .unwrap();
        assert_eq!(cached, direct);
        assert_eq!(cached.total_io_ms.to_bits(), direct.total_io_ms.to_bits());
    }

    /// A sink must not change the result, and its phase sums must add
    /// up exactly to the measured total I/O time.
    #[test]
    fn sink_is_transparent_and_sums_to_total() {
        let (vol, grid) = setup();
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::beam(&grid, 2, &[5, 3, 0]);

        let bare = exec.execute(QueryRequest::beam(&mm, &region)).unwrap();
        vol.reset();
        let mut metrics = Metrics::new();
        let observed = exec
            .execute(QueryRequest::beam(&mm, &region).with_sink(&mut metrics))
            .unwrap();
        assert_eq!(bare, observed);
        assert_eq!(bare.total_io_ms.to_bits(), observed.total_io_ms.to_bits());
        assert_eq!(
            metrics.counter_value(Counter::RequestsServiced),
            observed.requests
        );
        assert!(
            (metrics.phase_sum_ms() - observed.total_io_ms).abs() < 1e-9,
            "phase sums {} vs total {}",
            metrics.phase_sum_ms(),
            observed.total_io_ms
        );
        assert!(
            (metrics.service_hist().sum_ms() - observed.total_io_ms).abs() < 1e-9,
            "service histogram must sum to the total"
        );
        // A MultiMap off-primary beam is dominated by adjacency hops.
        assert!(metrics.counter_value(Counter::AdjacencyHop) > 0);
        // All four executor spans fired exactly once.
        for s in Span::ALL {
            assert_eq!(metrics.span_stat(s).count, 1, "{s:?}");
        }
    }

    /// A large cached range records a translation-cache outcome; the
    /// memo counters ride along on SPTF beams.
    #[test]
    fn sink_records_cache_counters() {
        let vol = LogicalVolume::new(profiles::small(), 1);
        let grid = GridSpec::new([61u64, 12, 8]);
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let region = grid.bounding_region();
        let exec = QueryExecutor::new(&vol, 0);
        let mut first = Metrics::new();
        exec.execute(QueryRequest::range(&mm, &region).with_sink(&mut first))
            .unwrap();
        let mut second = Metrics::new();
        exec.execute(QueryRequest::range(&mm, &region).with_sink(&mut second))
            .unwrap();
        assert_eq!(
            first.counter_value(Counter::TranslationCacheHit)
                + first.counter_value(Counter::TranslationCacheMiss),
            1
        );
        // The second run must hit: the first populated the shared LRU.
        assert_eq!(second.counter_value(Counter::TranslationCacheHit), 1);

        let mut beam_metrics = Metrics::new();
        let beam = BoxRegion::beam(&grid, 1, &[0, 0, 0]);
        exec.execute(QueryRequest::beam(&mm, &beam).with_sink(&mut beam_metrics))
            .unwrap();
        // Full SPTF ran: the memo saw every positioning lookup.
        assert!(
            beam_metrics.counter_value(Counter::SeekMemoHit)
                + beam_metrics.counter_value(Counter::SeekMemoMiss)
                > 0
        );
    }

    /// An unbounded test cache: enough to pin the executor's cached
    /// service path without pulling in the real store-side page cache.
    #[derive(Default)]
    struct TestCache {
        pages: std::cell::RefCell<std::collections::BTreeMap<Lbn, (bool, bool)>>,
    }

    impl BlockCache for TestCache {
        fn probe(&self, lbn: Lbn) -> CacheProbe {
            let mut pages = self.pages.borrow_mut();
            match pages.get_mut(&lbn) {
                Some((prefetched, used)) => {
                    let first = *prefetched && !*used;
                    *used = true;
                    CacheProbe::Hit {
                        first_prefetch_use: first,
                    }
                }
                None => CacheProbe::Miss,
            }
        }

        fn plan_prefetch(&self, _ctx: &PrefetchContext<'_>) -> Vec<Lbn> {
            Vec::new()
        }

        fn admit(&self, lbn: Lbn, _nblocks: u64, prefetched: bool) {
            self.pages.borrow_mut().insert(lbn, (prefetched, false));
        }
    }

    /// A cache that misses every probe and plans no prefetch must leave
    /// the serviced batch — and thus every timing bit — unchanged.
    #[test]
    fn cold_cache_is_byte_identical_to_uncached() {
        let (vol, grid) = setup();
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        for req in [
            QueryRequest::beam(&mm, &BoxRegion::beam(&grid, 1, &[3, 0, 2])),
            QueryRequest::range(&mm, &BoxRegion::new([0u64, 0, 0], [20u64, 5, 3])),
        ] {
            let (op, region) = (req.op(), req.region().clone());
            let bare = exec.execute(req).unwrap();
            vol.reset();
            let cache = TestCache::default();
            let cached = exec
                .execute(QueryRequest::new(op, &mm, &region).with_cache(&cache))
                .unwrap();
            vol.reset();
            assert_eq!(bare, cached);
            assert_eq!(bare.total_io_ms.to_bits(), cached.total_io_ms.to_bits());
        }
    }

    /// A fully resident query is served without any disk traffic but
    /// still delivers the exact uncached payload.
    #[test]
    fn warm_cache_serves_without_io() {
        let (vol, grid) = setup();
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::beam(&grid, 1, &[3, 0, 2]);
        let cache = TestCache::default();
        let mut first_m = Metrics::new();
        let first = exec
            .execute(
                QueryRequest::beam(&mm, &region)
                    .with_cache(&cache)
                    .with_sink(&mut first_m),
            )
            .unwrap();
        let mut second_m = Metrics::new();
        let second = exec
            .execute(
                QueryRequest::beam(&mm, &region)
                    .with_cache(&cache)
                    .with_sink(&mut second_m),
            )
            .unwrap();
        assert_eq!(first_m.counter_value(Counter::PageCacheMiss), first.cells);
        assert_eq!(second_m.counter_value(Counter::PageCacheHit), second.cells);
        assert_eq!(second.cells, first.cells);
        assert_eq!(second.payload, first.payload);
        assert_eq!(second.blocks, 0);
        assert_eq!(second.requests, 0);
        assert_eq!(second.total_io_ms, 0.0);
    }

    #[test]
    fn coalesce_cells_multiblock() {
        let reqs = coalesce_cells(&[0, 4, 12], 4);
        assert_eq!(reqs, vec![Request::new(0, 8), Request::new(12, 4)]);
        assert!(coalesce_cells(&[], 4).is_empty());
    }

    #[test]
    fn oversized_region_is_a_typed_error() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid, 0);
        let region = BoxRegion::new([0u64, 0, 0], [60u64, 0, 0]);
        let err = QueryExecutor::new(&vol, 0)
            .execute(QueryRequest::range(&naive, &region))
            .unwrap_err();
        assert!(
            matches!(err, QueryError::RegionOutsideGrid { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("inside the dataset grid"));
        let err = QueryExecutor::new(&vol, 0)
            .execute(QueryRequest::beam(&naive, &region))
            .unwrap_err();
        assert!(matches!(err, QueryError::RegionOutsideGrid { .. }));
    }

    #[test]
    fn exec_options_builder_round_trips() {
        let opts = ExecOptions::builder()
            .beam(BeamPolicy::Natural)
            .range(RangeOrder::SortedSingles)
            .sptf_limit(128)
            .queue_depth(4)
            .translation_cache(false)
            .build();
        assert_eq!(opts.beam, BeamPolicy::Natural);
        assert_eq!(opts.range, RangeOrder::SortedSingles);
        assert_eq!(opts.sptf_limit, 128);
        assert_eq!(opts.queue_depth, 4);
        assert!(!opts.translation_cache);
        let defaults = ExecOptions::builder().build();
        assert_eq!(defaults.beam, ExecOptions::default().beam);
        assert_eq!(defaults.sptf_limit, ExecOptions::default().sptf_limit);
    }

    #[test]
    fn request_accessors_expose_inputs() {
        let (_vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let region = BoxRegion::beam(&grid, 0, &[0, 0, 0]);
        let req = QueryRequest::range(&naive, &region);
        assert_eq!(req.op(), QueryOp::Range);
        assert_eq!(req.region(), &region);
        assert_eq!(req.mapping().grid(), &grid);
    }

    #[test]
    fn faulted_query_payload_matches_fault_free_and_counters_reconcile() {
        use multimap_disksim::FaultPlan;
        use multimap_lvm::RecoveryConfig;

        let grid = GridSpec::new([60u64, 8, 6]);
        let naive = NaiveMapping::new(grid.clone(), 0);
        let region = BoxRegion::new([0u64, 0, 0], [20u64, 5, 3]);

        let clean_vol = LogicalVolume::new(profiles::small(), 1);
        let clean = QueryExecutor::new(&clean_vol, 0)
            .execute(QueryRequest::range(&naive, &region))
            .unwrap();
        assert_ne!(clean.payload, 0, "a non-empty query carries a payload");

        // Dim 0 varies fastest: LBN = x + 60y + 480z. Both bad blocks
        // lie inside the queried region (15 = cell [15,0,0], 500 =
        // cell [20,0,1]).
        let plan = FaultPlan::new(0xFA17)
            .with_media_errors([15, 500])
            .with_transients(0.10, 3.0);
        let vol =
            LogicalVolume::with_recovery(profiles::small(), 1, plan, RecoveryConfig::default())
                .unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let mut m = Metrics::new();
        let r = exec
            .execute(QueryRequest::range(&naive, &region).with_sink(&mut m))
            .unwrap();

        assert_eq!(r.payload, clean.payload, "faults must not change the data");
        assert_eq!((r.cells, r.blocks), (clean.cells, clean.blocks));
        assert!(
            r.total_io_ms > clean.total_io_ms,
            "recovery must cost time: {} vs {}",
            r.total_io_ms,
            clean.total_io_ms
        );

        // The sink's fault counters mirror the volume's recovery stats.
        let stats = vol.recovery_stats();
        assert!(stats.transients > 0, "seeded plan must inject transients");
        assert_eq!(stats.media_errors, 2);
        assert_eq!(m.counter_value(Counter::TransientFault), stats.transients);
        assert_eq!(m.counter_value(Counter::RetryAttempt), stats.retries);
        assert_eq!(m.counter_value(Counter::MediaFault), stats.media_errors);
        assert_eq!(m.counter_value(Counter::BadBlockRemap), stats.remaps);
        // And the injector agrees with what the recovery path observed.
        let injected = vol.injected_counts();
        assert_eq!(injected.transients, stats.transients);
        assert_eq!(injected.media_errors, stats.media_errors);
    }

    #[test]
    fn degraded_cells_fall_back_to_scheduled_seeks() {
        use multimap_disksim::FaultPlan;
        use multimap_lvm::RecoveryConfig;

        let grid = GridSpec::new([60u64, 8, 6]);
        let naive = NaiveMapping::new(grid.clone(), 0);
        let clean_vol = LogicalVolume::new(profiles::small(), 1);

        // Only hard errors: the first query remaps LBN 130, after which
        // the executor must split it out of later primary batches.
        let plan = FaultPlan::new(1).with_media_error(130);
        let vol =
            LogicalVolume::with_recovery(profiles::small(), 1, plan, RecoveryConfig::default())
                .unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let warm = BoxRegion::new([0u64, 0, 0], [10u64, 7, 5]);
        exec.execute(QueryRequest::range(&naive, &warm)).unwrap();
        assert_eq!(vol.remap_count(0).unwrap(), 1);
        assert!(vol.is_degraded_range(0, 130, 1).unwrap());

        // A beam crossing the remapped cell (LBN = x + 60y + 480z, so
        // the dim-0 beam at y=2, z=0 covers 120..=179 ∋ 130) still
        // returns the exact fault-free payload, via the degraded
        // AscendingLbn tail batch.
        let beam = BoxRegion::beam(&grid, 0, &[0, 2, 0]);
        let clean = QueryExecutor::new(&clean_vol, 0)
            .execute(QueryRequest::beam(&naive, &beam))
            .unwrap();
        let r = exec.execute(QueryRequest::beam(&naive, &beam)).unwrap();
        assert_eq!(r.payload, clean.payload);
        assert_eq!(r.cells, clean.cells);
    }
}
