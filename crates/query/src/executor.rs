//! The query executor.

use multimap_core::{shared_cache, BoxRegion, GridSpec, Mapping, MappingKind, MIN_CACHED_LOOKUPS};
use multimap_disksim::{coalesce_sorted, BatchTiming, Lbn, Request, ServiceEvent};
use multimap_lvm::{LogicalVolume, SchedulePolicy};

use crate::error::{QueryError, Result};

/// [`QueryError::RegionOutsideGrid`] for a region/grid pair.
pub(crate) fn region_outside(region: &BoxRegion, grid: &GridSpec) -> QueryError {
    QueryError::RegionOutsideGrid {
        region: format!("lo {:?} hi {:?}", region.lo(), region.hi()),
        grid: grid.extents().to_vec(),
    }
}

/// How beam-query blocks are handed to the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeamPolicy {
    /// Paper behaviour: SPTF for MultiMap (within a size limit),
    /// ascending LBN order for the linearised mappings.
    Auto,
    /// Always sort ascending.
    Ascending,
    /// Always SPTF.
    Sptf,
    /// Issue in the dataset's natural cell order (no sorting) — the
    /// ablation for the paper's remark that sorting "significantly
    /// improves performance in practice".
    Natural,
}

/// How range-query blocks are ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RangeOrder {
    /// Sort all LBNs ascending, coalesce contiguous runs, and let the
    /// disk's queue-limited SPTF scheduler reorder within its command
    /// queue (paper behaviour for every mapping: the storage manager
    /// sorts; the disk's internal scheduler does the rest).
    SortedCoalesced,
    /// Like [`RangeOrder::SortedCoalesced`] but strictly FIFO at the
    /// disk (ablation: no command queueing).
    SortedCoalescedFifo,
    /// Sort ascending but issue single-block requests (no coalescing).
    SortedSingles,
    /// Issue cell by cell in row-major order (ablation).
    NaturalCellOrder,
}

/// Executor tunables.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Beam policy (default [`BeamPolicy::Auto`]).
    pub beam: BeamPolicy,
    /// Range policy (default [`RangeOrder::SortedCoalesced`]).
    pub range: RangeOrder,
    /// Largest batch the full-SPTF scheduler is applied to; larger
    /// MultiMap beams fall back to queued SPTF. With the profiled
    /// estimator the selection loop is cheap per round, so the default
    /// covers every paper-scale beam (the largest is `S_i` cells).
    pub sptf_limit: usize,
    /// Disk command-queue depth for queued-SPTF service (SCSI TCQ).
    pub queue_depth: usize,
    /// Serve large-region translations from the process-wide flat
    /// cell→LBN table cache (see [`multimap_core::TranslationCache`]).
    /// Purely an executor-side optimisation — results are identical.
    pub translation_cache: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            beam: BeamPolicy::Auto,
            range: RangeOrder::SortedCoalesced,
            sptf_limit: 4096,
            queue_depth: 64,
            translation_cache: true,
        }
    }
}

/// Measured outcome of one query.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Cells fetched.
    pub cells: u64,
    /// Blocks transferred.
    pub blocks: u64,
    /// Requests issued to the disk.
    pub requests: u64,
    /// Total I/O time in milliseconds.
    pub total_io_ms: f64,
}

impl QueryResult {
    fn from_batch(batch: BatchTiming, cells: u64) -> Self {
        QueryResult {
            cells,
            blocks: batch.blocks,
            requests: batch.requests,
            total_io_ms: batch.total_ms,
        }
    }

    /// Average I/O time per cell (the paper's beam-query metric).
    pub fn per_cell_ms(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.total_io_ms / self.cells as f64
        }
    }

    /// Accumulate another query's result (for multi-run averages).
    pub fn accumulate(&mut self, other: &QueryResult) {
        self.cells += other.cells;
        self.blocks += other.blocks;
        self.requests += other.requests;
        self.total_io_ms += other.total_io_ms;
    }
}

/// Executes beam and range queries for one mapping on one disk of a
/// logical volume.
pub struct QueryExecutor<'a> {
    volume: &'a LogicalVolume,
    disk: usize,
    options: ExecOptions,
}

impl<'a> QueryExecutor<'a> {
    /// Executor with default (paper) options.
    pub fn new(volume: &'a LogicalVolume, disk: usize) -> Self {
        Self::with_options(volume, disk, ExecOptions::default())
    }

    /// Executor with explicit options.
    pub fn with_options(volume: &'a LogicalVolume, disk: usize, options: ExecOptions) -> Self {
        QueryExecutor {
            volume,
            disk,
            options,
        }
    }

    /// The options in effect.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Map every cell of `region` to the first LBN of its cell, in
    /// row-major cell order.
    fn region_lbns(&self, mapping: &dyn Mapping, region: &BoxRegion) -> Result<Vec<Lbn>> {
        let mut lbns = Vec::with_capacity(region.cells().min(1 << 26) as usize);
        // Large regions amortise a flat cell→LBN table (built once per
        // grid, shared process-wide); small ones — beams are `S_i` cells
        // — translate directly, as a table build would dwarf the query.
        if self.options.translation_cache && region.cells() >= MIN_CACHED_LOOKUPS {
            let table = shared_cache().translate(mapping)?;
            let mut failed = None;
            region.for_each_cell(|c| {
                if failed.is_some() {
                    return;
                }
                match table.lbn_of(c) {
                    Ok(lbn) => lbns.push(lbn),
                    Err(e) => failed = Some(e),
                }
            });
            return match failed {
                Some(e) => Err(e.into()),
                None => Ok(lbns),
            };
        }
        let mut failed = None;
        region.for_each_cell(|c| {
            if failed.is_some() {
                return;
            }
            match mapping.lbn_of(c) {
                Ok(lbn) => lbns.push(lbn),
                Err(e) => failed = Some(e),
            }
        });
        match failed {
            Some(e) => Err(e.into()),
            None => Ok(lbns),
        }
    }

    /// Run a beam query: fetch all cells of `region` (usually a line
    /// along one dimension) as individual cell requests.
    pub fn beam(&self, mapping: &dyn Mapping, region: &BoxRegion) -> Result<QueryResult> {
        self.beam_observed(mapping, region, &mut |_| {})
    }

    /// [`QueryExecutor::beam`] with a per-request observer; the scheduler
    /// emits one [`ServiceEvent`] per serviced request, letting a
    /// conformance oracle audit every disk decision the query caused.
    pub fn beam_observed(
        &self,
        mapping: &dyn Mapping,
        region: &BoxRegion,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<QueryResult> {
        if !region.fits(mapping.grid()) {
            return Err(region_outside(region, mapping.grid()));
        }
        let lbns = self.region_lbns(mapping, region)?;
        let cell_blocks = mapping.cell_blocks();
        let requests: Vec<Request> = lbns.iter().map(|&l| Request::new(l, cell_blocks)).collect();
        let policy = match self.options.beam {
            BeamPolicy::Ascending => SchedulePolicy::AscendingLbn,
            BeamPolicy::Sptf => SchedulePolicy::Sptf,
            BeamPolicy::Natural => SchedulePolicy::InOrder,
            BeamPolicy::Auto => match mapping.kind() {
                MappingKind::MultiMap if requests.len() <= self.options.sptf_limit => {
                    SchedulePolicy::Sptf
                }
                MappingKind::MultiMap => SchedulePolicy::QueuedSptf(self.options.queue_depth),
                _ => SchedulePolicy::AscendingLbn,
            },
        };
        let batch = self
            .volume
            .service_batch_observed(self.disk, &requests, policy, observe)?;
        Ok(QueryResult::from_batch(batch, lbns.len() as u64))
    }

    /// Run a range query: fetch every cell of the N-D box `region`.
    pub fn range(&self, mapping: &dyn Mapping, region: &BoxRegion) -> Result<QueryResult> {
        self.range_observed(mapping, region, &mut |_| {})
    }

    /// [`QueryExecutor::range`] with a per-request observer (see
    /// [`QueryExecutor::beam_observed`]).
    pub fn range_observed(
        &self,
        mapping: &dyn Mapping,
        region: &BoxRegion,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<QueryResult> {
        if !region.fits(mapping.grid()) {
            return Err(region_outside(region, mapping.grid()));
        }
        let cell_blocks = mapping.cell_blocks();
        let mut lbns = self.region_lbns(mapping, region)?;
        let cells = lbns.len() as u64;
        let batch = match self.options.range {
            RangeOrder::NaturalCellOrder => {
                let requests: Vec<Request> =
                    lbns.iter().map(|&l| Request::new(l, cell_blocks)).collect();
                self.volume
                    .service_batch_observed(self.disk, &requests, SchedulePolicy::InOrder, observe)
            }
            RangeOrder::SortedSingles => {
                lbns.sort_unstable();
                let requests: Vec<Request> =
                    lbns.iter().map(|&l| Request::new(l, cell_blocks)).collect();
                self.volume
                    .service_batch_observed(self.disk, &requests, SchedulePolicy::InOrder, observe)
            }
            RangeOrder::SortedCoalesced | RangeOrder::SortedCoalescedFifo => {
                let policy = if self.options.range == RangeOrder::SortedCoalesced {
                    SchedulePolicy::QueuedSptf(self.options.queue_depth)
                } else {
                    SchedulePolicy::InOrder
                };
                lbns.sort_unstable();
                let requests = if cell_blocks == 1 {
                    coalesce_sorted(&lbns)
                } else {
                    // Expand cells into block runs before coalescing.
                    coalesce_cells(&lbns, cell_blocks)
                };
                self.volume
                    .service_batch_observed(self.disk, &requests, policy, observe)
            }
        }?;
        Ok(QueryResult::from_batch(batch, cells))
    }
}

/// Service an explicit set of single-block LBNs (one per cell) on one
/// disk — the path used for octree-leaf datasets, where cells are leaves
/// rather than grid coordinates.
///
/// `sptf` issues the whole batch to the disk scheduler (MultiMap beams);
/// otherwise LBNs are sorted ascending and coalesced (the linearised
/// mappings' policy).
pub fn service_lbns(
    volume: &LogicalVolume,
    disk: usize,
    lbns: &[Lbn],
    sptf: bool,
) -> Result<QueryResult> {
    let cells = lbns.len() as u64;
    let batch = if sptf {
        let requests: Vec<Request> = lbns.iter().map(|&l| Request::single(l)).collect();
        volume.service_batch(disk, &requests, SchedulePolicy::Sptf)?
    } else {
        let mut sorted = lbns.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        volume.service_sorted_lbns(disk, &sorted, SchedulePolicy::InOrder)?
    };
    Ok(QueryResult::from_batch(batch, cells))
}

/// Coalesce sorted cell-start LBNs (each `cell_blocks` long) into maximal
/// contiguous requests.
fn coalesce_cells(sorted_starts: &[Lbn], cell_blocks: u64) -> Vec<Request> {
    let mut out = Vec::new();
    let mut iter = sorted_starts.iter().copied();
    let Some(first) = iter.next() else {
        return out;
    };
    let mut start = first;
    let mut len = cell_blocks;
    let mut expected_next = first + cell_blocks;
    for lbn in iter {
        if lbn == expected_next {
            len += cell_blocks;
        } else {
            out.push(Request::new(start, len));
            start = lbn;
            len = cell_blocks;
        }
        expected_next = lbn + cell_blocks;
    }
    out.push(Request::new(start, len));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::{GridSpec, MultiMapping, NaiveMapping};
    use multimap_disksim::profiles;

    fn setup() -> (LogicalVolume, GridSpec) {
        (
            LogicalVolume::new(profiles::small(), 1),
            GridSpec::new([60u64, 8, 6]),
        )
    }

    #[test]
    fn beam_fetches_every_cell_once() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::beam(&grid, 1, &[3, 0, 2]);
        let r = exec.beam(&naive, &region).unwrap();
        assert_eq!(r.cells, 8);
        assert_eq!(r.blocks, 8);
        assert_eq!(r.requests, 8);
        assert!(r.total_io_ms > 0.0);
        assert!((r.per_cell_ms() - r.total_io_ms / 8.0).abs() < 1e-12);
    }

    #[test]
    fn range_coalesces_naive_dim0_runs() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::new([0u64, 0, 0], [59u64, 1, 0]);
        let r = exec.range(&naive, &region).unwrap();
        assert_eq!(r.cells, 120);
        // Two Dim1 rows are LBN-contiguous under row-major order.
        assert_eq!(r.requests, 1);
    }

    #[test]
    fn multimap_beam_uses_semi_sequential_access() {
        let (vol, grid) = setup();
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::beam(&grid, 1, &[0, 0, 0]);
        let r = exec.beam(&mm, &region).unwrap();
        assert_eq!(r.cells, 8);
        // Dominated by settle time, far below half-revolution latency.
        let settle = vol.geometry().settle_ms;
        assert!(
            r.per_cell_ms() < settle + 1.0,
            "per-cell {} too slow",
            r.per_cell_ms()
        );
    }

    #[test]
    fn multimap_beats_naive_on_nonprimary_beam() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let region = BoxRegion::beam(&grid, 2, &[5, 3, 0]);
        let rn = exec.beam(&naive, &region).unwrap();
        vol.reset();
        let rm = exec.beam(&mm, &region).unwrap();
        assert!(
            rm.total_io_ms < rn.total_io_ms,
            "multimap {} vs naive {}",
            rm.total_io_ms,
            rn.total_io_ms
        );
    }

    #[test]
    fn sorted_range_no_slower_than_natural_order() {
        let (vol, grid) = setup();
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let region = BoxRegion::new([0u64, 0, 0], [40u64, 5, 3]);

        let sorted = QueryExecutor::new(&vol, 0).range(&mm, &region).unwrap();
        vol.reset();
        let natural = QueryExecutor::with_options(
            &vol,
            0,
            ExecOptions {
                range: RangeOrder::NaturalCellOrder,
                ..ExecOptions::default()
            },
        )
        .range(&mm, &region)
        .unwrap();
        assert_eq!(sorted.cells, natural.cells);
        assert!(sorted.total_io_ms <= natural.total_io_ms * 1.01 + 0.5);
    }

    /// The flat-table fast path must be invisible: a range big enough to
    /// engage the cache yields bit-identical timing to the direct path.
    #[test]
    fn translation_cache_is_transparent() {
        let vol = LogicalVolume::new(profiles::small(), 1);
        // > MIN_CACHED_LOOKUPS cells so the cached path engages.
        let grid = GridSpec::new([60u64, 12, 8]);
        let mm = MultiMapping::new(vol.geometry(), grid.clone()).unwrap();
        let region = grid.bounding_region();
        assert!(region.cells() >= multimap_core::MIN_CACHED_LOOKUPS);

        let cached = QueryExecutor::new(&vol, 0).range(&mm, &region).unwrap();
        vol.reset();
        let direct = QueryExecutor::with_options(
            &vol,
            0,
            ExecOptions {
                translation_cache: false,
                ..ExecOptions::default()
            },
        )
        .range(&mm, &region)
        .unwrap();
        assert_eq!(cached, direct);
        assert_eq!(cached.total_io_ms.to_bits(), direct.total_io_ms.to_bits());
    }

    #[test]
    fn coalesce_cells_multiblock() {
        let reqs = coalesce_cells(&[0, 4, 12], 4);
        assert_eq!(reqs, vec![Request::new(0, 8), Request::new(12, 4)]);
        assert!(coalesce_cells(&[], 4).is_empty());
    }

    #[test]
    fn oversized_region_is_a_typed_error() {
        let (vol, grid) = setup();
        let naive = NaiveMapping::new(grid, 0);
        let region = BoxRegion::new([0u64, 0, 0], [60u64, 0, 0]);
        let err = QueryExecutor::new(&vol, 0)
            .range(&naive, &region)
            .unwrap_err();
        assert!(
            matches!(err, QueryError::RegionOutsideGrid { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("inside the dataset grid"));
        let err = QueryExecutor::new(&vol, 0)
            .beam(&naive, &region)
            .unwrap_err();
        assert!(matches!(err, QueryError::RegionOutsideGrid { .. }));
    }
}
