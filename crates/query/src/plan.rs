//! EXPLAIN-style access plans.
//!
//! [`explain_beam`] and [`explain_range`] describe how the executor
//! would fetch a query — which
//! scheduling policy, how many requests after coalescing, how sequential
//! they are — and prices it on a throwaway simulator, without touching
//! the live volume's head state.

use std::fmt;

use multimap_core::{BoxRegion, Mapping, MappingKind};
use multimap_disksim::{coalesce_sorted, DiskGeometry, DiskSim, Request};

use crate::error::Result;
use crate::executor::{region_outside, ExecOptions};

/// Shape of the planned query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanKind {
    /// Single-cell requests issued together (a beam).
    Beam,
    /// Sorted, coalesced multi-block requests (a range).
    Range,
}

/// A priced access plan.
#[derive(Clone, Debug)]
pub struct AccessPlan {
    /// Mapping name.
    pub mapping: String,
    /// Query shape.
    pub kind: PlanKind,
    /// Cells the query touches.
    pub cells: u64,
    /// Requests after coalescing (ranges) or one per cell (beams).
    pub requests: u64,
    /// Mean blocks per request.
    pub mean_run: f64,
    /// Length of the longest coalesced run, in blocks.
    pub max_run: u64,
    /// Scheduling policy the executor would use.
    pub policy: String,
    /// Simulated cost from a cold disk (idle head), in ms.
    pub estimated_ms: f64,
}

impl fmt::Display for AccessPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:?} over {} ({} cells)",
            self.kind, self.mapping, self.cells
        )?;
        writeln!(
            f,
            "  -> {} requests (mean run {:.1} blocks, max {})",
            self.requests, self.mean_run, self.max_run
        )?;
        writeln!(f, "  -> policy: {}", self.policy)?;
        write!(f, "  -> estimated cold cost: {:.2} ms", self.estimated_ms)
    }
}

/// Plan a range query over `region` for `mapping` on a disk with
/// `geom`, pricing it on a private simulator.
pub fn explain_range(
    geom: &DiskGeometry,
    mapping: &dyn Mapping,
    region: &BoxRegion,
    options: &ExecOptions,
) -> Result<AccessPlan> {
    if !region.fits(mapping.grid()) {
        return Err(region_outside(region, mapping.grid()));
    }
    let mut lbns = Vec::with_capacity(region.cells().min(1 << 24) as usize);
    let mut failed = None;
    region.for_each_cell(|c| match mapping.lbn_of(c) {
        Ok(l) => lbns.push(l),
        Err(e) => failed = Some(e),
    });
    if let Some(e) = failed {
        return Err(e.into());
    }
    lbns.sort_unstable();
    let requests = coalesce_sorted(&lbns);
    Ok(price(
        geom,
        mapping,
        PlanKind::Range,
        region.cells(),
        &requests,
        format!("sorted + queued SPTF (depth {})", options.queue_depth),
        false,
    ))
}

/// Plan a beam query (per-cell requests) along `region`.
pub fn explain_beam(
    geom: &DiskGeometry,
    mapping: &dyn Mapping,
    region: &BoxRegion,
    options: &ExecOptions,
) -> Result<AccessPlan> {
    if !region.fits(mapping.grid()) {
        return Err(region_outside(region, mapping.grid()));
    }
    let mut requests = Vec::with_capacity(region.cells().min(1 << 24) as usize);
    let mut failed = None;
    region.for_each_cell(|c| match mapping.lbn_of(c) {
        Ok(l) => requests.push(Request::single(l)),
        Err(e) => failed = Some(e),
    });
    if let Some(e) = failed {
        return Err(e.into());
    }
    let (policy, full_sptf) = match mapping.kind() {
        MappingKind::MultiMap if requests.len() <= options.sptf_limit => {
            ("all-at-once SPTF (semi-sequential path)".to_string(), true)
        }
        MappingKind::MultiMap => (
            format!("queued SPTF (depth {})", options.queue_depth),
            false,
        ),
        _ => ("ascending LBN".to_string(), false),
    };
    requests.sort_unstable_by_key(|r| r.lbn);
    Ok(price(
        geom,
        mapping,
        PlanKind::Beam,
        requests.len() as u64,
        &requests,
        policy,
        full_sptf,
    ))
}

#[allow(clippy::too_many_arguments)]
fn price(
    geom: &DiskGeometry,
    mapping: &dyn Mapping,
    kind: PlanKind,
    cells: u64,
    requests: &[Request],
    policy: String,
    full_sptf: bool,
) -> AccessPlan {
    let blocks: u64 = requests.iter().map(|r| r.nblocks).sum();
    let max_run = requests.iter().map(|r| r.nblocks).max().unwrap_or(0);
    // Price on a throwaway simulator so the live head state is untouched.
    let mut sim = DiskSim::new(geom.clone());
    let discipline = if full_sptf {
        multimap_disksim::Discipline::Sptf
    } else {
        multimap_disksim::Discipline::QueuedSptf(64)
    };
    let priced = multimap_disksim::DeviceModel::service_batch(&mut sim, requests, discipline);
    let estimated_ms = priced.map(|b| b.total_ms).unwrap_or(f64::NAN);
    AccessPlan {
        mapping: mapping.name().to_string(),
        kind,
        cells,
        requests: requests.len() as u64,
        mean_run: if requests.is_empty() {
            0.0
        } else {
            blocks as f64 / requests.len() as f64
        },
        max_run,
        policy,
        estimated_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::{GridSpec, MultiMapping, NaiveMapping};
    use multimap_disksim::profiles;

    #[test]
    fn naive_range_plan_shows_runs() {
        let geom = profiles::small();
        let grid = GridSpec::new([60u64, 8, 6]);
        let naive = NaiveMapping::new(grid.clone(), 0);
        let region = BoxRegion::new([0u64, 0, 0], [9u64, 3, 2]);
        let plan = explain_range(&geom, &naive, &region, &ExecOptions::default()).unwrap();
        assert_eq!(plan.cells, 120);
        assert_eq!(plan.requests, 12); // 4 x 3 runs of 10
        assert_eq!(plan.max_run, 10);
        assert!((plan.mean_run - 10.0).abs() < 1e-9);
        assert!(plan.estimated_ms > 0.0);
        let text = plan.to_string();
        assert!(text.contains("12 requests"));
        assert!(text.contains("SPTF"));
    }

    #[test]
    fn beam_plans_pick_policy_by_mapping() {
        let geom = profiles::small();
        // A beam long enough that per-step costs dominate the cold-start
        // positioning; Naive's Dim2 stride crosses ~27 tracks per cell.
        let grid = GridSpec::new([100u64, 32, 32]);
        let naive = NaiveMapping::new(grid.clone(), 0);
        let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
        let region = BoxRegion::beam(&grid, 2, &[3, 4, 0]);
        let p_naive = explain_beam(&geom, &naive, &region, &ExecOptions::default()).unwrap();
        let p_mm = explain_beam(&geom, &mm, &region, &ExecOptions::default()).unwrap();
        assert!(p_naive.policy.contains("ascending"));
        assert!(p_mm.policy.contains("semi-sequential"));
        assert!(p_mm.estimated_ms < p_naive.estimated_ms);
    }

    #[test]
    fn plan_matches_executor_cost_from_cold() {
        use crate::executor::{QueryExecutor, QueryRequest};
        use multimap_lvm::LogicalVolume;
        let geom = profiles::small();
        let grid = GridSpec::new([40u64, 6, 4]);
        let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
        let region = BoxRegion::new([2u64, 1, 0], [21u64, 4, 3]);
        let plan = explain_range(&geom, &mm, &region, &ExecOptions::default()).unwrap();
        let volume = LogicalVolume::new(geom, 1);
        let actual = QueryExecutor::new(&volume, 0)
            .execute(QueryRequest::range(&mm, &region))
            .unwrap();
        let err = (plan.estimated_ms - actual.total_io_ms).abs() / actual.total_io_ms;
        assert!(
            err < 0.05,
            "plan {:.2} vs actual {:.2}",
            plan.estimated_ms,
            actual.total_io_ms
        );
    }
}
