//! Deterministic workload generators for the paper's experiments.
//!
//! Beam queries pick random fixed coordinates for all but one dimension;
//! range queries fetch an equal-length N-D cube at a given selectivity
//! with a random corner (Section 5.1).

use multimap_core::{BoxRegion, Coord, GridSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RNG used by every workload generator (seeded for reproducibility).
pub type WorkloadRng = StdRng;

/// A seeded workload RNG.
pub fn workload_rng(seed: u64) -> WorkloadRng {
    StdRng::seed_from_u64(seed)
}

/// Random anchor cell within the grid.
pub fn random_anchor(grid: &GridSpec, rng: &mut WorkloadRng) -> Coord {
    grid.extents()
        .iter()
        .map(|&e| rng.random_range(0..e))
        .collect()
}

/// Edge length of the equal-sided N-D cube whose volume is
/// `selectivity_pct` percent of the grid, clamped to `1..=min extent`.
pub fn range_edge_for_selectivity(grid: &GridSpec, selectivity_pct: f64) -> u64 {
    assert!(selectivity_pct > 0.0, "selectivity must be positive");
    let n = grid.ndims() as f64;
    let target = grid.cells() as f64 * selectivity_pct / 100.0;
    let edge = target.powf(1.0 / n).round().max(1.0) as u64;
    // staticcheck: allow(no-unwrap) — GridSpec construction rejects zero-dimension grids.
    let min_extent = grid.extents().iter().copied().min().expect("non-empty");
    edge.min(min_extent)
}

/// Random equal-length cube range at the given selectivity.
pub fn random_range(grid: &GridSpec, selectivity_pct: f64, rng: &mut WorkloadRng) -> BoxRegion {
    let edge = range_edge_for_selectivity(grid, selectivity_pct);
    random_range_with_edge(grid, edge, rng)
}

/// Random cube range with an explicit edge length (clamped per
/// dimension).
pub fn random_range_with_edge(grid: &GridSpec, edge: u64, rng: &mut WorkloadRng) -> BoxRegion {
    let mut lo = Vec::with_capacity(grid.ndims());
    let mut hi = Vec::with_capacity(grid.ndims());
    for &e in grid.extents() {
        let len = edge.clamp(1, e);
        let start = rng.random_range(0..=(e - len));
        lo.push(start);
        hi.push(start + len - 1);
    }
    BoxRegion::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_stay_in_grid() {
        let grid = GridSpec::new([10u64, 20, 5]);
        let mut rng = workload_rng(42);
        for _ in 0..200 {
            let a = random_anchor(&grid, &mut rng);
            assert!(grid.contains(&a));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let grid = GridSpec::new([100u64, 100]);
        let a: Vec<_> = {
            let mut rng = workload_rng(7);
            (0..10).map(|_| random_anchor(&grid, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = workload_rng(7);
            (0..10).map(|_| random_anchor(&grid, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn selectivity_edges() {
        let grid = GridSpec::new([100u64, 100, 100]);
        // 100% selectivity: the whole cube.
        assert_eq!(range_edge_for_selectivity(&grid, 100.0), 100);
        // 0.1% of 1e6 = 1000 cells -> edge 10.
        assert_eq!(range_edge_for_selectivity(&grid, 0.1), 10);
        // Tiny selectivities clamp to one cell.
        assert_eq!(range_edge_for_selectivity(&grid, 1e-9), 1);
    }

    #[test]
    fn ranges_fit_grid_and_have_requested_volume() {
        let grid = GridSpec::new([50u64, 60, 70]);
        let mut rng = workload_rng(3);
        for _ in 0..100 {
            let r = random_range(&grid, 1.0, &mut rng);
            assert!(r.fits(&grid));
            let edge = range_edge_for_selectivity(&grid, 1.0);
            assert_eq!(r.cells(), edge.pow(3));
        }
    }

    #[test]
    fn edge_clamps_to_short_dimensions() {
        let grid = GridSpec::new([100u64, 4]);
        let mut rng = workload_rng(9);
        let r = random_range_with_edge(&grid, 10, &mut rng);
        assert_eq!(r.extent(1), 4);
        assert_eq!(r.extent(0), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_selectivity_panics() {
        let grid = GridSpec::new([10u64]);
        range_edge_for_selectivity(&grid, 0.0);
    }
}
