//! Typed errors for query planning and execution.
//!
//! The executor used to `assert!`/`expect` its way through bad regions
//! and volume failures; those paths now surface as [`QueryError`] so a
//! storage manager can report them instead of aborting.

use std::fmt;

use multimap_core::MappingError;
use multimap_lvm::LvmError;

/// Errors raised while planning or executing a query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The query region does not lie inside the dataset grid.
    RegionOutsideGrid {
        /// Inclusive low/high corners of the offending region.
        region: String,
        /// Extents of the dataset grid.
        grid: Vec<u64>,
    },
    /// The mapping layer rejected a cell lookup.
    Mapping(MappingError),
    /// The logical volume rejected the I/O.
    Volume(LvmError),
    /// A page cache was attached to a query path that does not support
    /// one (the backend-generic executor has no cached service path).
    CacheUnsupported {
        /// Name of the backend the query targeted.
        backend: &'static str,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::RegionOutsideGrid { region, grid } => write!(
                f,
                "query region {region} must lie inside the dataset grid {grid:?}"
            ),
            QueryError::Mapping(e) => write!(f, "mapping error: {e}"),
            QueryError::Volume(e) => write!(f, "volume error: {e}"),
            QueryError::CacheUnsupported { backend } => write!(
                f,
                "the {backend} backend executor does not support an attached page cache"
            ),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::RegionOutsideGrid { .. } => None,
            QueryError::Mapping(e) => Some(e),
            QueryError::Volume(e) => Some(e),
            QueryError::CacheUnsupported { .. } => None,
        }
    }
}

impl From<MappingError> for QueryError {
    fn from(e: MappingError) -> Self {
        QueryError::Mapping(e)
    }
}

impl From<LvmError> for QueryError {
    fn from(e: LvmError) -> Self {
        QueryError::Volume(e)
    }
}

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = QueryError::RegionOutsideGrid {
            region: "[0..60, 0..0, 0..0]".into(),
            grid: vec![60, 8, 6],
        };
        assert!(e.to_string().contains("inside the dataset grid"));
        let m: QueryError = MappingError::CoordOutOfGrid { coord: vec![9] }.into();
        assert!(matches!(m, QueryError::Mapping(_)));
        let v: QueryError = LvmError::NoSuchDisk { disk: 1, ndisks: 1 }.into();
        assert!(matches!(v, QueryError::Volume(_)));
        assert!(std::error::Error::source(&v).is_some());
    }
}
