//! The executor-side cache interface.
//!
//! The page cache itself lives in `multimap-store` (above this crate in
//! the dependency order), so the executor sees it only through the
//! [`BlockCache`] trait: probe a page, plan prefetch, admit fetched
//! pages. A [`QueryRequest`](crate::QueryRequest) carries an optional
//! `&dyn BlockCache`; without one the executor takes the exact pre-cache
//! code path, byte-identical to builds without cache support.
//!
//! Pages are cell-granular: the key is the cell's first LBN and a page
//! spans the mapping's `cell_blocks()`. All methods take `&self` — an
//! implementation serving one query stream uses interior mutability.

use multimap_core::{BoxRegion, Mapping};
use multimap_disksim::Lbn;

/// Outcome of probing one page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheProbe {
    /// Not resident: the executor must read it from disk.
    Miss,
    /// Resident: the page's payload is delivered without disk I/O.
    /// `first_prefetch_use` is true exactly once per prefetched page —
    /// the first demand hit on it — so the executor can count
    /// `cache_prefetch_used` without double counting.
    Hit {
        /// First demand hit on a page the prefetcher brought in.
        first_prefetch_use: bool,
    },
}

/// What a query hands the cache to plan prefetch with.
///
/// Bundled as a struct so cache implementations can evolve their
/// planning inputs without breaking the trait signature.
pub struct PrefetchContext<'a> {
    /// The mapping the query runs against (gives `cell_blocks`,
    /// `grid`, and cell→LBN translation for predicted regions).
    pub mapping: &'a dyn Mapping,
    /// The region the current query covers.
    pub region: &'a BoxRegion,
    /// First LBN of every cell the query demands (hit or miss), in
    /// row-major cell order. Prefetch must not duplicate these.
    pub demand: &'a [Lbn],
    /// The demanded LBNs that missed, in demand order.
    pub missed: &'a [Lbn],
    /// Exclusive LBN bound: no prefetched page may extend past it.
    pub lbn_limit: Lbn,
}

/// A page cache the executor can consult during a query.
///
/// Contract, in call order per query:
///
/// 1. [`BlockCache::probe`] once per demanded cell, in cell order.
/// 2. [`BlockCache::plan_prefetch`] once — even when every probe hit,
///    so stream detection keeps tracking the query sequence. The
///    returned page starts are serviced in the same disk batch as the
///    demand misses (prefetch rides the scheduler).
/// 3. [`BlockCache::admit`] once per fetched page (demand misses first,
///    then prefetched pages), after the batch is serviced.
///
/// Implementations must be deterministic: the same call sequence yields
/// the same probe outcomes and prefetch plans.
pub trait BlockCache {
    /// Probe one page (keyed by the cell's first LBN).
    fn probe(&self, lbn: Lbn) -> CacheProbe;

    /// Plan speculative reads for the stream this query belongs to.
    /// Returns page-start LBNs, already filtered against resident
    /// pages, the current demand set and `lbn_limit`.
    fn plan_prefetch(&self, ctx: &PrefetchContext<'_>) -> Vec<Lbn>;

    /// Admit one fetched page of `nblocks` blocks; `prefetched` marks
    /// speculative pages so their first later hit can be attributed.
    fn admit(&self, lbn: Lbn, nblocks: u64, prefetched: bool);
}
