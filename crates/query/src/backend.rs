//! Backend-generic query execution: [`BackendExecutor`] runs the same
//! plan → translate → schedule pipeline as [`crate::QueryExecutor`],
//! but services the batch on a [`DeviceVolume`] over any
//! [`DeviceModel`](multimap_disksim::DeviceModel) backend — rotating
//! disk, multi-queue SSD, or interlaced magnetic recording.
//!
//! Planning is shared code (not re-derived), so a given query issues
//! the *identical* request batch to every backend; only service timing
//! differs. That is the contract the conformance backend-differential
//! harness checks: payload and cell-set identity across backends, with
//! per-backend timing semantics (see `docs/backends.md`).
//!
//! Differences from the volume-bound executor, by design:
//!
//! * **No fault recovery.** Fault injection is a rotating-disk feature
//!   of [`multimap_lvm::LogicalVolume`]; `DeviceVolume` has no remap
//!   table, so there is no degraded-split path.
//! * **No page cache.** A [`QueryRequest::with_cache`] attachment is
//!   rejected as a typed error rather than silently ignored.
//! * **Classification is the backend's.** Transition classes recorded
//!   into a sink come from
//!   [`DeviceModel::classify`](multimap_disksim::DeviceModel::classify)
//!   — the settle-plateau rule on rotating media, channel-sequential
//!   detection on the SSD model.

// staticcheck: allow-file(det-wall-clock) — span endpoints recorded here feed telemetry SpanStat fields that the determinism contract explicitly excludes; no simulated timing or serve order ever reads them.
use std::time::Instant;

use multimap_disksim::ServiceLog;
use multimap_lvm::DeviceVolume;
use multimap_telemetry::{Counter, MetricsSink, Span};

use crate::error::{QueryError, Result};
use crate::executor::{
    plan_requests, record_classified_event, record_sched_stats, region_outside,
    resolve_beam_schedule, translate_region, ExecOptions, QueryOp, QueryRequest, QueryResult,
};

/// Executes beam and range queries on one device of a backend-generic
/// [`DeviceVolume`].
///
/// ```
/// use multimap_core::{BoxRegion, GridSpec, NaiveMapping};
/// use multimap_disksim::profiles;
/// use multimap_lvm::backend_volume;
/// use multimap_query::{BackendExecutor, QueryRequest};
///
/// let volume = backend_volume("ssd", &profiles::small(), 1).unwrap();
/// let grid = GridSpec::new([60u64, 8, 6]);
/// let mapping = NaiveMapping::new(grid.clone(), 0);
/// let exec = BackendExecutor::new(&volume, 0);
/// let result = exec
///     .execute(QueryRequest::beam(&mapping, &BoxRegion::beam(&grid, 1, &[3, 0, 2])))
///     .unwrap();
/// assert_eq!(result.cells, 8);
/// ```
pub struct BackendExecutor<'a, D: multimap_disksim::DeviceModel> {
    volume: &'a DeviceVolume<D>,
    device: usize,
    options: ExecOptions,
}

impl<'a, D: multimap_disksim::DeviceModel> BackendExecutor<'a, D> {
    /// Executor with default (paper) options.
    pub fn new(volume: &'a DeviceVolume<D>, device: usize) -> Self {
        Self::with_options(volume, device, ExecOptions::default())
    }

    /// Executor with explicit options.
    pub fn with_options(volume: &'a DeviceVolume<D>, device: usize, options: ExecOptions) -> Self {
        BackendExecutor {
            volume,
            device,
            options,
        }
    }

    /// The options in effect.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Run one query end to end on the backend device: plan, translate,
    /// schedule, service — the same pipeline (and the same planning
    /// code) as [`crate::QueryExecutor::execute`], minus the rotating
    /// disk's fault-recovery and page-cache paths.
    pub fn execute(&self, req: QueryRequest<'_>) -> Result<QueryResult> {
        let QueryRequest {
            mapping,
            region,
            op,
            mut observer,
            mut sink,
            cache,
        } = req;
        if cache.is_some() {
            return Err(QueryError::CacheUnsupported {
                backend: self.volume.backend_name(),
            });
        }
        let timed = sink.is_some();

        // Plan: validate the region and resolve the schedule policy.
        let t_plan = timed.then(Instant::now);
        if !region.fits(mapping.grid()) {
            return Err(region_outside(region, mapping.grid()));
        }
        let cell_blocks = mapping.cell_blocks();
        let beam_policy = match op {
            QueryOp::Beam => Some(resolve_beam_schedule(&self.options, mapping, region.cells())),
            QueryOp::Range => None,
        };
        finish_span(&mut sink, Span::Plan, t_plan);

        // Translate: region cells → LBNs (direct or via the flat table).
        let t_translate = timed.then(Instant::now);
        let (lbns, cache_hit) = translate_region(&self.options, mapping, region)?;
        if let Some(s) = sink.as_deref_mut() {
            match cache_hit {
                Some(true) => s.counter(Counter::TranslationCacheHit, 1),
                Some(false) => s.counter(Counter::TranslationCacheMiss, 1),
                None => {}
            }
        }
        finish_span(&mut sink, Span::Translate, t_translate);
        let cells = lbns.len() as u64;

        // Schedule: build the request batch in issue order.
        let t_schedule = timed.then(Instant::now);
        let (requests, policy) = plan_requests(&self.options, op, beam_policy, lbns, cell_blocks);
        finish_span(&mut sink, Span::Schedule, t_schedule);

        // Service on the backend, collecting the full event log; the
        // log is post-processed (classified and recorded) after the
        // device lock is released, so a sink never extends the lock's
        // critical section.
        let t_service = timed.then(Instant::now);
        let (batch, log): (_, ServiceLog) =
            self.volume
                .service_batch_logged(self.device, &requests, policy)?;
        finish_span(&mut sink, Span::Service, t_service);

        let transitions = self.volume.classify_events(self.device, log.events())?;
        for (e, &t) in log.events().iter().zip(&transitions) {
            if let Some(s) = sink.as_deref_mut() {
                record_classified_event(s, t, e);
            }
            if let Some(o) = observer.as_mut() {
                o(*e);
            }
        }
        if let Some(s) = sink {
            record_sched_stats(s, &batch);
        }
        Ok(QueryResult {
            cells,
            blocks: batch.blocks,
            requests: batch.requests,
            total_io_ms: batch.total_ms,
            payload: batch.payload,
        })
    }
}

/// Close a span opened with `Instant::now()` (no-op without a sink).
fn finish_span(sink: &mut Option<&mut dyn MetricsSink>, span: Span, started: Option<Instant>) {
    if let (Some(s), Some(t)) = (sink.as_deref_mut(), started) {
        s.span(span, t.elapsed().as_secs_f64() * 1e3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryExecutor;
    use multimap_core::{BoxRegion, GridSpec, MultiMapping, NaiveMapping};
    use multimap_disksim::{profiles, DiskSim, ServiceEvent, Transition};
    use multimap_lvm::{backend_volume, LogicalVolume};
    use multimap_telemetry::Metrics;

    fn grid() -> GridSpec {
        GridSpec::new([60u64, 8, 6])
    }

    /// A disk-backed `BackendExecutor` is bit-identical to the
    /// volume-bound `QueryExecutor` on fault-free volumes — the trait
    /// seam adds nothing to the service path.
    #[test]
    fn disk_backend_matches_logical_volume_executor() {
        let geom = profiles::small();
        let grid = grid();
        let lv = LogicalVolume::new(geom.clone(), 1);
        let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
        let dv = DeviceVolume::new(vec![DiskSim::new(geom.clone())]).unwrap();
        for region in [
            BoxRegion::beam(&grid, 1, &[3, 0, 2]),
            BoxRegion::new([0u64, 0, 0], [20u64, 5, 3]),
        ] {
            let op = if region.cells() == 8 {
                QueryOp::Beam
            } else {
                QueryOp::Range
            };
            lv.reset();
            let reference = QueryExecutor::new(&lv, 0)
                .execute(QueryRequest::new(op, &mm, &region))
                .unwrap();
            dv.reset();
            let backend = BackendExecutor::new(&dv, 0)
                .execute(QueryRequest::new(op, &mm, &region))
                .unwrap();
            assert_eq!(reference, backend);
            assert_eq!(
                reference.total_io_ms.to_bits(),
                backend.total_io_ms.to_bits()
            );
        }
    }

    /// Every registry backend serves the same query with the same
    /// payload; only timing differs.
    #[test]
    fn payload_is_backend_independent() {
        let geom = profiles::small();
        let grid = grid();
        let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
        let region = BoxRegion::beam(&grid, 2, &[5, 3, 0]);
        let mut results = Vec::new();
        for name in multimap_disksim::BACKEND_NAMES {
            let v = backend_volume(name, &geom, 1).unwrap();
            let r = BackendExecutor::new(&v, 0)
                .execute(QueryRequest::beam(&mm, &region))
                .unwrap();
            assert!(r.total_io_ms > 0.0, "{name}");
            results.push(r);
        }
        assert!(results.windows(2).all(|w| w[0].payload == w[1].payload));
        assert!(results.windows(2).all(|w| w[0].cells == w[1].cells));
    }

    /// A sink on a backend query records the backend's own transition
    /// classes and reconciles request counts; on event-sum backends
    /// (disk, IMR reads) phase sums still equal the batch total.
    #[test]
    fn sink_reconciles_on_backend_queries() {
        let geom = profiles::small();
        let grid = grid();
        let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
        let region = BoxRegion::beam(&grid, 2, &[5, 3, 0]);
        for name in ["disk", "imr"] {
            let v = backend_volume(name, &geom, 1).unwrap();
            let mut m = Metrics::new();
            let r = BackendExecutor::new(&v, 0)
                .execute(QueryRequest::beam(&mm, &region).with_sink(&mut m))
                .unwrap();
            assert_eq!(m.counter_value(Counter::RequestsServiced), r.requests);
            assert!(
                (m.phase_sum_ms() - r.total_io_ms).abs() < 1e-9,
                "{name}: phase sums {} vs total {}",
                m.phase_sum_ms(),
                r.total_io_ms
            );
            assert!(m.counter_value(Counter::AdjacencyHop) > 0, "{name}");
        }
        // SSD: per-channel service overlaps, so phase sums exceed the
        // makespan; the requests counter still reconciles exactly.
        let v = backend_volume("ssd", &geom, 1).unwrap();
        let mut m = Metrics::new();
        let r = BackendExecutor::new(&v, 0)
            .execute(QueryRequest::beam(&mm, &region).with_sink(&mut m))
            .unwrap();
        assert_eq!(m.counter_value(Counter::RequestsServiced), r.requests);
        assert!(m.phase_sum_ms() >= r.total_io_ms - 1e-9);
    }

    /// Observer events classify through the backend, not through
    /// rotating-disk geometry.
    #[test]
    fn events_classify_through_backend() {
        let geom = profiles::small();
        let grid = grid();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let region = BoxRegion::new([0u64, 0, 0], [59u64, 1, 0]);
        let v = backend_volume("ssd", &geom, 1).unwrap();
        let mut events = Vec::new();
        let mut keep = |e: ServiceEvent| events.push(e);
        BackendExecutor::new(&v, 0)
            .execute(QueryRequest::range(&naive, &region).with_observer(&mut keep))
            .unwrap();
        assert!(!events.is_empty());
        let classes = v.classify_events(0, &events).unwrap();
        assert!(classes
            .iter()
            .all(|c| matches!(c, Transition::Sequential | Transition::AdjacencyHop | Transition::Seek)));
    }

    /// The backend path has no page cache; attaching one is a typed
    /// error, not a silent no-op.
    #[test]
    fn cache_attachment_is_rejected() {
        struct NoCache;
        impl crate::BlockCache for NoCache {
            fn probe(&self, _lbn: multimap_disksim::Lbn) -> crate::CacheProbe {
                crate::CacheProbe::Miss
            }
            fn plan_prefetch(&self, _ctx: &crate::PrefetchContext<'_>) -> Vec<multimap_disksim::Lbn> {
                Vec::new()
            }
            fn admit(&self, _lbn: multimap_disksim::Lbn, _nblocks: u64, _prefetched: bool) {}
        }
        let geom = profiles::small();
        let grid = grid();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let region = BoxRegion::beam(&grid, 1, &[3, 0, 2]);
        let v = backend_volume("ssd", &geom, 1).unwrap();
        let cache = NoCache;
        let err = BackendExecutor::new(&v, 0)
            .execute(QueryRequest::beam(&naive, &region).with_cache(&cache))
            .unwrap_err();
        assert!(matches!(err, QueryError::CacheUnsupported { .. }), "{err:?}");
        assert!(err.to_string().contains("ssd"));
    }

    /// Out-of-grid regions fail identically to the volume-bound path.
    #[test]
    fn oversized_region_is_a_typed_error() {
        let geom = profiles::small();
        let grid = grid();
        let naive = NaiveMapping::new(grid.clone(), 0);
        let region = BoxRegion::new([0u64, 0, 0], [60u64, 0, 0]);
        let v = backend_volume("imr", &geom, 1).unwrap();
        let err = BackendExecutor::new(&v, 0)
            .execute(QueryRequest::range(&naive, &region))
            .unwrap_err();
        assert!(matches!(err, QueryError::RegionOutsideGrid { .. }));
    }
}
