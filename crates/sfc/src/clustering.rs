//! Clustering analysis of space-filling curves.
//!
//! The *clustering number* of a query region under a curve is the number
//! of maximal runs of consecutive curve indices the region decomposes
//! into (Moon, Jagadish, Faloutsos, Saltz). Each run is one sequential
//! disk access, so fewer clusters means fewer seeks — the property the
//! MultiMap paper invokes to explain why Hilbert beats Z-order on range
//! queries ("Hilbert shows better performance than Z-order, which agrees
//! with the theory that Hilbert curve has better clustering properties").

use crate::curve::SpaceFillingCurve;

/// Statistics of how a region decomposes into curve-index runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterStats {
    /// Cells in the region.
    pub cells: u64,
    /// Number of maximal runs of consecutive curve indices.
    pub clusters: u64,
    /// Length of the longest run.
    pub max_run: u64,
    /// Mean run length (`cells / clusters`).
    pub mean_run: f64,
}

/// Decompose the axis-aligned box `[lo, hi]` (inclusive) into maximal
/// runs of consecutive curve indices.
///
/// Enumerates the box (O(volume log volume)); intended for analysis, not
/// hot paths.
///
/// # Panics
/// Panics if bounds have the wrong arity, are inverted, or exceed the
/// curve's coordinate range.
pub fn box_clusters<C: SpaceFillingCurve>(curve: &C, lo: &[u64], hi: &[u64]) -> ClusterStats {
    assert_eq!(lo.len(), curve.dims(), "bound arity mismatch");
    assert_eq!(hi.len(), curve.dims(), "bound arity mismatch");
    assert!(
        lo.iter().zip(hi).all(|(l, h)| l <= h),
        "inverted box bounds"
    );
    let mut indices = Vec::new();
    let mut cur = lo.to_vec();
    loop {
        indices.push(curve.index(&cur));
        // Odometer increment.
        let mut d = 0;
        loop {
            if d == cur.len() {
                indices.sort_unstable();
                return runs(&indices);
            }
            if cur[d] < hi[d] {
                cur[d] += 1;
                break;
            }
            cur[d] = lo[d];
            d += 1;
        }
    }
}

/// Run statistics of a sorted index list.
fn runs(sorted: &[u64]) -> ClusterStats {
    let cells = sorted.len() as u64;
    if sorted.is_empty() {
        return ClusterStats {
            cells: 0,
            clusters: 0,
            max_run: 0,
            mean_run: 0.0,
        };
    }
    let mut clusters = 1u64;
    let mut max_run = 1u64;
    let mut run = 1u64;
    for w in sorted.windows(2) {
        debug_assert!(w[0] < w[1], "curve must be injective");
        if w[1] == w[0] + 1 {
            run += 1;
        } else {
            clusters += 1;
            max_run = max_run.max(run);
            run = 1;
        }
    }
    max_run = max_run.max(run);
    ClusterStats {
        cells,
        clusters,
        max_run,
        mean_run: cells as f64 / clusters as f64,
    }
}

/// Average cluster count over all axis-aligned `edge^dims` boxes anchored
/// on a `sample_stride` sub-lattice — a tractable estimate of the Moon et
/// al. average-case clustering number.
pub fn average_clusters<C: SpaceFillingCurve>(curve: &C, edge: u64, sample_stride: u64) -> f64 {
    assert!(edge >= 1);
    let side = 1u64 << curve.bits();
    assert!(edge <= side, "edge exceeds curve side");
    let stride = sample_stride.max(1);
    let dims = curve.dims();
    let mut total = 0.0;
    let mut count = 0u64;
    let mut anchor = vec![0u64; dims];
    loop {
        let hi: Vec<u64> = anchor.iter().map(|&a| a + edge - 1).collect();
        total += box_clusters(curve, &anchor, &hi).clusters as f64;
        count += 1;
        // Advance the anchor on the sampling lattice.
        let mut d = 0;
        loop {
            if d == dims {
                return total / count as f64;
            }
            anchor[d] += stride;
            if anchor[d] + edge <= side {
                break;
            }
            anchor[d] = 0;
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GrayCurve, HilbertCurve, ZCurve};

    #[test]
    fn whole_domain_is_one_cluster() {
        for dims in [2usize, 3] {
            let h = HilbertCurve::new(dims, 3).unwrap();
            let lo = vec![0u64; dims];
            let hi = vec![7u64; dims];
            let s = box_clusters(&h, &lo, &hi);
            assert_eq!(s.clusters, 1);
            assert_eq!(s.cells, 8u64.pow(dims as u32));
            assert_eq!(s.max_run, s.cells);
        }
    }

    #[test]
    fn single_cell_is_one_cluster() {
        let z = ZCurve::new(2, 4).unwrap();
        let s = box_clusters(&z, &[5, 9], &[5, 9]);
        assert_eq!(s.cells, 1);
        assert_eq!(s.clusters, 1);
    }

    #[test]
    fn hilbert_clusters_at_most_zorder_on_average() {
        // The classic result: Hilbert has (weakly) better average
        // clustering than Z-order for square queries.
        let bits = 5;
        let h = HilbertCurve::new(2, bits).unwrap();
        let z = ZCurve::new(2, bits).unwrap();
        for edge in [2u64, 4, 8] {
            let ch = average_clusters(&h, edge, 3);
            let cz = average_clusters(&z, edge, 3);
            assert!(
                ch <= cz + 1e-9,
                "edge {edge}: hilbert {ch:.2} vs z-order {cz:.2}"
            );
        }
    }

    #[test]
    fn gray_curve_clusters_like_zorder_or_better() {
        let bits = 4;
        let g = GrayCurve::new(2, bits).unwrap();
        let z = ZCurve::new(2, bits).unwrap();
        let cg = average_clusters(&g, 4, 2);
        let cz = average_clusters(&z, 4, 2);
        // No strict theorem here; just sanity that both are in the same
        // ballpark and positive.
        assert!(cg > 0.0 && cz > 0.0);
        assert!(cg < 16.0 && cz < 16.0);
    }

    #[test]
    fn cluster_stats_consistency() {
        let h = HilbertCurve::new(3, 3).unwrap();
        let s = box_clusters(&h, &[1, 2, 3], &[4, 5, 6]);
        assert_eq!(s.cells, 64);
        assert!(s.clusters >= 1 && s.clusters <= 64);
        assert!(s.max_run >= 1 && s.max_run <= 64);
        assert!((s.mean_run - 64.0 / s.clusters as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_panic() {
        let z = ZCurve::new(2, 3).unwrap();
        let _ = box_clusters(&z, &[3, 0], &[1, 7]);
    }
}
