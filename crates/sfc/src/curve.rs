//! The common curve interface.

use std::fmt;

/// Errors constructing or using a space-filling curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CurveError {
    /// `dims * bits` must fit in a 64-bit index and both must be positive.
    InvalidShape {
        /// Requested dimensionality.
        dims: usize,
        /// Requested bits per dimension.
        bits: u32,
    },
    /// A coordinate exceeded `2^bits - 1`.
    CoordinateOutOfRange {
        /// Offending dimension.
        dim: usize,
        /// Offending value.
        value: u64,
        /// Bits per dimension.
        bits: u32,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::InvalidShape { dims, bits } => write!(
                f,
                "invalid curve shape: {dims} dims x {bits} bits (need 1..=64 total bits)"
            ),
            CurveError::CoordinateOutOfRange { dim, value, bits } => write!(
                f,
                "coordinate {value} in dim {dim} out of range for {bits}-bit curve"
            ),
        }
    }
}

impl std::error::Error for CurveError {}

/// A bijection between the points of a `2^bits`-sided `dims`-dimensional
/// hypercube and the indices `0..2^(dims*bits)`.
pub trait SpaceFillingCurve {
    /// Number of dimensions.
    fn dims(&self) -> usize;

    /// Bits per dimension (the curve's order).
    fn bits(&self) -> u32;

    /// Curve index of a point.
    ///
    /// # Panics
    /// Panics if `coords.len() != dims()` or any coordinate is out of
    /// range; use [`Self::try_index`] for a checked variant.
    fn index(&self, coords: &[u64]) -> u64 {
        // staticcheck: allow(no-unwrap) — documented panicking variant; the # Panics contract points at try_index.
        self.try_index(coords).expect("coords out of range")
    }

    /// Checked variant of [`Self::index`].
    fn try_index(&self, coords: &[u64]) -> Result<u64, CurveError>;

    /// Point at the given curve index (inverse of [`Self::index`]).
    fn coords(&self, index: u64) -> Vec<u64> {
        let mut out = vec![0; self.dims()];
        self.coords_into(index, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::coords`].
    ///
    /// # Panics
    /// Panics if `out.len() != dims()`.
    fn coords_into(&self, index: u64, out: &mut [u64]);

    /// Total number of points on the curve (`2^(dims*bits)`), saturating
    /// at `u64::MAX` for 64-bit curves.
    fn len(&self) -> u64 {
        let total_bits = self.dims() as u32 * self.bits();
        if total_bits >= 64 {
            u64::MAX
        } else {
            1u64 << total_bits
        }
    }

    /// Whether the curve is empty (never, for a valid curve).
    fn is_empty(&self) -> bool {
        false
    }
}

/// Validate a curve shape, shared by all constructors.
pub(crate) fn check_shape(dims: usize, bits: u32) -> Result<(), CurveError> {
    let total = (dims as u64).saturating_mul(bits as u64);
    if dims == 0 || bits == 0 || total > 64 {
        Err(CurveError::InvalidShape { dims, bits })
    } else {
        Ok(())
    }
}

/// Validate coordinates against a shape, shared by all curves.
pub(crate) fn check_coords(coords: &[u64], dims: usize, bits: u32) -> Result<(), CurveError> {
    assert_eq!(coords.len(), dims, "coordinate arity mismatch");
    let max = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    for (dim, &value) in coords.iter().enumerate() {
        if value > max {
            return Err(CurveError::CoordinateOutOfRange { dim, value, bits });
        }
    }
    Ok(())
}

/// Smallest number of bits that can represent coordinates `0..extent`.
pub fn bits_for_extent(extent: u64) -> u32 {
    if extent <= 1 {
        1
    } else {
        64 - (extent - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(check_shape(3, 10).is_ok());
        assert!(check_shape(0, 10).is_err());
        assert!(check_shape(3, 0).is_err());
        assert!(check_shape(5, 13).is_err()); // 65 bits
        assert!(check_shape(1, 64).is_ok());
    }

    #[test]
    fn bits_for_extents() {
        assert_eq!(bits_for_extent(0), 1);
        assert_eq!(bits_for_extent(1), 1);
        assert_eq!(bits_for_extent(2), 1);
        assert_eq!(bits_for_extent(3), 2);
        assert_eq!(bits_for_extent(4), 2);
        assert_eq!(bits_for_extent(5), 3);
        assert_eq!(bits_for_extent(1024), 10);
        assert_eq!(bits_for_extent(1025), 11);
    }

    #[test]
    fn coordinate_validation() {
        assert!(check_coords(&[3, 3], 2, 2).is_ok());
        assert_eq!(
            check_coords(&[4, 0], 2, 2),
            Err(CurveError::CoordinateOutOfRange {
                dim: 0,
                value: 4,
                bits: 2
            })
        );
    }
}
