//! Z-order (Morton) curve: bit-interleaving of coordinates.

use crate::curve::{check_coords, check_shape, CurveError, SpaceFillingCurve};

/// The Z-order curve of `dims` dimensions with `bits` bits per dimension.
///
/// The index interleaves coordinate bits most-significant first, cycling
/// through dimensions: bit `b` of dimension `d` lands at index bit
/// `b * dims + (dims - 1 - d)`, so dimension 0 provides the most
/// significant bit of each group (row-major-like tie-breaking).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZCurve {
    dims: usize,
    bits: u32,
}

impl ZCurve {
    /// Create a Z-order curve; `dims * bits` must be in `1..=64`.
    pub fn new(dims: usize, bits: u32) -> Result<Self, CurveError> {
        check_shape(dims, bits)?;
        Ok(ZCurve { dims, bits })
    }
}

impl SpaceFillingCurve for ZCurve {
    fn dims(&self) -> usize {
        self.dims
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn try_index(&self, coords: &[u64]) -> Result<u64, CurveError> {
        check_coords(coords, self.dims, self.bits)?;
        let mut key = 0u64;
        for b in (0..self.bits).rev() {
            for &c in coords {
                key = (key << 1) | ((c >> b) & 1);
            }
        }
        Ok(key)
    }

    fn coords_into(&self, index: u64, out: &mut [u64]) {
        assert_eq!(out.len(), self.dims, "coordinate arity mismatch");
        out.fill(0);
        let total = self.dims as u32 * self.bits;
        let mut bit = total;
        for b in (0..self.bits).rev() {
            for c in out.iter_mut() {
                bit -= 1;
                *c |= ((index >> bit) & 1) << b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_2d_order() {
        // 2-D, 1 bit: Z visits (0,0) (0,1) (1,0) (1,1) with dim0 as the
        // most significant interleaved bit.
        let z = ZCurve::new(2, 1).unwrap();
        let visit: Vec<Vec<u64>> = (0..4).map(|i| z.coords(i)).collect();
        assert_eq!(visit, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn known_2d_interleave() {
        let z = ZCurve::new(2, 2).unwrap();
        // coord (x0=0b10, x1=0b11) -> bits interleaved msb-first: 1 1 0 1
        assert_eq!(z.index(&[0b10, 0b11]), 0b1101);
    }

    #[test]
    fn roundtrip_exhaustive_3d() {
        let z = ZCurve::new(3, 3).unwrap();
        for i in 0..z.len() {
            let c = z.coords(i);
            assert_eq!(z.index(&c), i);
        }
    }

    #[test]
    fn bijective_on_small_cube() {
        let z = ZCurve::new(2, 3).unwrap();
        let mut seen = [false; 64];
        for x in 0..8u64 {
            for y in 0..8u64 {
                let i = z.index(&[x, y]) as usize;
                assert!(!seen[i], "collision at {i}");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn out_of_range_coordinate_rejected() {
        let z = ZCurve::new(2, 2).unwrap();
        assert!(z.try_index(&[4, 0]).is_err());
    }

    #[test]
    fn full_width_single_dim() {
        let z = ZCurve::new(1, 64).unwrap();
        assert_eq!(z.index(&[u64::MAX]), u64::MAX);
        assert_eq!(z.coords(u64::MAX), vec![u64::MAX]);
    }
}
