//! Range scanning on the Z-order curve via BIGMIN (Tropf & Herzog,
//! 1981).
//!
//! Scanning the cells of an axis-aligned box in Z-order index order is
//! the core of index-assisted range queries over Morton-coded data. The
//! naive approach walks every index between the box's minimal and
//! maximal codes and filters; BIGMIN computes, for a code `z` that lies
//! *outside* the box, the smallest code greater than `z` that is back
//! *inside* — letting the scan skip whole gaps in O(bits) time.

use crate::curve::SpaceFillingCurve;
use crate::zorder::ZCurve;

/// Mask of the bits at positions `i - dims`, `i - 2*dims`, … (the lower
/// bits belonging to the same dimension as interleaved bit `i`).
fn lower_same_dim_mask(i: u32, dims: u32) -> u64 {
    let mut mask = 0u64;
    let mut j = i as i64 - dims as i64;
    while j >= 0 {
        mask |= 1u64 << j;
        j -= dims as i64;
    }
    mask
}

/// `load_1000`: set bit `i` of `v`, clear the lower same-dimension bits.
fn load_ones_min(v: u64, i: u32, dims: u32) -> u64 {
    (v | (1u64 << i)) & !lower_same_dim_mask(i, dims)
}

/// `load_0111`: clear bit `i` of `v`, set the lower same-dimension bits.
fn load_zeros_max(v: u64, i: u32, dims: u32) -> u64 {
    (v & !(1u64 << i)) | lower_same_dim_mask(i, dims)
}

/// BIGMIN: the smallest Z-order code `> z` whose point lies inside the
/// box whose minimal and maximal codes are `zmin` and `zmax`
/// (computed from the box corners). Returns `None` when no such code
/// exists.
///
/// `total_bits` is `dims * bits_per_dim` of the curve.
pub fn bigmin(z: u64, mut zmin: u64, mut zmax: u64, dims: u32, total_bits: u32) -> Option<u64> {
    debug_assert!(total_bits <= 64 && dims >= 1);
    let mut saved: Option<u64> = None;
    for i in (0..total_bits).rev() {
        let zb = (z >> i) & 1;
        let minb = (zmin >> i) & 1;
        let maxb = (zmax >> i) & 1;
        match (zb, minb, maxb) {
            (0, 0, 0) | (1, 1, 1) => {}
            (0, 0, 1) => {
                saved = Some(load_ones_min(zmin, i, dims));
                zmax = load_zeros_max(zmax, i, dims);
            }
            (0, 1, 1) => return Some(zmin),
            (1, 0, 0) => return saved,
            (1, 0, 1) => {
                zmin = load_ones_min(zmin, i, dims);
            }
            // min bit set while max bit clear in the same dimension
            // cannot happen for a valid box.
            _ => unreachable!("inconsistent zmin/zmax"),
        }
    }
    saved
}

/// Iterator over the Z-order codes of all cells inside an axis-aligned
/// box, in ascending code order, skipping gaps with BIGMIN.
pub struct ZBoxScan<'a> {
    curve: &'a ZCurve,
    lo: Vec<u64>,
    hi: Vec<u64>,
    zmin: u64,
    zmax: u64,
    next: Option<u64>,
    /// Scratch buffer for decoding.
    point: Vec<u64>,
}

impl<'a> ZBoxScan<'a> {
    /// Scan the inclusive box `[lo, hi]` under `curve`.
    ///
    /// # Panics
    /// Panics on arity mismatch or inverted bounds.
    pub fn new(curve: &'a ZCurve, lo: &[u64], hi: &[u64]) -> Self {
        assert_eq!(lo.len(), curve.dims(), "bound arity mismatch");
        assert_eq!(hi.len(), curve.dims(), "bound arity mismatch");
        assert!(lo.iter().zip(hi).all(|(l, h)| l <= h), "inverted bounds");
        let zmin = curve.index(lo);
        let zmax = curve.index(hi);
        ZBoxScan {
            curve,
            lo: lo.to_vec(),
            hi: hi.to_vec(),
            zmin,
            zmax,
            next: Some(zmin),
            point: vec![0; lo.len()],
        }
    }

    fn in_box(&mut self, code: u64) -> bool {
        self.curve.coords_into(code, &mut self.point);
        self.point
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(p, (l, h))| l <= p && p <= h)
    }
}

impl Iterator for ZBoxScan<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let dims = self.curve.dims() as u32;
        let total_bits = dims * self.curve.bits();
        loop {
            let code = self.next?;
            if code > self.zmax {
                self.next = None;
                return None;
            }
            if self.in_box(code) {
                self.next = code.checked_add(1);
                return Some(code);
            }
            // Outside the box: jump straight to the next inside code.
            self.next = bigmin(code, self.zmin, self.zmax, dims, total_bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::SpaceFillingCurve;

    /// Brute-force reference: all codes in the box, sorted.
    fn reference(curve: &ZCurve, lo: &[u64], hi: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = lo.to_vec();
        loop {
            out.push(curve.index(&cur));
            let mut d = 0;
            loop {
                if d == cur.len() {
                    out.sort_unstable();
                    return out;
                }
                if cur[d] < hi[d] {
                    cur[d] += 1;
                    break;
                }
                cur[d] = lo[d];
                d += 1;
            }
        }
    }

    #[test]
    fn scan_matches_brute_force_2d() {
        let curve = ZCurve::new(2, 5).unwrap();
        for (lo, hi) in [
            ([3u64, 5], [10u64, 9]),
            ([0, 0], [31, 31]),
            ([7, 7], [7, 7]),
            ([0, 30], [31, 31]),
            ([15, 0], [16, 31]),
        ] {
            let got: Vec<u64> = ZBoxScan::new(&curve, &lo, &hi).collect();
            assert_eq!(got, reference(&curve, &lo, &hi), "box {lo:?}..{hi:?}");
        }
    }

    #[test]
    fn scan_matches_brute_force_3d_and_4d() {
        let c3 = ZCurve::new(3, 4).unwrap();
        let got: Vec<u64> = ZBoxScan::new(&c3, &[1, 2, 3], &[9, 4, 12]).collect();
        assert_eq!(got, reference(&c3, &[1, 2, 3], &[9, 4, 12]));

        let c4 = ZCurve::new(4, 3).unwrap();
        let got: Vec<u64> = ZBoxScan::new(&c4, &[0, 1, 2, 3], &[5, 6, 7, 7]).collect();
        assert_eq!(got, reference(&c4, &[0, 1, 2, 3], &[5, 6, 7, 7]));
    }

    #[test]
    fn bigmin_skips_gaps() {
        // 2-D, 3 bits: box [2,2]..[3,6]. Code for (2,2) is zmin.
        let curve = ZCurve::new(2, 3).unwrap();
        let zmin = curve.index(&[2, 2]);
        let zmax = curve.index(&[3, 6]);
        // A code just past zmin that is outside: find its BIGMIN and
        // check it is the next reference code.
        let reference = reference(&curve, &[2, 2], &[3, 6]);
        for probe in zmin..zmax {
            if reference.contains(&probe) {
                continue;
            }
            let bm = bigmin(probe, zmin, zmax, 2, 6);
            let expect = reference.iter().find(|&&c| c > probe).copied();
            assert_eq!(bm, expect, "probe {probe}");
        }
    }

    #[test]
    fn scan_visits_every_cell_once_in_order() {
        let curve = ZCurve::new(2, 6).unwrap();
        let got: Vec<u64> = ZBoxScan::new(&curve, &[5, 40], &[20, 55]).collect();
        assert_eq!(got.len(), 16 * 16);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scan_is_lazy_for_large_sparse_boxes() {
        // A thin box across a 2^20-per-side domain: brute force over the
        // code range would be 2^40 steps; BIGMIN makes it proportional
        // to the output size.
        let curve = ZCurve::new(2, 20).unwrap();
        let got: Vec<u64> = ZBoxScan::new(&curve, &[1_000_000, 0], &[1_000_001, 99]).collect();
        assert_eq!(got.len(), 200);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_panic() {
        let curve = ZCurve::new(2, 3).unwrap();
        let _ = ZBoxScan::new(&curve, &[5, 0], &[1, 7]);
    }
}
