//! # multimap-sfc — N-dimensional space-filling curves
//!
//! The linearised baselines the paper compares against (Section 2, 5):
//! Z-order (Orenstein), Hilbert, and the Gray-coded curve (Faloutsos).
//! Each curve bijectively maps points of a `2^bits`-sided N-dimensional
//! hypercube to a one-dimensional index.
//!
//! ```
//! use multimap_sfc::{HilbertCurve, SpaceFillingCurve};
//!
//! let h = HilbertCurve::new(2, 1).unwrap();
//! let order: Vec<Vec<u64>> = (0..4).map(|i| h.coords(i)).collect();
//! // The first-order 2-D Hilbert curve visits the four quadrants in a U.
//! assert_eq!(order, vec![vec![0, 0], vec![0, 1], vec![1, 1], vec![1, 0]]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clustering;
pub mod curve;
pub mod gray;
pub mod hilbert;
pub mod zorder;
pub mod zscan;

pub use clustering::{average_clusters, box_clusters, ClusterStats};
pub use curve::{bits_for_extent, CurveError, SpaceFillingCurve};
pub use gray::GrayCurve;
pub use hilbert::HilbertCurve;
pub use zorder::ZCurve;
pub use zscan::{bigmin, ZBoxScan};
