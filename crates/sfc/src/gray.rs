//! Gray-coded curve (Faloutsos, 1986).
//!
//! Orders the cells of the hypercube by the *rank* of their interleaved
//! coordinate bits in the binary-reflected Gray code: consecutive cells
//! differ in exactly one interleaved bit, i.e. one coordinate changes by
//! a power of two. This improves on Z-order's worst-case jumps while
//! remaining cheap to compute.

use crate::curve::{check_coords, check_shape, CurveError, SpaceFillingCurve};
use crate::zorder::ZCurve;

/// The Gray-coded curve of `dims` dimensions with `bits` bits per
/// dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrayCurve {
    z: ZCurve,
}

impl GrayCurve {
    /// Create a Gray-coded curve; `dims * bits` must be in `1..=64`.
    pub fn new(dims: usize, bits: u32) -> Result<Self, CurveError> {
        check_shape(dims, bits)?;
        Ok(GrayCurve {
            z: ZCurve::new(dims, bits)?,
        })
    }

    /// Binary-reflected Gray code of `v`.
    #[inline]
    pub fn gray_encode(v: u64) -> u64 {
        v ^ (v >> 1)
    }

    /// Inverse of [`Self::gray_encode`].
    #[inline]
    pub fn gray_decode(mut g: u64) -> u64 {
        let mut shift = 1;
        while shift < 64 {
            g ^= g >> shift;
            shift <<= 1;
        }
        g
    }
}

impl SpaceFillingCurve for GrayCurve {
    fn dims(&self) -> usize {
        self.z.dims()
    }

    fn bits(&self) -> u32 {
        self.z.bits()
    }

    fn try_index(&self, coords: &[u64]) -> Result<u64, CurveError> {
        check_coords(coords, self.dims(), self.bits())?;
        let morton = self.z.try_index(coords)?;
        Ok(Self::gray_decode(morton))
    }

    fn coords_into(&self, index: u64, out: &mut [u64]) {
        let morton = Self::gray_encode(index);
        self.z.coords_into(morton, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_roundtrip() {
        for v in 0..1024u64 {
            assert_eq!(GrayCurve::gray_decode(GrayCurve::gray_encode(v)), v);
        }
        assert_eq!(
            GrayCurve::gray_decode(GrayCurve::gray_encode(u64::MAX)),
            u64::MAX
        );
    }

    #[test]
    fn consecutive_cells_differ_in_one_interleaved_bit() {
        let g = GrayCurve::new(3, 3).unwrap();
        let z = ZCurve::new(3, 3).unwrap();
        for i in 0..g.len() - 1 {
            let a = z.index(&g.coords(i));
            let b = z.index(&g.coords(i + 1));
            assert_eq!((a ^ b).count_ones(), 1, "step {i}");
        }
    }

    #[test]
    fn consecutive_cells_change_one_coordinate() {
        let g = GrayCurve::new(2, 4).unwrap();
        for i in 0..g.len() - 1 {
            let a = g.coords(i);
            let b = g.coords(i + 1);
            let changed = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert_eq!(changed, 1, "step {i}: {a:?} -> {b:?}");
        }
    }

    #[test]
    fn roundtrip_exhaustive() {
        let g = GrayCurve::new(3, 3).unwrap();
        for i in 0..g.len() {
            assert_eq!(g.index(&g.coords(i)), i);
        }
    }

    #[test]
    fn bijective() {
        let g = GrayCurve::new(2, 3).unwrap();
        let mut seen = [false; 64];
        for x in 0..8u64 {
            for y in 0..8u64 {
                let i = g.index(&[x, y]) as usize;
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
