//! N-dimensional Hilbert curve via Skilling's transpose algorithm
//! (J. Skilling, "Programming the Hilbert curve", AIP Conf. Proc. 2004).

use crate::curve::{check_coords, check_shape, CurveError, SpaceFillingCurve};

/// The Hilbert curve of `dims` dimensions with `bits` bits per dimension.
///
/// Hilbert curves have the best clustering properties of the classic
/// space-filling curves (Moon et al.), which is why the paper uses them
/// as the strongest linearised baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HilbertCurve {
    dims: usize,
    bits: u32,
}

impl HilbertCurve {
    /// Create a Hilbert curve; `dims * bits` must be in `1..=64`.
    pub fn new(dims: usize, bits: u32) -> Result<Self, CurveError> {
        check_shape(dims, bits)?;
        debug_assert!(dims <= 64);
        Ok(HilbertCurve { dims, bits })
    }

    /// Skilling's AxesToTranspose: convert coordinates (in place) into the
    /// "transposed" Hilbert index form.
    fn axes_to_transpose(x: &mut [u64], bits: u32) {
        let n = x.len();
        if bits == 0 {
            return;
        }
        let m = 1u64 << (bits - 1);
        // Inverse undo.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t = 0;
        let mut q = m;
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    /// Skilling's TransposeToAxes: inverse of [`Self::axes_to_transpose`].
    fn transpose_to_axes(x: &mut [u64], bits: u32) {
        let n = x.len();
        if bits == 0 {
            return;
        }
        let big_n = 2u64 << (bits - 1);
        // Gray decode by H ^ (H/2).
        let t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work.
        let mut q = 2u64;
        while q != big_n {
            let p = q - 1;
            for i in (0..n).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }

    /// Interleave the transposed form into a scalar index, msb first.
    fn interleave(x: &[u64], bits: u32) -> u64 {
        let mut out = 0u64;
        for b in (0..bits).rev() {
            for &xi in x {
                out = (out << 1) | ((xi >> b) & 1);
            }
        }
        out
    }

    /// Inverse of [`Self::interleave`].
    fn deinterleave(index: u64, x: &mut [u64], bits: u32) {
        x.fill(0);
        let total = x.len() as u32 * bits;
        let mut bit = total;
        for b in (0..bits).rev() {
            for xi in x.iter_mut() {
                bit -= 1;
                *xi |= ((index >> bit) & 1) << b;
            }
        }
    }
}

impl SpaceFillingCurve for HilbertCurve {
    fn dims(&self) -> usize {
        self.dims
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn try_index(&self, coords: &[u64]) -> Result<u64, CurveError> {
        check_coords(coords, self.dims, self.bits)?;
        // Stack buffer: dims*bits <= 64 implies dims <= 64.
        let mut buf = [0u64; 64];
        let x = &mut buf[..self.dims];
        x.copy_from_slice(coords);
        Self::axes_to_transpose(x, self.bits);
        Ok(Self::interleave(x, self.bits))
    }

    fn coords_into(&self, index: u64, out: &mut [u64]) {
        assert_eq!(out.len(), self.dims, "coordinate arity mismatch");
        Self::deinterleave(index, out, self.bits);
        Self::transpose_to_axes(out, self.bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_2d_is_a_u() {
        let h = HilbertCurve::new(2, 1).unwrap();
        let visit: Vec<Vec<u64>> = (0..4).map(|i| h.coords(i)).collect();
        assert_eq!(visit, vec![vec![0, 0], vec![0, 1], vec![1, 1], vec![1, 0]]);
    }

    #[test]
    fn consecutive_indices_are_unit_steps() {
        // The defining property of the Hilbert curve: successive points
        // differ by exactly 1 in exactly one dimension.
        for (dims, bits) in [(2usize, 4u32), (3, 3), (4, 2)] {
            let h = HilbertCurve::new(dims, bits).unwrap();
            let mut prev = h.coords(0);
            for i in 1..h.len() {
                let cur = h.coords(i);
                let dist: u64 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
                assert_eq!(dist, 1, "step {i} in {dims}d/{bits}b: {prev:?} -> {cur:?}");
                prev = cur;
            }
        }
    }

    #[test]
    fn roundtrip_exhaustive() {
        for (dims, bits) in [(2usize, 5u32), (3, 3), (4, 2), (5, 2)] {
            let h = HilbertCurve::new(dims, bits).unwrap();
            for i in 0..h.len() {
                let c = h.coords(i);
                assert_eq!(h.index(&c), i, "{dims}d/{bits}b index {i}");
            }
        }
    }

    #[test]
    fn bijective_on_cube() {
        let h = HilbertCurve::new(3, 2).unwrap();
        let mut seen = [false; 64];
        for x in 0..4u64 {
            for y in 0..4u64 {
                for z in 0..4u64 {
                    let i = h.index(&[x, y, z]) as usize;
                    assert!(!seen[i], "collision at {i}");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn curve_starts_at_origin() {
        for (dims, bits) in [(2usize, 3u32), (3, 4), (4, 3)] {
            let h = HilbertCurve::new(dims, bits).unwrap();
            assert_eq!(h.coords(0), vec![0; dims]);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let h = HilbertCurve::new(3, 2).unwrap();
        assert!(h.try_index(&[0, 4, 0]).is_err());
    }
}
