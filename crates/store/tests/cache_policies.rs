//! Eviction-policy conformance: each production policy (index maps,
//! free-slot stacks, stamp LRUs) is driven through random access
//! strings against a brute-force reference built from plain `Vec`s and
//! linear scans. Any divergence in the eviction sequence or the final
//! resident set fails.

use std::collections::BTreeSet;

use multimap_store::{make_policy, EvictionKind, EvictionPolicy};
use proptest::prelude::*;

/// One step of an access string.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Reference a page (hit if resident, else admit-with-eviction).
    Access(u64),
    /// Invalidate a page (no-op if absent).
    Remove(u64),
}

/// Drive a policy through the cache harness semantics: hits touch,
/// misses evict-then-admit at capacity, removals forget. Returns the
/// eviction sequence and the final resident set.
fn drive(policy: &mut dyn EvictionPolicy, capacity: usize, ops: &[Op]) -> (Vec<u64>, Vec<u64>) {
    let mut resident: BTreeSet<u64> = BTreeSet::new();
    let mut evictions = Vec::new();
    for &op in ops {
        match op {
            Op::Access(lbn) => {
                if resident.contains(&lbn) {
                    policy.on_hit(lbn);
                } else {
                    while resident.len() >= capacity {
                        let victim = policy.victim().expect("resident pages exist");
                        assert!(resident.remove(&victim), "victim {victim} not resident");
                        evictions.push(victim);
                    }
                    policy.on_admit(lbn);
                    resident.insert(lbn);
                }
            }
            Op::Remove(lbn) => {
                if resident.remove(&lbn) {
                    policy.on_remove(lbn);
                }
            }
        }
    }
    (evictions, resident.into_iter().collect())
}

// ---------------------------------------------------------------------
// Brute-force references (Vecs + linear scans only).
// ---------------------------------------------------------------------

/// CLOCK reference: a slot array with reference bits and a hand.
/// Freed slots are reused most-recent-first; before any frees, slots
/// fill in ascending order. New pages get a cleared bit; the hand
/// sweeps circularly, clearing set bits, evicting the first clear one.
struct ClockRef {
    slots: Vec<Option<(u64, bool)>>,
    free: Vec<usize>,
    hand: usize,
}

impl ClockRef {
    fn new(capacity: usize) -> Self {
        ClockRef {
            slots: vec![None; capacity],
            free: (0..capacity).rev().collect(),
            hand: 0,
        }
    }

    fn find(&self, lbn: u64) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| matches!(s, Some((l, _)) if *l == lbn))
    }
}

impl EvictionPolicy for ClockRef {
    fn name(&self) -> &'static str {
        "clock-ref"
    }
    fn on_admit(&mut self, lbn: u64) {
        let slot = self.free.pop().expect("reference never admits past capacity");
        self.slots[slot] = Some((lbn, false));
    }
    fn on_hit(&mut self, lbn: u64) {
        if let Some(slot) = self.find(lbn) {
            self.slots[slot] = Some((lbn, true));
        }
    }
    fn on_remove(&mut self, lbn: u64) {
        if let Some(slot) = self.find(lbn) {
            self.slots[slot] = None;
            self.free.push(slot);
        }
    }
    fn victim(&mut self) -> Option<u64> {
        if self.slots.iter().all(Option::is_none) {
            return None;
        }
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            match self.slots[slot] {
                None => continue,
                Some((lbn, referenced)) => {
                    if referenced {
                        self.slots[slot] = Some((lbn, false));
                    } else {
                        self.slots[slot] = None;
                        self.free.push(slot);
                        return Some(lbn);
                    }
                }
            }
        }
    }
}

/// LRU reference: a recency list, front = least recent.
#[derive(Default)]
struct LruRef {
    order: Vec<u64>,
}

impl EvictionPolicy for LruRef {
    fn name(&self) -> &'static str {
        "lru-ref"
    }
    fn on_admit(&mut self, lbn: u64) {
        self.order.push(lbn);
    }
    fn on_hit(&mut self, lbn: u64) {
        self.order.retain(|&l| l != lbn);
        self.order.push(lbn);
    }
    fn on_remove(&mut self, lbn: u64) {
        self.order.retain(|&l| l != lbn);
    }
    fn victim(&mut self) -> Option<u64> {
        if self.order.is_empty() {
            None
        } else {
            Some(self.order.remove(0))
        }
    }
}

/// 2Q reference: three plain lists with the production parameters
/// (`kin` = capacity/4, `kout` = capacity/2, both at least 1).
struct TwoQRef {
    kin: usize,
    kout: usize,
    a1in: Vec<u64>,
    ghosts: Vec<u64>,
    am: Vec<u64>, // recency list, front = least recent
}

impl TwoQRef {
    fn new(capacity: usize) -> Self {
        TwoQRef {
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            a1in: Vec::new(),
            ghosts: Vec::new(),
            am: Vec::new(),
        }
    }
}

impl EvictionPolicy for TwoQRef {
    fn name(&self) -> &'static str {
        "2q-ref"
    }
    fn on_admit(&mut self, lbn: u64) {
        if self.ghosts.contains(&lbn) {
            self.ghosts.retain(|&g| g != lbn);
            self.am.push(lbn);
        } else {
            self.a1in.push(lbn);
        }
    }
    fn on_hit(&mut self, lbn: u64) {
        if self.am.contains(&lbn) {
            self.am.retain(|&l| l != lbn);
            self.am.push(lbn);
        }
    }
    fn on_remove(&mut self, lbn: u64) {
        self.a1in.retain(|&l| l != lbn);
        self.am.retain(|&l| l != lbn);
    }
    fn victim(&mut self) -> Option<u64> {
        if (self.a1in.len() > self.kin || self.am.is_empty()) && !self.a1in.is_empty() {
            let lbn = self.a1in.remove(0);
            self.ghosts.push(lbn);
            while self.ghosts.len() > self.kout {
                self.ghosts.remove(0);
            }
            return Some(lbn);
        }
        if self.am.is_empty() {
            None
        } else {
            Some(self.am.remove(0))
        }
    }
}

// ---------------------------------------------------------------------
// The property: production == reference on every access string.
// ---------------------------------------------------------------------

fn op_strategy() -> impl Strategy<Value = Op> {
    // Removals are rare (1 in 8) so strings mostly exercise the
    // hit/evict machinery, but free-slot recycling still gets coverage.
    (0u64..16, 0u32..8).prop_map(|(lbn, kind)| {
        if kind == 0 {
            Op::Remove(lbn)
        } else {
            Op::Access(lbn)
        }
    })
}

fn reference_for(kind: EvictionKind, capacity: usize) -> Box<dyn EvictionPolicy> {
    match kind {
        EvictionKind::Clock => Box::new(ClockRef::new(capacity)),
        EvictionKind::Lru => Box::new(LruRef::default()),
        EvictionKind::TwoQ => Box::new(TwoQRef::new(capacity)),
    }
}

fn assert_matches_reference(kind: EvictionKind, capacity: usize, ops: &[Op]) {
    let mut production = make_policy(kind, capacity);
    let mut reference = reference_for(kind, capacity);
    let got = drive(production.as_mut(), capacity, ops);
    let want = drive(reference.as_mut(), capacity, ops);
    assert_eq!(
        got, want,
        "{} diverged from reference at capacity {capacity}: {ops:?}",
        kind.name()
    );
}

proptest! {
    #[test]
    fn clock_matches_reference(
        capacity in 1usize..=8,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        assert_matches_reference(EvictionKind::Clock, capacity, &ops);
    }

    #[test]
    fn lru_matches_reference(
        capacity in 1usize..=8,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        assert_matches_reference(EvictionKind::Lru, capacity, &ops);
    }

    #[test]
    fn two_q_matches_reference(
        capacity in 1usize..=8,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        assert_matches_reference(EvictionKind::TwoQ, capacity, &ops);
    }
}

/// The worked example from the 2Q paper's intuition: a page referenced
/// once cycles out through the ghost list; re-reference while ghosted
/// promotes it to the protected main area.
#[test]
fn two_q_promotes_ghosted_pages_to_the_main_area() {
    let capacity = 4; // kin = 1, kout = 2
    let mut p = make_policy(EvictionKind::TwoQ, capacity);
    let (evictions, resident) = drive(
        p.as_mut(),
        capacity,
        &[
            Op::Access(1),
            Op::Access(2), // a1in over kin: evicting begins with FIFO order
            Op::Access(3),
            Op::Access(4),
            Op::Access(5), // evicts 1 (ghosted)
            Op::Access(1), // readmit from ghost -> Am
            Op::Access(6), // evicts 3 from a1in, not the hot 1
        ],
    );
    assert_eq!(evictions, vec![1, 2, 3]);
    assert!(resident.contains(&1), "ghost-promoted page was evicted");
}
