//! Manager-level cache behaviour: the cache-off byte-identity pin (at
//! every thread count), warm-cache result identity, write-back
//! batching, and invalidation.

use multimap_core::{BoxRegion, GridSpec, UpdateConfig};
use multimap_disksim::profiles;
use multimap_store::{
    CacheConfig, EvictionKind, LayoutChoice, PrefetchMode, StorageManager,
};
use multimap_telemetry::{Counter, Phase};

/// Serialise tests that flip the global engine thread override.
static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    multimap_engine::set_threads(n);
    let out = f();
    multimap_engine::set_threads(0);
    out
}

/// A mixed workload: a beam sweep (a stream), a couple of ranges, and a
/// burst of inserts. Returns every simulated timing bit-exactly plus
/// the payload checksum, so two runs can be compared byte for byte.
fn run_workload(layout: LayoutChoice, cache: Option<CacheConfig>) -> (Vec<u64>, u64) {
    let mut m = StorageManager::new(profiles::small(), 1);
    m.set_update_config(UpdateConfig {
        cell_capacity: 4,
        fill_factor: 1.0,
        reclaim_threshold: 0.25,
    });
    if let Some(config) = cache {
        m.enable_cache(config);
    }
    m.create_table("t", GridSpec::new([80u64, 8, 6]), layout)
        .expect("create");
    m.load("t").expect("load");

    let mut bits = Vec::new();
    let mut payload = 0u64;
    for z in 0..6 {
        let r = m.beam("t", 1, &[10, 0, z]).expect("beam");
        bits.push(r.total_io_ms.to_bits());
        payload = payload.wrapping_add(r.payload);
    }
    for lo in [0u64, 3] {
        let region = BoxRegion::new([lo, 1, 1], [lo + 5, 3, 2]);
        let r = m.range("t", &region).expect("range");
        bits.push(r.total_io_ms.to_bits());
        payload = payload.wrapping_add(r.payload);
    }
    for i in 0..10u64 {
        m.insert("t", &[i % 80, i % 8, i % 6]).expect("insert");
    }
    let flushed = m.flush_all().expect("flush");
    bits.push(flushed.total_io_ms.to_bits());
    bits.push(m.volume().merged_stats().total_ms.to_bits());
    (bits, payload)
}

/// The tentpole's safety pin: a capacity-0 cache is a pass-through —
/// every timing bit and the payload checksum match a manager that never
/// had a cache, for MultiMap and a linear baseline alike.
#[test]
fn capacity_zero_cache_is_byte_identical_to_no_cache() {
    for layout in [LayoutChoice::MultiMap, LayoutChoice::Naive] {
        let bare = run_workload(layout, None);
        let disabled = run_workload(
            layout,
            Some(CacheConfig {
                capacity_pages: 0,
                ..CacheConfig::default()
            }),
        );
        assert_eq!(bare, disabled, "capacity-0 cache perturbed {layout:?}");
    }
}

/// The same pin under the engine: a sweep of cache-off workloads is
/// bit-identical at 1, 2, 4 and 8 threads (and equal to the no-cache
/// serial run), so attaching a disabled cache cannot perturb parallel
/// figure sweeps either.
#[test]
fn cache_off_sweep_is_identical_at_all_thread_counts() {
    let cells: Vec<usize> = (0..4).collect();
    let run = |threads: usize| {
        with_threads(threads, || {
            multimap_engine::sweep(&cells, |&cell| {
                let cache = (cell % 2 == 1).then(|| CacheConfig {
                    capacity_pages: 0,
                    ..CacheConfig::default()
                });
                run_workload(LayoutChoice::MultiMap, cache)
            })
        })
    };
    let serial = run(1);
    assert_eq!(
        serial[0], serial[1],
        "disabled cache diverged from no cache inside the sweep"
    );
    for threads in [2usize, 4, 8] {
        assert_eq!(serial, run(threads), "diverged at {threads} threads");
    }
}

/// A real cache must not change *what* a query returns, only the I/O it
/// costs: payload checksums and cell counts match the uncached run for
/// every policy, and a repeated beam is served without disk time.
#[test]
fn warm_cache_preserves_results_and_serves_repeats_from_memory() {
    for eviction in [EvictionKind::Clock, EvictionKind::Lru, EvictionKind::TwoQ] {
        let mut bare = StorageManager::new(profiles::small(), 1);
        let mut cached = StorageManager::new(profiles::small(), 1);
        cached.enable_cache(CacheConfig {
            capacity_pages: 128,
            eviction,
            prefetch: PrefetchMode::Adjacency { depth: 1 },
            ..CacheConfig::default()
        });
        for m in [&mut bare, &mut cached] {
            m.create_table("t", GridSpec::new([80u64, 8, 6]), LayoutChoice::MultiMap)
                .expect("create");
            m.load("t").expect("load");
        }
        for z in 0..6 {
            let want = bare.beam("t", 1, &[10, 0, z]).expect("bare beam");
            let got = cached.beam("t", 1, &[10, 0, z]).expect("cached beam");
            assert_eq!(got.payload, want.payload, "{eviction:?} payload diverged");
            assert_eq!(got.cells, want.cells, "{eviction:?} cells diverged");
        }
        // Everything probed again is resident: zero I/O, same payload.
        let want = bare.beam("t", 1, &[10, 0, 0]).expect("bare beam");
        let again = cached.beam("t", 1, &[10, 0, 0]).expect("warm beam");
        assert_eq!(again.payload, want.payload);
        assert_eq!(again.total_io_ms, 0.0, "{eviction:?} warm beam did I/O");
        let stats = cached.cache_stats();
        assert!(stats.hits > 0, "{eviction:?} never hit");
        assert_eq!(
            stats.hits + stats.misses,
            7 * 8,
            "{eviction:?} probe counts do not reconcile with demanded cells"
        );
    }
}

/// Inserts under a cache dirty pages instead of writing; the batcher
/// flushes once `writeback_batch` pages are pending, through the
/// queued-SPTF scheduler, and records the flush in the manager's
/// telemetry (Writeback memo phase + `writeback_flush` counter).
#[test]
fn writeback_batches_inserts_into_scheduled_flushes() {
    let mut m = StorageManager::new(profiles::small(), 1);
    m.enable_cache(CacheConfig {
        capacity_pages: 64,
        writeback_batch: 4,
        ..CacheConfig::default()
    });
    m.create_table("t", GridSpec::new([40u64, 6, 4]), LayoutChoice::MultiMap)
        .expect("create");
    m.load("t").expect("load");
    let io_before = m.volume().merged_stats().total_ms;

    // Three inserts on distinct cells: three dirty pages, no flush yet.
    for x in 0..3 {
        m.insert("t", &[x, 0, 0]).expect("insert");
    }
    assert_eq!(m.cache(0).expect("cache").writeback_pending(), 3);
    assert_eq!(
        m.volume().merged_stats().total_ms,
        io_before,
        "inserts below the batch threshold must not touch the disk"
    );
    assert_eq!(m.cache_metrics().counter_value(Counter::WritebackFlush), 0);

    // The fourth crosses the threshold: one batch of four writes.
    m.insert("t", &[3, 0, 0]).expect("insert");
    assert_eq!(m.cache(0).expect("cache").writeback_pending(), 0);
    assert!(m.volume().merged_stats().total_ms > io_before);
    let metrics = m.cache_metrics();
    assert_eq!(metrics.counter_value(Counter::WritebackFlush), 1);
    assert_eq!(metrics.counter_value(Counter::RequestsServiced), 4);
    let memo = metrics.phase_hist(Phase::Writeback).sum_ms();
    assert!(memo > 0.0, "flush did not record the Writeback memo");
    // The memo is an overlay: the component phases alone reconcile with
    // the recorded service time (the conformance invariant).
    let component_sum = metrics.phase_sum_ms();
    let service_sum = metrics.service_hist().sum_ms();
    assert!(
        (component_sum - service_sum).abs() < 1e-6,
        "phase components ({component_sum}) drifted from service time ({service_sum})"
    );

    // Draining an empty batcher is free; disabling flushes the rest.
    assert_eq!(m.flush_all().expect("flush").pages, 0);
    m.insert("t", &[4, 0, 0]).expect("insert");
    let report = m.disable_cache().expect("disable");
    assert_eq!(report.pages, 1);
    assert!(m.cache(0).is_none());
}

/// Reorganising (or dropping) a table discards its cached pages and any
/// queued write-backs — the rewrite supersedes them.
#[test]
fn reorganize_and_drop_invalidate_cached_pages() {
    let mut m = StorageManager::new(profiles::small(), 1);
    m.enable_cache(CacheConfig {
        capacity_pages: 64,
        writeback_batch: 1000,
        ..CacheConfig::default()
    });
    m.create_table("t", GridSpec::new([40u64, 6, 4]), LayoutChoice::MultiMap)
        .expect("create");
    m.load("t").expect("load");
    m.beam("t", 1, &[5, 0, 1]).expect("beam");
    m.insert("t", &[7, 1, 1]).expect("insert");
    let cache = m.cache(0).expect("cache");
    assert!(!cache.is_empty());
    assert!(cache.writeback_pending() > 0);

    m.reorganize("t").expect("reorganize");
    let cache = m.cache(0).expect("cache");
    assert_eq!(cache.len(), 0, "reorganize left stale pages resident");
    assert_eq!(cache.writeback_pending(), 0, "stale dirty pages survived");
    assert_eq!(m.flush_all().expect("flush").pages, 0);

    m.beam("t", 1, &[5, 0, 1]).expect("beam");
    assert!(!m.cache(0).expect("cache").is_empty());
    m.drop_table("t").expect("drop");
    assert_eq!(m.cache(0).expect("cache").len(), 0);
}

/// The adjacency prefetcher on a beam sweep: after the stream is
/// detected (second query), every subsequent beam's cells were already
/// prefetched — sustained all-hit queries with zero demand I/O.
#[test]
fn adjacency_prefetch_converts_a_beam_sweep_into_hits() {
    let mut m = StorageManager::new(profiles::small(), 1);
    m.enable_cache(CacheConfig {
        capacity_pages: 64,
        prefetch: PrefetchMode::Adjacency { depth: 1 },
        ..CacheConfig::default()
    });
    m.create_table("t", GridSpec::new([80u64, 8, 6]), LayoutChoice::MultiMap)
        .expect("create");
    m.load("t").expect("load");
    let mut last = f64::NAN;
    for z in 0..6u64 {
        last = m.beam("t", 1, &[10, 0, z]).expect("beam").total_io_ms;
    }
    // z=0 misses cold; z=1 misses but detects the stream and prefetches
    // z=2; from there every beam's demand is already resident and the
    // only I/O a query carries is its own depth-1 prefetch. The final
    // beam (z=5) predicts z=6 — off the grid — so it does no I/O at all.
    assert_eq!(last, 0.0, "the all-hit final beam still touched the disk");
    let stats = m.cache_stats();
    assert_eq!(stats.misses, 2 * 8, "only the first two beams may miss");
    assert_eq!(stats.hits, 4 * 8, "beams z=2..5 should hit entirely");
    assert_eq!(stats.prefetch_issued, 4 * 8, "one beam prefetched per stream step");
    assert_eq!(
        stats.prefetch_used,
        4 * 8,
        "every prefetched beam should be consumed by the sweep"
    );
}
