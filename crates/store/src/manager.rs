//! The storage manager: tables, loading, updates, and queries.

use std::collections::BTreeMap;
use std::fmt;

use multimap_core::{
    hilbert_mapping, zorder_mapping, BoxRegion, CellStore, GridSpec, LoadReport, Mapping,
    MappingError, MultiMapOptions, MultiMapping, NaiveMapping, UpdateConfig,
};
use multimap_disksim::{DiskGeometry, Lbn, Request};
use multimap_lvm::{LogicalVolume, LvmError, SchedulePolicy};
use multimap_query::{
    record_service_event, service_lbns, QueryError, QueryExecutor, QueryRequest, QueryResult,
};
use multimap_telemetry::{Counter, Metrics, MetricsSink, Phase};

use crate::alloc::{ZoneAllocator, ZoneGrant};
use crate::cache::{CacheConfig, CacheStats, PageCache};

/// Which placement a table uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutChoice {
    /// Let the advisor pick (MultiMap when it clears the space budget).
    Auto,
    /// Force MultiMap.
    MultiMap,
    /// Force the naive row-major layout.
    Naive,
    /// Force the Z-order layout.
    ZOrder,
    /// Force the Hilbert layout.
    Hilbert,
}

/// Errors from the storage manager.
#[derive(Debug)]
pub enum StoreError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name.
    NoSuchTable(String),
    /// No disk has enough free zones for the table.
    OutOfSpace {
        /// What could not be placed.
        what: String,
    },
    /// The mapping layer rejected the table.
    Mapping(MappingError),
    /// The query layer failed.
    Query(QueryError),
    /// The logical volume rejected an operation.
    Volume(LvmError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TableExists(n) => write!(f, "table {n:?} already exists"),
            StoreError::NoSuchTable(n) => write!(f, "no table named {n:?}"),
            StoreError::OutOfSpace { what } => write!(f, "out of space: {what}"),
            StoreError::Mapping(e) => write!(f, "mapping error: {e}"),
            StoreError::Query(e) => write!(f, "query error: {e}"),
            StoreError::Volume(e) => write!(f, "volume error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<MappingError> for StoreError {
    fn from(e: MappingError) -> Self {
        StoreError::Mapping(e)
    }
}

impl From<QueryError> for StoreError {
    fn from(e: QueryError) -> Self {
        StoreError::Query(e)
    }
}

impl From<LvmError> for StoreError {
    fn from(e: LvmError) -> Self {
        StoreError::Volume(e)
    }
}

/// Result alias for the store.
pub type Result<T> = std::result::Result<T, StoreError>;

/// One table: a placed grid plus its cell occupancy.
pub struct SpatialTable {
    name: String,
    grant: ZoneGrant,
    mapping: Box<dyn Mapping>,
    cells: CellStore,
    loaded: bool,
}

impl SpatialTable {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dataset grid.
    pub fn grid(&self) -> &GridSpec {
        self.mapping.grid()
    }

    /// The placement in use.
    pub fn mapping(&self) -> &dyn Mapping {
        self.mapping.as_ref()
    }

    /// The zone grant backing the table.
    pub fn grant(&self) -> ZoneGrant {
        self.grant
    }

    /// Whether the table has been bulk-loaded.
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// Occupancy / overflow bookkeeping.
    pub fn cells(&self) -> &CellStore {
        &self.cells
    }
}

/// What one write-back flush (or a drain of several) serviced.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlushReport {
    /// Flush batches issued.
    pub batches: u64,
    /// Dirty pages written.
    pub pages: u64,
    /// Blocks written across them.
    pub blocks: u64,
    /// Simulated I/O time of the batches, in milliseconds.
    pub total_io_ms: f64,
}

impl FlushReport {
    fn absorb(&mut self, other: FlushReport) {
        self.batches += other.batches;
        self.pages += other.pages;
        self.blocks += other.blocks;
        self.total_io_ms += other.total_io_ms;
    }
}

/// The database storage manager of the paper's prototype: owns the
/// logical volume, allocates zone ranges to tables, and runs loads,
/// updates and queries against them.
///
/// With [`StorageManager::enable_cache`] the manager interposes one
/// [`PageCache`] per disk between queries/updates and the volume:
/// queries run with the cache attached (hits skip disk I/O, the
/// prefetcher rides their batches), and inserts dirty cache pages
/// instead of issuing one positioned write each — a write-back batcher
/// flushes accumulated dirty pages through the queued-SPTF scheduler
/// once `writeback_batch` of them are pending.
pub struct StorageManager {
    volume: LogicalVolume,
    allocator: ZoneAllocator,
    tables: BTreeMap<String, SpatialTable>,
    update_config: UpdateConfig,
    caches: BTreeMap<usize, PageCache>,
    cache_config: Option<CacheConfig>,
    cache_metrics: Metrics,
}

impl StorageManager {
    /// A manager over `ndisks` disks of the given geometry.
    pub fn new(geometry: DiskGeometry, ndisks: usize) -> Self {
        StorageManager {
            volume: LogicalVolume::new(geometry, ndisks),
            allocator: ZoneAllocator::new(ndisks),
            tables: BTreeMap::new(),
            update_config: UpdateConfig::default(),
            caches: BTreeMap::new(),
            cache_config: None,
            cache_metrics: Metrics::new(),
        }
    }

    /// Override the update tunables used for new tables.
    pub fn set_update_config(&mut self, cfg: UpdateConfig) {
        self.update_config = cfg;
    }

    /// Interpose a page cache per disk. A `capacity_pages` of 0 leaves
    /// every operation byte-identical to a cache-less manager (probes
    /// always miss, inserts write through immediately).
    pub fn enable_cache(&mut self, config: CacheConfig) {
        self.caches = (0..self.volume.num_disks())
            .map(|d| (d, PageCache::new(&config)))
            .collect();
        self.cache_config = Some(config);
    }

    /// Flush all pending dirty pages and detach the caches.
    pub fn disable_cache(&mut self) -> Result<FlushReport> {
        let report = self.flush_all()?;
        self.caches.clear();
        self.cache_config = None;
        Ok(report)
    }

    /// The active cache configuration, if caching is enabled.
    pub fn cache_config(&self) -> Option<CacheConfig> {
        self.cache_config
    }

    /// The page cache serving `disk`, if caching is enabled.
    pub fn cache(&self, disk: usize) -> Option<&PageCache> {
        self.caches.get(&disk)
    }

    /// Cache event totals summed across all disks.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for cache in self.caches.values() {
            let s = cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.prefetch_issued += s.prefetch_issued;
            total.prefetch_used += s.prefetch_used;
            total.evictions += s.evictions;
            total.writeback_pages += s.writeback_pages;
        }
        total
    }

    /// Telemetry recorded by the write-back batcher: the per-request
    /// phase decomposition of every flush, the [`Phase::Writeback`]
    /// memo overlay, and the `writeback_flush` counter.
    pub fn cache_metrics(&self) -> &Metrics {
        &self.cache_metrics
    }

    /// Flush the pending dirty pages of every disk as queued-SPTF
    /// batches (a no-op without a cache or dirty pages).
    pub fn flush_all(&mut self) -> Result<FlushReport> {
        let disks: Vec<usize> = self.caches.keys().copied().collect();
        let mut report = FlushReport::default();
        for disk in disks {
            report.absorb(self.flush_disk(disk)?);
        }
        Ok(report)
    }

    /// Flush one disk's pending dirty pages as one queued-SPTF batch.
    fn flush_disk(&mut self, disk: usize) -> Result<FlushReport> {
        let Some(cache) = self.caches.get(&disk) else {
            return Ok(FlushReport::default());
        };
        let pages = cache.take_writeback();
        if pages.is_empty() {
            return Ok(FlushReport::default());
        }
        let requests: Vec<Request> = pages.iter().map(|&(l, n)| Request::new(l, n)).collect();
        let depth = self
            .cache_config
            .map(|c| c.queue_depth.max(1))
            .unwrap_or(1);
        let volume = &self.volume;
        let metrics = &mut self.cache_metrics;
        let geom = volume.geometry().clone();
        let timing = volume.service_batch_observed(
            disk,
            &requests,
            SchedulePolicy::QueuedSptf(depth),
            &mut |e| record_service_event(metrics, &geom, &e),
        )?;
        // The per-event decomposition above already sums to the batch
        // total; the Writeback phase is a memo overlay (excluded from
        // `phase_sum_ms`) attributing that time to the flusher.
        metrics.phase(Phase::Writeback, timing.total_ms);
        metrics.counter(Counter::WritebackFlush, 1);
        Ok(FlushReport {
            batches: 1,
            pages: pages.len() as u64,
            blocks: timing.blocks,
            total_io_ms: timing.total_ms,
        })
    }

    /// The underlying volume (for direct experimentation).
    pub fn volume(&self) -> &LogicalVolume {
        &self.volume
    }

    /// Existing table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&SpatialTable> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.into()))
    }

    /// Create a table: allocate zones on the least-loaded disk and build
    /// the chosen placement inside them.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        grid: GridSpec,
        layout: LayoutChoice,
    ) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StoreError::TableExists(name));
        }
        let geom = self.volume.geometry().clone();
        let disk = self.allocator.most_free_disk(&geom);

        let layout = match layout {
            LayoutChoice::Auto => {
                // Advisor semantics, evaluated at the grant cursor.
                match multimap_core::advise(&geom, &grid, &multimap_core::AdvisorConfig::default())
                {
                    multimap_core::Advice::UseMultiMap { .. } => LayoutChoice::MultiMap,
                    multimap_core::Advice::UseLinear { .. } => LayoutChoice::Naive,
                }
            }
            other => other,
        };

        let (grant, mapping): (ZoneGrant, Box<dyn Mapping>) = match layout {
            LayoutChoice::MultiMap => {
                let first_zone = self.allocator.cursor(disk);
                if first_zone >= geom.zones().len() {
                    return Err(StoreError::OutOfSpace {
                        what: format!("table {name:?} (no zones left on disk {disk})"),
                    });
                }
                let m = MultiMapping::with_options(
                    &geom,
                    grid,
                    MultiMapOptions {
                        first_zone,
                        shape_override: None,
                        zone_limit: None,
                    },
                )?;
                let last_zone = m
                    .layout()
                    .zones()
                    .last()
                    // staticcheck: allow(no-unwrap) — MultiMapping layouts always occupy at least one zone.
                    .expect("layout uses at least one zone")
                    .zone_index;
                let zones = last_zone + 1 - first_zone;
                let grant = self
                    .allocator
                    .grant(&geom, disk, zones)
                    // staticcheck: allow(no-unwrap) — disk selection above verified the allocator can grant these zones.
                    .expect("cursor was checked");
                (grant, Box::new(m))
            }
            LayoutChoice::Naive | LayoutChoice::ZOrder | LayoutChoice::Hilbert => {
                let blocks = grid.cells(); // one block per cell
                let grant = self
                    .allocator
                    .grant_blocks(&geom, disk, blocks)
                    .ok_or_else(|| StoreError::OutOfSpace {
                        what: format!("table {name:?} ({blocks} blocks)"),
                    })?;
                let m: Box<dyn Mapping> = match layout {
                    LayoutChoice::Naive => Box::new(NaiveMapping::new(grid, grant.base_lbn)),
                    LayoutChoice::ZOrder => Box::new(zorder_mapping(grid, grant.base_lbn, 1)?),
                    LayoutChoice::Hilbert => Box::new(hilbert_mapping(grid, grant.base_lbn, 1)?),
                    _ => unreachable!(),
                };
                (grant, m)
            }
            LayoutChoice::Auto => unreachable!("resolved above"),
        };

        let overflow_base = grant.base_lbn + grant.blocks.min(self.spanned(&*mapping, &grant));
        let cells = CellStore::new(self.update_config, overflow_base);
        self.tables.insert(
            name.clone(),
            SpatialTable {
                name,
                grant,
                mapping,
                cells,
                loaded: false,
            },
        );
        Ok(())
    }

    /// Blocks the mapping spans within its grant.
    fn spanned(&self, mapping: &dyn Mapping, grant: &ZoneGrant) -> u64 {
        // Linear mappings span exactly their blocks; MultiMap spans its
        // layout. Either way the overflow area starts after the span.
        mapping.blocks_spanned().min(grant.blocks)
    }

    /// Bulk-load the table: write every cell (sorted, coalesced) and mark
    /// occupancy at the configured fill factor.
    pub fn load(&mut self, name: &str) -> Result<LoadReport> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.into()))?;
        let report = self.volume.with_disk(table.grant.disk, |sim| {
            multimap_core::bulk_load(sim, table.mapping.as_ref())
        })??;
        let cells = table.grid().cells();
        for c in 0..cells {
            table.cells.bulk_load(c);
        }
        table.loaded = true;
        // The bulk rewrite supersedes anything cached over the grant.
        let grant = table.grant;
        if let Some(cache) = self.caches.get(&grant.disk) {
            cache.invalidate_range(grant.base_lbn, grant.blocks);
        }
        Ok(report)
    }

    /// Insert one point at `coord`: updates occupancy and writes the
    /// affected block (plus a new overflow page when one is allocated).
    ///
    /// With a cache enabled the write only dirties cache pages; the
    /// write-back batcher flushes once `writeback_batch` dirty pages
    /// are pending (or at [`Self::flush_all`] / [`Self::disable_cache`]).
    pub fn insert(&mut self, name: &str, coord: &[u64]) -> Result<()> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.into()))?;
        let lbn = table.mapping.lbn_of(coord)?;
        let cell = table.grid().linear_index(coord);
        let pages_before = table.cells.overflow_lbns(cell).len();
        table.cells.insert(cell);
        // Space budget: overflow pages must stay inside the grant.
        let next = table.cells.next_overflow_lbn();
        if next > table.grant.base_lbn + table.grant.blocks {
            return Err(StoreError::OutOfSpace {
                what: format!("overflow area of table {name:?}"),
            });
        }
        let mut writes: Vec<(Lbn, u64)> = vec![(lbn, table.mapping.cell_blocks())];
        if table.cells.overflow_lbns(cell).len() > pages_before {
            // staticcheck: allow(no-unwrap) — len() > pages_before proves the overflow list is non-empty.
            let over = *table.cells.overflow_lbns(cell).last().expect("just added");
            writes.push((over, 1));
        }
        let disk = table.grant.disk;

        // Write-back path: dirty the pages and let the batcher flush.
        if let Some(cache) = self.caches.get(&disk) {
            if cache.mark_dirty(writes[0].0, writes[0].1) {
                for &(l, n) in &writes[1..] {
                    cache.mark_dirty(l, n);
                }
                let batch = self
                    .cache_config
                    .map(|c| c.writeback_batch.max(1))
                    .unwrap_or(1);
                if cache.writeback_pending() >= batch {
                    self.flush_disk(disk)?;
                }
                return Ok(());
            }
        }

        // Write-through path (no cache, or capacity 0): one positioned
        // write per page, exactly the pre-cache behaviour.
        self.volume.with_disk(disk, |sim| {
            for (w, _) in writes {
                // staticcheck: allow(no-unwrap) — grant LBNs were validated against the allocator at create time.
                sim.service_write(multimap_disksim::Request::single(w))
                    .expect("grant LBNs are on disk");
            }
        })?;
        Ok(())
    }

    /// Delete one point at `coord` (no physical I/O beyond the in-memory
    /// occupancy update; reclamation happens at [`Self::reorganize`]).
    pub fn delete(&mut self, name: &str, coord: &[u64]) -> Result<()> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.into()))?;
        if !table.grid().contains(coord) {
            return Err(StoreError::Mapping(MappingError::CoordOutOfGrid {
                coord: coord.to_vec(),
            }));
        }
        let cell = table.grid().linear_index(coord);
        table.cells.delete(cell);
        Ok(())
    }

    /// Run a beam query (cells plus their overflow chains). With a
    /// cache enabled the executor probes it per cell and services only
    /// the misses (plus the prefetch plan).
    pub fn beam(&self, name: &str, dim: usize, anchor: &[u64]) -> Result<QueryResult> {
        let table = self.table(name)?;
        let region = BoxRegion::beam(table.grid(), dim, anchor);
        let exec = QueryExecutor::new(&self.volume, table.grant.disk);
        let mut request = QueryRequest::beam(table.mapping.as_ref(), &region);
        if let Some(cache) = self.caches.get(&table.grant.disk) {
            request = request.with_cache(cache);
        }
        let mut result = exec.execute(request)?;
        result.accumulate(&self.read_overflow(table, &region)?);
        Ok(result)
    }

    /// Run a range query (cells plus their overflow chains). With a
    /// cache enabled the executor probes it per cell and services only
    /// the misses (plus the prefetch plan).
    pub fn range(&self, name: &str, region: &BoxRegion) -> Result<QueryResult> {
        let table = self.table(name)?;
        let exec = QueryExecutor::new(&self.volume, table.grant.disk);
        let mut request = QueryRequest::range(table.mapping.as_ref(), region);
        if let Some(cache) = self.caches.get(&table.grant.disk) {
            request = request.with_cache(cache);
        }
        let mut result = exec.execute(request)?;
        result.accumulate(&self.read_overflow(table, region)?);
        Ok(result)
    }

    /// Reorganise a table (Section 4.6: "space reclaiming … done by
    /// dataset reorganization, which is an expensive operation"):
    /// rewrite every cell sequentially, folding overflow points back into
    /// primary pages and resetting occupancy to the fill factor. Returns
    /// the rewrite cost.
    pub fn reorganize(&mut self, name: &str) -> Result<LoadReport> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.into()))?;
        let report = self.volume.with_disk(table.grant.disk, |sim| {
            multimap_core::bulk_load(sim, table.mapping.as_ref())
        })??;
        // Fresh occupancy at the fill factor; overflow chains dissolve.
        let overflow_base =
            table.grant.base_lbn + table.mapping.blocks_spanned().min(table.grant.blocks);
        table.cells = CellStore::new(self.update_config, overflow_base);
        for c in 0..table.grid().cells() {
            table.cells.bulk_load(c);
        }
        // The rewrite supersedes cached pages (including dirty ones
        // queued for write-back) over the grant.
        let grant = table.grant;
        if let Some(cache) = self.caches.get(&grant.disk) {
            cache.invalidate_range(grant.base_lbn, grant.blocks);
        }
        Ok(report)
    }

    /// Cells currently below the reclaim threshold across a table —
    /// when this grows large, [`Self::reorganize`] is worthwhile.
    pub fn underflowing_cells(&self, name: &str) -> Result<Vec<u64>> {
        Ok(self.table(name)?.cells.underflowing_cells())
    }

    /// Drop a table. Its zone grant is *not* reused (the allocator is a
    /// bump allocator, like the paper's static allocation).
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let table = self
            .tables
            .remove(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.into()))?;
        // Cached pages (and pending write-backs) of a dropped table are
        // garbage: discard rather than flush them.
        if let Some(cache) = self.caches.get(&table.grant.disk) {
            cache.invalidate_range(table.grant.base_lbn, table.grant.blocks);
        }
        Ok(())
    }

    /// Fetch the overflow chains of every cell in `region` (often empty).
    fn read_overflow(&self, table: &SpatialTable, region: &BoxRegion) -> Result<QueryResult> {
        let grid = table.grid();
        let mut lbns: Vec<Lbn> = Vec::new();
        region.for_each_cell(|c| {
            let cell = grid.linear_index(c);
            lbns.extend_from_slice(table.cells.overflow_lbns(cell));
        });
        if lbns.is_empty() {
            return Ok(QueryResult::default());
        }
        Ok(service_lbns(&self.volume, table.grant.disk, &lbns, false)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::MappingKind;
    use multimap_disksim::profiles;

    fn manager() -> StorageManager {
        StorageManager::new(profiles::small(), 2)
    }

    #[test]
    fn create_load_query_roundtrip() {
        let mut m = manager();
        m.create_table("cube", GridSpec::new([80u64, 8, 4]), LayoutChoice::MultiMap)
            .unwrap();
        assert_eq!(m.table_names(), vec!["cube"]);
        let report = m.load("cube").unwrap();
        assert_eq!(report.cells, 80 * 8 * 4);
        assert!(m.table("cube").unwrap().is_loaded());
        let r = m.beam("cube", 1, &[10, 0, 2]).unwrap();
        assert_eq!(r.cells, 8);
        let r = m
            .range("cube", &BoxRegion::new([0u64, 0, 0], [9u64, 3, 1]))
            .unwrap();
        assert_eq!(r.cells, 80);
    }

    #[test]
    fn duplicate_and_missing_tables_error() {
        let mut m = manager();
        m.create_table("t", GridSpec::new([10u64, 4]), LayoutChoice::Naive)
            .unwrap();
        assert!(matches!(
            m.create_table("t", GridSpec::new([10u64, 4]), LayoutChoice::Naive),
            Err(StoreError::TableExists(_))
        ));
        assert!(matches!(m.load("nope"), Err(StoreError::NoSuchTable(_))));
        assert!(matches!(
            m.beam("nope", 0, &[0, 0]),
            Err(StoreError::NoSuchTable(_))
        ));
    }

    #[test]
    fn tables_get_disjoint_grants() {
        let mut m = manager();
        m.create_table("a", GridSpec::new([60u64, 6, 4]), LayoutChoice::MultiMap)
            .unwrap();
        m.create_table("b", GridSpec::new([60u64, 6, 4]), LayoutChoice::MultiMap)
            .unwrap();
        let (ga, gb) = (m.table("a").unwrap().grant(), m.table("b").unwrap().grant());
        assert!(
            ga.disk != gb.disk || ga.first_zone + ga.zones <= gb.first_zone,
            "grants overlap: {ga:?} vs {gb:?}"
        );
    }

    #[test]
    fn auto_layout_uses_the_advisor() {
        let mut m = manager();
        // Dim0 spans most of the track -> MultiMap.
        m.create_table("good", GridSpec::new([110u64, 8, 4]), LayoutChoice::Auto)
            .unwrap();
        assert_eq!(
            m.table("good").unwrap().mapping().kind(),
            MappingKind::MultiMap
        );
        // 6-D dataset on a D=32 disk still fits (N_max = 7), but a
        // wasteful short-Dim0 grid falls back to Naive.
        m.create_table("short", GridSpec::new([20u64, 4, 4]), LayoutChoice::Auto)
            .unwrap();
        assert_eq!(
            m.table("short").unwrap().mapping().kind(),
            MappingKind::Naive
        );
    }

    #[test]
    fn inserts_spill_to_overflow_and_queries_read_it() {
        let mut m = manager();
        m.set_update_config(UpdateConfig {
            cell_capacity: 4,
            fill_factor: 1.0,
            reclaim_threshold: 0.25,
        });
        m.create_table("t", GridSpec::new([40u64, 6, 4]), LayoutChoice::MultiMap)
            .unwrap();
        m.load("t").unwrap();
        // The cell is full after load; inserts overflow.
        for _ in 0..5 {
            m.insert("t", &[3, 2, 1]).unwrap();
        }
        let table = m.table("t").unwrap();
        let cell = table.grid().linear_index(&[3, 2, 1]);
        assert_eq!(table.cells().overflow_lbns(cell).len(), 2);
        // A range over that cell now reads extra blocks.
        let region = BoxRegion::new([3u64, 2, 1], [3u64, 2, 1]);
        let r = m.range("t", &region).unwrap();
        assert_eq!(r.cells, 1 + 2);
    }

    #[test]
    fn reorganize_dissolves_overflow_chains() {
        let mut m = manager();
        m.set_update_config(UpdateConfig {
            cell_capacity: 4,
            fill_factor: 1.0,
            reclaim_threshold: 0.25,
        });
        m.create_table("t", GridSpec::new([40u64, 6, 4]), LayoutChoice::MultiMap)
            .unwrap();
        m.load("t").unwrap();
        for _ in 0..6 {
            m.insert("t", &[1, 1, 1]).unwrap();
        }
        let cell = m.table("t").unwrap().grid().linear_index(&[1, 1, 1]);
        assert!(!m.table("t").unwrap().cells().overflow_lbns(cell).is_empty());
        let report = m.reorganize("t").unwrap();
        assert_eq!(report.cells, 40 * 6 * 4);
        assert!(m.table("t").unwrap().cells().overflow_lbns(cell).is_empty());
    }

    #[test]
    fn drop_table_removes_it() {
        let mut m = manager();
        m.create_table("t", GridSpec::new([10u64, 4]), LayoutChoice::Naive)
            .unwrap();
        m.drop_table("t").unwrap();
        assert!(matches!(m.table("t"), Err(StoreError::NoSuchTable(_))));
        assert!(matches!(m.drop_table("t"), Err(StoreError::NoSuchTable(_))));
        // The name can be recreated (new grant).
        m.create_table("t", GridSpec::new([10u64, 4]), LayoutChoice::Naive)
            .unwrap();
    }

    #[test]
    fn underflow_reporting() {
        let mut m = manager();
        m.set_update_config(UpdateConfig {
            cell_capacity: 8,
            fill_factor: 0.5,
            reclaim_threshold: 0.4,
        });
        m.create_table("t", GridSpec::new([10u64, 4]), LayoutChoice::Naive)
            .unwrap();
        m.load("t").unwrap();
        assert!(m.underflowing_cells("t").unwrap().is_empty());
        // Deleting below 40% of 8 = 3.2 flags the cell.
        m.delete("t", &[3, 1]).unwrap();
        m.delete("t", &[3, 1]).unwrap();
        let cell = m.table("t").unwrap().grid().linear_index(&[3, 1]);
        assert_eq!(m.underflowing_cells("t").unwrap(), vec![cell]);
        assert!(m.underflowing_cells("nope").is_err());
        assert!(m.delete("t", &[99, 0]).is_err());
    }

    #[test]
    fn hilbert_and_zorder_tables_work() {
        let mut m = manager();
        for (name, layout) in [("z", LayoutChoice::ZOrder), ("h", LayoutChoice::Hilbert)] {
            m.create_table(name, GridSpec::new([16u64, 16]), layout)
                .unwrap();
            m.load(name).unwrap();
            let r = m.beam(name, 0, &[0, 7]).unwrap();
            assert_eq!(r.cells, 16);
        }
    }
}
