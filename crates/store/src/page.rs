//! On-disk page format for cells.
//!
//! A cell is one 512-byte block (the paper's Section 4: "a cell can be
//! thought of as a page or a unit of memory allocation and data
//! transfer, containing one or more points"). This module gives that
//! page a concrete layout:
//!
//! ```text
//! +--------+--------+----------------------------------------+
//! | magic  | count  | count fixed-size records …   (padding) |
//! | u16    | u16    |                                        |
//! +--------+--------+----------------------------------------+
//! ```
//!
//! Records are opaque fixed-size byte strings; the schema layer decides
//! what goes in them. `CellPage::capacity(record_len)` is exactly the
//! paper's "cell capacity" that the fill factor multiplies.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use multimap_disksim::SECTOR_BYTES;

/// Magic tag marking a formatted cell page.
const MAGIC: u16 = 0x4D4D; // "MM"

/// Header bytes: magic + record count.
const HEADER: usize = 4;

/// A 512-byte cell page holding fixed-size records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellPage {
    record_len: usize,
    records: Vec<Bytes>,
}

/// Errors decoding a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageError {
    /// The buffer is not exactly one sector.
    WrongSize,
    /// The magic tag is missing (unformatted or foreign data).
    BadMagic,
    /// The header's record count does not fit the page.
    CorruptCount,
    /// The page is full.
    Full,
    /// A record has the wrong length.
    WrongRecordLen,
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::WrongSize => write!(f, "page must be exactly {SECTOR_BYTES} bytes"),
            PageError::BadMagic => write!(f, "page has no MultiMap magic"),
            PageError::CorruptCount => write!(f, "record count exceeds page capacity"),
            PageError::Full => write!(f, "page is full"),
            PageError::WrongRecordLen => write!(f, "record length mismatch"),
        }
    }
}

impl std::error::Error for PageError {}

impl CellPage {
    /// An empty page for records of `record_len` bytes.
    ///
    /// # Panics
    /// Panics if a single record cannot fit a page.
    pub fn new(record_len: usize) -> Self {
        assert!(
            record_len > 0 && record_len <= SECTOR_BYTES as usize - HEADER,
            "record length must fit a page"
        );
        CellPage {
            record_len,
            records: Vec::new(),
        }
    }

    /// Records of `record_len` bytes that fit one page — the paper's
    /// cell capacity.
    pub fn capacity(record_len: usize) -> u32 {
        ((SECTOR_BYTES as usize - HEADER) / record_len.max(1)) as u32
    }

    /// Records currently stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether no further record fits.
    pub fn is_full(&self) -> bool {
        self.records.len() as u32 >= Self::capacity(self.record_len)
    }

    /// Append one record.
    pub fn push(&mut self, record: &[u8]) -> Result<(), PageError> {
        if record.len() != self.record_len {
            return Err(PageError::WrongRecordLen);
        }
        if self.is_full() {
            return Err(PageError::Full);
        }
        self.records.push(Bytes::copy_from_slice(record));
        Ok(())
    }

    /// Iterate the records.
    pub fn records(&self) -> impl Iterator<Item = &Bytes> {
        self.records.iter()
    }

    /// Serialise to exactly one 512-byte sector.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(SECTOR_BYTES as usize);
        buf.put_u16_le(MAGIC);
        buf.put_u16_le(self.records.len() as u16);
        for r in &self.records {
            buf.put_slice(r);
        }
        buf.resize(SECTOR_BYTES as usize, 0);
        buf.freeze()
    }

    /// Parse a 512-byte sector back into a page.
    pub fn from_bytes(mut data: Bytes, record_len: usize) -> Result<Self, PageError> {
        if data.len() != SECTOR_BYTES as usize {
            return Err(PageError::WrongSize);
        }
        if data.get_u16_le() != MAGIC {
            return Err(PageError::BadMagic);
        }
        let count = data.get_u16_le() as usize;
        if count > Self::capacity(record_len) as usize {
            return Err(PageError::CorruptCount);
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            records.push(data.split_to(record_len));
        }
        Ok(CellPage {
            record_len,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_paper_arithmetic() {
        // 16-byte records: (512 - 4) / 16 = 31 per cell.
        assert_eq!(CellPage::capacity(16), 31);
        assert_eq!(CellPage::capacity(8), 63);
        assert_eq!(CellPage::capacity(508), 1);
    }

    #[test]
    fn roundtrip() {
        let mut p = CellPage::new(16);
        for i in 0..10u8 {
            let rec = [i; 16];
            p.push(&rec).unwrap();
        }
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 512);
        let back = CellPage::from_bytes(bytes, 16).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.len(), 10);
        assert_eq!(back.records().nth(3).unwrap().as_ref(), &[3u8; 16]);
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let mut p = CellPage::new(16);
        for i in 0..31u32 {
            p.push(&[(i % 251) as u8; 16]).unwrap();
        }
        assert!(p.is_full());
        assert_eq!(p.push(&[0; 16]), Err(PageError::Full));
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut p = CellPage::new(16);
        assert_eq!(p.push(&[0; 15]), Err(PageError::WrongRecordLen));
        assert_eq!(
            CellPage::from_bytes(Bytes::from_static(&[0u8; 100]), 16),
            Err(PageError::WrongSize)
        );
        let zeros = Bytes::from(vec![0u8; 512]);
        assert_eq!(CellPage::from_bytes(zeros, 16), Err(PageError::BadMagic));
        // Corrupt count.
        let mut buf = bytes::BytesMut::zeroed(512);
        buf[0] = 0x4D;
        buf[1] = 0x4D;
        buf[2] = 0xFF;
        buf[3] = 0x00;
        assert_eq!(
            CellPage::from_bytes(buf.freeze(), 16),
            Err(PageError::CorruptCount)
        );
    }

    #[test]
    #[should_panic(expected = "fit a page")]
    fn oversized_record_panics() {
        let _ = CellPage::new(600);
    }
}
