//! Zone-granular space allocation.
//!
//! Every table gets a contiguous range of whole zones on one disk:
//! MultiMap layouts are zone-aligned by construction, and giving linear
//! layouts the same granularity keeps allocations trivially disjoint.

use multimap_disksim::{DiskGeometry, Lbn};
use serde::{Deserialize, Serialize};

/// A contiguous range of zones handed to one table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneGrant {
    /// Disk index within the volume.
    pub disk: usize,
    /// First zone of the grant.
    pub first_zone: usize,
    /// Number of zones granted.
    pub zones: usize,
    /// First LBN of the grant.
    pub base_lbn: Lbn,
    /// Blocks in the grant.
    pub blocks: u64,
}

/// Per-disk zone cursors.
#[derive(Clone, Debug)]
pub struct ZoneAllocator {
    /// Next free zone per disk.
    cursors: Vec<usize>,
}

impl ZoneAllocator {
    /// Allocator for `ndisks` identical disks.
    pub fn new(ndisks: usize) -> Self {
        assert!(ndisks > 0);
        ZoneAllocator {
            cursors: vec![0; ndisks],
        }
    }

    /// The next zone a grant on `disk` would start at.
    pub fn cursor(&self, disk: usize) -> usize {
        self.cursors[disk]
    }

    /// Zones still free on `disk`.
    pub fn free_zones(&self, geom: &DiskGeometry, disk: usize) -> usize {
        geom.zones().len().saturating_sub(self.cursors[disk])
    }

    /// The disk with the most free zones (ties go to the lowest index).
    pub fn most_free_disk(&self, geom: &DiskGeometry) -> usize {
        (0..self.cursors.len())
            .max_by_key(|&d| (self.free_zones(geom, d), usize::MAX - d))
            // staticcheck: allow(no-unwrap) — ZoneAllocator::new requires at least one disk, so the range is never empty.
            .expect("at least one disk")
    }

    /// Grant `zones` whole zones on `disk`, if available.
    pub fn grant(&mut self, geom: &DiskGeometry, disk: usize, zones: usize) -> Option<ZoneGrant> {
        let first_zone = self.cursors[disk];
        if zones == 0 || first_zone + zones > geom.zones().len() {
            return None;
        }
        let zs = &geom.zones()[first_zone..first_zone + zones];
        let grant = ZoneGrant {
            disk,
            first_zone,
            zones,
            base_lbn: zs[0].first_lbn,
            blocks: zs.iter().map(|z| z.blocks).sum(),
        };
        self.cursors[disk] += zones;
        Some(grant)
    }

    /// Grant as many zones as needed to cover `blocks` on `disk`.
    pub fn grant_blocks(
        &mut self,
        geom: &DiskGeometry,
        disk: usize,
        blocks: u64,
    ) -> Option<ZoneGrant> {
        let first_zone = self.cursors[disk];
        let mut need = 0usize;
        let mut covered = 0u64;
        for z in &geom.zones()[first_zone..] {
            if covered >= blocks {
                break;
            }
            covered += z.blocks;
            need += 1;
        }
        if covered < blocks {
            return None;
        }
        self.grant(geom, disk, need.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;

    #[test]
    fn grants_are_disjoint_and_advance() {
        let geom = profiles::small(); // 2 zones
        let mut a = ZoneAllocator::new(1);
        let g1 = a.grant(&geom, 0, 1).unwrap();
        let g2 = a.grant(&geom, 0, 1).unwrap();
        assert_eq!(g1.first_zone, 0);
        assert_eq!(g2.first_zone, 1);
        assert_eq!(g2.base_lbn, g1.base_lbn + g1.blocks);
        assert!(a.grant(&geom, 0, 1).is_none(), "disk exhausted");
    }

    #[test]
    fn grant_blocks_rounds_up_to_zones() {
        let geom = profiles::small();
        let mut a = ZoneAllocator::new(1);
        let g = a.grant_blocks(&geom, 0, 10).unwrap();
        assert_eq!(g.zones, 1);
        assert_eq!(g.blocks, geom.zones()[0].blocks);
        let too_big = a.grant_blocks(&geom, 0, u64::MAX);
        assert!(too_big.is_none());
    }

    #[test]
    fn least_loaded_disk_selection() {
        let geom = profiles::small();
        let mut a = ZoneAllocator::new(2);
        assert_eq!(a.most_free_disk(&geom), 0);
        a.grant(&geom, 0, 1).unwrap();
        assert_eq!(a.most_free_disk(&geom), 1);
    }
}
