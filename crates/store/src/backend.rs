//! Backend-generic storage service: [`DeviceStore`] puts the store's
//! page cache and write-back batcher in front of a
//! [`DeviceVolume`] over any [`DeviceModel`](multimap_disksim::DeviceModel)
//! backend.
//!
//! This is the half of [`crate::StorageManager`] that does not depend
//! on rotating-disk specifics: demand reads probe the cache and fetch
//! only the misses in one queued-SPTF batch; writes dirty cache pages
//! and drain through an ascending-LBN write-back flush. On an IMR
//! backend that flush is where read-modify-write amplification
//! surfaces — the store diffs the backend's `imr.neighbor_rewrites`
//! counter across each flush and records the delta as
//! [`Counter::NeighborRewrite`] telemetry, so write amplification is
//! observable per flush without backend-specific code on the hot path.

use multimap_disksim::{DeviceModel, Lbn, Request, ServiceLog};
use multimap_lvm::{DeviceVolume, SchedulePolicy};
use multimap_query::{record_classified_event, BlockCache, CacheProbe};
use multimap_telemetry::{Counter, Metrics, MetricsSink, Phase};

use crate::cache::{CacheConfig, PageCache};
use crate::manager::Result;

/// What one backend demand-read batch delivered.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BackendReadReport {
    /// Cells demanded (cache hits + misses).
    pub cells: u64,
    /// Demands answered from resident pages (no device I/O).
    pub hits: u64,
    /// Demands that went to the device.
    pub misses: u64,
    /// Blocks transferred by the device.
    pub blocks: u64,
    /// Simulated I/O time of the demand batch, in milliseconds.
    pub total_io_ms: f64,
}

/// What one write-back flush serviced on the backend.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BackendFlushReport {
    /// Dirty pages written.
    pub pages: u64,
    /// Blocks written (user writes; excludes RMW amplification).
    pub blocks: u64,
    /// Simulated I/O time of the flush, in milliseconds.
    pub total_io_ms: f64,
    /// Neighbor-track rewrites the backend performed during this flush
    /// (nonzero only on IMR backends with interlacing engaged).
    pub neighbor_rewrites: u64,
}

impl BackendFlushReport {
    fn absorb(&mut self, other: BackendFlushReport) {
        self.pages += other.pages;
        self.blocks += other.blocks;
        self.total_io_ms += other.total_io_ms;
        self.neighbor_rewrites += other.neighbor_rewrites;
    }
}

/// Page-cached, write-back-batched access to a backend-generic
/// [`DeviceVolume`] — one [`PageCache`] per device.
///
/// ```
/// use multimap_disksim::profiles;
/// use multimap_lvm::backend_volume;
/// use multimap_store::{CacheConfig, DeviceStore};
///
/// let volume = backend_volume("imr", &profiles::small(), 1).unwrap();
/// let mut store = DeviceStore::new(volume, CacheConfig::default());
/// let r = store.read(0, &[0, 8, 16], 1).unwrap();
/// assert_eq!(r.cells, 3);
/// assert_eq!(r.misses, 3);
/// ```
pub struct DeviceStore<D: DeviceModel> {
    volume: DeviceVolume<D>,
    caches: Vec<PageCache>,
    config: CacheConfig,
    metrics: Metrics,
}

impl<D: DeviceModel> DeviceStore<D> {
    /// A store over `volume` with one page cache per device.
    pub fn new(volume: DeviceVolume<D>, config: CacheConfig) -> Self {
        let caches = (0..volume.num_devices())
            .map(|_| PageCache::new(&config))
            .collect();
        DeviceStore {
            volume,
            caches,
            config,
            metrics: Metrics::new(),
        }
    }

    /// The underlying volume.
    pub fn volume(&self) -> &DeviceVolume<D> {
        &self.volume
    }

    /// The page cache serving `device` (panics on a bad index, like
    /// slice indexing — construction sized one cache per device).
    pub fn cache(&self, device: usize) -> &PageCache {
        &self.caches[device]
    }

    /// Telemetry recorded by the demand and write-back paths.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Fetch `nblocks`-block cells at `lbns`: probe the cache, service
    /// the misses as one queued-SPTF batch, admit them, and record
    /// hit/miss counters plus the per-event phase decomposition.
    pub fn read(&mut self, device: usize, lbns: &[Lbn], nblocks: u64) -> Result<BackendReadReport> {
        let cache = &self.caches[device];
        let mut missed: Vec<Lbn> = Vec::new();
        let mut hits = 0u64;
        for &l in lbns {
            match cache.probe(l) {
                CacheProbe::Hit { .. } => hits += 1,
                CacheProbe::Miss => missed.push(l),
            }
        }
        let misses = missed.len() as u64;
        let mut report = BackendReadReport {
            cells: lbns.len() as u64,
            hits,
            misses,
            ..BackendReadReport::default()
        };
        if !missed.is_empty() {
            let requests: Vec<Request> = missed.iter().map(|&l| Request::new(l, nblocks)).collect();
            let depth = self.config.queue_depth.max(1);
            let (timing, log) = self.volume.service_batch_logged(
                device,
                &requests,
                SchedulePolicy::QueuedSptf(depth),
            )?;
            self.record_log(device, &log)?;
            for &l in &missed {
                self.caches[device].admit(l, nblocks, false);
            }
            report.blocks = timing.blocks;
            report.total_io_ms = timing.total_ms;
        }
        self.metrics.counter(Counter::PageCacheHit, hits);
        self.metrics.counter(Counter::PageCacheMiss, misses);
        Ok(report)
    }

    /// Dirty one page. When the pending write-back set reaches the
    /// configured batch size the device's dirty pages are flushed and
    /// the flush report is returned; otherwise the write is absorbed.
    pub fn write(
        &mut self,
        device: usize,
        lbn: Lbn,
        nblocks: u64,
    ) -> Result<Option<BackendFlushReport>> {
        let cache = &self.caches[device];
        cache.mark_dirty(lbn, nblocks);
        if cache.writeback_pending() >= self.config.writeback_batch.max(1) {
            return self.flush(device).map(Some);
        }
        Ok(None)
    }

    /// Flush `device`'s pending dirty pages as ascending-LBN writes.
    ///
    /// Writes go through [`DeviceModel::service_write`] one page at a
    /// time (ascending), so an IMR backend sees each page write and can
    /// amplify it with neighbor rewrites; the backend's
    /// `imr.neighbor_rewrites` counter is diffed across the flush and
    /// the delta recorded as [`Counter::NeighborRewrite`].
    pub fn flush(&mut self, device: usize) -> Result<BackendFlushReport> {
        let pages = self.caches[device].take_writeback();
        if pages.is_empty() {
            return Ok(BackendFlushReport::default());
        }
        let mut sorted = pages;
        sorted.sort_unstable();
        let rewrites_before = neighbor_rewrites(&self.volume, device)?;
        let mut report = BackendFlushReport {
            pages: sorted.len() as u64,
            ..BackendFlushReport::default()
        };
        for &(l, n) in &sorted {
            let t = self.volume.service_write(device, Request::new(l, n))?;
            report.blocks += n;
            report.total_io_ms += t.total_ms();
        }
        report.neighbor_rewrites =
            neighbor_rewrites(&self.volume, device)?.saturating_sub(rewrites_before);
        self.metrics.phase(Phase::Writeback, report.total_io_ms);
        self.metrics.counter(Counter::WritebackFlush, 1);
        self.metrics
            .counter(Counter::NeighborRewrite, report.neighbor_rewrites);
        Ok(report)
    }

    /// Flush every device's pending dirty pages.
    pub fn flush_all(&mut self) -> Result<BackendFlushReport> {
        let mut report = BackendFlushReport::default();
        for device in 0..self.volume.num_devices() {
            report.absorb(self.flush(device)?);
        }
        Ok(report)
    }

    /// Record a service log's per-event decomposition, classified by
    /// the backend (one lock acquisition for the whole log).
    fn record_log(&mut self, device: usize, log: &ServiceLog) -> Result<()> {
        let transitions = self.volume.classify_events(device, log.events())?;
        for (e, &t) in log.events().iter().zip(&transitions) {
            record_classified_event(&mut self.metrics, t, e);
        }
        Ok(())
    }
}

/// The backend's `imr.neighbor_rewrites` counter, or 0 on backends
/// that do not report one.
fn neighbor_rewrites<D: DeviceModel>(volume: &DeviceVolume<D>, device: usize) -> Result<u64> {
    Ok(volume
        .counters(device)?
        .into_iter()
        .find(|(k, _)| k == "imr.neighbor_rewrites")
        .map(|(_, v)| v)
        .unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;
    use multimap_lvm::backend_volume;

    fn store(backend: &str) -> DeviceStore<Box<dyn DeviceModel>> {
        let geom = profiles::small();
        let volume = backend_volume(backend, &geom, 1).unwrap();
        let cfg = CacheConfig {
            writeback_batch: 8,
            ..Default::default()
        };
        DeviceStore::new(volume, cfg)
    }

    #[test]
    fn demand_reads_hit_after_admission() {
        for backend in multimap_disksim::BACKEND_NAMES {
            let mut s = store(backend);
            let lbns: Vec<Lbn> = (0..16u64).map(|i| i * 64).collect();
            let cold = s.read(0, &lbns, 1).unwrap();
            assert_eq!(cold.misses, 16, "{backend}");
            assert!(cold.total_io_ms > 0.0, "{backend}");
            let warm = s.read(0, &lbns, 1).unwrap();
            assert_eq!(warm.hits, 16, "{backend}");
            assert_eq!(warm.total_io_ms, 0.0, "{backend}");
            assert_eq!(
                s.metrics().counter_value(Counter::PageCacheHit),
                16,
                "{backend}"
            );
            assert_eq!(
                s.metrics().counter_value(Counter::RequestsServiced),
                cold.misses,
                "{backend}"
            );
        }
    }

    #[test]
    fn writes_batch_then_flush_ascending() {
        let mut s = store("disk");
        let mut flushed = None;
        for i in 0..8u64 {
            // Descending dirty order; the flush must still be ascending.
            let r = s.write(0, (8 - i) * 1000, 2).unwrap();
            if r.is_some() {
                flushed = r;
            }
        }
        let report = flushed.expect("8th dirty page must trigger the batch flush");
        assert_eq!(report.pages, 8);
        assert_eq!(report.blocks, 16);
        assert!(report.total_io_ms > 0.0);
        assert_eq!(report.neighbor_rewrites, 0);
        assert_eq!(s.metrics().counter_value(Counter::WritebackFlush), 1);
    }

    #[test]
    fn imr_flush_reports_rmw_amplification() {
        let geom = profiles::small();
        let mut s = store("imr");
        // Write a top track (odd cylinder) first: its data must survive
        // later bottom-track writes, so it is RMW-protected from then on.
        let top = geom.lbn_of(1, 0, 0).unwrap();
        s.write(0, top, 4).unwrap();
        let first = s.flush_all().unwrap();
        assert_eq!(
            first.neighbor_rewrites, 0,
            "a top-track write never triggers RMW"
        );
        // A write on the interlaced bottom neighbor (cylinder 2) must
        // now pay a read-modify-write of the written top track.
        let bottom = geom.lbn_of(2, 0, 0).unwrap();
        s.write(0, bottom, 4).unwrap();
        let second = s.flush_all().unwrap();
        assert!(
            second.neighbor_rewrites > 0,
            "bottom-track write beside a written top track on {} must amplify",
            geom.name
        );
        assert_eq!(
            s.metrics().counter_value(Counter::NeighborRewrite),
            second.neighbor_rewrites,
            "telemetry must reconcile with the flush reports"
        );
        assert!(second.total_io_ms > 0.0);
    }

    #[test]
    fn disk_and_imr_reads_cost_the_same() {
        let lbns: Vec<Lbn> = (0..32u64).map(|i| i * 512).collect();
        let mut disk = store("disk");
        let mut imr = store("imr");
        let rd = disk.read(0, &lbns, 1).unwrap();
        let ri = imr.read(0, &lbns, 1).unwrap();
        assert_eq!(rd.total_io_ms.to_bits(), ri.total_io_ms.to_bits());
        assert_eq!(rd, ri);
    }
}
