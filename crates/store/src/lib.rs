//! # multimap-store — the database storage manager
//!
//! The paper's prototype "consists of a logical volume manager (LVM) and
//! a database storage manager. The database storage manager maps
//! multidimensional datasets by utilizing high-level functions exported
//! by the LVM" (Section 5.1). This crate is that upper half: a
//! table-level API that
//!
//! * allocates disjoint zone ranges per table over a multi-disk volume,
//! * places each table with MultiMap (or a linear baseline, or whatever
//!   the advisor picks),
//! * bulk-loads tables with coalesced sequential writes,
//! * applies point inserts with fill-factor / overflow-page semantics
//!   (Section 4.6), and
//! * runs beam and range queries that transparently read overflow
//!   chains.
//!
//! ```
//! use multimap_core::{BoxRegion, GridSpec};
//! use multimap_disksim::profiles;
//! use multimap_store::{LayoutChoice, StorageManager};
//!
//! let mut db = StorageManager::new(profiles::small(), 1);
//! db.create_table("demo", GridSpec::new([80u64, 8, 4]), LayoutChoice::Auto)
//!     .unwrap();
//! db.load("demo").unwrap();
//! let result = db.beam("demo", 1, &[10, 0, 2]).unwrap();
//! assert_eq!(result.cells, 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod backend;
pub mod cache;
pub mod manager;
pub mod page;
pub mod prefetch;

pub use alloc::{ZoneAllocator, ZoneGrant};
pub use backend::{BackendFlushReport, BackendReadReport, DeviceStore};
pub use cache::{
    make_policy, CacheConfig, CacheStats, ClockPolicy, EvictionKind, EvictionPolicy, LruPolicy,
    PageCache, TwoQPolicy,
};
pub use manager::{LayoutChoice, Result, SpatialTable, StorageManager, StoreError};
pub use page::{CellPage, PageError};
pub use prefetch::{adjacency_plan, sequential_plan, PrefetchMode, StreamModel, StreamVector};
