//! The adjacency-aware page cache (ROADMAP item 4).
//!
//! A deterministic buffer cache keyed by LBN, sitting between the
//! storage manager / query executor and the logical volume. Pages are
//! cell-granular: the key is a cell's first LBN and the page spans the
//! mapping's `cell_blocks()`. Three pieces:
//!
//! * **Pluggable eviction** — CLOCK, LRU and 2Q behind the
//!   [`EvictionPolicy`] trait, capacity counted in pages.
//! * **Prefetch** — planned by [`crate::prefetch`]: either plain
//!   sequential readahead or the adjacency-aware stream prefetcher
//!   that translates predicted query regions through the table's
//!   mapping. The executor appends the plan to the demand batch, so
//!   speculative reads ride the SPTF scheduler like any other request.
//! * **Dirty pages** — updates mark pages dirty
//!   ([`PageCache::mark_dirty`]); the write-back batcher
//!   ([`PageCache::take_writeback`]) hands all pending dirty pages to
//!   the storage manager, which flushes them as one queued-SPTF batch
//!   instead of one positioned write per insert.
//!
//! Everything is interior-mutable behind one mutex so the cache can sit
//! behind the `&dyn BlockCache` the executor carries; all internal maps
//! are ordered (`BTreeMap`/`BTreeSet`), keeping behaviour deterministic
//! for the engine's bit-identity contract. A `capacity_pages` of 0 is a
//! pass-through: every probe misses, nothing is admitted, and queries
//! behave byte-identically to runs without a cache attached.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use multimap_disksim::Lbn;
use multimap_query::{BlockCache, CacheProbe, PrefetchContext};
use parking_lot::Mutex;

use crate::prefetch::{adjacency_plan, sequential_plan, PrefetchMode, StreamModel};

/// Which eviction policy a [`PageCache`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionKind {
    /// Second-chance CLOCK: a circular scan clearing reference bits.
    Clock,
    /// Strict least-recently-used.
    Lru,
    /// Simplified full 2Q (Johnson & Shasha): a FIFO admission queue
    /// (`A1in`), a ghost list of recently evicted keys (`A1out`), and
    /// an LRU main area (`Am`) reserved for re-referenced pages.
    TwoQ,
}

impl EvictionKind {
    /// Stable lower-case label (bench JSON field values).
    pub fn name(self) -> &'static str {
        match self {
            EvictionKind::Clock => "clock",
            EvictionKind::Lru => "lru",
            EvictionKind::TwoQ => "2q",
        }
    }
}

/// A page-replacement policy tracking residency decisions.
///
/// The cache core owns the page table; the policy only orders evictions.
/// Call discipline (enforced by [`PageCache`]): `on_admit` for a page
/// the policy is not tracking, `on_hit`/`on_remove` only for tracked
/// pages, and `victim` only when at least one page is tracked. A victim
/// is immediately forgotten by the policy.
pub trait EvictionPolicy: Send {
    /// Policy label ("clock" / "lru" / "2q").
    fn name(&self) -> &'static str;
    /// Start tracking a newly admitted page.
    fn on_admit(&mut self, lbn: Lbn);
    /// A tracked page was referenced.
    fn on_hit(&mut self, lbn: Lbn);
    /// Stop tracking a page removed for a reason other than eviction
    /// (cache invalidation).
    fn on_remove(&mut self, lbn: Lbn);
    /// Choose, and forget, the page to evict; `None` if none tracked.
    fn victim(&mut self) -> Option<Lbn>;
}

/// Second-chance CLOCK over a fixed slot array.
///
/// New pages take the lowest free slot (the one just vacated, once the
/// cache is warm) with a cleared reference bit; hits set the bit; the
/// hand sweeps circularly, clearing set bits and evicting the first
/// clear one it finds.
pub struct ClockPolicy {
    slots: Vec<Option<(Lbn, bool)>>,
    index: BTreeMap<Lbn, usize>,
    free: Vec<usize>,
    hand: usize,
}

impl ClockPolicy {
    /// A CLOCK over `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ClockPolicy {
            slots: vec![None; capacity],
            index: BTreeMap::new(),
            free: (0..capacity).rev().collect(),
            hand: 0,
        }
    }
}

impl EvictionPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn on_admit(&mut self, lbn: Lbn) {
        // staticcheck: allow(no-unwrap) — the cache evicts before admitting past capacity, so a slot is always free.
        let slot = self.free.pop().expect("a slot is free on admit");
        self.slots[slot] = Some((lbn, false));
        self.index.insert(lbn, slot);
    }

    fn on_hit(&mut self, lbn: Lbn) {
        if let Some(&slot) = self.index.get(&lbn) {
            if let Some(page) = self.slots[slot].as_mut() {
                page.1 = true;
            }
        }
    }

    fn on_remove(&mut self, lbn: Lbn) {
        if let Some(slot) = self.index.remove(&lbn) {
            self.slots[slot] = None;
            self.free.push(slot);
        }
    }

    fn victim(&mut self) -> Option<Lbn> {
        if self.index.is_empty() {
            return None;
        }
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            match self.slots[slot].as_mut() {
                None => continue,
                Some((_, referenced)) if *referenced => *referenced = false,
                Some(&mut (lbn, _)) => {
                    self.slots[slot] = None;
                    self.index.remove(&lbn);
                    self.free.push(slot);
                    return Some(lbn);
                }
            }
        }
    }
}

/// Strict LRU via a monotone stamp and two ordered maps.
#[derive(Default)]
pub struct LruPolicy {
    stamp: u64,
    by_lbn: BTreeMap<Lbn, u64>,
    by_stamp: BTreeMap<u64, Lbn>,
}

impl LruPolicy {
    /// An empty LRU.
    pub fn new() -> Self {
        LruPolicy::default()
    }

    fn touch(&mut self, lbn: Lbn) {
        if let Some(old) = self.by_lbn.remove(&lbn) {
            self.by_stamp.remove(&old);
        }
        self.stamp += 1;
        self.by_lbn.insert(lbn, self.stamp);
        self.by_stamp.insert(self.stamp, lbn);
    }
}

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn on_admit(&mut self, lbn: Lbn) {
        self.touch(lbn);
    }

    fn on_hit(&mut self, lbn: Lbn) {
        self.touch(lbn);
    }

    fn on_remove(&mut self, lbn: Lbn) {
        if let Some(old) = self.by_lbn.remove(&lbn) {
            self.by_stamp.remove(&old);
        }
    }

    fn victim(&mut self) -> Option<Lbn> {
        let (&stamp, &lbn) = self.by_stamp.iter().next()?;
        self.by_stamp.remove(&stamp);
        self.by_lbn.remove(&lbn);
        Some(lbn)
    }
}

/// Simplified full 2Q.
///
/// First-touch pages enter the FIFO `A1in` queue; pages evicted from it
/// leave a ghost key in `A1out`. A page readmitted while its ghost is
/// alive goes to the LRU `Am` area — surviving scans that would flush a
/// plain LRU. `A1in` is held near a quarter of capacity and the ghost
/// list near half (the paper's `Kin`/`Kout` defaults); eviction drains
/// an over-full `A1in` first, else `Am`'s LRU tail.
pub struct TwoQPolicy {
    kin: usize,
    kout: usize,
    a1in: VecDeque<Lbn>,
    a1in_set: BTreeSet<Lbn>,
    ghosts: VecDeque<Lbn>,
    ghost_set: BTreeSet<Lbn>,
    am: LruPolicy,
    am_set: BTreeSet<Lbn>,
}

impl TwoQPolicy {
    /// A 2Q for a cache of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TwoQPolicy {
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            a1in: VecDeque::new(),
            a1in_set: BTreeSet::new(),
            ghosts: VecDeque::new(),
            ghost_set: BTreeSet::new(),
            am: LruPolicy::new(),
            am_set: BTreeSet::new(),
        }
    }

    fn ghost_insert(&mut self, lbn: Lbn) {
        self.ghosts.push_back(lbn);
        self.ghost_set.insert(lbn);
        while self.ghosts.len() > self.kout {
            if let Some(old) = self.ghosts.pop_front() {
                self.ghost_set.remove(&old);
            }
        }
    }
}

impl EvictionPolicy for TwoQPolicy {
    fn name(&self) -> &'static str {
        "2q"
    }

    fn on_admit(&mut self, lbn: Lbn) {
        if self.ghost_set.remove(&lbn) {
            self.ghosts.retain(|&g| g != lbn);
            self.am.on_admit(lbn);
            self.am_set.insert(lbn);
        } else {
            self.a1in.push_back(lbn);
            self.a1in_set.insert(lbn);
        }
    }

    fn on_hit(&mut self, lbn: Lbn) {
        // A1in hits do nothing (2Q: correlated references stay in the
        // admission queue); Am hits refresh recency.
        if self.am_set.contains(&lbn) {
            self.am.on_hit(lbn);
        }
    }

    fn on_remove(&mut self, lbn: Lbn) {
        if self.a1in_set.remove(&lbn) {
            self.a1in.retain(|&q| q != lbn);
        } else if self.am_set.remove(&lbn) {
            self.am.on_remove(lbn);
        }
    }

    fn victim(&mut self) -> Option<Lbn> {
        // Drain an over-full admission queue first; otherwise evict
        // from the main area, falling back to A1in when Am is empty.
        if self.a1in.len() > self.kin || self.am_set.is_empty() {
            if let Some(lbn) = self.a1in.pop_front() {
                self.a1in_set.remove(&lbn);
                self.ghost_insert(lbn);
                return Some(lbn);
            }
        }
        if let Some(lbn) = self.am.victim() {
            self.am_set.remove(&lbn);
            return Some(lbn);
        }
        None
    }
}

/// Build the policy for `kind` at `capacity` pages.
pub fn make_policy(kind: EvictionKind, capacity: usize) -> Box<dyn EvictionPolicy> {
    match kind {
        EvictionKind::Clock => Box::new(ClockPolicy::new(capacity)),
        EvictionKind::Lru => Box::new(LruPolicy::new()),
        EvictionKind::TwoQ => Box::new(TwoQPolicy::new(capacity)),
    }
}

/// Page-cache tunables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheConfig {
    /// Resident pages the cache holds; 0 disables the cache entirely
    /// (pass-through, byte-identical to running without one).
    pub capacity_pages: usize,
    /// Replacement policy.
    pub eviction: EvictionKind,
    /// Speculative-read strategy.
    pub prefetch: PrefetchMode,
    /// Dirty pages that accumulate before the storage manager flushes
    /// a write-back batch.
    pub writeback_batch: usize,
    /// Disk command-queue depth the flush batch is scheduled with
    /// (queued SPTF).
    pub queue_depth: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_pages: 256,
            eviction: EvictionKind::Clock,
            prefetch: PrefetchMode::Adjacency { depth: 1 },
            writeback_batch: 64,
            queue_depth: 64,
        }
    }
}

/// Deterministic cache-event totals (mirrors the telemetry counters the
/// executor records, plus eviction/write-back bookkeeping).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from a resident page.
    pub hits: u64,
    /// Probes that fell through to a demand read.
    pub misses: u64,
    /// Pages fetched speculatively.
    pub prefetch_issued: u64,
    /// Prefetched pages hit at least once before eviction.
    pub prefetch_used: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages handed to the write-back batcher.
    pub writeback_pages: u64,
}

#[derive(Clone, Copy, Debug)]
struct PageMeta {
    nblocks: u64,
    dirty: bool,
    prefetched: bool,
    used: bool,
}

struct CacheState {
    pages: BTreeMap<Lbn, PageMeta>,
    policy: Box<dyn EvictionPolicy>,
    stream: StreamModel,
    /// Evicted-dirty pages awaiting a flush, in eviction order.
    writeback: Vec<(Lbn, u64)>,
    /// Resident pages currently dirty.
    dirty_resident: u64,
    stats: CacheStats,
}

impl CacheState {
    /// Evict one page to make room; dirty victims join the write-back
    /// queue (their data exists only in the cache until flushed).
    fn evict_one(&mut self) {
        if let Some(victim) = self.policy.victim() {
            if let Some(meta) = self.pages.remove(&victim) {
                self.stats.evictions += 1;
                if meta.dirty {
                    self.dirty_resident -= 1;
                    self.writeback.push((victim, meta.nblocks));
                }
            }
        }
    }

    fn admit(&mut self, capacity: usize, lbn: Lbn, nblocks: u64, prefetched: bool, dirty: bool) {
        if let Some(meta) = self.pages.get_mut(&lbn) {
            // Already resident (a dirty mark on a cached page, or a
            // demand fetch racing a prior prefetch): refresh recency
            // and upgrade the dirty bit.
            if dirty && !meta.dirty {
                meta.dirty = true;
                self.dirty_resident += 1;
            }
            self.policy.on_hit(lbn);
            return;
        }
        while self.pages.len() >= capacity {
            self.evict_one();
        }
        self.pages.insert(
            lbn,
            PageMeta {
                nblocks,
                dirty,
                prefetched,
                used: false,
            },
        );
        if dirty {
            self.dirty_resident += 1;
        }
        self.policy.on_admit(lbn);
    }
}

/// The deterministic page cache. See the module docs for the design;
/// the executor talks to it through `multimap_query::BlockCache`.
pub struct PageCache {
    capacity: usize,
    prefetch: PrefetchMode,
    inner: Mutex<CacheState>,
}

impl PageCache {
    /// A cache per `config` (eviction, capacity, prefetch mode).
    pub fn new(config: &CacheConfig) -> Self {
        PageCache {
            capacity: config.capacity_pages,
            prefetch: config.prefetch,
            inner: Mutex::new(CacheState {
                pages: BTreeMap::new(),
                policy: make_policy(config.eviction, config.capacity_pages),
                stream: StreamModel::new(),
                writeback: Vec::new(),
                dirty_resident: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// Capacity in pages (0: disabled pass-through).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident pages right now.
    pub fn len(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The eviction policy's label.
    pub fn policy_name(&self) -> &'static str {
        self.inner.lock().policy.name()
    }

    /// Event totals so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Mark a page dirty, admitting it if absent. Returns `false` when
    /// the cache is disabled (capacity 0) and the caller must write
    /// through immediately.
    pub fn mark_dirty(&self, lbn: Lbn, nblocks: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.inner
            .lock()
            .admit(self.capacity, lbn, nblocks, false, true);
        true
    }

    /// Dirty pages awaiting write-back (resident + evicted-queued).
    pub fn writeback_pending(&self) -> usize {
        let state = self.inner.lock();
        state.writeback.len() + state.dirty_resident as usize
    }

    /// Take every pending dirty page for flushing, sorted by LBN:
    /// the evicted-dirty queue plus all resident dirty pages (which
    /// stay resident, now clean). The caller services them as one
    /// batch and records the flush.
    pub fn take_writeback(&self) -> Vec<(Lbn, u64)> {
        let mut state = self.inner.lock();
        let mut out = std::mem::take(&mut state.writeback);
        let resident_dirty: Vec<Lbn> = state
            .pages
            .iter()
            .filter(|(_, m)| m.dirty)
            .map(|(&l, _)| l)
            .collect();
        for lbn in resident_dirty {
            if let Some(meta) = state.pages.get_mut(&lbn) {
                meta.dirty = false;
                out.push((lbn, meta.nblocks));
            }
        }
        state.dirty_resident = 0;
        out.sort_unstable();
        state.stats.writeback_pages += out.len() as u64;
        out
    }

    /// Drop every resident page and queued write-back in
    /// `[base, base + blocks)` — used when a bulk load or reorganise
    /// rewrites a table's disk range underneath the cache. Queued dirty
    /// pages in the range are discarded (the rewrite supersedes them);
    /// the stream model resets.
    pub fn invalidate_range(&self, base: Lbn, blocks: u64) {
        let end = base.saturating_add(blocks);
        let mut state = self.inner.lock();
        let doomed: Vec<Lbn> = state
            .pages
            .range(..end)
            .filter(|(&l, m)| l.saturating_add(m.nblocks) > base)
            .map(|(&l, _)| l)
            .collect();
        for lbn in doomed {
            if let Some(meta) = state.pages.remove(&lbn) {
                if meta.dirty {
                    state.dirty_resident -= 1;
                }
            }
            state.policy.on_remove(lbn);
        }
        state
            .writeback
            .retain(|&(l, n)| l.saturating_add(n) <= base || l >= end);
        state.stream.reset();
    }
}

impl BlockCache for PageCache {
    fn probe(&self, lbn: Lbn) -> CacheProbe {
        if self.capacity == 0 {
            return CacheProbe::Miss;
        }
        let mut state = self.inner.lock();
        match state.pages.get_mut(&lbn) {
            Some(meta) => {
                let first_prefetch_use = meta.prefetched && !meta.used;
                meta.used = true;
                state.policy.on_hit(lbn);
                state.stats.hits += 1;
                if first_prefetch_use {
                    state.stats.prefetch_used += 1;
                }
                CacheProbe::Hit { first_prefetch_use }
            }
            None => {
                state.stats.misses += 1;
                CacheProbe::Miss
            }
        }
    }

    fn plan_prefetch(&self, ctx: &PrefetchContext<'_>) -> Vec<Lbn> {
        if self.capacity == 0 {
            return Vec::new();
        }
        let mut state = self.inner.lock();
        let stream = state.stream.observe(ctx.region);
        let cell_blocks = ctx.mapping.cell_blocks();
        let raw = match self.prefetch {
            PrefetchMode::None => Vec::new(),
            PrefetchMode::Sequential { window } => {
                sequential_plan(ctx.missed, cell_blocks, window)
            }
            PrefetchMode::Adjacency { depth } => match stream {
                Some(v) => adjacency_plan(ctx.mapping, ctx.region, v, depth),
                None => Vec::new(),
            },
        };
        // Keep only pages worth fetching: on disk, not demanded by this
        // query, not already resident, each at most once — and never
        // more than the cache could hold.
        let demand: BTreeSet<Lbn> = ctx.demand.iter().copied().collect();
        let mut seen = BTreeSet::new();
        let plan: Vec<Lbn> = raw
            .into_iter()
            .filter(|&l| l.saturating_add(cell_blocks) <= ctx.lbn_limit)
            .filter(|&l| !demand.contains(&l))
            .filter(|&l| !state.pages.contains_key(&l))
            .filter(|&l| seen.insert(l))
            .take(self.capacity)
            .collect();
        state.stats.prefetch_issued += plan.len() as u64;
        plan
    }

    fn admit(&self, lbn: Lbn, nblocks: u64, prefetched: bool) {
        if self.capacity == 0 {
            return;
        }
        self.inner
            .lock()
            .admit(self.capacity, lbn, nblocks, prefetched, false);
    }
}
