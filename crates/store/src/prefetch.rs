//! Prefetch planning for the page cache.
//!
//! Two speculative-read strategies sit behind [`PrefetchMode`]:
//!
//! * **Sequential readahead** — the classic block-device heuristic:
//!   after servicing a query's misses, fetch the next `window` pages
//!   past the highest missed address. Oblivious to the dataset's
//!   geometry; on a beam query it fetches whatever happens to follow in
//!   LBN order (under MultiMap that is the *same track's* `Dim0` data,
//!   not the next beam).
//! * **Adjacency-aware prefetch** — the paper-informed strategy: watch
//!   the *query stream*, not the address stream. When successive
//!   regions are the same box shifted along one dimension (a beam
//!   sweep, a sliding range), predict the next `depth` regions and
//!   translate them through the table's [`Mapping`] — under MultiMap
//!   the predicted cells are exactly the semi-sequential successors the
//!   adjacency model lays out, so the speculative batch rides the SPTF
//!   scheduler along settle-cost paths.
//!
//! The planner is pure bookkeeping over query inputs and produces the
//! same plan for the same query sequence — determinism comes for free.

use multimap_core::{BoxRegion, Mapping};
use multimap_disksim::Lbn;

/// Which speculative-read strategy the cache runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchMode {
    /// No speculative reads.
    None,
    /// Plain LBN readahead: fetch `window` pages following the highest
    /// demand miss of each query.
    Sequential {
        /// Pages fetched past the highest missed page.
        window: u64,
    },
    /// Mapping-aware stream prefetch: predict the next `depth` query
    /// regions from the observed stream and translate them through the
    /// mapping.
    Adjacency {
        /// Predicted regions fetched ahead of the stream.
        depth: u64,
    },
}

impl PrefetchMode {
    /// Stable lower-case label (bench JSON field values).
    pub fn name(self) -> &'static str {
        match self {
            PrefetchMode::None => "none",
            PrefetchMode::Sequential { .. } => "sequential",
            PrefetchMode::Adjacency { .. } => "adjacency",
        }
    }
}

/// A detected query stream: the same box shape advancing `stride`
/// cells per query along `dim`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamVector {
    /// The dimension the stream advances along.
    pub dim: usize,
    /// Cells advanced per query (negative: sweeping toward zero).
    pub stride: i64,
}

/// Remembers the previous query's region and detects shift-by-`k`
/// streams between consecutive queries.
#[derive(Clone, Debug, Default)]
pub struct StreamModel {
    last: Option<(Vec<u64>, Vec<u64>)>,
}

impl StreamModel {
    /// A model that has seen no queries.
    pub fn new() -> Self {
        StreamModel::default()
    }

    /// Record `region` and report the stream it continues, if any: the
    /// previous region must be the same shape, offset along exactly one
    /// dimension.
    pub fn observe(&mut self, region: &BoxRegion) -> Option<StreamVector> {
        let lo = region.lo().to_vec();
        let hi = region.hi().to_vec();
        let detected = self.last.as_ref().and_then(|(plo, phi)| {
            if plo.len() != lo.len() {
                return None;
            }
            let mut vector: Option<StreamVector> = None;
            for d in 0..lo.len() {
                let extent_matches = hi[d].checked_sub(lo[d]) == phi[d].checked_sub(plo[d]);
                if !extent_matches {
                    return None;
                }
                if lo[d] == plo[d] {
                    continue;
                }
                if vector.is_some() {
                    return None; // moved along two dimensions: no stream
                }
                let stride = lo[d] as i64 - plo[d] as i64;
                vector = Some(StreamVector { dim: d, stride });
            }
            vector
        });
        self.last = Some((lo, hi));
        detected
    }

    /// Forget the stream (after cache invalidation or a table switch).
    pub fn reset(&mut self) {
        self.last = None;
    }
}

/// Shift `region` by `offset` cells along `dim`, clamped to the grid:
/// `None` when any part of the shifted box leaves the dataset.
fn shift_region(
    region: &BoxRegion,
    dim: usize,
    offset: i64,
    extents: &[u64],
) -> Option<BoxRegion> {
    let mut lo = region.lo().to_vec();
    let mut hi = region.hi().to_vec();
    if offset >= 0 {
        let off = offset as u64;
        if hi[dim].checked_add(off)? >= extents[dim] {
            return None;
        }
        lo[dim] += off;
        hi[dim] += off;
    } else {
        let off = (-offset) as u64;
        if lo[dim] < off {
            return None;
        }
        lo[dim] -= off;
        hi[dim] -= off;
    }
    Some(BoxRegion::new(lo, hi))
}

/// Translate the next `depth` predicted regions of a stream into page
/// starts, in prediction order (nearest region first, row-major cells
/// within it). Regions that fall off the grid end the prediction.
pub fn adjacency_plan(
    mapping: &dyn Mapping,
    region: &BoxRegion,
    stream: StreamVector,
    depth: u64,
) -> Vec<Lbn> {
    let extents = mapping.grid().extents().to_vec();
    let mut plan = Vec::new();
    for step in 1..=depth as i64 {
        let Some(next) = shift_region(region, stream.dim, stream.stride * step, &extents) else {
            break;
        };
        let mut failed = false;
        next.for_each_cell(|c| {
            if failed {
                return;
            }
            match mapping.lbn_of(c) {
                Ok(lbn) => plan.push(lbn),
                Err(_) => failed = true,
            }
        });
        if failed {
            break;
        }
    }
    plan
}

/// Plain readahead: the `window` page starts following the highest
/// missed page (each page `cell_blocks` long).
pub fn sequential_plan(missed: &[Lbn], cell_blocks: u64, window: u64) -> Vec<Lbn> {
    let Some(max_end) = missed.iter().map(|&l| l + cell_blocks).max() else {
        return Vec::new();
    };
    (0..window).map(|k| max_end + k * cell_blocks).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::{GridSpec, NaiveMapping};

    #[test]
    fn stream_detection_needs_two_matching_regions() {
        let grid = GridSpec::new([10u64, 8, 6]);
        let mut model = StreamModel::new();
        let beam0 = BoxRegion::beam(&grid, 1, &[2, 0, 0]);
        assert_eq!(model.observe(&beam0), None);
        let beam1 = BoxRegion::beam(&grid, 1, &[2, 0, 1]);
        assert_eq!(
            model.observe(&beam1),
            Some(StreamVector { dim: 2, stride: 1 })
        );
        // A third step continues the stream.
        let beam2 = BoxRegion::beam(&grid, 1, &[2, 0, 2]);
        assert_eq!(
            model.observe(&beam2),
            Some(StreamVector { dim: 2, stride: 1 })
        );
        // Sweeping backward is a stream too.
        assert_eq!(
            model.observe(&beam1),
            Some(StreamVector { dim: 2, stride: -1 })
        );
    }

    #[test]
    fn shape_changes_and_diagonal_moves_break_the_stream() {
        let grid = GridSpec::new([10u64, 8, 6]);
        let mut model = StreamModel::new();
        model.observe(&BoxRegion::beam(&grid, 1, &[2, 0, 0]));
        // Different shape: a dim-0 beam after a dim-1 beam.
        assert_eq!(model.observe(&BoxRegion::beam(&grid, 0, &[0, 3, 0])), None);
        model.observe(&BoxRegion::new([1u64, 1, 1], [2u64, 2, 1]));
        // Same shape but moved along two dimensions at once.
        assert_eq!(
            model.observe(&BoxRegion::new([2u64, 2, 1], [3u64, 3, 1])),
            None
        );
        model.reset();
        assert_eq!(
            model.observe(&BoxRegion::new([2u64, 2, 1], [3u64, 3, 1])),
            None
        );
    }

    #[test]
    fn adjacency_plan_translates_shifted_regions() {
        let grid = GridSpec::new([10u64, 8, 6]);
        let naive = NaiveMapping::new(grid.clone(), 0);
        let region = BoxRegion::beam(&grid, 1, &[2, 0, 4]);
        let stream = StreamVector { dim: 2, stride: 1 };
        // Depth 3 but only z=5 exists: prediction stops at the edge.
        let plan = adjacency_plan(&naive, &region, stream, 3);
        let expect: Vec<Lbn> = (0..8).map(|y| 2 + 10 * y + 80 * 5).collect();
        assert_eq!(plan, expect);
        // A stream already at the boundary predicts nothing.
        let edge = BoxRegion::beam(&grid, 1, &[2, 0, 5]);
        assert!(adjacency_plan(&naive, &edge, stream, 3).is_empty());
    }

    #[test]
    fn sequential_plan_follows_the_highest_miss() {
        assert_eq!(sequential_plan(&[7, 3, 5], 1, 3), vec![8, 9, 10]);
        assert_eq!(sequential_plan(&[4], 2, 2), vec![6, 8]);
        assert!(sequential_plan(&[], 1, 8).is_empty());
    }
}
