//! Differential conformance: identical cell sets across all four
//! mappings on a workload matrix of beam/range/box queries, and
//! model-vs-simulator agreement on both paper evaluation drives.

use multimap_conformance::{assert_model_agreement, check_region, differential_query};
use multimap_core::{BoxRegion, GridSpec};
use multimap_disksim::profiles;

fn grid() -> GridSpec {
    GridSpec::new([40u64, 8, 6])
}

#[test]
fn beams_agree_on_every_dimension() {
    let geom = profiles::small();
    let grid = grid();
    for dim in 0..3 {
        for anchor in [[0u64, 0, 0], [17, 3, 2], [39, 7, 5]] {
            let region = BoxRegion::beam(&grid, dim, &anchor);
            check_region(&geom, &grid, &region, true)
                .unwrap_or_else(|e| panic!("beam dim {dim} anchor {anchor:?}: {e}"));
        }
    }
}

#[test]
fn ranges_agree_on_box_matrix() {
    let geom = profiles::small();
    let grid = grid();
    let boxes = [
        BoxRegion::new([0u64, 0, 0], [0u64, 0, 0]),    // single cell
        BoxRegion::new([0u64, 0, 0], [39u64, 0, 0]),   // full row
        BoxRegion::new([3u64, 1, 1], [12u64, 6, 4]),   // interior box
        BoxRegion::new([0u64, 0, 0], [39u64, 7, 5]),   // whole dataset
        BoxRegion::new([38u64, 6, 4], [39u64, 7, 5]),  // far corner
    ];
    for region in &boxes {
        check_region(&geom, &grid, region, false)
            .unwrap_or_else(|e| panic!("range {:?}..{:?}: {e}", region.lo(), region.hi()));
    }
}

#[test]
fn agreement_holds_on_both_evaluation_drives() {
    // The same differential contract on the real drive geometries the
    // paper evaluates (smaller query set — these disks are big).
    for geom in [profiles::cheetah_36es(), profiles::atlas_10k_iii()] {
        let grid = grid();
        check_region(&geom, &grid, &BoxRegion::beam(&grid, 1, &[5, 0, 3]), true)
            .unwrap_or_else(|e| panic!("{}: {e}", geom.name));
        check_region(
            &geom,
            &grid,
            &BoxRegion::new([2u64, 2, 0], [11u64, 5, 3]),
            false,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", geom.name));
    }
}

#[test]
fn mappings_disagree_on_layout_but_not_on_content() {
    // Sanity check that the differential harness is actually comparing
    // different layouts: the mappings must place at least one cell at
    // different LBNs while still fetching identical cell sets.
    let geom = profiles::small();
    let grid = grid();
    let region = BoxRegion::beam(&grid, 2, &[9, 4, 0]);
    let outcomes = differential_query(&geom, &grid, &region, true).unwrap();
    assert_eq!(outcomes.len(), 4);
    let all_cells: Vec<_> = outcomes.iter().map(|o| &o.cells).collect();
    assert!(all_cells.windows(2).all(|w| w[0] == w[1]));
    // Layouts differ: total I/O cannot be identical across all four.
    let times: Vec<f64> = outcomes.iter().map(|o| o.result.total_io_ms).collect();
    assert!(
        times.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9),
        "all four mappings produced identical I/O times {times:?} — \
         the differential harness is not exercising distinct layouts"
    );
}

#[test]
fn model_agrees_with_simulator_on_cheetah() {
    assert_model_agreement(&profiles::cheetah_36es());
}

#[test]
fn model_agrees_with_simulator_on_atlas() {
    assert_model_agreement(&profiles::atlas_10k_iii());
}

#[test]
fn model_agrees_with_simulator_on_small() {
    assert_model_agreement(&profiles::small());
}
