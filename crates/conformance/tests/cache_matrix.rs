//! Cache conformance matrix: result identity and counter
//! reconciliation across all mapping families × eviction policies, at
//! a capacity that evicts and one that doesn't.

use multimap_conformance::check_cached_sweep;
use multimap_core::GridSpec;
use multimap_disksim::profiles;
use multimap_store::EvictionKind;

#[test]
fn cached_sweeps_reconcile_across_policies_and_mappings() {
    let geom = profiles::small();
    let grid = GridSpec::new([60u64, 8, 6]);
    for eviction in [EvictionKind::Clock, EvictionKind::Lru, EvictionKind::TwoQ] {
        // Roomy: the whole sweep fits, nothing evicts.
        check_cached_sweep(&geom, &grid, eviction, 128)
            .unwrap_or_else(|e| panic!("roomy {}: {e}", eviction.name()));
        // Tight: a fraction of one beam, constant eviction pressure.
        check_cached_sweep(&geom, &grid, eviction, 5)
            .unwrap_or_else(|e| panic!("tight {}: {e}", eviction.name()));
    }
}
