//! The physics oracle over the seeded workload matrix: every scheduling
//! policy, both paper evaluation drives, reads and writes, ideal and
//! jittered settle — zero invariant violations everywhere.

use multimap_conformance::oracle::{check_log, OracleDisk};
use multimap_disksim::{profiles, semi_sequential_path, DiskGeometry, Request};
use multimap_lvm::{LogicalVolume, SchedulePolicy};

/// Deterministic request scatter (LCG) within the first `span` LBNs.
fn scattered(seed: u64, n: usize, span: u64, max_blocks: u64) -> Vec<Request> {
    let mut x = seed;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 11
    };
    (0..n)
        .map(|_| {
            let nblocks = 1 + next() % max_blocks;
            Request::new(next() % (span - nblocks), nblocks)
        })
        .collect()
}

fn policies() -> [SchedulePolicy; 5] {
    [
        SchedulePolicy::InOrder,
        SchedulePolicy::AscendingLbn,
        SchedulePolicy::Sptf,
        SchedulePolicy::QueuedSptf(1),
        SchedulePolicy::QueuedSptf(8),
    ]
}

/// Service `requests` under `policy` on a fresh disk and assert the
/// oracle finds nothing.
fn assert_clean_batch(geom: &DiskGeometry, requests: &[Request], policy: SchedulePolicy) {
    let volume = LogicalVolume::new(geom.clone(), 1);
    let (timing, log) = volume
        .service_batch_logged(0, requests, policy)
        .expect("workload must be serviceable");
    assert_eq!(log.len(), requests.len());
    let report = check_log(geom, &log);
    assert_eq!(report.checked, requests.len());
    report.assert_clean();
    // The batch totals must equal the sum over audited events.
    assert!((timing.total_ms - log.total_ms()).abs() < 1e-6);
}

fn matrix_on(geom: &DiskGeometry) {
    let span = geom.total_blocks() / 2;
    let workloads: Vec<(&str, Vec<Request>)> = vec![
        (
            "sequential",
            (0..80u64).map(|i| Request::single(500 + i)).collect(),
        ),
        (
            "coalesced_runs",
            (0..12u64).map(|i| Request::new(i * 4_096, 64)).collect(),
        ),
        (
            "semi_sequential",
            semi_sequential_path(geom, 1_000, 1, 40)
                .into_iter()
                .map(Request::single)
                .collect(),
        ),
        ("random_small", scattered(0xA11CE, 60, span, 4)),
        // Requests long enough to cross track and cylinder boundaries,
        // exercising the multi-segment seek/rotation bounds.
        ("random_long", scattered(0xB0B, 20, span, 700)),
    ];
    for (name, requests) in &workloads {
        for policy in policies() {
            eprintln!("oracle: {} / {name} / {policy:?}", geom.name);
            assert_clean_batch(geom, requests, policy);
        }
    }
}

#[test]
fn cheetah_matrix_is_clean() {
    matrix_on(&profiles::cheetah_36es());
}

#[test]
fn atlas_matrix_is_clean() {
    matrix_on(&profiles::atlas_10k_iii());
}

#[test]
fn small_profile_matrix_is_clean() {
    matrix_on(&profiles::small());
}

#[test]
fn jittered_settle_stays_within_oracle_bounds() {
    let mut geom = profiles::small();
    geom.settle_jitter_ms = 0.35;
    matrix_on(&geom);
}

#[test]
fn writes_pay_extra_settle_but_stay_conformant() {
    for geom in [profiles::small(), profiles::cheetah_36es()] {
        let mut disk = OracleDisk::new(geom);
        let mut reads = 0.0;
        let mut writes = 0.0;
        for (i, req) in scattered(0xD15C, 40, 100_000, 4).into_iter().enumerate() {
            if i % 2 == 0 {
                reads += disk.service(req).unwrap().seek_ms;
            } else {
                writes += disk.service_write(req).unwrap().seek_ms;
            }
        }
        disk.report().assert_clean();
        assert!(
            writes > reads,
            "write seeks {writes} should exceed read seeks {reads} (extra write settle)"
        );
    }
}

#[test]
fn prefetch_hits_pay_no_positioning() {
    let geom = profiles::cheetah_36es();
    let mut disk = OracleDisk::new(geom);
    disk.service(Request::new(10_000, 8)).unwrap();
    // Exact continuations — the oracle independently proves each one free.
    let mut lbn = 10_008;
    for run in [8u64, 16, 64, 200] {
        let t = disk.service(Request::new(lbn, run)).unwrap();
        assert_eq!(t.seek_ms, 0.0);
        assert_eq!(t.rotation_ms, 0.0);
        lbn += run;
    }
    disk.report().assert_clean();
}

#[test]
fn idle_gaps_between_batches_are_legal() {
    let geom = profiles::small();
    let mut disk = OracleDisk::new(geom);
    for burst in 0..5u64 {
        for i in 0..10u64 {
            disk.service(Request::single(burst * 10_000 + i * 137)).unwrap();
        }
        disk.idle(7.3);
    }
    assert_eq!(disk.report().checked, 50);
    disk.into_report().assert_clean();
}
