//! Golden-trace regression: the seeded workload matrix must replay
//! bit-identically against the checked-in `tests/golden/*.json` files.
//!
//! The matrix fans out across [`multimap_engine::sweep`] — each case is
//! one cell, results come back in submission order, so failure reports
//! are stable at any thread count.
//!
//! After an intentional timing change, regenerate with:
//! `UPDATE_GOLDEN=1 cargo test -p multimap-conformance --test golden_traces`

use multimap_conformance::golden::{check_case, golden_dir, update_mode, workload_matrix};
use multimap_conformance::oracle::check_log;
use multimap_lvm::LogicalVolume;

#[test]
fn golden_traces_match() {
    // Every case replays on its own fresh volume, so the cells are
    // independent; sweep preserves matrix order in the failure list.
    let cases = workload_matrix();
    let failures: Vec<String> = multimap_engine::sweep(&cases, |case| check_case(case).err())
        .into_iter()
        .flatten()
        .collect();
    assert!(
        failures.is_empty(),
        "{} golden case(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
    if update_mode() {
        eprintln!("golden files regenerated under {}", golden_dir().display());
    }
}

#[test]
fn golden_workloads_are_oracle_clean() {
    // The matrix that pins timings must itself obey the physics oracle —
    // a golden file can never freeze a mechanically impossible timing.
    let cases = workload_matrix();
    let failures: Vec<String> = multimap_engine::sweep(&cases, |case| {
        let volume = LogicalVolume::new(case.geometry.clone(), 1);
        let (_, log) = volume
            .service_batch_logged(0, &case.requests, case.policy)
            .expect("golden workloads must be serviceable");
        let report = check_log(&case.geometry, &log);
        if report.is_clean() {
            None
        } else {
            Some(format!(
                "{}: {} violation(s), first: {}",
                case.name(),
                report.violations.len(),
                report.violations[0]
            ))
        }
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
