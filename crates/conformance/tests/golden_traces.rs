//! Golden-trace regression: the seeded workload matrix must replay
//! bit-identically against the checked-in `tests/golden/*.json` files.
//!
//! After an intentional timing change, regenerate with:
//! `UPDATE_GOLDEN=1 cargo test -p multimap-conformance --test golden_traces`

use multimap_conformance::golden::{check_case, golden_dir, update_mode, workload_matrix};
use multimap_conformance::oracle::check_log;
use multimap_lvm::LogicalVolume;

#[test]
fn golden_traces_match() {
    let mut failures = Vec::new();
    for case in workload_matrix() {
        if let Err(e) = check_case(&case) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden case(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
    if update_mode() {
        eprintln!("golden files regenerated under {}", golden_dir().display());
    }
}

#[test]
fn golden_workloads_are_oracle_clean() {
    // The matrix that pins timings must itself obey the physics oracle —
    // a golden file can never freeze a mechanically impossible timing.
    for case in workload_matrix() {
        let volume = LogicalVolume::new(case.geometry.clone(), 1);
        let (_, log) = volume
            .service_batch_logged(0, &case.requests, case.policy)
            .expect("golden workloads must be serviceable");
        let report = check_log(&case.geometry, &log);
        assert!(
            report.is_clean(),
            "{}: {} violation(s), first: {}",
            case.name(),
            report.violations.len(),
            report.violations[0]
        );
    }
}
