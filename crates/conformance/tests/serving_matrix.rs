//! Serving conformance matrix: replay identity, counter reconciliation
//! and admission exclusion for multi-tenant serving runs across every
//! device backend, mapping family (inside the check) and fairness
//! policy — plus determinism of the matrix itself across engine thread
//! counts.

use multimap_conformance::check_served_scenario;
use multimap_core::GridSpec;
use multimap_disksim::{profiles, BACKEND_NAMES};
use multimap_server::{FairnessPolicy, LoadModel, Scenario, TenantSpec};

fn grid() -> GridSpec {
    GridSpec::new([24u64, 10, 6])
}

/// A small mixed population: pressure enough that admission control
/// actually sheds and rejects, short enough that the whole matrix runs
/// in seconds.
fn scenario(policy: FairnessPolicy) -> Scenario {
    Scenario {
        seed: 0xC0F0_22AB ^ policy.slug().len() as u64,
        tenants: vec![
            TenantSpec {
                name: "open-a".into(),
                weight: 2.0,
                load: LoadModel::OpenLoop { rate_rps: 60.0 },
                requests: 18,
                deadline_ms: 90.0,
                dim: 0,
            },
            TenantSpec {
                name: "closed-b".into(),
                weight: 1.0,
                load: LoadModel::ClosedLoop { think_ms: 4.0 },
                requests: 18,
                deadline_ms: 120.0,
                dim: 1,
            },
            TenantSpec {
                name: "open-c".into(),
                weight: 1.0,
                load: LoadModel::OpenLoop { rate_rps: 45.0 },
                requests: 18,
                deadline_ms: 60.0,
                dim: 2,
            },
            TenantSpec {
                name: "closed-d".into(),
                weight: 3.0,
                load: LoadModel::ClosedLoop { think_ms: 9.0 },
                requests: 18,
                deadline_ms: 120.0,
                dim: 1,
            },
        ],
        policy,
        queue_cap: 10,
        batch_window: 5,
        queue_depth: 8,
    }
}

#[test]
fn serving_contract_holds_across_backends_and_policies() {
    let geom = profiles::small();
    let grid = grid();
    for backend in BACKEND_NAMES {
        for policy in [
            FairnessPolicy::Fifo,
            FairnessPolicy::EarliestDeadline,
            FairnessPolicy::WeightedTenant,
        ] {
            check_served_scenario(backend, &geom, &grid, &scenario(policy))
                .unwrap_or_else(|e| panic!("{backend}/{policy}: {e}"));
        }
    }
}

#[test]
fn serving_matrix_is_thread_count_invariant() {
    let geom = profiles::small();
    let grid = grid();
    let policies = [
        FairnessPolicy::Fifo,
        FairnessPolicy::EarliestDeadline,
        FairnessPolicy::WeightedTenant,
    ];
    let run = || -> Vec<String> {
        let cells: Vec<(usize, usize)> = (0..BACKEND_NAMES.len())
            .flat_map(|b| (0..policies.len()).map(move |p| (b, p)))
            .collect();
        multimap_engine::sweep(&cells, |&(b, p)| {
            let volume = multimap_lvm::backend_volume(BACKEND_NAMES[b], &geom, 1)
                .expect("registry backend builds");
            let mapping = multimap_core::MultiMapping::new(&geom, grid.clone())
                .expect("multimap mapping must build");
            let report =
                multimap_server::serve_scenario(&volume, &mapping, &scenario(policies[p]))
                    .expect("scenario serves");
            format!("{:016x}\n{}", report.digest, report.to_json())
        })
    };
    multimap_engine::set_threads(1);
    let serial = run();
    for threads in [2, 8] {
        multimap_engine::set_threads(threads);
        assert_eq!(serial, run(), "serving matrix diverged at {threads} threads");
    }
    multimap_engine::set_threads(0);
}
