//! Seeded workload fuzzer: random request batches and random box/beam
//! queries through the oracle-wrapped simulator and the differential
//! checker. Cases are deterministic (the test RNG is seeded from the
//! test's module path), so failures replay.
//!
//! The per-policy replay fans out across [`multimap_engine::sweep`]
//! (one cell per scheduling policy, verdicts in submission order), the
//! same engine the figure sweeps use.

use multimap_conformance::oracle::{check_log, OracleDisk};
use multimap_conformance::check_region;
use multimap_core::{BoxRegion, GridSpec};
use multimap_disksim::{profiles, Request};
use multimap_lvm::{LogicalVolume, SchedulePolicy};
use proptest::prelude::*;

// profiles::small() has 528,000 blocks; keep end = lbn + nblocks inside.
const LBN_SPAN: u64 = 520_000;

fn grid() -> GridSpec {
    GridSpec::new([40u64, 8, 6])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_batches_are_oracle_clean_under_every_policy(
        reqs in proptest::collection::vec((0u64..LBN_SPAN, 1u64..8), 1..40),
        depth in 1usize..12,
    ) {
        let geom = profiles::small();
        let requests: Vec<Request> =
            reqs.iter().map(|&(lbn, n)| Request::new(lbn, n)).collect();
        let policies = [
            SchedulePolicy::InOrder,
            SchedulePolicy::AscendingLbn,
            SchedulePolicy::Sptf,
            SchedulePolicy::QueuedSptf(depth),
        ];
        // One sweep cell per policy, each on its own fresh volume;
        // verdicts come back in policy order at any thread count.
        let verdicts = multimap_engine::sweep(&policies, |policy| {
            let volume = LogicalVolume::new(geom.clone(), 1);
            let (_, log) = volume
                .service_batch_logged(0, &requests, *policy)
                .expect("fuzzed batch must be serviceable");
            let report = check_log(&geom, &log);
            if report.is_clean() {
                None
            } else {
                Some(format!(
                    "{policy:?}: {} violation(s), first: {}",
                    report.violations.len(),
                    report.violations[0]
                ))
            }
        });
        for verdict in verdicts {
            prop_assert!(verdict.is_none(), "{}", verdict.unwrap_or_default());
        }
    }

    #[test]
    fn random_mixed_read_write_streams_are_oracle_clean(
        ops in proptest::collection::vec((0u64..LBN_SPAN, 1u64..32, 0u32..4), 1..60),
    ) {
        // Mixed reads/writes with occasional sequential continuations
        // (op kind 3 reuses the previous end, exercising prefetch hits).
        let mut disk = OracleDisk::new(profiles::small());
        let mut last_end = None;
        for &(lbn, n, op) in &ops {
            let lbn = match (op, last_end) {
                (3, Some(end)) if end + n < LBN_SPAN => end,
                _ => lbn,
            };
            let req = Request::new(lbn, n);
            match op {
                1 => drop(disk.service_write(req).unwrap()),
                2 => {
                    disk.idle((lbn % 17) as f64 * 0.37);
                    disk.service(req).unwrap();
                }
                _ => drop(disk.service(req).unwrap()),
            }
            last_end = Some(req.end());
        }
        let report = disk.into_report();
        prop_assert!(
            report.is_clean(),
            "{} violation(s), first: {}",
            report.violations.len(),
            report.violations[0]
        );
    }

    #[test]
    fn random_boxes_fetch_identical_cells_across_mappings(
        lo0 in 0u64..40, lo1 in 0u64..8, lo2 in 0u64..6,
        s0 in 1u64..10, s1 in 1u64..5, s2 in 1u64..4,
    ) {
        let grid = grid();
        let hi = [
            (lo0 + s0 - 1).min(39),
            (lo1 + s1 - 1).min(7),
            (lo2 + s2 - 1).min(5),
        ];
        let region = BoxRegion::new([lo0, lo1, lo2], hi);
        let outcome = check_region(&profiles::small(), &grid, &region, false);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    #[test]
    fn random_beams_fetch_identical_cells_across_mappings(
        dim in 0usize..3,
        a0 in 0u64..40, a1 in 0u64..8, a2 in 0u64..6,
    ) {
        let grid = grid();
        let region = BoxRegion::beam(&grid, dim, &[a0, a1, a2]);
        let outcome = check_region(&profiles::small(), &grid, &region, true);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }
}
