//! Backend differential conformance: the full mapping × device-backend
//! matrix on a workload of beam and range queries — payload and
//! cell-set identity across every backend, exact counter
//! reconciliation, per-backend timing semantics — plus determinism of
//! the matrix itself across engine thread counts.

use multimap_conformance::{backend_differential_query, check_backend_region};
use multimap_core::{BoxRegion, GridSpec};
use multimap_disksim::profiles;

fn grid() -> GridSpec {
    GridSpec::new([40u64, 8, 6])
}

#[test]
fn backend_beams_agree_on_every_dimension() {
    let geom = profiles::small();
    let grid = grid();
    for dim in 0..3 {
        for anchor in [[0u64, 0, 0], [17, 3, 2], [39, 7, 5]] {
            let region = BoxRegion::beam(&grid, dim, &anchor);
            check_backend_region(&geom, &grid, &region, true)
                .unwrap_or_else(|e| panic!("beam dim {dim} anchor {anchor:?}: {e}"));
        }
    }
}

#[test]
fn backend_ranges_agree_on_box_matrix() {
    let geom = profiles::small();
    let grid = grid();
    let boxes = [
        BoxRegion::new([0u64, 0, 0], [0u64, 0, 0]),   // single cell
        BoxRegion::new([0u64, 0, 0], [39u64, 0, 0]),  // full row
        BoxRegion::new([3u64, 1, 1], [12u64, 6, 4]),  // interior box
        BoxRegion::new([38u64, 6, 4], [39u64, 7, 5]), // far corner
    ];
    for region in &boxes {
        check_backend_region(&geom, &grid, region, false)
            .unwrap_or_else(|e| panic!("range {:?}..{:?}: {e}", region.lo(), region.hi()));
    }
}

#[test]
fn backend_matrix_holds_on_paper_drives() {
    for geom in [profiles::cheetah_36es(), profiles::atlas_10k_iii()] {
        let grid = grid();
        let beam = BoxRegion::beam(&grid, 1, &[5, 0, 3]);
        check_backend_region(&geom, &grid, &beam, true)
            .unwrap_or_else(|e| panic!("{}: {e}", geom.name));
    }
}

/// The whole matrix — fanned across the experiment engine — must be
/// byte-identical at every thread count.
#[test]
fn backend_matrix_is_thread_count_invariant() {
    let geom = profiles::small();
    let grid = grid();
    let region = BoxRegion::beam(&grid, 2, &[5, 3, 0]);
    let reference: Vec<(String, u64, u64)> = {
        multimap_engine::set_threads(1);
        backend_differential_query(&geom, &grid, &region, true)
            .unwrap()
            .iter()
            .map(|o| {
                (
                    format!("{}/{}", o.backend, o.mapping),
                    o.result.payload,
                    o.result.total_io_ms.to_bits(),
                )
            })
            .collect()
    };
    for threads in [2usize, 4, 8] {
        multimap_engine::set_threads(threads);
        let run: Vec<(String, u64, u64)> = backend_differential_query(&geom, &grid, &region, true)
            .unwrap()
            .iter()
            .map(|o| {
                (
                    format!("{}/{}", o.backend, o.mapping),
                    o.result.payload,
                    o.result.total_io_ms.to_bits(),
                )
            })
            .collect();
        assert_eq!(run, reference, "{threads} threads");
    }
}
