//! Fault-matrix conformance: payload identity and exact counter
//! reconciliation under seeded fault plans, across all four standard
//! mappings, at whatever worker count `MULTIMAP_THREADS` selects (the
//! CI fault-matrix job runs this file at 1 and at 4 threads).

use multimap_conformance::{check_fault_plan, fault_query};
use multimap_core::{BoxRegion, GridSpec};
use multimap_disksim::{profiles, FaultPlan};
use multimap_lvm::RecoveryConfig;
use proptest::prelude::*;

fn grid() -> GridSpec {
    GridSpec::new([24u64, 8, 6])
}

/// The deterministic plan matrix the CI job sweeps: media errors only,
/// transients only, slow reads only, and everything at once.
fn plan_matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("media", FaultPlan::new(11).with_media_errors([5, 210, 700])),
        ("transient", FaultPlan::new(12).with_transients(0.08, 2.0)),
        ("slow", FaultPlan::new(13).with_slow_reads(0.10, 0.8)),
        (
            "mixed",
            FaultPlan::new(14)
                .with_media_errors([40, 333])
                .with_transients(0.05, 2.5)
                .with_slow_reads(0.05, 0.6),
        ),
    ]
}

#[test]
fn fault_matrix_beams_and_ranges_conform() {
    let geom = profiles::small();
    let grid = grid();
    let beam = BoxRegion::beam(&grid, 0, &[0, 3, 2]);
    let range = BoxRegion::new([0u64, 0, 0], [20u64, 7, 5]);
    for (label, plan) in plan_matrix() {
        check_fault_plan(&geom, &grid, &beam, true, &plan)
            .unwrap_or_else(|e| panic!("plan {label} (beam): {e}"));
        check_fault_plan(&geom, &grid, &range, false, &plan)
            .unwrap_or_else(|e| panic!("plan {label} (range): {e}"));
    }
}

#[test]
fn empty_plan_is_timing_identical_to_pristine_volume() {
    let geom = profiles::small();
    let grid = grid();
    let region = BoxRegion::new([0u64, 0, 0], [23u64, 7, 5]);
    let rows = fault_query(
        &geom,
        &grid,
        &region,
        false,
        &FaultPlan::none(),
        RecoveryConfig::default(),
    )
    .unwrap();
    for r in rows {
        // Bit-level determinism pin: an empty plan must not perturb
        // timing, not merely stay within a tolerance.
        assert_eq!(
            r.faulted.total_io_ms.to_bits(),
            r.clean.total_io_ms.to_bits(),
            "{}: empty fault plan changed simulated timing",
            r.mapping
        );
        assert_eq!(r.faulted.payload, r.clean.payload, "{}", r.mapping);
        assert_eq!(r.injected.commands, 0, "{}: no injector should run", r.mapping);
    }
}

#[test]
fn results_are_identical_across_thread_counts() {
    let geom = profiles::small();
    let grid = grid();
    let region = BoxRegion::new([0u64, 0, 0], [20u64, 7, 5]);
    let plan = plan_matrix().remove(3).1;
    let collect = |threads: usize| {
        multimap_engine::set_threads(threads);
        let rows =
            fault_query(&geom, &grid, &region, false, &plan, RecoveryConfig::default()).unwrap();
        multimap_engine::set_threads(0);
        rows
    };
    let serial = collect(1);
    let parallel = collect(4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.mapping, p.mapping);
        assert_eq!(s.faulted.payload, p.faulted.payload, "{}", s.mapping);
        assert_eq!(
            s.faulted.total_io_ms.to_bits(),
            p.faulted.total_io_ms.to_bits(),
            "{}: timing must not depend on the worker count",
            s.mapping
        );
        assert_eq!(s.stats, p.stats, "{}", s.mapping);
        assert_eq!(s.injected, p.injected, "{}", s.mapping);
        assert!(
            s.metrics.identical(&p.metrics),
            "{}: telemetry must be bit-identical across thread counts",
            s.mapping
        );
    }
}

/// A random fault plan over the queried LBN span: any mix of media
/// errors, transients and slow reads. A zero probability disables the
/// corresponding stream, so the space includes media-only, transient-
/// only and fault-heavy mixed plans.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1 << 48,
        proptest::collection::vec(0u64..1152, 0..4),
        (0.0f64..0.25, 0.5f64..4.0),
        (0.0f64..0.25, 0.1f64..1.5),
    )
        .prop_map(|(seed, media, (t_prob, t_ms), (s_prob, s_ms))| {
            FaultPlan::new(seed)
                .with_media_errors(media)
                .with_transients(t_prob, t_ms)
                .with_slow_reads(s_prob, s_ms)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: random fault plans × all four mappings. The payload
    /// must match the fault-free run byte for byte, and the retry
    /// count must equal the injected transient schedule exactly —
    /// `check_fault_plan` asserts both, plus the oracle verdict.
    #[test]
    fn random_plans_conform_on_all_mappings(plan in arb_plan(), beam in 0u32..2) {
        let geom = profiles::small();
        let grid = GridSpec::new([16u64, 6, 4]);
        let beam = beam == 1;
        let region = if beam {
            BoxRegion::beam(&grid, 0, &[0, 2, 1])
        } else {
            BoxRegion::new([0u64, 0, 0], [12u64, 5, 3])
        };
        check_fault_plan(&geom, &grid, &region, beam, &plan)
            .unwrap_or_else(|e| panic!("{plan:?}: {e}"));
    }
}
