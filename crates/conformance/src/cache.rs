//! Page-cache conformance: result identity and counter reconciliation.
//!
//! The cache layer must be *transparent* to everything except timing:
//!
//! * **Result identity** — a query through a [`PageCache`] returns the
//!   same cell count and payload checksum as the same query against a
//!   bare volume, for every mapping family and eviction policy.
//! * **Counter reconciliation** — the executor-recorded telemetry and
//!   the cache's own bookkeeping must agree exactly: every demanded
//!   cell is either a hit or a miss, every prefetch use pairs with an
//!   issued prefetch, and the per-query phase decomposition still
//!   reconstructs the measured I/O time (cache hits contribute zero).

use multimap_core::{BoxRegion, GridSpec};
use multimap_disksim::DiskGeometry;
use multimap_lvm::LogicalVolume;
use multimap_query::{QueryExecutor, QueryRequest};
use multimap_store::{CacheConfig, EvictionKind, PageCache, PrefetchMode};
use multimap_telemetry::{Counter, Metrics};

use crate::differential::{check_telemetry, standard_mappings};

/// Run a beam sweep along the last dimension through every standard
/// mapping, uncached and cached, and verify the cache conformance
/// contract for `eviction` at `capacity_pages`. Returns a description
/// of the first discrepancy.
pub fn check_cached_sweep(
    geom: &DiskGeometry,
    grid: &GridSpec,
    eviction: EvictionKind,
    capacity_pages: usize,
) -> Result<(), String> {
    let last_dim = grid.extents().len() - 1;
    let steps = grid.extent(last_dim);
    let config = CacheConfig {
        capacity_pages,
        eviction,
        prefetch: PrefetchMode::Adjacency { depth: 1 },
        ..CacheConfig::default()
    };

    for mapping in standard_mappings(geom, grid) {
        let label = format!("{}/{}", mapping.name(), eviction.name());
        let bare_volume = LogicalVolume::new(geom.clone(), 1);
        let bare_exec = QueryExecutor::new(&bare_volume, 0);
        let cached_volume = LogicalVolume::new(geom.clone(), 1);
        let cached_exec = QueryExecutor::new(&cached_volume, 0);
        let cache = PageCache::new(&config);

        let mut per_query: Vec<Metrics> = Vec::new();
        let mut demanded = 0u64;
        for z in 0..steps {
            let mut anchor = vec![0u64; grid.extents().len()];
            anchor[last_dim] = z;
            let region = BoxRegion::beam(grid, 1, &anchor);
            demanded += region.cells();

            let bare = bare_exec
                .execute(QueryRequest::beam(mapping.as_ref(), &region))
                .map_err(|e| format!("{label}: bare query failed: {e}"))?;
            let mut metrics = Metrics::new();
            let cached = cached_exec
                .execute(
                    QueryRequest::beam(mapping.as_ref(), &region)
                        .with_cache(&cache)
                        .with_sink(&mut metrics),
                )
                .map_err(|e| format!("{label}: cached query failed: {e}"))?;

            if cached.cells != bare.cells {
                return Err(format!(
                    "{label}: step {z} returned {} cells cached vs {} bare",
                    cached.cells, bare.cells
                ));
            }
            if cached.payload != bare.payload {
                return Err(format!(
                    "{label}: step {z} payload {:#x} cached vs {:#x} bare",
                    cached.payload, bare.payload
                ));
            }
            // The phase/service reconciliation holds for cached queries
            // too: hits are free, serviced requests decompose exactly.
            check_telemetry(&format!("{label} step {z}"), &metrics, &cached)?;
            per_query.push(metrics);
        }

        let merged = Metrics::merge_ordered(per_query.iter());
        let stats = cache.stats();
        let pairs = [
            ("page_cache_hit", Counter::PageCacheHit, stats.hits),
            ("page_cache_miss", Counter::PageCacheMiss, stats.misses),
            (
                "cache_prefetch_issued",
                Counter::CachePrefetchIssued,
                stats.prefetch_issued,
            ),
            (
                "cache_prefetch_used",
                Counter::CachePrefetchUsed,
                stats.prefetch_used,
            ),
        ];
        for (name, counter, internal) in pairs {
            let recorded = merged.counter_value(counter);
            if recorded != internal {
                return Err(format!(
                    "{label}: sink recorded {recorded} {name} but the \
                     cache's own stats say {internal}"
                ));
            }
        }
        let hits = merged.counter_value(Counter::PageCacheHit);
        let misses = merged.counter_value(Counter::PageCacheMiss);
        if hits + misses != demanded {
            return Err(format!(
                "{label}: {hits} hits + {misses} misses != {demanded} demanded cells"
            ));
        }
        let issued = merged.counter_value(Counter::CachePrefetchIssued);
        let used = merged.counter_value(Counter::CachePrefetchUsed);
        if used > issued {
            return Err(format!(
                "{label}: {used} prefetch uses exceed {issued} issues"
            ));
        }
        if stats.evictions > 0 && capacity_pages > 0 && cache.len() > capacity_pages {
            return Err(format!(
                "{label}: {} resident pages exceed capacity {capacity_pages}",
                cache.len()
            ));
        }
    }
    Ok(())
}
