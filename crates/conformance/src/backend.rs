//! Backend differential checking: the same query through every
//! mapping × every [`DeviceModel`](multimap_disksim::DeviceModel)
//! backend, asserting the universal invariants — payload and cell-set
//! identity, exact counter reconciliation — while applying each
//! backend's own timing semantics (see `docs/backends.md`).
//!
//! Universal (every backend): the transferred cell set equals the
//! queried region, each mapping's payload checksum is identical across
//! every backend, and telemetry's `RequestsServiced` equals the
//! executor's request count.
//!
//! Backend-specific: on event-sum backends (rotating disk; IMR, whose
//! read path delegates to the disk) the phase histogram sums
//! reconstruct the batch total exactly and the physics oracle holds on
//! the rotating backend; on the multi-queue SSD, per-channel service
//! overlaps, so the invariant inverts — the makespan is *at most* the
//! per-event busy sum — and the per-channel served counters must add up
//! to exactly the serviced request count.

use std::collections::BTreeSet;

use multimap_core::{BoxRegion, Coord, GridSpec};
use multimap_disksim::{DiskGeometry, ServiceLog, BACKEND_NAMES};
use multimap_lvm::backend_volume;
use multimap_query::{BackendExecutor, QueryError, QueryOp, QueryRequest, QueryResult};
use multimap_telemetry::{Counter, Metrics};

use crate::differential::{check_telemetry, standard_mappings, TELEMETRY_SUM_EPS_MS};
use crate::oracle::check_log;

/// What one backend did for one mapping's query.
#[derive(Debug)]
pub struct BackendOutcome {
    /// Registry name of the backend (`"disk"`, `"ssd"`, `"imr"`).
    pub backend: &'static str,
    /// Mapping name (`Mapping::name`).
    pub mapping: String,
    /// The set of dataset cells actually transferred, recovered from
    /// the serviced LBNs through the mapping's inverse.
    pub cells: BTreeSet<Coord>,
    /// The executor's measured result.
    pub result: QueryResult,
    /// Telemetry the query recorded.
    pub metrics: Metrics,
    /// The backend's own counters after the query.
    pub counters: Vec<(String, u64)>,
    /// The full event log (for backend-specific audits).
    pub log: ServiceLog,
}

/// Run one query region through every standard mapping on every
/// registry backend — the full mapping × backend matrix, fanned across
/// the experiment engine (results come back in matrix order regardless
/// of thread count).
pub fn backend_differential_query(
    geom: &DiskGeometry,
    grid: &GridSpec,
    region: &BoxRegion,
    beam: bool,
) -> Result<Vec<BackendOutcome>, QueryError> {
    let mut items = Vec::new();
    for &backend in BACKEND_NAMES.iter() {
        for mapping in standard_mappings(geom, grid) {
            items.push((backend, mapping));
        }
    }
    let outcomes = multimap_engine::sweep(&items, |(backend, mapping)| {
        let volume = backend_volume(backend, geom, 1)?;
        let exec = BackendExecutor::new(&volume, 0);
        let mut log = ServiceLog::new();
        let mut metrics = Metrics::new();
        let result = {
            let mut rec = log.recorder();
            let op = if beam { QueryOp::Beam } else { QueryOp::Range };
            exec.execute(
                QueryRequest::new(op, mapping.as_ref(), region)
                    .with_observer(&mut rec)
                    .with_sink(&mut metrics),
            )?
        };
        let mut cells = BTreeSet::new();
        for e in log.events() {
            for lbn in e.request.lbn..e.request.end() {
                if let Some(c) = mapping.coord_of(lbn) {
                    cells.insert(c);
                }
            }
        }
        let counters = volume.counters(0)?;
        Ok(BackendOutcome {
            backend,
            mapping: mapping.name().to_string(),
            cells,
            result,
            metrics,
            counters,
            log,
        })
    });
    outcomes.into_iter().collect()
}

/// One backend counter by name, or 0 when the backend does not report it.
fn counter(o: &BackendOutcome, name: &str) -> u64 {
    o.counters
        .iter()
        .find(|(k, _)| k == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

/// Verify the backend-specific contract of one outcome. Universal
/// checks (cell set, payload identity) live in [`check_backend_region`];
/// this audits what each backend's counters and event sums must obey.
fn check_backend_outcome(geom: &DiskGeometry, o: &BackendOutcome) -> Result<(), String> {
    let label = format!("{}/{}", o.backend, o.mapping);
    let serviced = o.metrics.counter_value(Counter::RequestsServiced);
    if serviced != o.result.requests {
        return Err(format!(
            "{label}: telemetry saw {serviced} serviced requests, \
             the executor reported {}",
            o.result.requests
        ));
    }
    match o.backend {
        // Event-sum backends: phases reconstruct the total exactly, and
        // the rotating backend additionally passes the physics oracle.
        "disk" | "imr" => {
            check_telemetry(&label, &o.metrics, &o.result)?;
            if o.backend == "disk" {
                let report = check_log(geom, &o.log);
                if !report.is_clean() {
                    return Err(format!(
                        "{label}: physics oracle flagged {} violation(s), first: {}",
                        report.violations.len(),
                        report.violations[0]
                    ));
                }
            }
            // A read-only query must never trigger IMR write
            // amplification.
            if o.backend == "imr" && counter(o, "imr.neighbor_rewrites") != 0 {
                return Err(format!(
                    "{label}: read-only query performed {} neighbor rewrites",
                    counter(o, "imr.neighbor_rewrites")
                ));
            }
        }
        // Parallel-channel backend: service overlaps, so the makespan
        // is bounded by (not equal to) the per-event busy sum, and the
        // per-channel counters partition the request count exactly.
        "ssd" => {
            let busy_sum = o.metrics.phase_sum_ms();
            if o.result.total_io_ms > busy_sum + TELEMETRY_SUM_EPS_MS {
                return Err(format!(
                    "{label}: makespan {} ms exceeds the per-event busy sum {busy_sum} ms",
                    o.result.total_io_ms
                ));
            }
            let ssd_requests = counter(o, "ssd.requests");
            if ssd_requests != o.result.requests {
                return Err(format!(
                    "{label}: ssd.requests counter {ssd_requests} vs executor {}",
                    o.result.requests
                ));
            }
            let channels = counter(o, "ssd.channels");
            let per_channel: u64 = (0..channels)
                .map(|c| counter(o, &format!("ssd.channel{c}.served")))
                .sum();
            if per_channel != ssd_requests {
                return Err(format!(
                    "{label}: per-channel served counters sum to {per_channel}, \
                     not the {ssd_requests} requests serviced"
                ));
            }
        }
        other => return Err(format!("{label}: unknown backend {other:?} in matrix")),
    }
    Ok(())
}

/// Run [`backend_differential_query`] and verify the full contract:
/// every backend × mapping transfers exactly the region's cell set,
/// for each mapping every backend delivers an identical payload
/// checksum, counters reconcile exactly, and each backend's own timing
/// semantics hold. Returns a description of the first discrepancy.
pub fn check_backend_region(
    geom: &DiskGeometry,
    grid: &GridSpec,
    region: &BoxRegion,
    beam: bool,
) -> Result<(), String> {
    let expected: BTreeSet<Coord> = region.cells_vec().into_iter().collect();
    let outcomes = backend_differential_query(geom, grid, region, beam)
        .map_err(|e| format!("query failed: {e}"))?;
    // Payload is an order-independent checksum over the serviced LBNs,
    // so it is a *per-mapping* invariant: every backend must deliver the
    // mapping's exact block set, however it scheduled the batch.
    let mut reference_payloads: std::collections::BTreeMap<&str, u64> =
        std::collections::BTreeMap::new();
    for o in &outcomes {
        let label = format!("{}/{}", o.backend, o.mapping);
        let reference_payload = *reference_payloads
            .entry(o.mapping.as_str())
            .or_insert(o.result.payload);
        if o.cells != expected {
            let missing = expected.difference(&o.cells).count();
            let extra = o.cells.difference(&expected).count();
            return Err(format!(
                "{label}: transferred cell set differs from the region \
                 ({missing} missing, {extra} extra of {} expected)",
                expected.len()
            ));
        }
        if o.result.cells != expected.len() as u64 {
            return Err(format!(
                "{label}: executor reported {} cells, region has {}",
                o.result.cells,
                expected.len()
            ));
        }
        if o.result.payload != reference_payload {
            return Err(format!(
                "{label}: payload {:#x} differs from the matrix reference {reference_payload:#x}",
                o.result.payload
            ));
        }
        check_backend_outcome(geom, o)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;

    #[test]
    fn backend_matrix_covers_backends_times_mappings() {
        let geom = profiles::small();
        let grid = GridSpec::new([40u64, 8, 6]);
        let region = BoxRegion::beam(&grid, 1, &[3, 0, 2]);
        let outcomes = backend_differential_query(&geom, &grid, &region, true).unwrap();
        assert_eq!(outcomes.len(), BACKEND_NAMES.len() * 4);
        let backends: BTreeSet<_> = outcomes.iter().map(|o| o.backend).collect();
        assert_eq!(backends.len(), BACKEND_NAMES.len());
    }

    #[test]
    fn small_beam_and_range_pass_the_backend_contract() {
        let geom = profiles::small();
        let grid = GridSpec::new([40u64, 8, 6]);
        check_backend_region(&geom, &grid, &BoxRegion::beam(&grid, 1, &[3, 0, 2]), true).unwrap();
        check_backend_region(
            &geom,
            &grid,
            &BoxRegion::new([2u64, 1, 0], [9u64, 6, 3]),
            false,
        )
        .unwrap();
    }

    #[test]
    fn disk_backend_agrees_with_the_trait_free_differential() {
        let geom = profiles::small();
        let grid = GridSpec::new([40u64, 8, 6]);
        let region = BoxRegion::beam(&grid, 2, &[5, 3, 0]);
        let reference = crate::differential::differential_query(&geom, &grid, &region, true)
            .unwrap();
        let matrix = backend_differential_query(&geom, &grid, &region, true).unwrap();
        for r in &reference {
            let b = matrix
                .iter()
                .find(|o| o.backend == "disk" && o.mapping == r.mapping)
                .unwrap();
            assert_eq!(b.result, r.result, "{}", r.mapping);
            assert_eq!(
                b.result.total_io_ms.to_bits(),
                r.result.total_io_ms.to_bits(),
                "{}",
                r.mapping
            );
            assert_eq!(b.cells, r.cells, "{}", r.mapping);
        }
    }
}
