//! Golden-trace regression harness.
//!
//! A fixed, seeded workload matrix (two disk profiles x eight access
//! patterns) is serviced through the scheduler layer, and the resulting
//! [`TraceRecord`] streams are serialized to `tests/golden/*.json` at
//! the repository root. The checked-in files pin the simulator's exact
//! timing behaviour: any change to seek curve, skew, rotational phase or
//! scheduling order shows up as a record-level diff.
//!
//! Regenerate after an *intentional* behaviour change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p multimap-conformance --test golden_traces
//! ```
//!
//! Floats are written with Rust's shortest round-trip formatting, so a
//! comparison after parse-back is exact to the bit.

use std::collections::BTreeMap;
use std::path::PathBuf;

use multimap_disksim::{
    profiles, semi_sequential_path, DiskGeometry, Request, Trace, TraceRecord,
};
use multimap_lvm::{LogicalVolume, SchedulePolicy};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::json::{self, Value};

/// One entry of the golden workload matrix.
pub struct GoldenCase {
    /// Disk profile slug (part of the file name).
    pub profile: &'static str,
    /// Workload slug (part of the file name).
    pub workload: &'static str,
    /// The geometry the workload runs on.
    pub geometry: DiskGeometry,
    /// Requests to service, in issue order.
    pub requests: Vec<Request>,
    /// Scheduling policy.
    pub policy: SchedulePolicy,
}

impl GoldenCase {
    /// File stem of this case's golden file.
    pub fn name(&self) -> String {
        format!("{}__{}", self.profile, self.workload)
    }

    /// Service the workload on a fresh disk and return its trace.
    pub fn run(&self) -> Trace {
        let volume = LogicalVolume::new(self.geometry.clone(), 1);
        let (_, log) = volume
            .service_batch_logged(0, &self.requests, self.policy)
            // staticcheck: allow(no-unwrap) — golden workloads are generated in-range; a service failure is trace-harness breakage.
            .expect("golden workloads must be serviceable");
        log.to_trace()
    }
}

/// Deterministic random requests within the first `span` LBNs.
fn random_requests(seed: u64, n: usize, span: u64, max_blocks: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let nblocks = rng.random_range(1..=max_blocks);
            let lbn = rng.random_range(0..span - nblocks);
            Request::new(lbn, nblocks)
        })
        .collect()
}

/// The full seeded workload matrix: both paper evaluation drives, eight
/// access patterns each (sequential streaming, coalesced ascending scan,
/// semi-sequential adjacency walk, random SPTF, random queued SPTF, and
/// queued SPTF at TCQ depths 1 / 64 / 4096 over a 192-request batch).
pub fn workload_matrix() -> Vec<GoldenCase> {
    let mut out = Vec::new();
    for (profile, geometry) in [
        ("cheetah_36es", profiles::cheetah_36es()),
        ("atlas_10k_iii", profiles::atlas_10k_iii()),
    ] {
        let span = geometry.total_blocks() / 4; // stay in the outer zones
        out.push(GoldenCase {
            profile,
            workload: "sequential_stream",
            geometry: geometry.clone(),
            requests: (0..64u64).map(|i| Request::single(1_000 + i)).collect(),
            policy: SchedulePolicy::InOrder,
        });
        out.push(GoldenCase {
            profile,
            workload: "ascending_scan",
            geometry: geometry.clone(),
            requests: (0..16u64)
                .map(|i| Request::new(1_000 + i * 2_048, 32))
                .collect(),
            policy: SchedulePolicy::AscendingLbn,
        });
        out.push(GoldenCase {
            profile,
            workload: "semi_sequential",
            geometry: geometry.clone(),
            requests: semi_sequential_path(&geometry, 5_000, 1, 32)
                .into_iter()
                .map(Request::single)
                .collect(),
            policy: SchedulePolicy::InOrder,
        });
        out.push(GoldenCase {
            profile,
            workload: "random_sptf",
            geometry: geometry.clone(),
            requests: random_requests(0x5EED_0001, 40, span, 4),
            policy: SchedulePolicy::Sptf,
        });
        out.push(GoldenCase {
            profile,
            workload: "random_queued_sptf",
            geometry: geometry.clone(),
            requests: random_requests(0x5EED_0002, 48, span, 4),
            policy: SchedulePolicy::QueuedSptf(8),
        });
        // Queued SPTF across the TCQ depth spectrum, pinning window
        // eviction decisions: depth 1 (pure in-order), depth 64 (a
        // window under steady admission pressure) and depth 4096
        // (larger than the batch, so it degenerates to full SPTF).
        // With 192 requests, depths 64 and 4096 exceed the scheduler's
        // incremental dispatch threshold while depth 1 stays on the
        // linear reference scan — the traces pin both code paths.
        for depth in [1usize, 64, 4096] {
            out.push(GoldenCase {
                profile,
                workload: match depth {
                    1 => "queued_sptf_depth_1",
                    64 => "queued_sptf_depth_64",
                    _ => "queued_sptf_depth_4096",
                },
                geometry: geometry.clone(),
                requests: random_requests(0x5EED_0003, 192, span, 4),
                policy: SchedulePolicy::QueuedSptf(depth),
            });
        }
    }
    out
}

/// Serialize one case's trace for its golden file.
pub fn trace_to_json(case: &GoldenCase, trace: &Trace) -> Value {
    let records = trace
        .records()
        .iter()
        .map(|r| {
            let mut m = BTreeMap::new();
            m.insert("start_ms".into(), Value::Num(r.start_ms));
            m.insert("lbn".into(), Value::Num(r.lbn as f64));
            m.insert("nblocks".into(), Value::Num(r.nblocks as f64));
            m.insert("overhead_ms".into(), Value::Num(r.overhead_ms));
            m.insert("seek_ms".into(), Value::Num(r.seek_ms));
            m.insert("rotation_ms".into(), Value::Num(r.rotation_ms));
            m.insert("transfer_ms".into(), Value::Num(r.transfer_ms));
            Value::Obj(m)
        })
        .collect();
    let mut top = BTreeMap::new();
    top.insert("profile".into(), Value::Str(case.profile.into()));
    top.insert("workload".into(), Value::Str(case.workload.into()));
    top.insert("policy".into(), Value::Str(format!("{:?}", case.policy)));
    top.insert("records".into(), Value::Arr(records));
    Value::Obj(top)
}

/// Parse the record stream back out of a golden file.
pub fn records_from_json(v: &Value) -> Result<Vec<TraceRecord>, String> {
    let arr = v
        .get("records")
        .and_then(Value::as_arr)
        .ok_or("golden file has no 'records' array")?;
    arr.iter()
        .enumerate()
        .map(|(i, r)| {
            let num = |k: &str| {
                r.get(k)
                    .and_then(Value::as_f64)
                    .ok_or(format!("record {i}: missing '{k}'"))
            };
            Ok(TraceRecord {
                start_ms: num("start_ms")?,
                lbn: r
                    .get("lbn")
                    .and_then(Value::as_u64)
                    .ok_or(format!("record {i}: missing 'lbn'"))?,
                nblocks: r
                    .get("nblocks")
                    .and_then(Value::as_u64)
                    .ok_or(format!("record {i}: missing 'nblocks'"))?,
                overhead_ms: num("overhead_ms")?,
                seek_ms: num("seek_ms")?,
                rotation_ms: num("rotation_ms")?,
                transfer_ms: num("transfer_ms")?,
            })
        })
        .collect()
}

/// Directory holding the golden files (`tests/golden` at the repo root).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden"
    ))
}

/// Whether this run should (re)write golden files instead of diffing.
pub fn update_mode() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Run one golden case: regenerate its file in update mode, otherwise
/// diff the fresh trace against the checked-in file record by record.
pub fn check_case(case: &GoldenCase) -> Result<(), String> {
    let trace = case.run();
    let fresh = trace_to_json(case, &trace);
    let path = golden_dir().join(format!("{}.json", case.name()));
    if update_mode() {
        std::fs::create_dir_all(golden_dir()).map_err(|e| e.to_string())?;
        std::fs::write(&path, fresh.to_pretty()).map_err(|e| e.to_string())?;
        return Ok(());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "{}: {e} — generate golden files with \
             `UPDATE_GOLDEN=1 cargo test -p multimap-conformance --test golden_traces`",
            path.display()
        )
    })?;
    let golden = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    diff_traces(&case.name(), &records_from_json(&golden)?, trace.records())
}

/// Record-by-record comparison with a first-divergence message.
pub fn diff_traces(
    name: &str,
    golden: &[TraceRecord],
    fresh: &[TraceRecord],
) -> Result<(), String> {
    if golden.len() != fresh.len() {
        return Err(format!(
            "{name}: golden has {} records, fresh run has {}",
            golden.len(),
            fresh.len()
        ));
    }
    for (i, (g, f)) in golden.iter().zip(fresh).enumerate() {
        if g != f {
            return Err(format!(
                "{name}: first divergence at record {i}:\n  golden: {g:?}\n  fresh:  {f:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_deterministic() {
        let a = workload_matrix();
        let b = workload_matrix();
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.requests, y.requests);
            let ta = x.run();
            let tb = y.run();
            assert_eq!(ta.records(), tb.records(), "{} replay differs", x.name());
        }
    }

    #[test]
    fn json_roundtrip_is_bit_exact() {
        let case = &workload_matrix()[0];
        let trace = case.run();
        let v = trace_to_json(case, &trace);
        let parsed = json::parse(&v.to_pretty()).unwrap();
        let back = records_from_json(&parsed).unwrap();
        assert_eq!(back.as_slice(), trace.records());
        assert_eq!(parsed.get("profile").unwrap().as_str(), Some("cheetah_36es"));
    }

    #[test]
    fn diff_reports_first_divergence() {
        let case = &workload_matrix()[0];
        let trace = case.run();
        let mut tampered = trace.records().to_vec();
        tampered[3].seek_ms += 0.5;
        let err = diff_traces("t", trace.records(), &tampered).unwrap_err();
        assert!(err.contains("record 3"), "{err}");
        let err = diff_traces("t", &tampered[..5], trace.records()).unwrap_err();
        assert!(err.contains("5 records"), "{err}");
    }
}
