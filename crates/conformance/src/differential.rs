//! Differential query checking: the same workload through every
//! [`MappingKind`], asserting that what reaches the platter is the same
//! set of dataset cells regardless of how they were laid out — and that
//! the analytical cost model agrees with the simulator within the
//! documented tolerances.
//!
//! Every differential query runs through the unified
//! [`QueryExecutor::execute`] entry point carrying both an event
//! observer (for the physics oracle) and a telemetry sink, so the
//! checks also pin the telemetry contract: the per-phase histogram sums
//! must add up to the measured total service time.

use std::collections::BTreeSet;

use multimap_core::{
    hilbert_mapping, zorder_mapping, BoxRegion, Coord, GridSpec, Mapping, MultiMapping,
    NaiveMapping,
};
use multimap_disksim::DiskGeometry;
use multimap_lvm::LogicalVolume;
use multimap_model::{
    multimap_beam_per_cell_ms, multimap_range_total_ms, naive_beam_per_cell_ms,
    naive_range_total_ms, ModelParams,
};
use multimap_query::{QueryError, QueryExecutor, QueryOp, QueryRequest, QueryResult};
use multimap_telemetry::{Counter, Metrics};

use crate::oracle::{check_log, OracleReport};

/// Maximum relative error tolerated between the analytical model and the
/// simulator on beam queries (matches the bound the model crate's own
/// validation uses; see `docs/conformance.md` for the derivation).
pub const MODEL_BEAM_TOLERANCE: f64 = 0.35;

/// Maximum relative error tolerated on range queries. Ranges mix
/// coalesced streaming with queued reordering the steady-state model
/// ignores, hence the looser bound.
pub const MODEL_RANGE_TOLERANCE: f64 = 0.5;

/// Build the four mappings under differential test, all with
/// one-block cells based at LBN 0: Naive (row-major), Z-order and
/// Hilbert space-filling curves, and MultiMap.
pub fn standard_mappings(geom: &DiskGeometry, grid: &GridSpec) -> Vec<Box<dyn Mapping>> {
    vec![
        Box::new(NaiveMapping::new(grid.clone(), 0)),
        // staticcheck: allow(no-unwrap) — standard curves on a fresh grid always build; failure is harness setup breakage.
        Box::new(zorder_mapping(grid.clone(), 0, 1).expect("z-order mapping must build")),
        // staticcheck: allow(no-unwrap) — same setup-breakage argument as the z-order line above.
        Box::new(hilbert_mapping(grid.clone(), 0, 1).expect("hilbert mapping must build")),
        // staticcheck: allow(no-unwrap) — same setup-breakage argument as the curve lines above.
        Box::new(MultiMapping::new(geom, grid.clone()).expect("multimap mapping must build")),
    ]
}

/// What one mapping did for one query.
#[derive(Debug)]
pub struct DifferentialOutcome {
    /// Mapping name (`Mapping::name`).
    pub mapping: String,
    /// The set of dataset cells actually transferred, recovered from the
    /// serviced LBNs through the mapping's inverse.
    pub cells: BTreeSet<Coord>,
    /// The executor's measured result.
    pub result: QueryResult,
    /// Physics-oracle verdict over every request the query issued.
    pub oracle: OracleReport,
    /// Telemetry the query recorded (phase histograms, counters).
    pub metrics: Metrics,
}

/// Run one query region through all four mappings — as a beam
/// (per-cell requests) or a range (sorted + coalesced) — each on a
/// fresh disk, recovering the transferred cell set from the event log.
pub fn differential_query(
    geom: &DiskGeometry,
    grid: &GridSpec,
    region: &BoxRegion,
    beam: bool,
) -> Result<Vec<DifferentialOutcome>, QueryError> {
    // Each mapping runs on a fresh single-disk volume, so the four cells
    // are independent — fan them across the experiment engine (results
    // come back in mapping order regardless of thread count).
    let mappings = standard_mappings(geom, grid);
    let outcomes = multimap_engine::sweep(&mappings, |mapping| {
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);
        let mut log = multimap_disksim::ServiceLog::new();
        let mut metrics = Metrics::new();
        let result = {
            let mut rec = log.recorder();
            let op = if beam { QueryOp::Beam } else { QueryOp::Range };
            exec.execute(
                QueryRequest::new(op, mapping.as_ref(), region)
                    .with_observer(&mut rec)
                    .with_sink(&mut metrics),
            )?
        };
        let mut cells = BTreeSet::new();
        for e in log.events() {
            for lbn in e.request.lbn..e.request.end() {
                if let Some(c) = mapping.coord_of(lbn) {
                    cells.insert(c);
                }
            }
        }
        Ok(DifferentialOutcome {
            mapping: mapping.name().to_string(),
            cells,
            result,
            oracle: check_log(geom, &log),
            metrics,
        })
    });
    outcomes.into_iter().collect()
}

/// Pin the process-wide flat-translation cache to the direct trait
/// computation: for every standard mapping on `grid`, the cached
/// cell→LBN table must agree with [`Mapping::lbn_of`] on every cell.
/// Returns a description of the first divergence.
pub fn check_translation_cache(geom: &DiskGeometry, grid: &GridSpec) -> Result<(), String> {
    for mapping in standard_mappings(geom, grid) {
        let table = multimap_core::shared_cache()
            .translate(mapping.as_ref())
            .map_err(|e| format!("{}: table build failed: {e}", mapping.name()))?;
        let mut divergence = None;
        grid.for_each_cell(|coord| {
            if divergence.is_some() {
                return;
            }
            let direct = mapping.lbn_of(coord).ok();
            let cached = table.lbn_of(coord).ok();
            if direct != cached {
                divergence = Some(format!(
                    "{}: cell {coord:?} translates to {direct:?} directly \
                     but {cached:?} through the cache",
                    mapping.name()
                ));
            }
        });
        if let Some(d) = divergence {
            return Err(d);
        }
    }
    Ok(())
}

/// Tolerance for the telemetry phase-decomposition cross-check: the
/// five phase histogram sums must reconstruct the measured total
/// service time to within this bound (pure f64 re-summation error).
pub const TELEMETRY_SUM_EPS_MS: f64 = 1e-6;

/// Verify one query's telemetry against its measured result: the phase
/// sums and the service-time histogram must both reconstruct
/// `total_io_ms`, and the per-request counter must match the request
/// count. Returns a description of the first discrepancy.
pub fn check_telemetry(label: &str, metrics: &Metrics, result: &QueryResult) -> Result<(), String> {
    let phase_sum = metrics.phase_sum_ms();
    if (phase_sum - result.total_io_ms).abs() > TELEMETRY_SUM_EPS_MS {
        return Err(format!(
            "{label}: phase histogram sums {phase_sum} ms do not reconstruct \
             the measured total {} ms",
            result.total_io_ms
        ));
    }
    let service_sum = metrics.service_hist().sum_ms();
    if (service_sum - result.total_io_ms).abs() > TELEMETRY_SUM_EPS_MS {
        return Err(format!(
            "{label}: service-time histogram sums {service_sum} ms \
             against a measured total of {} ms",
            result.total_io_ms
        ));
    }
    let serviced = metrics.counter_value(Counter::RequestsServiced);
    if serviced != result.requests {
        return Err(format!(
            "{label}: telemetry saw {serviced} serviced requests, \
             the executor reported {}",
            result.requests
        ));
    }
    Ok(())
}

/// Run [`differential_query`] and verify the conformance contract:
/// every mapping transfers exactly the region's cell set, every mapping
/// reports the same cell/block counts, no request violated the
/// physics oracle, and the recorded telemetry reconstructs the measured
/// service time. Returns a description of the first discrepancy.
pub fn check_region(
    geom: &DiskGeometry,
    grid: &GridSpec,
    region: &BoxRegion,
    beam: bool,
) -> Result<(), String> {
    let expected: BTreeSet<Coord> = region.cells_vec().into_iter().collect();
    let outcomes =
        differential_query(geom, grid, region, beam).map_err(|e| format!("query failed: {e}"))?;
    for o in &outcomes {
        if !o.oracle.is_clean() {
            return Err(format!(
                "{}: physics oracle flagged {} violation(s), first: {}",
                o.mapping,
                o.oracle.violations.len(),
                o.oracle.violations[0]
            ));
        }
        if o.cells != expected {
            let missing = expected.difference(&o.cells).count();
            let extra = o.cells.difference(&expected).count();
            return Err(format!(
                "{}: transferred cell set differs from the region \
                 ({missing} missing, {extra} extra of {} expected)",
                o.mapping,
                expected.len()
            ));
        }
        if o.result.cells != expected.len() as u64 {
            return Err(format!(
                "{}: executor reported {} cells, region has {}",
                o.mapping,
                o.result.cells,
                expected.len()
            ));
        }
        if o.result.blocks != expected.len() as u64 {
            return Err(format!(
                "{}: {} blocks transferred for {} one-block cells",
                o.mapping,
                o.result.blocks,
                expected.len()
            ));
        }
        check_telemetry(&o.mapping, &o.metrics, &o.result)?;
    }
    Ok(())
}

/// One model-vs-simulator comparison.
#[derive(Clone, Debug)]
pub struct ModelAgreementRow {
    /// What was compared (e.g. `naive_beam_dim1`).
    pub label: String,
    /// Simulated cost in ms.
    pub sim_ms: f64,
    /// Analytical cost in ms.
    pub model_ms: f64,
    /// The tolerance this row must meet.
    pub tolerance: f64,
}

impl ModelAgreementRow {
    /// Symmetric relative error between simulator and model.
    pub fn rel_err(&self) -> f64 {
        (self.sim_ms - self.model_ms).abs() / self.sim_ms.max(self.model_ms)
    }

    /// Whether the row is within its tolerance.
    pub fn ok(&self) -> bool {
        self.rel_err() <= self.tolerance
    }
}

/// Steady-state per-cell beam cost: the analytical model describes the
/// repeating step cost, but a beam's first request lands at an arbitrary
/// rotational phase from a cold head — a transient short beams cannot
/// amortize. Excluding that one event compares like with like.
fn steady_beam_per_cell(
    exec: &QueryExecutor<'_>,
    mapping: &dyn Mapping,
    region: &BoxRegion,
) -> f64 {
    let mut log = multimap_disksim::ServiceLog::new();
    let mut rec = log.recorder();
    let r = exec
        .execute(QueryRequest::beam(mapping, region).with_observer(&mut rec))
        // staticcheck: allow(no-unwrap) — agreement rows use fixed in-grid regions; failure is harness breakage.
        .expect("agreement beam must execute");
    drop(rec);
    let first = log
        .events()
        .first()
        .map(|e| e.timing.total_ms())
        .unwrap_or(0.0);
    if r.cells > 1 {
        (r.total_io_ms - first) / (r.cells - 1) as f64
    } else {
        r.total_io_ms
    }
}

/// Compare analytical and simulated costs for Naive and MultiMap beam
/// and range queries on one disk profile. The grid is sized to sit in
/// the profile's outermost zone; anchors/extents are fixed so runs are
/// reproducible.
pub fn model_agreement(geom: &DiskGeometry) -> Vec<ModelAgreementRow> {
    let p = ModelParams::from_geometry(geom, 0);
    let grid = GridSpec::new([100u64, 12, 8]);
    let volume = LogicalVolume::new(geom.clone(), 1);
    let naive = NaiveMapping::new(grid.clone(), 0);
    // staticcheck: allow(no-unwrap) — agreement grid is sized for every evaluation profile; build failure is harness breakage.
    let mm = MultiMapping::new(geom, grid.clone()).expect("multimap mapping must build");
    let exec = QueryExecutor::new(&volume, 0);
    let mut rows = Vec::new();

    for dim in 0..3 {
        let region = BoxRegion::beam(&grid, dim, &[2, 3, 1]);
        volume.reset();
        rows.push(ModelAgreementRow {
            label: format!("naive_beam_dim{dim}"),
            sim_ms: steady_beam_per_cell(&exec, &naive, &region),
            model_ms: naive_beam_per_cell_ms(&p, grid.extents(), dim),
            tolerance: MODEL_BEAM_TOLERANCE,
        });
    }
    for dim in 1..3 {
        let region = BoxRegion::beam(&grid, dim, &[2, 3, 1]);
        volume.reset();
        rows.push(ModelAgreementRow {
            label: format!("multimap_beam_dim{dim}"),
            sim_ms: steady_beam_per_cell(&exec, &mm, &region),
            model_ms: multimap_beam_per_cell_ms(&p, grid.extents(), dim),
            tolerance: MODEL_BEAM_TOLERANCE,
        });
    }

    let query = BoxRegion::new([10u64, 2, 1], [29u64, 7, 4]);
    let qext = [20u64, 6, 4];
    volume.reset();
    let sim_naive = exec
        .execute(QueryRequest::range(&naive, &query))
        // staticcheck: allow(no-unwrap) — same fixed in-grid range as above.
        .expect("agreement range runs");
    rows.push(ModelAgreementRow {
        label: "naive_range_20x6x4".into(),
        sim_ms: sim_naive.total_io_ms,
        model_ms: naive_range_total_ms(&p, grid.extents(), &qext),
        tolerance: MODEL_RANGE_TOLERANCE,
    });
    volume.reset();
    let sim_mm = exec
        .execute(QueryRequest::range(&mm, &query))
        // staticcheck: allow(no-unwrap) — same fixed in-grid range as above.
        .expect("agreement range runs");
    rows.push(ModelAgreementRow {
        label: "multimap_range_20x6x4".into(),
        sim_ms: sim_mm.total_io_ms,
        model_ms: multimap_range_total_ms(&p, grid.extents(), &qext),
        tolerance: MODEL_RANGE_TOLERANCE,
    });
    rows
}

/// Assert every [`model_agreement`] row is within tolerance, with a
/// readable table on failure.
pub fn assert_model_agreement(geom: &DiskGeometry) {
    let rows = model_agreement(geom);
    let bad: Vec<_> = rows.iter().filter(|r| !r.ok()).collect();
    assert!(
        bad.is_empty(),
        "model disagrees with simulator on {}:\n{}",
        geom.name,
        bad.iter()
            .map(|r| {
                format!(
                    "  {}: sim {:.3} ms vs model {:.3} ms (err {:.2} > tol {})",
                    r.label,
                    r.sim_ms,
                    r.model_ms,
                    r.rel_err(),
                    r.tolerance
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;

    #[test]
    fn four_standard_mappings_cover_all_kinds() {
        let geom = profiles::small();
        let grid = GridSpec::new([40u64, 8, 6]);
        let mappings = standard_mappings(&geom, &grid);
        assert_eq!(mappings.len(), 4);
        let kinds: BTreeSet<_> = mappings.iter().map(|m| format!("{:?}", m.kind())).collect();
        // Naive, SpaceFillingCurve (x2), MultiMap.
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    fn translation_cache_matches_direct_mappings() {
        let geom = profiles::small();
        check_translation_cache(&geom, &GridSpec::new([24u64, 6, 5])).unwrap();
    }

    #[test]
    fn small_beam_and_range_agree_across_mappings() {
        let geom = profiles::small();
        let grid = GridSpec::new([40u64, 8, 6]);
        check_region(&geom, &grid, &BoxRegion::beam(&grid, 1, &[3, 0, 2]), true).unwrap();
        check_region(
            &geom,
            &grid,
            &BoxRegion::new([2u64, 1, 0], [9u64, 6, 3]),
            false,
        )
        .unwrap();
    }
}

#[cfg(test)]
mod dump_tests {
    use super::*;
    use multimap_disksim::profiles;

    #[test]
    #[ignore]
    fn dump_agreement_tables() {
        for geom in [profiles::small(), profiles::cheetah_36es(), profiles::atlas_10k_iii()] {
            eprintln!("== {}", geom.name);
            for r in model_agreement(&geom) {
                eprintln!("  {:24} sim {:8.3} model {:8.3} err {:.3}", r.label, r.sim_ms, r.model_ms, r.rel_err());
            }
        }
    }
}
