//! Minimal JSON reader/writer for golden-trace files.
//!
//! The vendored serde stand-in has no serializer, so the golden-trace
//! harness carries its own: a small [`Value`] tree, a strict parser, and
//! a writer that prints `f64`s with Rust's shortest round-trip `Display`
//! so written files parse back bit-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (no escape sequences beyond the JSON basics).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys are sorted for deterministic output.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // staticcheck: allow(float-cmp) — exact integrality test: fract() of an integral f64 is exactly 0.0.
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// A member of the value, if it is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and sorted object keys.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

/// Numbers print via Rust's shortest-round-trip `Display`, so parsing
/// the output recovers the exact bit pattern.
fn write_number(out: &mut String, n: f64) {
    debug_assert!(n.is_finite(), "golden traces never contain NaN/inf");
    let _ = write!(out, "{n}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
        }
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_f64_bits() {
        let tricky = [
            0.1,
            1.0 / 3.0,
            std::f64::consts::TAU,
            1e-300,
            123_456_789.123_456_78,
            0.1f64 + 0.2 - 0.27, // a value needing 17 significant digits
        ];
        for &x in &tricky {
            let text = Value::Num(x).to_pretty();
            let back = parse(text.trim()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} did not round-trip");
        }
    }

    #[test]
    fn object_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("name".into(), Value::Str("cheetah \"36ES\"".into()));
        m.insert("lbn".into(), Value::Num(123456.0));
        m.insert(
            "records".into(),
            Value::Arr(vec![Value::Num(1.5), Value::Bool(true), Value::Null]),
        );
        let v = Value::Obj(m);
        let text = v.to_pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("123 45").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": [1, \"x\"], \"b\": 2.5}").unwrap();
        assert_eq!(v.get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_str(), Some("x"));
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
    }
}
