//! # multimap-conformance — cross-layer conformance checking
//!
//! The simulator, the mappings, the query executor and the analytical
//! model all claim to describe the same disk. This crate holds them to
//! it, three ways:
//!
//! * **Physics oracle** ([`oracle`]): every serviced request is
//!   re-derived from the public [`DiskGeometry`] model and checked
//!   against mechanical invariants — rotational waits below one
//!   revolution, the settle plateau for short seeks, free positioning on
//!   read-ahead hits, components summing to the observed clock advance.
//!   Attach it with [`OracleDisk`] or audit a [`ServiceLog`] after the
//!   fact with [`oracle::check_log`].
//! * **Differential query checking** ([`differential`]): the same beam
//!   and range workloads run through all four mappings (Naive, Z-order,
//!   Hilbert, MultiMap) must transfer exactly the same set of dataset
//!   cells, and the analytical model must agree with the simulator
//!   within [`MODEL_BEAM_TOLERANCE`] / [`MODEL_RANGE_TOLERANCE`] on both
//!   paper evaluation drives.
//! * **Golden traces** ([`golden`]): a seeded workload matrix pins the
//!   simulator's exact per-request timings in `tests/golden/*.json`;
//!   regenerate intentionally with `UPDATE_GOLDEN=1`.
//! * **Fault sweep** ([`fault`]): under any seeded [`FaultPlan`] every
//!   query's delivered payload must be byte-identical to the fault-free
//!   run, and the fault/retry/remap counters must reconcile exactly
//!   across the injector, the LVM recovery path, telemetry and a pure
//!   replay of the transient schedule.
//! * **Cache conformance** ([`cache`]): the page cache is transparent
//!   to results — cached queries return the same cells and payload as
//!   bare ones — and its counters reconcile exactly between the
//!   executor's telemetry and the cache's own bookkeeping.
//! * **Serving conformance** ([`serving`]): a multi-tenant serving
//!   [`Scenario`](multimap_server::Scenario) replayed twice produces
//!   bit-identical reports; per-tenant admission counters partition
//!   exactly; shed or rejected requests never reach the device.
//! * **Backend differential** ([`backend`]): every query runs through
//!   the full mapping × device-backend matrix (rotating disk,
//!   multi-queue SSD, IMR); payload and cell-set identity are universal
//!   invariants, while phase-sum and oracle checks apply per backend's
//!   own timing semantics (see `docs/backends.md`).
//!
//! See `docs/conformance.md` for the invariant catalogue and workflow.
//!
//! [`DiskGeometry`]: multimap_disksim::DiskGeometry
//! [`ServiceLog`]: multimap_disksim::ServiceLog

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod cache;
pub mod differential;
pub mod fault;
pub mod golden;
pub mod json;
pub mod oracle;
pub mod serving;

pub use backend::{backend_differential_query, check_backend_region, BackendOutcome};
pub use cache::check_cached_sweep;
pub use differential::{
    assert_model_agreement, check_region, check_telemetry, check_translation_cache,
    differential_query, model_agreement, standard_mappings, DifferentialOutcome,
    ModelAgreementRow, MODEL_BEAM_TOLERANCE, MODEL_RANGE_TOLERANCE, TELEMETRY_SUM_EPS_MS,
};
pub use fault::{check_fault_plan, fault_query, FaultRow};
pub use golden::{check_case, workload_matrix, GoldenCase};
pub use oracle::{check_event, check_log, OracleDisk, OracleReport, Violation};
pub use serving::{check_served_scenario, check_serving_counters};
