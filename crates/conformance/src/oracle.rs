//! The physics oracle: recomputes what each serviced request *must* have
//! cost from the disk geometry alone and flags any [`ServiceEvent`] whose
//! reported timing breaks a mechanical invariant.
//!
//! The oracle never reuses the simulator's own service path — every bound
//! is re-derived from the public [`DiskGeometry`] model (seek curve,
//! skew-aware sector angles, zone table), so a bug in the service engine
//! cannot hide itself. Checked invariants, per event:
//!
//! * **components-nonnegative** — every timing component is `>= 0`.
//! * **clock-advance** — the simulated clock advances by exactly
//!   `timing.total_ms()` (the components sum to the observed elapsed
//!   time), and strictly: simulated time is monotone.
//! * **overhead-exact** — command overhead equals the geometry constant.
//! * **prefetch-free-positioning** — a read-ahead continuation pays zero
//!   seek and zero rotational latency.
//! * **transfer-exact** — media transfer equals `Σ sectors × sector-time`
//!   over the zones the request crosses.
//! * **rotation-bounds** — every track segment waits less than one full
//!   revolution, so total rotational latency is below
//!   `segments × revolution`.
//! * **rotation-exact** — for single-track requests the rotational wait
//!   is recomputed exactly from the skew-aware sector angle and the time
//!   the head lands on the track.
//! * **seek-bounds** — total positioning lies between the nominal seek
//!   path cost and that plus the worst-case settle jitter per reposition.
//! * **settle-plateau** — a seek of `0 < d <= settle_cylinders` cylinders
//!   costs the settle time (plus at most jitter), never the seek tail:
//!   the paper's Figure 1(a) plateau that MultiMap's adjacency relies on.
//! * **head-position** — the head ends on the track of the last block
//!   transferred and read-ahead is armed at `request.end()`.
//!
//! Across a log, consecutive events must not overlap in time.
//!
//! Events that carry a non-clean [`FaultOutcome`] went through the
//! recovery path: their timing is an accumulation over retries and
//! remapped segments, so the per-request mechanical invariants above no
//! longer apply verbatim. For those events the oracle checks only the
//! fault-tolerant core — components non-negative, recovery time
//! non-negative, and the clock advancing by exactly
//! `timing.total_ms() + recovery_ms` ([`ServiceEvent::elapsed_ms`]).

use multimap_disksim::{
    AccessKind, DiskGeometry, DiskSim, Location, Request, RequestTiming, Result, ServiceEvent,
    ServiceLog,
};

/// Absolute slack (in ms) allowed on every floating-point comparison.
/// Timings are built from sums of tens of terms around 1e-2..1e1 ms, so
/// 1e-6 ms (a nanosecond) is far above accumulated rounding error while
/// far below any real mechanical effect.
pub const TIME_EPS_MS: f64 = 1e-6;

/// One broken invariant on one serviced request.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Service position of the offending event.
    pub seq: usize,
    /// Name of the violated rule (see the module docs).
    pub rule: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event #{}: [{}] {}", self.seq, self.rule, self.detail)
    }
}

/// Outcome of checking a stream of events.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Number of events checked.
    pub checked: usize,
    /// Every invariant violation found.
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with a full listing if any invariant was violated.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "physics oracle found {} violation(s) in {} event(s):\n{}",
            self.violations.len(),
            self.checked,
            self.violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: OracleReport) {
        self.checked += other.checked;
        self.violations.extend(other.violations);
    }
}

/// One per-track segment of a request: where the head must be and how
/// many sectors it reads there.
struct Segment {
    loc: Location,
    take: u64,
}

/// Split a request into its per-track segments, exactly as the service
/// engine walks them.
fn segments(geom: &DiskGeometry, req: Request) -> std::result::Result<Vec<Segment>, String> {
    let mut out = Vec::new();
    let mut cur = req.lbn;
    let mut remaining = req.nblocks;
    while remaining > 0 {
        let loc = geom.locate(cur).map_err(|e| e.to_string())?;
        let take = remaining.min((loc.spt - loc.sector) as u64);
        out.push(Segment { loc, take });
        cur += take;
        remaining -= take;
    }
    Ok(out)
}

/// Check one serviced request against every physical invariant.
pub fn check_event(geom: &DiskGeometry, e: &ServiceEvent) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut fail = |rule: &'static str, detail: String| {
        out.push(Violation {
            seq: e.seq,
            rule,
            detail,
        })
    };
    let t = &e.timing;

    for (name, v) in [
        ("overhead", t.overhead_ms),
        ("seek", t.seek_ms),
        ("rotation", t.rotation_ms),
        ("transfer", t.transfer_ms),
    ] {
        if v < 0.0 {
            fail("components-nonnegative", format!("{name} = {v}"));
        }
    }

    let elapsed = e.after.time_ms - e.before.time_ms;
    if (elapsed - e.elapsed_ms()).abs() > TIME_EPS_MS {
        fail(
            "clock-advance",
            format!(
                "clock advanced {elapsed} ms but components (+ recovery) sum to {} ms",
                e.elapsed_ms()
            ),
        );
    }
    if elapsed <= 0.0 {
        fail(
            "clock-advance",
            format!("simulated time not monotone: elapsed {elapsed} ms"),
        );
    }

    if !e.fault.is_clean() {
        // A recovered request accumulates timing over retries and
        // remapped segments; the remaining invariants describe a single
        // uninterrupted mechanical service and do not apply. The core
        // above (non-negative components, exact clock accounting) has
        // already run; only sanity-check the recovery record itself.
        if e.fault.recovery_ms < -TIME_EPS_MS {
            fail(
                "components-nonnegative",
                format!("recovery = {}", e.fault.recovery_ms),
            );
        }
        return out;
    }

    if (t.overhead_ms - geom.command_overhead_ms).abs() > TIME_EPS_MS {
        fail(
            "overhead-exact",
            format!(
                "overhead {} != command overhead {}",
                t.overhead_ms, geom.command_overhead_ms
            ),
        );
    }

    let segs = match segments(geom, e.request) {
        Ok(s) => s,
        Err(err) => {
            fail("head-position", format!("request unmappable: {err}"));
            return out;
        }
    };

    // Transfer is identical on the prefetch and the positioned path:
    // every sector pays exactly one sector-time of its zone.
    // staticcheck: allow(det-float-sum) — `segs` is the per-request segment walk in LBN order; the oracle must mirror the simulator's own left-to-right accumulation.
    let expected_transfer: f64 =
        segs.iter().map(|s| s.take as f64 * geom.sector_time_ms(&geom.zones()[s.loc.zone])).sum();
    if (t.transfer_ms - expected_transfer).abs() > TIME_EPS_MS {
        fail(
            "transfer-exact",
            format!(
                "transfer {} != {} (= {} blocks at zone sector times)",
                t.transfer_ms, expected_transfer, e.request.nblocks
            ),
        );
    }

    if e.is_prefetch_hit() {
        // A sequential continuation never repositions and never waits:
        // the next sector is already arriving under the head.
        // staticcheck: allow(float-cmp) — a prefetch hit must report exactly-zero positioning; the sim writes literal 0.0.
        if t.seek_ms != 0.0 || t.rotation_ms != 0.0 {
            fail(
                "prefetch-free-positioning",
                format!(
                    "prefetch hit at lbn {} paid seek {} / rotation {}",
                    e.request.lbn, t.seek_ms, t.rotation_ms
                ),
            );
        }
    } else {
        check_positioned_path(geom, e, &segs, &mut fail);
    }

    // The head must end on the last transferred block's track, with
    // read-ahead armed right behind it.
    match geom.locate(e.request.end() - 1) {
        Ok(end_loc) => {
            if e.after.cylinder != end_loc.cylinder || e.after.surface != end_loc.surface {
                fail(
                    "head-position",
                    format!(
                        "head left at cyl {}/surf {} but last block is on cyl {}/surf {}",
                        e.after.cylinder, e.after.surface, end_loc.cylinder, end_loc.surface
                    ),
                );
            }
        }
        Err(err) => fail("head-position", err.to_string()),
    }
    if e.after.last_end_lbn != Some(e.request.end()) {
        fail(
            "head-position",
            format!(
                "read-ahead armed at {:?}, expected {:?}",
                e.after.last_end_lbn,
                Some(e.request.end())
            ),
        );
    }

    out
}

/// Seek/rotation invariants for a request that went down the positioned
/// (non-prefetch) path.
fn check_positioned_path(
    geom: &DiskGeometry,
    e: &ServiceEvent,
    segs: &[Segment],
    fail: &mut impl FnMut(&'static str, String),
) {
    let t = &e.timing;
    let rev = geom.revolution_ms();
    let write_extra = match e.kind {
        AccessKind::Read => 0.0,
        AccessKind::Write => geom.write_settle_extra_ms,
    };

    // Re-derive the nominal positioning cost of the whole head path,
    // counting how many legs actually moved the head (only those draw
    // settle jitter and, for writes, the extra write settle).
    let (mut cyl, mut surf) = (e.before.cylinder, e.before.surface);
    let mut nominal_seek = 0.0;
    let mut repositions = 0u32;
    for s in segs {
        let pos = geom.positioning_ms(cyl, surf, s.loc.cylinder, s.loc.surface);
        if pos > 0.0 {
            nominal_seek += pos + write_extra;
            repositions += 1;
        }
        cyl = s.loc.cylinder;
        surf = s.loc.surface;
    }
    let max_seek = nominal_seek + repositions as f64 * geom.settle_jitter_ms;
    if t.seek_ms < nominal_seek - TIME_EPS_MS || t.seek_ms > max_seek + TIME_EPS_MS {
        fail(
            "seek-bounds",
            format!(
                "seek {} outside [{nominal_seek}, {max_seek}] \
                 ({repositions} repositions, jitter bound {})",
                t.seek_ms, geom.settle_jitter_ms
            ),
        );
    }

    // The settle plateau (paper Figure 1(a)): a short seek is settle-
    // dominated, so its cost must not exceed the settle time (plus head
    // switch, write extra and jitter) no matter the cylinder distance.
    if segs.len() == 1 {
        let loc = &segs[0].loc;
        let dcyl = e.before.cylinder.abs_diff(loc.cylinder);
        if dcyl > 0 && dcyl <= geom.settle_cylinders as u64 {
            let plateau = geom.settle_ms.max(geom.head_switch_ms)
                + write_extra
                + geom.settle_jitter_ms
                + TIME_EPS_MS;
            if t.seek_ms > plateau {
                fail(
                    "settle-plateau",
                    format!(
                        "{dcyl}-cylinder seek (C = {}) cost {} ms, above the settle \
                         plateau bound {plateau} ms",
                        geom.settle_cylinders, t.seek_ms
                    ),
                );
            }
        }
    }

    // Each track segment waits strictly less than one revolution.
    let max_rotation = segs.len() as f64 * rev;
    if t.rotation_ms >= max_rotation {
        fail(
            "rotation-bounds",
            format!(
                "rotation {} >= {} segments x revolution {}",
                t.rotation_ms,
                segs.len(),
                rev
            ),
        );
    }

    // For a single-track request the wait is an exact function of the
    // arrival time on the track: recompute it from the skew-aware sector
    // angle. (Multi-track requests interleave unobservable per-leg jitter
    // with per-leg waits, so only the bounds above apply.)
    if segs.len() == 1 {
        let arrival = e.before.time_ms + t.overhead_ms + t.seek_ms;
        let expected_wait = geom.rotational_wait_ms(&segs[0].loc, arrival);
        // An exact-hit wait can flip between 0 and a full revolution under
        // 1e-9 angular noise; accept either side of the wrap.
        let diff = (t.rotation_ms - expected_wait).abs();
        let wrapped = (diff - rev).abs();
        if diff > TIME_EPS_MS && wrapped > TIME_EPS_MS {
            fail(
                "rotation-exact",
                format!(
                    "rotation {} != recomputed wait {expected_wait} (arrival {arrival})",
                    t.rotation_ms
                ),
            );
        }
    }
}

/// Check every event of a log, plus cross-event clock consistency:
/// events must be in service order and must never overlap in time (gaps
/// are allowed — the disk may idle between batches).
pub fn check_log(geom: &DiskGeometry, log: &ServiceLog) -> OracleReport {
    let mut report = OracleReport::default();
    let mut prev_end: Option<f64> = None;
    for e in log.events() {
        report.violations.extend(check_event(geom, e));
        if let Some(end) = prev_end {
            if e.before.time_ms < end - TIME_EPS_MS {
                report.violations.push(Violation {
                    seq: e.seq,
                    rule: "clock-advance",
                    detail: format!(
                        "request started at {} before the previous one finished at {end}",
                        e.before.time_ms
                    ),
                });
            }
        }
        prev_end = Some(e.after.time_ms);
        report.checked += 1;
    }
    report
}

/// A [`DiskSim`] with the oracle attached: every serviced request is
/// checked as it completes, and the accumulated report can be asserted
/// at the end of a workload.
pub struct OracleDisk {
    sim: DiskSim,
    seq: usize,
    prev_end: Option<f64>,
    report: OracleReport,
}

impl OracleDisk {
    /// Wrap a fresh simulator for the given geometry.
    pub fn new(geom: DiskGeometry) -> Self {
        OracleDisk {
            sim: DiskSim::new(geom),
            seq: 0,
            prev_end: None,
            report: OracleReport::default(),
        }
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        self.sim.geometry()
    }

    /// Service a read request, checking it against the oracle.
    pub fn service(&mut self, req: Request) -> Result<RequestTiming> {
        self.service_kind(req, AccessKind::Read)
    }

    /// Service a write request, checking it against the oracle.
    pub fn service_write(&mut self, req: Request) -> Result<RequestTiming> {
        self.service_kind(req, AccessKind::Write)
    }

    fn service_kind(&mut self, req: Request, kind: AccessKind) -> Result<RequestTiming> {
        let before = self.sim.state();
        let timing = match kind {
            // staticcheck: allow(no-direct-service) — the oracle wraps its own private sim and audits every call right here.
            AccessKind::Read => self.sim.service(req)?,
            AccessKind::Write => self.sim.service_write(req)?,
        };
        let after = self.sim.state();
        let event = ServiceEvent {
            seq: self.seq,
            admission_rank: self.seq,
            queue_len: 1,
            kind,
            request: req,
            before,
            after,
            timing,
            fault: multimap_disksim::FaultOutcome::default(),
        };
        self.report
            .violations
            .extend(check_event(self.sim.geometry(), &event));
        if let Some(end) = self.prev_end {
            if before.time_ms < end - TIME_EPS_MS {
                self.report.violations.push(Violation {
                    seq: self.seq,
                    rule: "clock-advance",
                    detail: format!(
                        "request started at {} before the previous one finished at {end}",
                        before.time_ms
                    ),
                });
            }
        }
        self.prev_end = Some(after.time_ms);
        self.report.checked += 1;
        self.seq += 1;
        Ok(timing)
    }

    /// Idle the disk (advances time, disarms read-ahead). Not a serviced
    /// request, so nothing is checked.
    pub fn idle(&mut self, ms: f64) {
        self.sim.idle(ms);
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &OracleReport {
        &self.report
    }

    /// Consume the wrapper and return the final report.
    pub fn into_report(self) -> OracleReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;

    #[test]
    fn clean_workload_produces_clean_report() {
        let mut disk = OracleDisk::new(profiles::small());
        for i in 0..50u64 {
            disk.service(Request::new(i * 997 % 10_000, 1 + i % 4)).unwrap();
        }
        assert_eq!(disk.report().checked, 50);
        disk.report().assert_clean();
    }

    #[test]
    fn tampered_timing_is_flagged() {
        let geom = profiles::small();
        let mut disk = OracleDisk::new(geom.clone());
        disk.service(Request::single(0)).unwrap();
        disk.service(Request::new(5_000, 3)).unwrap();
        let mut log_event = None;
        // Rebuild an event by hand and corrupt each component in turn.
        let mut sim = DiskSim::new(geom.clone());
        let before = sim.state();
        let timing = sim.service(Request::new(5_000, 3)).unwrap();
        let after = sim.state();
        let base = ServiceEvent {
            seq: 0,
            admission_rank: 0,
            queue_len: 1,
            kind: AccessKind::Read,
            request: Request::new(5_000, 3),
            before,
            after,
            timing,
            fault: multimap_disksim::FaultOutcome::default(),
        };
        log_event.replace(base);
        let base = log_event.unwrap();
        assert!(check_event(&geom, &base).is_empty());

        let mut free_seek = base;
        free_seek.timing.seek_ms = 0.0;
        let rules: Vec<_> = check_event(&geom, &free_seek)
            .into_iter()
            .map(|v| v.rule)
            .collect();
        assert!(rules.contains(&"clock-advance"), "{rules:?}");
        assert!(rules.contains(&"seek-bounds"), "{rules:?}");

        let mut slow_transfer = base;
        slow_transfer.timing.transfer_ms *= 2.0;
        let rules: Vec<_> = check_event(&geom, &slow_transfer)
            .into_iter()
            .map(|v| v.rule)
            .collect();
        assert!(rules.contains(&"transfer-exact"), "{rules:?}");

        let mut long_wait = base;
        long_wait.timing.rotation_ms += geom.revolution_ms();
        let rules: Vec<_> = check_event(&geom, &long_wait)
            .into_iter()
            .map(|v| v.rule)
            .collect();
        assert!(
            rules.contains(&"rotation-bounds") || rules.contains(&"rotation-exact"),
            "{rules:?}"
        );
    }

    #[test]
    fn stale_readahead_claim_is_flagged() {
        let geom = profiles::small();
        let mut sim = DiskSim::new(geom.clone());
        sim.service(Request::single(0)).unwrap();
        let before = sim.state();
        let timing = sim.service(Request::single(1)).unwrap();
        let mut after = sim.state();
        after.last_end_lbn = Some(999); // lie about where read-ahead points
        let e = ServiceEvent {
            seq: 1,
            admission_rank: 1,
            queue_len: 1,
            kind: AccessKind::Read,
            request: Request::single(1),
            before,
            after,
            timing,
            fault: multimap_disksim::FaultOutcome::default(),
        };
        let rules: Vec<_> = check_event(&geom, &e).into_iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"head-position"), "{rules:?}");
    }
}
