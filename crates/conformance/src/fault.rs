//! Fault-plan conformance: payload identity and counter reconciliation.
//!
//! The fault-injection contract has two halves, and this module holds
//! the whole stack to both:
//!
//! * **Payload identity** — whatever a [`FaultPlan`] injects, every
//!   query must deliver exactly the logical blocks it would have
//!   delivered fault-free. The order-independent payload checksum
//!   ([`multimap_disksim::request_payload`]) of the faulted run is
//!   compared against a clean run of the same query on a pristine
//!   volume, for each of the four standard mappings.
//! * **Counter reconciliation** — the fault/retry/remap counters must
//!   agree exactly at every layer: the injector's own counts, the LVM
//!   recovery stats, the telemetry sink's counters, and a pure replay
//!   of the transient schedule ([`FaultPlan::count_transients`]) over
//!   the number of commands actually issued.
//!
//! The faulted run's event log also goes through the physics oracle,
//! which checks faulted events against the fault-tolerant invariant
//! subset (see [`crate::oracle`]).

use std::collections::BTreeSet;

use multimap_core::{BoxRegion, Coord, GridSpec};
use multimap_disksim::{DiskGeometry, FaultCounts, FaultPlan, ServiceLog};
use multimap_lvm::{LogicalVolume, RecoveryConfig, RecoveryStats};
use multimap_query::{QueryError, QueryExecutor, QueryOp, QueryRequest, QueryResult};
use multimap_telemetry::{Counter, Metrics};

use crate::oracle::{check_log, OracleReport};
use crate::differential::standard_mappings;

/// What one mapping did for one query, fault-free versus faulted.
#[derive(Debug)]
pub struct FaultRow {
    /// Mapping name (`Mapping::name`).
    pub mapping: String,
    /// Result of the query on a pristine volume.
    pub clean: QueryResult,
    /// Result of the same query under the fault plan.
    pub faulted: QueryResult,
    /// Cells transferred by the faulted run (via the mapping inverse).
    pub cells: BTreeSet<Coord>,
    /// LVM recovery stats after the faulted run.
    pub stats: RecoveryStats,
    /// Injector-side counts after the faulted run.
    pub injected: FaultCounts,
    /// Blocks remapped into spare regions during the faulted run.
    pub remaps: usize,
    /// Physics-oracle verdict over the faulted run's event log.
    pub oracle: OracleReport,
    /// Telemetry the faulted query recorded.
    pub metrics: Metrics,
}

/// Run one query region through all four standard mappings, once on a
/// pristine volume and once under `plan`, each mapping on fresh
/// single-disk volumes. Fanned across the experiment engine, so the
/// sweep exercises whatever thread count `MULTIMAP_THREADS` selects —
/// results come back in mapping order regardless.
pub fn fault_query(
    geom: &DiskGeometry,
    grid: &GridSpec,
    region: &BoxRegion,
    beam: bool,
    plan: &FaultPlan,
    cfg: RecoveryConfig,
) -> Result<Vec<FaultRow>, QueryError> {
    let mappings = standard_mappings(geom, grid);
    let op = if beam { QueryOp::Beam } else { QueryOp::Range };
    let rows = multimap_engine::sweep(&mappings, |mapping| {
        let clean_volume = LogicalVolume::new(geom.clone(), 1);
        let clean = QueryExecutor::new(&clean_volume, 0)
            .execute(QueryRequest::new(op, mapping.as_ref(), region))?;

        let volume = LogicalVolume::with_recovery(geom.clone(), 1, plan.clone(), cfg)
            .map_err(QueryError::from)?;
        let exec = QueryExecutor::new(&volume, 0);
        let mut log = ServiceLog::new();
        let mut metrics = Metrics::new();
        let faulted = {
            let mut rec = log.recorder();
            exec.execute(
                QueryRequest::new(op, mapping.as_ref(), region)
                    .with_observer(&mut rec)
                    .with_sink(&mut metrics),
            )?
        };
        let mut cells = BTreeSet::new();
        for e in log.events() {
            for lbn in e.request.lbn..e.request.end() {
                if let Some(c) = mapping.coord_of(lbn) {
                    cells.insert(c);
                }
            }
        }
        let oracle = check_log(geom, &log);
        let remaps = volume.remap_count(0).map_err(QueryError::from)?;
        Ok(FaultRow {
            mapping: mapping.name().to_string(),
            clean,
            faulted,
            cells,
            stats: volume.recovery_stats(),
            injected: volume.injected_counts(),
            remaps,
            oracle,
            metrics,
        })
    });
    rows.into_iter().collect()
}

/// Run [`fault_query`] and verify the fault-conformance contract for
/// every mapping: byte-identical payloads, a clean oracle verdict, and
/// exact counter reconciliation across injector, recovery path,
/// telemetry and the pure schedule replay.
pub fn check_fault_plan(
    geom: &DiskGeometry,
    grid: &GridSpec,
    region: &BoxRegion,
    beam: bool,
    plan: &FaultPlan,
) -> Result<(), String> {
    let expected: BTreeSet<Coord> = region.cells_vec().into_iter().collect();
    let rows = fault_query(geom, grid, region, beam, plan, RecoveryConfig::default())
        .map_err(|e| format!("query failed: {e}"))?;
    for r in &rows {
        let label = &r.mapping;
        if r.faulted.payload != r.clean.payload {
            return Err(format!(
                "{label}: faulted payload {:#x} differs from fault-free {:#x}",
                r.faulted.payload, r.clean.payload
            ));
        }
        if (r.faulted.cells, r.faulted.blocks) != (r.clean.cells, r.clean.blocks) {
            return Err(format!(
                "{label}: faulted run moved {} cells / {} blocks, clean run {} / {}",
                r.faulted.cells, r.faulted.blocks, r.clean.cells, r.clean.blocks
            ));
        }
        if r.cells != expected {
            let missing = expected.difference(&r.cells).count();
            let extra = r.cells.difference(&expected).count();
            return Err(format!(
                "{label}: transferred cell set differs from the region \
                 ({missing} missing, {extra} extra of {} expected)",
                expected.len()
            ));
        }
        if !r.oracle.is_clean() {
            return Err(format!(
                "{label}: physics oracle flagged {} violation(s) on the faulted log, first: {}",
                r.oracle.violations.len(),
                r.oracle.violations[0]
            ));
        }

        // Counter reconciliation, layer by layer. The injector is the
        // ground truth; recovery stats and telemetry must match it, and
        // the injector itself must match the pure schedule replay.
        let s = &r.stats;
        let i = &r.injected;
        if s.transients != i.transients {
            return Err(format!(
                "{label}: recovery saw {} transients, injector issued {}",
                s.transients, i.transients
            ));
        }
        if s.retries != s.transients {
            return Err(format!(
                "{label}: {} retries for {} transients (bounded retry must \
                 issue exactly one per observed transient)",
                s.retries, s.transients
            ));
        }
        if s.media_errors != i.media_errors {
            return Err(format!(
                "{label}: recovery saw {} media errors, injector issued {}",
                s.media_errors, i.media_errors
            ));
        }
        if s.slow_reads != i.slow_reads {
            return Err(format!(
                "{label}: recovery saw {} slow reads, injector issued {}",
                s.slow_reads, i.slow_reads
            ));
        }
        let replayed = plan.count_transients(i.commands);
        if i.transients != replayed {
            return Err(format!(
                "{label}: injector reported {} transients over {} commands, \
                 pure replay of the schedule says {replayed}",
                i.transients, i.commands
            ));
        }
        for (counter, have, want) in [
            (Counter::TransientFault, "transients", s.transients),
            (Counter::RetryAttempt, "retries", s.retries),
            (Counter::MediaFault, "media errors", s.media_errors),
            (Counter::BadBlockRemap, "remaps", s.remaps),
            (Counter::SlowRead, "slow reads", s.slow_reads),
        ] {
            let got = r.metrics.counter_value(counter);
            if got != want {
                return Err(format!(
                    "{label}: telemetry counted {got} {have}, recovery stats say {want}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;

    fn harness_grid() -> GridSpec {
        GridSpec::new([24u64, 8, 6])
    }

    #[test]
    fn empty_plan_passes_and_injects_nothing() {
        let geom = profiles::small();
        let grid = harness_grid();
        let region = BoxRegion::new([0u64, 0, 0], [12u64, 5, 3]);
        check_fault_plan(&geom, &grid, &region, false, &FaultPlan::none()).unwrap();
        let rows =
            fault_query(&geom, &grid, &region, false, &FaultPlan::none(), RecoveryConfig::default())
                .unwrap();
        for r in rows {
            assert!(r.stats.transients == 0 && r.stats.media_errors == 0);
            // With nothing injected the recovering path is also
            // *timing*-identical to the pristine volume.
            assert_eq!(r.faulted, r.clean, "{}", r.mapping);
        }
    }

    #[test]
    fn seeded_plan_passes_for_beam_and_range() {
        let geom = profiles::small();
        let grid = harness_grid();
        let plan = FaultPlan::new(42)
            .with_media_errors([7, 301])
            .with_transients(0.05, 2.5)
            .with_slow_reads(0.05, 1.0);
        let range = BoxRegion::new([0u64, 0, 0], [20u64, 7, 5]);
        check_fault_plan(&geom, &grid, &range, false, &plan).unwrap();
        let beam = BoxRegion::beam(&grid, 0, &[0, 1, 0]);
        check_fault_plan(&geom, &grid, &beam, true, &plan).unwrap();
    }

    #[test]
    fn seeded_plan_actually_injects() {
        let geom = profiles::small();
        let grid = harness_grid();
        let plan = FaultPlan::new(42).with_media_error(7).with_transients(0.2, 2.5);
        let region = BoxRegion::new([0u64, 0, 0], [20u64, 7, 5]);
        let rows =
            fault_query(&geom, &grid, &region, false, &plan, RecoveryConfig::default()).unwrap();
        for r in rows {
            assert!(r.stats.transients > 0, "{}: no transients fired", r.mapping);
            assert_eq!(r.stats.media_errors, 1, "{}", r.mapping);
            assert_eq!(r.remaps, 1, "{}", r.mapping);
            assert!(
                r.faulted.total_io_ms > r.clean.total_io_ms,
                "{}: recovery must cost simulated time",
                r.mapping
            );
        }
    }
}
