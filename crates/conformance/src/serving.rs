//! Serving-layer conformance: replay identity and counter
//! reconciliation for online multi-tenant runs.
//!
//! The serving layer sits on top of everything this crate already
//! checks — mappings, device backends, telemetry — and adds admission
//! control and cross-client batching. Its contract:
//!
//! * **Replay identity** — the same [`Scenario`] served twice against
//!   fresh volumes produces bit-identical reports: same trace, same
//!   per-tenant histograms, same digest. The serving loop introduces no
//!   hidden state.
//! * **Counter reconciliation** — per tenant, every submission is
//!   exactly one of completed / deadline-shed / queue-rejected; the
//!   latency histogram holds exactly the completed requests; the
//!   telemetry request counter equals the tenant's device requests; and
//!   the device's own request count equals the dispatch log.
//! * **Admission exclusion** — a shed or rejected request never
//!   appears in any served batch; every completed request does.

use std::collections::BTreeSet;

use multimap_core::GridSpec;
use multimap_disksim::DiskGeometry;
use multimap_lvm::backend_volume;
use multimap_server::{serve_scenario, Outcome, Scenario, ServingReport};
use multimap_telemetry::Counter;

use crate::differential::standard_mappings;

/// Serve `scenario` on a fresh registry-built `backend` volume through
/// every standard mapping family, twice each, and verify the serving
/// conformance contract. Returns a description of the first
/// discrepancy.
pub fn check_served_scenario(
    backend: &str,
    geom: &DiskGeometry,
    grid: &GridSpec,
    scenario: &Scenario,
) -> Result<(), String> {
    for mapping in standard_mappings(geom, grid) {
        let label = format!("{backend}/{}/{}", mapping.name(), scenario.policy);
        let serve = || -> Result<ServingReport, String> {
            let volume = backend_volume(backend, geom, 1)
                .map_err(|e| format!("{label}: backend build failed: {e}"))?;
            let report = serve_scenario(&volume, mapping.as_ref(), scenario)
                .map_err(|e| format!("{label}: serve failed: {e}"))?;
            let device_requests = volume
                .stats(0)
                .map_err(|e| format!("{label}: stats failed: {e}"))?
                .requests;
            if device_requests != report.dispatched_requests {
                return Err(format!(
                    "{label}: device serviced {device_requests} requests but the \
                     dispatch log says {}",
                    report.dispatched_requests
                ));
            }
            Ok(report)
        };

        let first = serve()?;
        let second = serve()?;
        if !first.identical(&second) {
            return Err(format!(
                "{label}: two serves of the same scenario diverged \
                 (digest {:016x} vs {:016x})",
                first.digest, second.digest
            ));
        }

        check_serving_counters(&label, &first, scenario)?;
    }
    Ok(())
}

/// Verify counter reconciliation and admission exclusion for one
/// serving report against the scenario that produced it.
pub fn check_serving_counters(
    label: &str,
    report: &ServingReport,
    scenario: &Scenario,
) -> Result<(), String> {
    let served: BTreeSet<(usize, usize)> = report.dispatched.iter().copied().collect();
    if served.len() != report.dispatched.len() {
        return Err(format!("{label}: a request was dispatched twice"));
    }

    let mut resolved = BTreeSet::new();
    for e in &report.trace {
        if !resolved.insert((e.tenant, e.seq)) {
            return Err(format!(
                "{label}: request ({}, {}) resolved twice",
                e.tenant, e.seq
            ));
        }
        let dispatched = served.contains(&(e.tenant, e.seq));
        match e.outcome {
            Outcome::Completed if !dispatched => {
                return Err(format!(
                    "{label}: completed request ({}, {}) missing from the dispatch log",
                    e.tenant, e.seq
                ));
            }
            Outcome::Completed => {}
            other if dispatched => {
                return Err(format!(
                    "{label}: {other:?} request ({}, {}) appeared in a served batch",
                    e.tenant, e.seq
                ));
            }
            _ => {}
        }
    }

    let mut expected_trace = 0u64;
    for (t, spec) in report.tenants.iter().zip(scenario.tenants.iter()) {
        expected_trace += spec.requests as u64;
        if t.submitted != spec.requests as u64 {
            return Err(format!(
                "{label}/{}: {} submitted but the spec asked for {}",
                t.name, t.submitted, spec.requests
            ));
        }
        if t.submitted != t.completed + t.shed_deadline + t.rejected_queue_full {
            return Err(format!(
                "{label}/{}: {} submitted != {} completed + {} shed + {} rejected",
                t.name, t.submitted, t.completed, t.shed_deadline, t.rejected_queue_full
            ));
        }
        if t.latency.count() != t.completed {
            return Err(format!(
                "{label}/{}: latency histogram holds {} samples for {} completions",
                t.name,
                t.latency.count(),
                t.completed
            ));
        }
        let serviced = t.metrics.counter_value(Counter::RequestsServiced);
        if serviced != t.disk_requests {
            return Err(format!(
                "{label}/{}: telemetry recorded {serviced} serviced requests \
                 but attribution counted {}",
                t.name, t.disk_requests
            ));
        }
    }
    if report.trace.len() as u64 != expected_trace {
        return Err(format!(
            "{label}: trace holds {} resolutions for {expected_trace} submissions",
            report.trace.len()
        ));
    }
    Ok(())
}
