//! Query execution over octree-leaf datasets.
//!
//! Grid datasets go through `multimap-query`'s executor; leaf datasets
//! need an extra resolution step (octree traversal → leaf set → LBNs).
//! [`LeafPlacement`] unifies the linear baselines and the per-region
//! MultiMap placement behind one interface, and [`LeafQueryExecutor`]
//! runs beam and range queries against any of them.

use multimap_disksim::Lbn;
use multimap_lvm::LogicalVolume;
use multimap_query::{service_lbns, QueryResult, Result};

use crate::placement::{beam_box, LeafLinearMapping, SkewedMultiMap};
use crate::tree::{Leaf, Octree};

/// Anything that can place octree leaves on disk.
pub enum LeafPlacement<'a> {
    /// A linearised baseline (Naive / Z-order / Hilbert over leaves).
    Linear(&'a LeafLinearMapping),
    /// Per-region MultiMap with a linear tail.
    MultiMap(&'a SkewedMultiMap),
}

impl LeafPlacement<'_> {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &str {
        match self {
            LeafPlacement::Linear(m) => m.name(),
            LeafPlacement::MultiMap(_) => "MultiMap",
        }
    }

    /// LBNs storing the given leaves.
    pub fn lbns(&self, leaves: &[Leaf]) -> Vec<Lbn> {
        match self {
            LeafPlacement::Linear(m) => leaves.iter().map(|l| m.lbn_of_leaf(l)).collect(),
            LeafPlacement::MultiMap(m) => leaves.iter().map(|l| m.lbn_of_leaf(l)).collect(),
        }
    }

    /// Whether beam batches should go to the disk's SPTF scheduler.
    fn prefers_sptf(&self) -> bool {
        matches!(self, LeafPlacement::MultiMap(_))
    }
}

/// Beam/range executor for leaf datasets on one disk of a volume.
pub struct LeafQueryExecutor<'a> {
    volume: &'a LogicalVolume,
    disk: usize,
    /// Largest batch handed to the full-SPTF scheduler. The profiled
    /// estimator keeps each selection round cheap, so this comfortably
    /// covers every beam a paper-scale octree produces.
    sptf_limit: usize,
}

impl<'a> LeafQueryExecutor<'a> {
    /// Executor over `disk` of `volume`.
    pub fn new(volume: &'a LogicalVolume, disk: usize) -> Self {
        LeafQueryExecutor {
            volume,
            disk,
            sptf_limit: 4096,
        }
    }

    /// Fetch the leaves intersecting a beam along `dim` through the
    /// finest-resolution `anchor`.
    pub fn beam(
        &self,
        tree: &Octree,
        placement: &LeafPlacement<'_>,
        dim: usize,
        anchor: [u64; 3],
    ) -> Result<QueryResult> {
        let (lo, hi) = beam_box(tree, dim, anchor);
        let leaves = tree.leaves_intersecting(lo, hi);
        let lbns = placement.lbns(&leaves);
        let sptf = placement.prefers_sptf() && lbns.len() <= self.sptf_limit;
        service_lbns(self.volume, self.disk, &lbns, sptf)
    }

    /// Fetch the leaves intersecting the inclusive finest-unit box.
    pub fn range(
        &self,
        tree: &Octree,
        placement: &LeafPlacement<'_>,
        lo: [u64; 3],
        hi: [u64; 3],
    ) -> Result<QueryResult> {
        let leaves = tree.leaves_intersecting(lo, hi);
        let lbns = placement.lbns(&leaves);
        service_lbns(self.volume, self.disk, &lbns, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earthquake::{earthquake_tree, EarthquakeConfig};
    use crate::placement::LeafOrder;
    use multimap_disksim::profiles;

    #[test]
    fn beam_and_range_fetch_the_intersecting_leaves() {
        let tree = earthquake_tree(&EarthquakeConfig::small());
        let geom = profiles::small();
        let volume = LogicalVolume::new(geom.clone(), 1);
        let naive = LeafLinearMapping::new(&tree, LeafOrder::XMajor, 0);
        let p = LeafPlacement::Linear(&naive);
        let exec = LeafQueryExecutor::new(&volume, 0);

        let r = exec.beam(&tree, &p, 0, [0, 5, 3]).unwrap();
        let (lo, hi) = beam_box(&tree, 0, [0, 5, 3]);
        assert_eq!(r.cells as usize, tree.leaves_intersecting(lo, hi).len());

        let r = exec.range(&tree, &p, [0, 0, 0], [15, 15, 15]).unwrap();
        assert_eq!(
            r.cells as usize,
            tree.leaves_intersecting([0, 0, 0], [15, 15, 15]).len()
        );
        assert!(r.total_io_ms > 0.0);
    }

    #[test]
    fn multimap_placement_beats_naive_on_cross_beams() {
        let tree = earthquake_tree(&EarthquakeConfig::small());
        let geom = profiles::small();
        let volume = LogicalVolume::new(geom.clone(), 1);
        let naive = LeafLinearMapping::new(&tree, LeafOrder::XMajor, 0);
        let (skewed, _) = SkewedMultiMap::build(&geom, &tree, 32).unwrap();
        let exec = LeafQueryExecutor::new(&volume, 0);

        volume.reset();
        let rn = exec.beam(&tree, &LeafPlacement::Linear(&naive), 2, [9, 3, 0]).unwrap();
        volume.reset();
        let rm = exec.beam(&tree, &LeafPlacement::MultiMap(&skewed), 2, [9, 3, 0]).unwrap();
        assert_eq!(rn.cells, rm.cells);
        assert!(rm.total_io_ms <= rn.total_io_ms * 1.2);
    }
}
