//! Uniform-subarea detection and region growing (Section 4.5).
//!
//! "We start at an area with a uniform distribution, such as a leaf node
//! or an interior node on an index tree. We grow the area by
//! incorporating its neighbors of similar density. With the octree
//! structure, we just need to compare the levels of the elements."
//!
//! Maximal uniform subtrees of the octree are cubes of same-level leaves;
//! growing merges axis-aligned neighbouring cubes (and the boxes they
//! form) of the *same leaf level* whenever their union is again a box.

use serde::{Deserialize, Serialize};

use crate::tree::{Leaf, Octree};

/// An axis-aligned box of same-level octree leaves.
///
/// Bounds are inclusive and expressed in *cells of that level* (cell side
/// = `2^(max_level - level)` finest units).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformRegion {
    /// Leaf level of every cell in the region.
    pub level: u32,
    /// Inclusive lower corner in level-`level` cells.
    pub lo: [u64; 3],
    /// Inclusive upper corner in level-`level` cells.
    pub hi: [u64; 3],
}

impl UniformRegion {
    /// Extent in cells along each dimension.
    pub fn extents(&self) -> [u64; 3] {
        [
            self.hi[0] - self.lo[0] + 1,
            self.hi[1] - self.lo[1] + 1,
            self.hi[2] - self.lo[2] + 1,
        ]
    }

    /// Number of cells (= leaves) in the region.
    pub fn cells(&self) -> u64 {
        self.extents().iter().product()
    }

    /// Whether `leaf` is one of this region's cells.
    pub fn contains_leaf(&self, leaf: &Leaf, max_level: u32) -> bool {
        if leaf.level != self.level {
            return false;
        }
        let cell = 1u64 << (max_level - self.level);
        (0..3).all(|d| {
            let c = leaf.corner[d] / cell;
            self.lo[d] <= c && c <= self.hi[d]
        })
    }

    /// In-region cell coordinate of `leaf` (caller must check
    /// [`Self::contains_leaf`] first).
    pub fn cell_coord(&self, leaf: &Leaf, max_level: u32) -> [u64; 3] {
        debug_assert!(self.contains_leaf(leaf, max_level));
        let cell = 1u64 << (max_level - self.level);
        [
            leaf.corner[0] / cell - self.lo[0],
            leaf.corner[1] / cell - self.lo[1],
            leaf.corner[2] / cell - self.lo[2],
        ]
    }

    /// Union of two boxes when it is itself a box: same level, equal
    /// extents in two dimensions and exactly adjacent in the third.
    fn merge(&self, other: &UniformRegion) -> Option<UniformRegion> {
        if self.level != other.level {
            return None;
        }
        for d in 0..3 {
            let others: Vec<usize> = (0..3).filter(|&k| k != d).collect();
            let aligned = others
                .iter()
                .all(|&k| self.lo[k] == other.lo[k] && self.hi[k] == other.hi[k]);
            if !aligned {
                continue;
            }
            if self.hi[d] + 1 == other.lo[d] || other.hi[d] + 1 == self.lo[d] {
                let mut lo = self.lo;
                let mut hi = self.hi;
                lo[d] = lo[d].min(other.lo[d]);
                hi[d] = hi[d].max(other.hi[d]);
                return Some(UniformRegion {
                    level: self.level,
                    lo,
                    hi,
                });
            }
        }
        None
    }
}

/// Extract uniform regions from the octree: maximal uniform subtrees,
/// grown by merging neighbours of the same level until no two regions
/// can merge. Returned sorted by cell count, largest first.
pub fn detect_regions(tree: &Octree) -> Vec<UniformRegion> {
    let max_level = tree.max_level();
    let mut regions: Vec<UniformRegion> = Vec::new();
    if let Some(level) = tree.uniform_root_level() {
        let cells = (1u64 << level) - 1;
        return vec![UniformRegion {
            level,
            lo: [0, 0, 0],
            hi: [cells, cells, cells],
        }];
    }
    tree.for_each_uniform_subtree(|level, corner, size| {
        let cell = 1u64 << (max_level - level);
        let lo = [corner[0] / cell, corner[1] / cell, corner[2] / cell];
        let span = size / cell;
        regions.push(UniformRegion {
            level,
            lo,
            hi: [lo[0] + span - 1, lo[1] + span - 1, lo[2] + span - 1],
        });
    });
    grow(&mut regions);
    regions.sort_by_key(|r| std::cmp::Reverse(r.cells()));
    regions
}

/// Merge regions pairwise until a fixpoint.
fn grow(regions: &mut Vec<UniformRegion>) {
    loop {
        let mut merged = false;
        'outer: for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                if let Some(u) = regions[i].merge(&regions[j]) {
                    regions[i] = u;
                    regions.swap_remove(j);
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BoxRefinement;

    #[test]
    fn merge_adjacent_boxes() {
        let a = UniformRegion {
            level: 3,
            lo: [0, 0, 0],
            hi: [3, 1, 1],
        };
        let b = UniformRegion {
            level: 3,
            lo: [4, 0, 0],
            hi: [7, 1, 1],
        };
        let u = a.merge(&b).unwrap();
        assert_eq!(u.lo, [0, 0, 0]);
        assert_eq!(u.hi, [7, 1, 1]);
        // Different level never merges.
        let c = UniformRegion { level: 2, ..b };
        assert!(a.merge(&c).is_none());
        // Misaligned boxes never merge.
        let d = UniformRegion {
            level: 3,
            lo: [4, 1, 0],
            hi: [7, 2, 1],
        };
        assert!(a.merge(&d).is_none());
    }

    #[test]
    fn uniform_tree_gives_one_region() {
        let t = Octree::build(
            4,
            &BoxRefinement {
                background: 2,
                boxes: vec![],
            },
        );
        let rs = detect_regions(&t);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].level, 2);
        assert_eq!(rs[0].cells(), 64);
    }

    #[test]
    fn half_dense_domain_gives_two_regions() {
        // Lower half of the domain (z < 8) dense at level 4, rest level 2.
        let t = Octree::build(
            4,
            &BoxRefinement {
                background: 2,
                boxes: vec![([0, 0, 0], [15, 15, 7], 4)],
            },
        );
        let rs = detect_regions(&t);
        // Growing should reconstruct exactly the dense slab plus the
        // coarse slab.
        assert_eq!(rs.len(), 2, "{rs:?}");
        let dense = rs.iter().find(|r| r.level == 4).unwrap();
        assert_eq!(dense.lo, [0, 0, 0]);
        assert_eq!(dense.hi, [15, 15, 7]);
        let coarse = rs.iter().find(|r| r.level == 2).unwrap();
        assert_eq!(coarse.cells(), 32);
    }

    #[test]
    fn regions_cover_all_leaves_exactly_once() {
        let t = Octree::build(
            5,
            &BoxRefinement {
                background: 2,
                boxes: vec![
                    ([0, 0, 0], [15, 15, 15], 5),
                    ([16, 16, 16], [31, 31, 31], 4),
                ],
            },
        );
        let regions = detect_regions(&t);
        let max = t.max_level();
        let mut covered = 0u64;
        t.for_each_leaf(|leaf| {
            let owners = regions
                .iter()
                .filter(|r| r.contains_leaf(&leaf, max))
                .count();
            assert_eq!(owners, 1, "leaf {leaf:?}");
            covered += 1;
        });
        assert_eq!(covered, t.leaf_count());
        let region_cells: u64 = regions.iter().map(|r| r.cells()).sum();
        assert_eq!(region_cells, t.leaf_count());
    }

    #[test]
    fn cell_coords_are_in_region_extents() {
        let t = Octree::build(
            4,
            &BoxRefinement {
                background: 2,
                boxes: vec![([0, 0, 0], [7, 7, 7], 4)],
            },
        );
        let regions = detect_regions(&t);
        let max = t.max_level();
        t.for_each_leaf(|leaf| {
            let r = regions
                .iter()
                .find(|r| r.contains_leaf(&leaf, max))
                .unwrap();
            let c = r.cell_coord(&leaf, max);
            let e = r.extents();
            assert!((0..3).all(|d| c[d] < e[d]));
        });
    }
}
