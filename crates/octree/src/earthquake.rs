//! Synthetic earthquake-simulation dataset (substitute for the 64 GB
//! Tu/O'Hallaron ground-motion dataset of Section 5.4).
//!
//! The real dataset models a 38×38×14 km volume with element resolution
//! driven by soil stiffness: a few large uniform subareas (the paper
//! reports roughly four, two of which hold >60% of all elements) plus
//! small pockets of extra refinement. The generator reproduces those
//! statistics: two large dense slabs, one medium region, coarse
//! background, and a few randomly placed fine pockets for noise.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tree::{BoxRefinement, Octree};

/// Generator parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EarthquakeConfig {
    /// Domain is a cube of side `2^max_level` finest units.
    pub max_level: u32,
    /// Leaf level of the coarse background.
    pub background: u32,
    /// Leaf level of the two large dense slabs.
    pub dense: u32,
    /// Leaf level of the medium region.
    pub medium: u32,
    /// Number of small fully-refined pockets (noise).
    pub pockets: u32,
    /// RNG seed for pocket placement.
    pub seed: u64,
}

impl Default for EarthquakeConfig {
    fn default() -> Self {
        EarthquakeConfig {
            max_level: 10,
            background: 4,
            dense: 8,
            medium: 6,
            pockets: 3,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl EarthquakeConfig {
    /// A smaller configuration for fast tests.
    pub fn small() -> Self {
        EarthquakeConfig {
            max_level: 6,
            background: 2,
            dense: 4,
            medium: 3,
            pockets: 2,
            seed: 42,
        }
    }

    /// Mid-size configuration for quick experiment runs (hundreds of
    /// thousands of elements).
    pub fn quick() -> Self {
        EarthquakeConfig {
            max_level: 9,
            background: 3,
            dense: 7,
            medium: 5,
            pockets: 2,
            seed: 7,
        }
    }

    /// Validate the level ordering.
    fn check(&self) {
        assert!(
            self.background <= self.medium,
            "background coarser than medium"
        );
        assert!(self.medium <= self.dense, "medium coarser than dense");
        assert!(self.dense <= self.max_level, "dense within max level");
        assert!(self.max_level >= 3, "domain too small");
    }
}

/// Build the synthetic earthquake octree.
pub fn earthquake_tree(cfg: &EarthquakeConfig) -> Octree {
    cfg.check();
    let side = 1u64 << cfg.max_level;
    let half = side / 2;
    let quarter = side / 4;
    let eighth = side / 8;
    // Slabs span the full X extent: X is the streaming dimension of the
    // Naive baseline, so beams along Y and Z stride over whole X-rows,
    // like the real 38x38x14 km mesh does.
    let mut boxes: Vec<([u64; 3], [u64; 3], u32)> = vec![
        // Two large dense slabs near the "fault plane" (low z).
        ([0, 0, 0], [side - 1, half - 1, quarter - 1], cfg.dense),
        ([0, half, 0], [side - 1, side - 1, eighth - 1], cfg.dense),
        // One medium region above the second slab.
        (
            [0, half, eighth],
            [side - 1, side - 1, half - 1],
            cfg.medium,
        ),
    ];
    // Small fully refined pockets, aligned to background cells so they
    // create genuinely fragmented (non-mergeable) uniform subtrees.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let bg_cell = 1u64 << (cfg.max_level - cfg.background);
    let bg_cells = side / bg_cell;
    let pocket_level = (cfg.dense + 1).min(cfg.max_level);
    for _ in 0..cfg.pockets {
        let c = [
            rng.random_range(0..bg_cells) * bg_cell,
            rng.random_range(0..bg_cells) * bg_cell,
            rng.random_range(bg_cells / 2..bg_cells) * bg_cell,
        ];
        boxes.push((
            c,
            [c[0] + bg_cell - 1, c[1] + bg_cell - 1, c[2] + bg_cell - 1],
            pocket_level,
        ));
    }
    Octree::build(
        cfg.max_level,
        &BoxRefinement {
            background: cfg.background,
            boxes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::detect_regions;

    #[test]
    fn default_config_statistics_match_paper_shape() {
        let cfg = EarthquakeConfig::default();
        let tree = earthquake_tree(&cfg);
        let regions = detect_regions(&tree);
        // A handful of large uniform subareas…
        assert!(regions.len() >= 4, "found {} regions", regions.len());
        // …whose two largest hold well over half of all elements
        // ("two of them account for more than 60% of elements").
        let total: u64 = tree.leaf_count();
        let top2: u64 = regions.iter().take(2).map(|r| r.cells()).sum();
        assert!(
            top2 as f64 / total as f64 > 0.6,
            "top-2 regions cover only {:.0}%",
            100.0 * top2 as f64 / total as f64
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = EarthquakeConfig::small();
        let a = earthquake_tree(&cfg).leaves();
        let b = earthquake_tree(&cfg).leaves();
        assert_eq!(a, b);
    }

    #[test]
    fn pocket_noise_creates_fine_leaves() {
        let cfg = EarthquakeConfig::small();
        let tree = earthquake_tree(&cfg);
        let pocket_level = (cfg.dense + 1).min(cfg.max_level);
        let finest = tree
            .leaves()
            .into_iter()
            .filter(|l| l.level == pocket_level)
            .count();
        assert!(finest > 0, "pockets should create pocket-level leaves");
    }

    #[test]
    fn dense_slabs_dominate_the_element_count() {
        let cfg = EarthquakeConfig::default();
        let tree = earthquake_tree(&cfg);
        let regions = detect_regions(&tree);
        // The two largest regions must be the dense slabs, not the noise
        // pockets: each covers at least 10k elements.
        assert!(regions[0].level == cfg.dense);
        assert!(regions[1].level == cfg.dense);
        assert!(regions[0].cells() >= 10_000);
    }

    #[test]
    #[should_panic(expected = "coarser")]
    fn invalid_level_ordering_panics() {
        let cfg = EarthquakeConfig {
            background: 5,
            medium: 3,
            ..EarthquakeConfig::default()
        };
        let _ = earthquake_tree(&cfg);
    }
}
