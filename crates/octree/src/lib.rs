//! # multimap-octree — octree substrate for skewed datasets
//!
//! MultiMap applies directly to grid datasets; skewed datasets (the
//! paper's earthquake ground-motion mesh, Section 5.4) need an index to
//! find uniform subareas first. This crate provides:
//!
//! * [`Octree`] — a region octree with variable-depth leaves (the
//!   paper's etree stand-in),
//! * [`detect_regions`] — uniform-subtree detection + region growing
//!   (Section 4.5),
//! * [`earthquake_tree`] — a synthetic generator reproducing the real
//!   dataset's statistics (a few large uniform subareas, two covering
//!   most elements, plus fine noise pockets),
//! * [`SkewedMultiMap`] / [`LeafLinearMapping`] — MultiMap-per-region and
//!   the linearised baselines over octree leaves.
//!
//! ```
//! use multimap_octree::{detect_regions, earthquake_tree, EarthquakeConfig};
//!
//! let tree = earthquake_tree(&EarthquakeConfig::small());
//! let regions = detect_regions(&tree);
//! // The synthetic dataset has a few large uniform subareas…
//! assert!(regions.len() >= 2);
//! // …that jointly cover every element exactly once.
//! let covered: u64 = regions.iter().map(|r| r.cells()).sum();
//! assert_eq!(covered, tree.leaf_count());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod earthquake;
pub mod executor;
pub mod placement;
pub mod regions;
pub mod tree;

pub use earthquake::{earthquake_tree, EarthquakeConfig};
pub use executor::{LeafPlacement, LeafQueryExecutor};
pub use placement::{beam_box, LeafLinearMapping, LeafOrder, SkewedBuildStats, SkewedMultiMap};
pub use regions::{detect_regions, UniformRegion};
pub use tree::{BoxRefinement, Leaf, Octree, Refinement};
