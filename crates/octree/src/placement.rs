//! Disk placement strategies for octree-indexed (skewed) datasets
//! (Sections 4.5 and 5.4).
//!
//! * [`SkewedMultiMap`] — the paper's approach: apply MultiMap to each
//!   detected uniform region separately (regions get disjoint zone
//!   ranges), and fall back to a linear layout for leaves that do not
//!   belong to a region large enough to fill basic cubes.
//! * [`LeafLinearMapping`] — the baselines: order all leaves by X-major,
//!   Z-order or Hilbert value of their corners and store them
//!   sequentially.

use multimap_core::{GridSpec, Mapping, MultiMapOptions, MultiMapping};
use multimap_disksim::{DiskGeometry, Lbn};
use multimap_sfc::{HilbertCurve, SpaceFillingCurve, ZCurve};

use crate::regions::{detect_regions, UniformRegion};
use crate::tree::{Leaf, Octree};

/// Linear orderings of octree leaves used by the baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafOrder {
    /// The paper's Naive: "X as the major order" — X is the streaming
    /// dimension (contiguous on disk), so the sort key is `(z, y, x)`
    /// with X varying fastest.
    XMajor,
    /// Sort by the Morton code of the leaf corner.
    ZOrder,
    /// Sort by the Hilbert index of the leaf corner.
    Hilbert,
}

impl LeafOrder {
    /// Display name matching the figures.
    pub fn name(&self) -> &'static str {
        match self {
            LeafOrder::XMajor => "Naive",
            LeafOrder::ZOrder => "Z-order",
            LeafOrder::Hilbert => "Hilbert",
        }
    }
}

/// Sort key of a leaf under the given order.
fn leaf_key(order: LeafOrder, leaf: &Leaf, max_level: u32) -> u64 {
    match order {
        LeafOrder::XMajor => {
            debug_assert!(max_level <= 20);
            (leaf.corner[2] << 42) | (leaf.corner[1] << 21) | leaf.corner[0]
        }
        LeafOrder::ZOrder => {
            // staticcheck: allow(no-unwrap) — debug_assert above bounds max_level at 20, under the per-axis bit cap.
            let z = ZCurve::new(3, max_level.max(1)).expect("≤ 60 bits");
            z.index(&leaf.corner)
        }
        LeafOrder::Hilbert => {
            // staticcheck: allow(no-unwrap) — same max_level bound as the Z-order arm above.
            let h = HilbertCurve::new(3, max_level.max(1)).expect("≤ 60 bits");
            h.index(&leaf.corner)
        }
    }
}

/// Linear placement: leaves sorted by [`LeafOrder`], stored at
/// consecutive LBNs from `base_lbn` (one block per leaf).
pub struct LeafLinearMapping {
    order: LeafOrder,
    base_lbn: Lbn,
    max_level: u32,
    keys: Vec<u64>,
}

impl LeafLinearMapping {
    /// Order all leaves of `tree` and place them from `base_lbn`.
    pub fn new(tree: &Octree, order: LeafOrder, base_lbn: Lbn) -> Self {
        let max_level = tree.max_level();
        let mut keys = Vec::with_capacity(tree.leaf_count().min(1 << 24) as usize);
        tree.for_each_leaf(|l| keys.push(leaf_key(order, &l, max_level)));
        keys.sort_unstable();
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        LeafLinearMapping {
            order,
            base_lbn,
            max_level,
            keys,
        }
    }

    /// Name of the underlying order.
    pub fn name(&self) -> &'static str {
        self.order.name()
    }

    /// LBN storing `leaf`.
    pub fn lbn_of_leaf(&self, leaf: &Leaf) -> Lbn {
        let key = leaf_key(self.order, leaf, self.max_level);
        let pos = self.keys.partition_point(|&k| k < key);
        debug_assert!(pos < self.keys.len() && self.keys[pos] == key);
        self.base_lbn + pos as u64
    }

    /// Number of leaves placed.
    pub fn leaves(&self) -> u64 {
        self.keys.len() as u64
    }
}

/// MultiMap placement of a skewed dataset: per-region MultiMap plus a
/// linear tail for leftover leaves.
pub struct SkewedMultiMap {
    max_level: u32,
    /// Regions mapped with MultiMap, with their mappings.
    regions: Vec<(UniformRegion, MultiMapping)>,
    /// Leftover leaves, X-major sorted, at the tail.
    leftover_keys: Vec<u64>,
    leftover_base: Lbn,
}

/// Construction report for [`SkewedMultiMap`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SkewedBuildStats {
    /// Regions mapped with MultiMap.
    pub multimapped_regions: usize,
    /// Leaves covered by MultiMap regions.
    pub multimapped_leaves: u64,
    /// Leaves that fell back to the linear tail.
    pub leftover_leaves: u64,
}

impl SkewedMultiMap {
    /// Detect uniform regions in `tree`, MultiMap every region with at
    /// least `min_region_cells` cells onto `geom` (disjoint zone ranges),
    /// and place the rest linearly after the last used zone.
    pub fn build(
        geom: &DiskGeometry,
        tree: &Octree,
        min_region_cells: u64,
    ) -> Result<(Self, SkewedBuildStats), multimap_core::MappingError> {
        let max_level = tree.max_level();
        let detected = detect_regions(tree);
        let mut regions: Vec<(UniformRegion, MultiMapping)> = Vec::new();
        let mut stats = SkewedBuildStats::default();
        let mut zone_cursor = 0usize;
        let nzones = geom.zones().len();
        for region in detected {
            if region.cells() < min_region_cells || zone_cursor >= nzones {
                continue;
            }
            let e = region.extents();
            let grid = GridSpec::new([e[0], e[1], e[2]]);
            match MultiMapping::with_options(
                geom,
                grid,
                MultiMapOptions {
                    first_zone: zone_cursor,
                    shape_override: None,
                    zone_limit: None,
                },
            ) {
                Ok(m) => {
                    let last_zone = m
                        .layout()
                        .zones()
                        .last()
                        // staticcheck: allow(no-unwrap) — MultiMapping layouts always occupy at least one zone.
                        .expect("layout uses at least one zone")
                        .zone_index;
                    zone_cursor = last_zone + 1;
                    stats.multimapped_regions += 1;
                    stats.multimapped_leaves += region.cells();
                    regions.push((region, m));
                }
                Err(_) => {
                    // Region does not fit the remaining zones: leave its
                    // leaves for the linear tail.
                }
            }
        }
        // Leftovers: everything not covered by a mapped region.
        let mut leftover_keys = Vec::new();
        tree.for_each_leaf(|leaf| {
            let owned = regions
                .iter()
                .any(|(r, _)| r.contains_leaf(&leaf, max_level));
            if !owned {
                leftover_keys.push(leaf_key(LeafOrder::XMajor, &leaf, max_level));
            }
        });
        leftover_keys.sort_unstable();
        stats.leftover_leaves = leftover_keys.len() as u64;
        let leftover_base = if zone_cursor < nzones {
            geom.zones()[zone_cursor].first_lbn
        } else {
            // No whole zone left: append after the last region's span.
            regions
                .iter()
                .map(|(_, m)| m.layout().end_lbn(geom))
                .max()
                .unwrap_or(0)
        };
        if leftover_base + leftover_keys.len() as u64 > geom.total_blocks() {
            return Err(multimap_core::MappingError::DoesNotFit {
                reason: "leftover leaves do not fit after the mapped regions".into(),
            });
        }
        Ok((
            SkewedMultiMap {
                max_level,
                regions,
                leftover_keys,
                leftover_base,
            },
            stats,
        ))
    }

    /// The per-region MultiMap mappings.
    pub fn regions(&self) -> &[(UniformRegion, MultiMapping)] {
        &self.regions
    }

    /// LBN storing `leaf`.
    pub fn lbn_of_leaf(&self, leaf: &Leaf) -> Lbn {
        for (region, mapping) in &self.regions {
            if region.contains_leaf(leaf, self.max_level) {
                let c = region.cell_coord(leaf, self.max_level);
                return mapping
                    .lbn_of(&[c[0], c[1], c[2]])
                    // staticcheck: allow(no-unwrap) — contains_leaf just verified the leaf lies inside this region's grid.
                    .expect("region cell coords are in the region grid");
            }
        }
        let key = leaf_key(LeafOrder::XMajor, leaf, self.max_level);
        let pos = self.leftover_keys.partition_point(|&k| k < key);
        debug_assert!(
            pos < self.leftover_keys.len() && self.leftover_keys[pos] == key,
            "leaf not in any region nor in the leftovers"
        );
        self.leftover_base + pos as u64
    }
}

/// The inclusive finest-unit box of a beam along `dim` through the
/// finest-resolution anchor point (the paper's beam queries on the
/// earthquake dataset traverse X, Y or Z).
pub fn beam_box(tree: &Octree, dim: usize, anchor: [u64; 3]) -> ([u64; 3], [u64; 3]) {
    assert!(dim < 3);
    let mut lo = anchor;
    let mut hi = anchor;
    lo[dim] = 0;
    hi[dim] = tree.domain_size() - 1;
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earthquake::{earthquake_tree, EarthquakeConfig};
    use multimap_disksim::profiles;
    use std::collections::HashSet;

    fn small_tree() -> Octree {
        earthquake_tree(&EarthquakeConfig::small())
    }

    #[test]
    fn linear_mappings_are_dense_bijections() {
        let tree = small_tree();
        for order in [LeafOrder::XMajor, LeafOrder::ZOrder, LeafOrder::Hilbert] {
            let m = LeafLinearMapping::new(&tree, order, 100);
            let mut seen = HashSet::new();
            tree.for_each_leaf(|l| {
                let lbn = m.lbn_of_leaf(&l);
                assert!(lbn >= 100);
                assert!(lbn < 100 + tree.leaf_count());
                assert!(seen.insert(lbn), "{order:?} collision at {lbn}");
            });
            assert_eq!(seen.len() as u64, tree.leaf_count());
        }
    }

    #[test]
    fn xmajor_streams_along_x() {
        let tree = small_tree();
        let m = LeafLinearMapping::new(&tree, LeafOrder::XMajor, 0);
        let mut leaves = tree.leaves();
        leaves.sort_by_key(|l| (l.corner[2], l.corner[1], l.corner[0]));
        for (i, l) in leaves.iter().enumerate() {
            assert_eq!(m.lbn_of_leaf(l), i as u64);
        }
        // Neighbouring leaves along X (same size/level) are adjacent LBNs.
        let a = leaves[0];
        let b = leaves[1];
        if a.corner[1] == b.corner[1] && a.corner[2] == b.corner[2] {
            assert_eq!(m.lbn_of_leaf(&b), m.lbn_of_leaf(&a) + 1);
        }
    }

    #[test]
    fn skewed_multimap_covers_every_leaf_injectively() {
        let tree = small_tree();
        let geom = profiles::small();
        let (m, stats) = SkewedMultiMap::build(&geom, &tree, 64).unwrap();
        assert!(stats.multimapped_regions >= 1, "{stats:?}");
        assert_eq!(
            stats.multimapped_leaves + stats.leftover_leaves,
            tree.leaf_count()
        );
        let mut seen = HashSet::new();
        tree.for_each_leaf(|l| {
            let lbn = m.lbn_of_leaf(&l);
            assert!(seen.insert(lbn), "collision at {lbn}");
        });
    }

    #[test]
    fn regions_use_disjoint_zones() {
        let tree = small_tree();
        let geom = profiles::small();
        let (m, _) = SkewedMultiMap::build(&geom, &tree, 64).unwrap();
        let mut used = HashSet::new();
        for (_, mapping) in m.regions() {
            for za in mapping.layout().zones() {
                assert!(
                    used.insert(za.zone_index),
                    "zone {} assigned to two regions",
                    za.zone_index
                );
            }
        }
    }

    #[test]
    fn beam_box_spans_domain() {
        let tree = small_tree();
        let (lo, hi) = beam_box(&tree, 1, [5, 9, 3]);
        assert_eq!(lo, [5, 0, 3]);
        assert_eq!(hi, [5, tree.domain_size() - 1, 3]);
        let leaves = tree.leaves_intersecting(lo, hi);
        assert!(!leaves.is_empty());
    }
}
