//! A region octree over a cubic 3-D domain.
//!
//! The domain is a cube of side `2^max_level` in *finest-resolution
//! units*. A leaf at level `l` covers a cube of side `2^(max_level - l)`
//! units. This mirrors the etree-indexed earthquake dataset the paper
//! uses (Tu & O'Hallaron): elements of variable size, each a leaf of the
//! octree.

use serde::{Deserialize, Serialize};

/// A leaf element of the octree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Leaf {
    /// Subdivision level (0 = the whole domain).
    pub level: u32,
    /// Lower corner in finest-resolution units.
    pub corner: [u64; 3],
    /// Side length in finest-resolution units (`2^(max_level - level)`).
    pub size: u64,
}

impl Leaf {
    /// Whether this leaf's cube intersects the axis-aligned box
    /// `[lo, hi]` (inclusive, finest units).
    pub fn intersects(&self, lo: &[u64; 3], hi: &[u64; 3]) -> bool {
        (0..3).all(|d| self.corner[d] <= hi[d] && lo[d] < self.corner[d] + self.size)
    }
}

/// Interior or leaf node.
#[derive(Clone, Debug)]
enum Node {
    Leaf,
    Internal(Box<[Node; 8]>),
}

/// Decides how deep the tree must refine at a given region of space.
pub trait Refinement {
    /// Desired leaf level for the node covering the cube at `corner`
    /// (finest units) with side `size`. The node splits while its level
    /// is below the maximum desired level anywhere inside it.
    fn target_level(&self, corner: [u64; 3], size: u64) -> u32;
}

/// Refinement driven by a background level plus boxes requiring deeper
/// resolution — the shape of seismic ground-motion meshes (dense near
/// soft soil / the fault, coarse elsewhere).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BoxRefinement {
    /// Level used where no box applies.
    pub background: u32,
    /// `(lo, hi, level)` boxes in finest units (inclusive bounds).
    pub boxes: Vec<([u64; 3], [u64; 3], u32)>,
}

impl Refinement for BoxRefinement {
    fn target_level(&self, corner: [u64; 3], size: u64) -> u32 {
        let mut level = self.background;
        let node_hi = [
            corner[0] + size - 1,
            corner[1] + size - 1,
            corner[2] + size - 1,
        ];
        for (lo, hi, l) in &self.boxes {
            if *l > level && (0..3).all(|d| corner[d] <= hi[d] && lo[d] <= node_hi[d]) {
                level = *l;
            }
        }
        level
    }
}

/// The octree.
#[derive(Clone, Debug)]
pub struct Octree {
    max_level: u32,
    root: Node,
    leaves: u64,
}

impl Octree {
    /// Build the tree for a domain of side `2^max_level`, refining until
    /// every node's level reaches its refinement target.
    ///
    /// # Panics
    /// Panics if `max_level` exceeds 20 (a 2^60-cell domain is beyond any
    /// realistic experiment and would overflow traversals).
    pub fn build(max_level: u32, refinement: &impl Refinement) -> Self {
        assert!(max_level <= 20, "max_level too large");
        let mut leaves = 0;
        let root = Self::build_node(
            0,
            [0, 0, 0],
            1u64 << max_level,
            max_level,
            refinement,
            &mut leaves,
        );
        Octree {
            max_level,
            root,
            leaves,
        }
    }

    fn build_node(
        level: u32,
        corner: [u64; 3],
        size: u64,
        max_level: u32,
        refinement: &impl Refinement,
        leaves: &mut u64,
    ) -> Node {
        let target = refinement.target_level(corner, size).min(max_level);
        if level >= target {
            *leaves += 1;
            return Node::Leaf;
        }
        let half = size / 2;
        let children = std::array::from_fn(|i| {
            let child_corner = [
                corner[0] + ((i as u64) & 1) * half,
                corner[1] + ((i as u64 >> 1) & 1) * half,
                corner[2] + ((i as u64 >> 2) & 1) * half,
            ];
            Self::build_node(level + 1, child_corner, half, max_level, refinement, leaves)
        });
        Node::Internal(Box::new(children))
    }

    /// Domain side in finest units.
    #[inline]
    pub fn domain_size(&self) -> u64 {
        1u64 << self.max_level
    }

    /// Maximum (finest) subdivision level.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Number of leaves (the dataset's element count).
    #[inline]
    pub fn leaf_count(&self) -> u64 {
        self.leaves
    }

    /// Visit every leaf in Z-order (children visited in Morton order).
    pub fn for_each_leaf(&self, mut f: impl FnMut(Leaf)) {
        Self::walk(&self.root, 0, [0, 0, 0], self.domain_size(), &mut f);
    }

    fn walk(node: &Node, level: u32, corner: [u64; 3], size: u64, f: &mut impl FnMut(Leaf)) {
        match node {
            Node::Leaf => f(Leaf {
                level,
                corner,
                size,
            }),
            Node::Internal(children) => {
                let half = size / 2;
                for (i, child) in children.iter().enumerate() {
                    let child_corner = [
                        corner[0] + ((i as u64) & 1) * half,
                        corner[1] + ((i as u64 >> 1) & 1) * half,
                        corner[2] + ((i as u64 >> 2) & 1) * half,
                    ];
                    Self::walk(child, level + 1, child_corner, half, f);
                }
            }
        }
    }

    /// Collect all leaves (Z-order).
    pub fn leaves(&self) -> Vec<Leaf> {
        let mut out = Vec::with_capacity(self.leaves.min(1 << 24) as usize);
        self.for_each_leaf(|l| out.push(l));
        out
    }

    /// Leaves whose cubes intersect the inclusive box `[lo, hi]`
    /// (finest units), via pruned descent.
    pub fn leaves_intersecting(&self, lo: [u64; 3], hi: [u64; 3]) -> Vec<Leaf> {
        let mut out = Vec::new();
        Self::query(
            &self.root,
            0,
            [0, 0, 0],
            self.domain_size(),
            &lo,
            &hi,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn query(
        node: &Node,
        level: u32,
        corner: [u64; 3],
        size: u64,
        lo: &[u64; 3],
        hi: &[u64; 3],
        out: &mut Vec<Leaf>,
    ) {
        let disjoint = (0..3).any(|d| corner[d] > hi[d] || corner[d] + size <= lo[d]);
        if disjoint {
            return;
        }
        match node {
            Node::Leaf => out.push(Leaf {
                level,
                corner,
                size,
            }),
            Node::Internal(children) => {
                let half = size / 2;
                for (i, child) in children.iter().enumerate() {
                    let child_corner = [
                        corner[0] + ((i as u64) & 1) * half,
                        corner[1] + ((i as u64 >> 1) & 1) * half,
                        corner[2] + ((i as u64 >> 2) & 1) * half,
                    ];
                    Self::query(child, level + 1, child_corner, half, lo, hi, out);
                }
            }
        }
    }

    /// Visit maximal uniform subtrees: for every internal node whose
    /// descendant leaves all share one level (or every leaf directly
    /// under a non-uniform parent), call `f(level, corner, size)` with
    /// the subtree's bounds. Returns the number of subtrees reported.
    pub fn for_each_uniform_subtree(&self, mut f: impl FnMut(u32, [u64; 3], u64)) -> usize {
        let mut count = 0;
        Self::uniform(
            &self.root,
            0,
            [0, 0, 0],
            self.domain_size(),
            &mut f,
            &mut count,
        );
        count
    }

    /// Returns `Some(leaf_level)` when the subtree is uniform; reports
    /// maximal uniform subtrees through `f` otherwise.
    fn uniform(
        node: &Node,
        level: u32,
        corner: [u64; 3],
        size: u64,
        f: &mut impl FnMut(u32, [u64; 3], u64),
        count: &mut usize,
    ) -> Option<u32> {
        match node {
            Node::Leaf => Some(level),
            Node::Internal(children) => {
                let half = size / 2;
                let mut child_levels = [None; 8];
                for (i, child) in children.iter().enumerate() {
                    let child_corner = [
                        corner[0] + ((i as u64) & 1) * half,
                        corner[1] + ((i as u64 >> 1) & 1) * half,
                        corner[2] + ((i as u64 >> 2) & 1) * half,
                    ];
                    child_levels[i] = Self::uniform(child, level + 1, child_corner, half, f, count);
                }
                let first = child_levels[0];
                if first.is_some() && child_levels.iter().all(|&l| l == first) {
                    return first; // Still uniform; parent may extend it.
                }
                // Not uniform: every uniform child subtree is maximal.
                for (i, l) in child_levels.iter().enumerate() {
                    if let Some(leaf_level) = l {
                        let child_corner = [
                            corner[0] + ((i as u64) & 1) * half,
                            corner[1] + ((i as u64 >> 1) & 1) * half,
                            corner[2] + ((i as u64 >> 2) & 1) * half,
                        ];
                        f(*leaf_level, child_corner, half);
                        *count += 1;
                    }
                }
                None
            }
        }
    }

    /// Rebuild an octree from a leaf set (e.g. one loaded from an etree
    /// file). The leaves must exactly tile the domain of side
    /// `2^max_level`; returns `None` when they do not (gaps, overlaps,
    /// misaligned corners or sizes).
    pub fn from_leaves(max_level: u32, leaves: &[Leaf]) -> Option<Self> {
        assert!(max_level <= 20, "max_level too large");
        let size = 1u64 << max_level;
        // Validate alignment, then check exact tiling by volume plus
        // per-leaf containment of recursive construction.
        let mut volume = 0u64;
        for l in leaves {
            if l.size == 0
                || !l.size.is_power_of_two()
                || l.size != size >> l.level.min(63)
                || l.level > max_level
                || l.corner
                    .iter()
                    .any(|&c| c % l.size != 0 || c + l.size > size)
            {
                return None;
            }
            volume = volume.checked_add(l.size.pow(3))?;
        }
        if volume != size.pow(3) {
            return None;
        }
        // Sort by Morton-ish key (z,y,x coarse order suffices for the
        // recursive splitter, which partitions by containment).
        let mut sorted: Vec<Leaf> = leaves.to_vec();
        sorted.sort_by_key(|l| (l.corner[2], l.corner[1], l.corner[0]));
        let mut count = 0u64;
        let root = Self::rebuild([0, 0, 0], size, &sorted, &mut count)?;
        Some(Octree {
            max_level,
            root,
            leaves: count,
        })
    }

    /// Recursive rebuild helper: `subset` holds exactly the leaves inside
    /// the node's cube.
    fn rebuild(corner: [u64; 3], size: u64, subset: &[Leaf], count: &mut u64) -> Option<Node> {
        if subset.len() == 1 && subset[0].size == size {
            if subset[0].corner != corner {
                return None;
            }
            *count += 1;
            return Some(Node::Leaf);
        }
        if size == 1 {
            return None; // Multiple leaves claim one unit cell.
        }
        let half = size / 2;
        let mut children = Vec::with_capacity(8);
        for i in 0..8u64 {
            let child_corner = [
                corner[0] + (i & 1) * half,
                corner[1] + ((i >> 1) & 1) * half,
                corner[2] + ((i >> 2) & 1) * half,
            ];
            let inside: Vec<Leaf> = subset
                .iter()
                .filter(|l| {
                    (0..3).all(|d| {
                        l.corner[d] >= child_corner[d] && l.corner[d] < child_corner[d] + half
                    })
                })
                .copied()
                .collect();
            children.push(Self::rebuild(child_corner, half, &inside, count)?);
        }
        let boxed: Box<[Node; 8]> = children
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("exactly 8 children"));
        Some(Node::Internal(boxed))
    }

    /// Report the root itself if the whole tree is uniform (helper that
    /// composes with [`Self::for_each_uniform_subtree`]).
    pub fn uniform_root_level(&self) -> Option<u32> {
        let mut noop = |_: u32, _: [u64; 3], _: u64| {};
        let mut count = 0;
        Self::uniform(
            &self.root,
            0,
            [0, 0, 0],
            self.domain_size(),
            &mut noop,
            &mut count,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_tree(max_level: u32, leaf_level: u32) -> Octree {
        Octree::build(
            max_level,
            &BoxRefinement {
                background: leaf_level,
                boxes: vec![],
            },
        )
    }

    #[test]
    fn uniform_tree_counts() {
        let t = uniform_tree(4, 2);
        assert_eq!(t.leaf_count(), 64); // 8^2
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 64);
        assert!(leaves.iter().all(|l| l.level == 2 && l.size == 4));
        assert_eq!(t.uniform_root_level(), Some(2));
    }

    #[test]
    fn leaves_tile_the_domain() {
        let t = Octree::build(
            3,
            &BoxRefinement {
                background: 1,
                boxes: vec![([0, 0, 0], [1, 1, 1], 3)],
            },
        );
        let total_volume: u64 = t.leaves().iter().map(|l| l.size.pow(3)).sum();
        assert_eq!(total_volume, t.domain_size().pow(3));
    }

    #[test]
    fn refinement_box_creates_fine_leaves() {
        let t = Octree::build(
            4,
            &BoxRefinement {
                background: 1,
                boxes: vec![([0, 0, 0], [3, 3, 3], 4)],
            },
        );
        let fine: Vec<Leaf> = t.leaves().into_iter().filter(|l| l.level == 4).collect();
        // The [0,3]^3 box is one level-2 cell; refining it to level 4
        // yields 4^3 unit leaves.
        assert_eq!(fine.len(), 64);
        assert!(fine
            .iter()
            .all(|l| l.size == 1 && l.corner.iter().all(|&c| c < 4)));
    }

    #[test]
    fn intersection_query_matches_filter() {
        let t = Octree::build(
            4,
            &BoxRefinement {
                background: 2,
                boxes: vec![([8, 8, 0], [15, 15, 7], 4)],
            },
        );
        let (lo, hi) = ([6u64, 6, 0], [9u64, 9, 3]);
        let mut expect: Vec<Leaf> = t
            .leaves()
            .into_iter()
            .filter(|l| l.intersects(&lo, &hi))
            .collect();
        let mut got = t.leaves_intersecting(lo, hi);
        expect.sort_by_key(|l| l.corner);
        got.sort_by_key(|l| l.corner);
        assert_eq!(expect, got);
        assert!(!got.is_empty());
    }

    #[test]
    fn uniform_subtrees_partition_leaves() {
        let t = Octree::build(
            4,
            &BoxRefinement {
                background: 2,
                boxes: vec![([0, 0, 0], [7, 7, 7], 4)],
            },
        );
        let mut covered = 0u64;
        let n = t.for_each_uniform_subtree(|level, _corner, size| {
            // Leaves inside a uniform subtree of side `size` at leaf
            // level `level`: (size / leaf_size)^3.
            let leaf_size = 1u64 << (t.max_level() - level);
            covered += (size / leaf_size).pow(3);
        });
        assert!(n > 0);
        assert_eq!(covered, t.leaf_count());
    }

    #[test]
    fn from_leaves_roundtrip() {
        let original = Octree::build(
            4,
            &BoxRefinement {
                background: 2,
                boxes: vec![([0, 0, 0], [7, 7, 7], 4)],
            },
        );
        let leaves = original.leaves();
        let rebuilt = Octree::from_leaves(4, &leaves).expect("valid tiling");
        assert_eq!(rebuilt.leaf_count(), original.leaf_count());
        assert_eq!(rebuilt.leaves(), leaves);
    }

    #[test]
    fn from_leaves_rejects_bad_tilings() {
        let t = Octree::build(
            3,
            &BoxRefinement {
                background: 1,
                boxes: vec![],
            },
        );
        let mut leaves = t.leaves();
        // Gap: drop one leaf.
        let dropped = leaves.pop().unwrap();
        assert!(Octree::from_leaves(3, &leaves).is_none());
        // Overlap: duplicate one leaf.
        leaves.push(dropped);
        leaves.push(dropped);
        assert!(Octree::from_leaves(3, &leaves).is_none());
        // Misaligned corner.
        let mut bad = t.leaves();
        bad[0].corner = [1, 0, 0];
        assert!(Octree::from_leaves(3, &bad).is_none());
    }

    #[test]
    fn fully_uniform_tree_reports_no_proper_subtrees() {
        let t = uniform_tree(3, 2);
        let n = t.for_each_uniform_subtree(|_, _, _| {});
        // The whole tree is uniform: no *maximal proper* subtree is
        // reported; callers use uniform_root_level() for that case.
        assert_eq!(n, 0);
        assert_eq!(t.uniform_root_level(), Some(2));
    }
}
