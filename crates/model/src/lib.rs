//! # multimap-model — analytical I/O-cost model
//!
//! The paper's evaluation references an analytical model (tech report
//! CMU-PDL-05-102) that "calculates the expected cost in terms of total
//! I/O time for Naive and MultiMap given disk parameters, the dimensions
//! of the dataset, and the size of the query". The report is not
//! publicly archived, so this crate derives the model from the same
//! mechanics the simulator implements:
//!
//! * every request pays command overhead;
//! * a seek of `d` cylinders costs `seek(d)` (settle-dominated plateau);
//! * the angular distance between two mapped blocks determines the
//!   rotational wait, computed modulo full revolutions;
//! * sequential transfer runs at one sector per sector-time.
//!
//! Skew accumulation across tracks is ignored (it only rotates the whole
//! pattern), so predictions are exact for same-track steps and
//! approximate within a couple of sector times otherwise. Tests validate
//! the model against `multimap-disksim` end to end.
//!
//! ```
//! use multimap_disksim::profiles;
//! use multimap_model::{naive_beam_per_cell_ms, multimap_beam_per_cell_ms, ModelParams};
//!
//! let p = ModelParams::from_geometry(&profiles::cheetah_36es(), 0);
//! let extents = [259u64, 259, 259];
//! // The model predicts MultiMap's semi-sequential advantage on Dim1.
//! assert!(multimap_beam_per_cell_ms(&p, &extents, 1)
//!     < naive_beam_per_cell_ms(&p, &extents, 1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod model;

pub use model::{
    multimap_beam_per_cell_ms, multimap_range_total_ms, naive_beam_per_cell_ms,
    naive_range_total_ms, ModelParams,
};
