//! The cost formulas.

use multimap_core::{solve_basic_cube, BasicCubeShape, ShapeConstraints};
use multimap_disksim::{adjacency_offset_sectors, DiskGeometry};

/// Disk parameters the model needs, extracted from the zone holding the
/// dataset.
#[derive(Clone, Copy, Debug)]
pub struct ModelParams {
    /// Sectors per track `T` in the data's zone.
    pub track_sectors: u64,
    /// Surfaces `R`.
    pub surfaces: u64,
    /// One revolution in ms.
    pub revolution_ms: f64,
    /// One sector transfer in ms.
    pub sector_ms: f64,
    /// Head settle time in ms.
    pub settle_ms: f64,
    /// Settle-dominated seek distance `C` in cylinders.
    pub settle_cylinders: u64,
    /// Per-request command overhead in ms.
    pub overhead_ms: f64,
    /// Adjacency depth `D`.
    pub adjacency: u64,
    /// Adjacency angular offset in sectors.
    pub adjacency_offset: u64,
    /// Tracks per zone (for basic-cube solving).
    pub zone_tracks: u64,
    /// Calibrated seek time at ~1/3 stroke (used for long jumps).
    pub avg_seek_ms: f64,
}

impl ModelParams {
    /// Extract parameters from `geom`, using zone `zone` for track
    /// length.
    pub fn from_geometry(geom: &DiskGeometry, zone: usize) -> Self {
        let z = &geom.zones()[zone];
        ModelParams {
            track_sectors: z.sectors_per_track as u64,
            surfaces: geom.surfaces as u64,
            revolution_ms: geom.revolution_ms(),
            sector_ms: geom.sector_time_ms(z),
            settle_ms: geom.settle_ms,
            settle_cylinders: geom.settle_cylinders as u64,
            overhead_ms: geom.command_overhead_ms,
            adjacency: geom.adjacency_limit as u64,
            adjacency_offset: adjacency_offset_sectors(geom, z) as u64,
            zone_tracks: z.tracks(geom.surfaces),
            avg_seek_ms: geom.avg_seek_ms,
        }
    }

    /// Positive remainder of `x` modulo one revolution.
    fn mod_rev(&self, x: f64) -> f64 {
        let r = x.rem_euclid(self.revolution_ms);
        if r > self.revolution_ms - 1e-9 {
            0.0
        } else {
            r
        }
    }

    /// Seek time for a jump of `sectors` LBNs through the data zone.
    fn seek_for_stride(&self, sectors: u64) -> f64 {
        let tracks = sectors / self.track_sectors;
        let dcyl = tracks / self.surfaces;
        if dcyl == 0 {
            if tracks == 0 {
                0.0
            } else {
                self.settle_ms // head switch ≈ settle in the model
            }
        } else if dcyl <= self.settle_cylinders {
            self.settle_ms
        } else {
            // Beyond the plateau the exact curve shape matters little for
            // the paper's workloads; use the catalogue average.
            self.avg_seek_ms
        }
    }

    /// Time from finishing one block to finishing the next when
    /// consecutive targets are `stride` sectors apart in LBN space and
    /// requests are served strictly in order.
    ///
    /// The target sits `frac(stride/T)` of a revolution ahead; the head
    /// spends overhead + seek getting there and then waits for it.
    fn strided_step_ms(&self, stride: u64) -> f64 {
        let angle_ms = (stride % self.track_sectors) as f64 * self.sector_ms;
        let pos = self.overhead_ms + self.seek_for_stride(stride);
        let wait = self.mod_rev(angle_ms - pos);
        pos + wait
    }

    /// Expected inter-run cost when the disk's command queue can reorder:
    /// the scheduler settles into serving every `k`-th run (then the
    /// skipped ones), so the steady-state cost per run is the best over
    /// small interleave factors.
    ///
    /// `transfer_ms` is the time spent reading the previous run, which
    /// eats into the angular budget.
    fn strided_step_tcq_ms(&self, stride: u64, transfer_ms: f64) -> f64 {
        let angle_ms = (stride % self.track_sectors) as f64 * self.sector_ms;
        let mut best = f64::INFINITY;
        for k in 1..=16u64 {
            let pos = self.overhead_ms + self.seek_for_stride(stride * k);
            let arrival = transfer_ms + pos;
            let target = (k as f64 * angle_ms).rem_euclid(self.revolution_ms);
            let wait = self.mod_rev(target - arrival.rem_euclid(self.revolution_ms));
            best = best.min(pos + wait);
        }
        best
    }
}

/// Expected per-cell I/O time of a Naive beam along `dim`.
///
/// `extents` are the dataset dimensions `S_i` (cells = blocks).
pub fn naive_beam_per_cell_ms(p: &ModelParams, extents: &[u64], dim: usize) -> f64 {
    assert!(dim < extents.len());
    if dim == 0 {
        // Sequential singles ride the prefetch buffer.
        return p.overhead_ms + p.sector_ms;
    }
    let stride: u64 = extents[..dim].iter().product();
    p.strided_step_ms(stride)
}

/// Expected per-cell I/O time of a MultiMap beam along `dim`.
pub fn multimap_beam_per_cell_ms(p: &ModelParams, extents: &[u64], dim: usize) -> f64 {
    assert!(dim < extents.len());
    if dim == 0 {
        return p.overhead_ms + p.sector_ms;
    }
    let shape = multimap_shape(p, extents);
    // Within the cube each step lasts exactly the adjacency offset angle
    // (the head waits for the target block after overhead + settle).
    let in_cube = p.adjacency_offset as f64 * p.sector_ms;
    // Crossing a cube boundary: a short seek plus ~half-revolution miss.
    let k = shape.k[dim];
    let len = extents[dim];
    let crossings = (len - 1) / k;
    let boundary = p.overhead_ms + p.settle_ms + p.revolution_ms / 2.0;
    (in_cube * (len - 1 - crossings) as f64 + boundary * crossings as f64 + p.overhead_ms)
        / len as f64
}

/// Expected total I/O time of a Naive range query of `query` cells per
/// dimension over a dataset with `extents`.
pub fn naive_range_total_ms(p: &ModelParams, extents: &[u64], query: &[u64]) -> f64 {
    assert_eq!(extents.len(), query.len());
    let n = extents.len();
    let cells: u64 = query.iter().product();
    let transfer = cells as f64 * p.sector_ms;
    if n == 1 || query[1..].iter().all(|&q| q == 1) {
        return p.overhead_ms + transfer;
    }
    // Runs along Dim0, visited in ascending LBN order with command-queue
    // reordering. A jump at level k (first k-1 dims exhausted) moves from
    // the start of the last run of the exhausted box to the start of the
    // next box.
    let mut total = transfer;
    let mut stride_k: u64 = 1; // ∏_{j<k} S_j
    let mut span_starts: u64 = 0; // offset of the last run start in a box
    for k in 1..n {
        stride_k *= extents[k - 1];
        // Jumps at this level: (l_k - 1) per enclosing box.
        let jumps: u64 = (query[k] - 1) * query[k + 1..].iter().product::<u64>();
        let delta = stride_k.saturating_sub(span_starts);
        if delta > query[0] {
            total += jumps as f64 * p.strided_step_tcq_ms(delta, query[0] as f64 * p.sector_ms);
        } else {
            // Fully covered dimensions: the next box continues (almost)
            // sequentially.
            total += jumps as f64 * (p.overhead_ms + p.sector_ms);
        }
        span_starts = span_starts.saturating_add(stride_k * (query[k] - 1));
    }
    total + p.overhead_ms
}

/// Expected total I/O time of a MultiMap range query.
pub fn multimap_range_total_ms(p: &ModelParams, extents: &[u64], query: &[u64]) -> f64 {
    assert_eq!(extents.len(), query.len());
    let n = extents.len();
    let cells: u64 = query.iter().product();
    let transfer = cells as f64 * p.sector_ms;
    if n == 1 || query[1..].iter().all(|&q| q == 1) {
        return p.overhead_ms + transfer;
    }
    let shape = multimap_shape(p, extents);
    let runs: u64 = query[1..].iter().product();
    let l0 = query[0];
    // Between consecutive runs: an adjacency step whose angular budget is
    // partially consumed by the run's own transfer. The command queue may
    // interleave every k-th track when a single step's window is missed.
    let target = p.adjacency_offset as f64 * p.sector_ms;
    let mut step = f64::INFINITY;
    for k in 1..=16u64 {
        let pos = p.overhead_ms + p.seek_for_stride(k * p.track_sectors);
        let arrival = l0 as f64 * p.sector_ms + pos;
        let target_k = (k as f64 * target).rem_euclid(p.revolution_ms);
        let wait = p.mod_rev(target_k - arrival.rem_euclid(p.revolution_ms));
        step = step.min(pos + wait);
    }
    // Cube-boundary crossings replace an adjacency step with a short
    // seek + average rotational miss.
    let mut crossings = 0u64;
    #[allow(clippy::needless_range_loop)] // parallel index into shape.k
    for d in 1..n {
        if query[d] > 1 {
            let per_line = (query[d] - 1) / shape.k[d];
            crossings += per_line * runs / query[d];
        }
    }
    let boundary = p.overhead_ms + p.settle_ms + p.revolution_ms / 2.0;
    transfer
        + (runs - 1 - crossings.min(runs - 1)) as f64 * step
        + crossings.min(runs - 1) as f64 * boundary
        + p.overhead_ms
}

/// The basic-cube shape the mapping layer would pick.
fn multimap_shape(p: &ModelParams, extents: &[u64]) -> BasicCubeShape {
    solve_basic_cube(
        extents,
        &ShapeConstraints {
            track_cells: p.track_sectors,
            adjacency: p.adjacency,
            zone_tracks: p.zone_tracks,
        },
    )
    // staticcheck: allow(no-unwrap) — ModelParams::from_geometry derives feasible constraints from a real geometry.
    .expect("model inputs must admit a basic cube")
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_core::BoxRegion;
    use multimap_core::{GridSpec, MultiMapping, NaiveMapping};
    use multimap_disksim::profiles;
    use multimap_lvm::LogicalVolume;
    use multimap_query::{QueryExecutor, QueryRequest};

    fn params() -> (DiskGeometry, ModelParams) {
        let geom = profiles::small();
        let p = ModelParams::from_geometry(&geom, 0);
        (geom, p)
    }

    use multimap_disksim::DiskGeometry;

    #[test]
    fn naive_dim0_beam_is_streaming() {
        let (_, p) = params();
        let t = naive_beam_per_cell_ms(&p, &[100, 10, 10], 0);
        assert!((t - (p.overhead_ms + p.sector_ms)).abs() < 1e-12);
    }

    #[test]
    fn model_matches_simulator_for_naive_beams() {
        let (geom, p) = params();
        let grid = GridSpec::new([100u64, 12, 8]);
        let vol = LogicalVolume::new(geom, 1);
        let naive = NaiveMapping::new(grid.clone(), 0);
        let exec = QueryExecutor::new(&vol, 0);
        for dim in 0..3 {
            let region = BoxRegion::beam(&grid, dim, &[2, 3, 1]);
            vol.reset();
            let sim = exec
                .execute(QueryRequest::beam(&naive, &region))
                .unwrap()
                .per_cell_ms();
            let model = naive_beam_per_cell_ms(&p, grid.extents(), dim);
            let err = (sim - model).abs() / sim.max(model);
            assert!(
                err < 0.35,
                "dim {dim}: sim {sim:.3} vs model {model:.3} (err {err:.2})"
            );
        }
    }

    #[test]
    fn model_matches_simulator_for_multimap_beams() {
        let (geom, p) = params();
        let grid = GridSpec::new([100u64, 12, 8]);
        let vol = LogicalVolume::new(geom.clone(), 1);
        let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        for dim in 1..3 {
            let region = BoxRegion::beam(&grid, dim, &[2, 3, 1]);
            vol.reset();
            let sim = exec
                .execute(QueryRequest::beam(&mm, &region))
                .unwrap()
                .per_cell_ms();
            let model = multimap_beam_per_cell_ms(&p, grid.extents(), dim);
            let err = (sim - model).abs() / sim.max(model);
            assert!(
                err < 0.35,
                "dim {dim}: sim {sim:.3} vs model {model:.3} (err {err:.2})"
            );
        }
    }

    #[test]
    fn model_matches_simulator_for_ranges() {
        let (geom, p) = params();
        let grid = GridSpec::new([100u64, 12, 8]);
        let vol = LogicalVolume::new(geom.clone(), 1);
        let naive = NaiveMapping::new(grid.clone(), 0);
        let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
        let exec = QueryExecutor::new(&vol, 0);
        let query = BoxRegion::new([10u64, 2, 1], [29u64, 7, 4]);
        let qext = [20u64, 6, 4];

        vol.reset();
        let sim_naive = exec
            .execute(QueryRequest::range(&naive, &query))
            .unwrap()
            .total_io_ms;
        let model_naive = naive_range_total_ms(&p, grid.extents(), &qext);
        let err_n = (sim_naive - model_naive).abs() / sim_naive.max(model_naive);
        assert!(
            err_n < 0.5,
            "naive: sim {sim_naive:.2} vs model {model_naive:.2}"
        );

        vol.reset();
        let sim_mm = exec
            .execute(QueryRequest::range(&mm, &query))
            .unwrap()
            .total_io_ms;
        let model_mm = multimap_range_total_ms(&p, grid.extents(), &qext);
        let err_m = (sim_mm - model_mm).abs() / sim_mm.max(model_mm);
        assert!(err_m < 0.5, "mm: sim {sim_mm:.2} vs model {model_mm:.2}");
    }

    #[test]
    fn model_predicts_multimap_advantage_on_nonprimary_beams() {
        let (_, p) = params();
        let extents = [100u64, 12, 8];
        for dim in 1..3 {
            let naive = naive_beam_per_cell_ms(&p, &extents, dim);
            let mm = multimap_beam_per_cell_ms(&p, &extents, dim);
            assert!(
                mm < naive,
                "dim {dim}: model must favour MultiMap ({mm:.3} vs {naive:.3})"
            );
        }
    }

    #[test]
    fn degenerate_single_run_range() {
        let (_, p) = params();
        let t = naive_range_total_ms(&p, &[100, 10, 10], &[50, 1, 1]);
        assert!((t - (p.overhead_ms + 50.0 * p.sector_ms)).abs() < 1e-9);
        let t = multimap_range_total_ms(&p, &[100, 10, 10], &[50, 1, 1]);
        assert!((t - (p.overhead_ms + 50.0 * p.sector_ms)).abs() < 1e-9);
    }
}
