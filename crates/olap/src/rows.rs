//! Synthetic TPC-H-shaped row generator.
//!
//! The paper builds its cube from a 100 GB TPC-H load; for I/O-time
//! experiments only cell coordinates matter, but this generator lets the
//! whole pipeline (rows → cube cells → placement) run end to end.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use multimap_core::GridSpec;

/// One synthetic line item, pre-bucketed to cube coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineItemRow {
    /// Order date in days since the epoch of the dataset (0..2361).
    pub order_day: u64,
    /// Product group (0..150).
    pub product: u64,
    /// Customer nation (0..25).
    pub nation: u64,
    /// Order quantity (0..50, i.e. quantity-1).
    pub quantity: u64,
    /// Profit contribution of the row.
    pub profit: f64,
}

impl LineItemRow {
    /// Cube cell of this row after the 2-day OrderDay roll-up.
    pub fn rolled_cell(&self) -> [u64; 4] {
        [self.order_day / 2, self.product, self.nation, self.quantity]
    }
}

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct RowGenConfig {
    /// Rows to generate.
    pub rows: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RowGenConfig {
    fn default() -> Self {
        RowGenConfig {
            rows: 100_000,
            seed: 0xDECAF,
        }
    }
}

/// Generate `cfg.rows` uniformly distributed rows.
pub fn generate_rows(cfg: &RowGenConfig) -> Vec<LineItemRow> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.rows)
        .map(|_| LineItemRow {
            order_day: rng.random_range(0..2361),
            product: rng.random_range(0..150),
            nation: rng.random_range(0..25),
            quantity: rng.random_range(0..50),
            profit: rng.random_range(0.0..1000.0),
        })
        .collect()
}

/// Histogram rows into cells of the rolled-up cube; returns points per
/// linear cell index.
pub fn load_into_cube(rows: &[LineItemRow], cube: &GridSpec) -> Vec<u32> {
    assert_eq!(cube.ndims(), 4);
    let mut counts = vec![0u32; cube.cells() as usize];
    for row in rows {
        let cell = row.rolled_cell();
        debug_assert!(cube.contains(&cell));
        counts[cube.linear_index(&cell) as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::rolled_up_cube;

    #[test]
    fn rows_are_within_cube_bounds() {
        let rows = generate_rows(&RowGenConfig {
            rows: 5_000,
            seed: 1,
        });
        let cube = rolled_up_cube();
        for r in &rows {
            assert!(cube.contains(&r.rolled_cell()));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = RowGenConfig { rows: 100, seed: 9 };
        assert_eq!(generate_rows(&cfg), generate_rows(&cfg));
    }

    #[test]
    fn rollup_buckets_two_days() {
        let row = LineItemRow {
            order_day: 7,
            product: 3,
            nation: 1,
            quantity: 10,
            profit: 1.0,
        };
        assert_eq!(row.rolled_cell(), [3, 3, 1, 10]);
    }

    #[test]
    fn histogram_counts_every_row() {
        let rows = generate_rows(&RowGenConfig {
            rows: 2_000,
            seed: 2,
        });
        let cube = rolled_up_cube();
        let counts = load_into_cube(&rows, &cube);
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        assert_eq!(total, 2_000);
    }
}
