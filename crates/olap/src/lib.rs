//! # multimap-olap — the 4-D OLAP evaluation dataset (Section 5.5)
//!
//! The paper derives an OLAP cube from the TPC-H `lineitem`/`orders`
//! tables with four dimensions — order date, product, nation and order
//! quantity — of size `(2361, 150, 25, 50)`, rolls up the date by two
//! days to `(1182, 150, 25, 50)` so cells hold enough points, and
//! partitions it into per-disk chunks of `(591, 75, 25, 25)`. Queries
//! Q1–Q5 are beams and ranges over that cube.
//!
//! Only cell coordinates matter for I/O time, but a small synthetic row
//! generator is included so the cube can be materialised end to end.
//!
//! ```
//! use multimap_olap::{disk_chunk, OlapQuery};
//! use rand::SeedableRng;
//!
//! let chunk = disk_chunk();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let q1 = OlapQuery::Q1.region(&chunk, &mut rng);
//! // Q1 is a beam along the major order (OrderDay).
//! assert!(OlapQuery::Q1.is_beam());
//! assert_eq!(q1.extent(0), 591);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cube;
pub mod queries;
pub mod rollup;
pub mod rows;

pub use cube::{disk_chunk, full_cube, rolled_up_cube, OlapDim, CHUNKS_PER_CUBE};
pub use queries::{OlapQuery, ALL_QUERIES};
pub use rollup::{mean_points_per_occupied_cell, rolled_grid, rollup_counts};
pub use rows::{generate_rows, LineItemRow, RowGenConfig};
