//! Dimension roll-up (Section 5.5).
//!
//! "Since each unique combination of the four dimensions does not have
//! enough points to fill a cell or disk block, we roll up along
//! OrderDay … i.e., combine two cells into one cell along OrderDay."
//! This module provides the general operation: coarsen one dimension of
//! a cube histogram by an integer factor, merging point counts.

use multimap_core::GridSpec;

/// The grid after rolling up `dim` by `factor`.
///
/// # Panics
/// Panics if `dim` is out of range or `factor` is zero.
pub fn rolled_grid(grid: &GridSpec, dim: usize, factor: u64) -> GridSpec {
    assert!(dim < grid.ndims(), "roll-up dimension out of range");
    assert!(factor > 0, "roll-up factor must be positive");
    let extents: Vec<u64> = grid
        .extents()
        .iter()
        .enumerate()
        .map(|(d, &e)| if d == dim { e.div_ceil(factor) } else { e })
        .collect();
    GridSpec::new(extents)
}

/// Roll up a cube histogram (`counts[linear cell index]`, dimension 0
/// fastest) along `dim` by `factor`, summing the merged cells' counts.
///
/// # Panics
/// Panics on arity/length mismatches.
pub fn rollup_counts(grid: &GridSpec, counts: &[u32], dim: usize, factor: u64) -> Vec<u32> {
    assert_eq!(
        counts.len() as u64,
        grid.cells(),
        "histogram length must match the grid"
    );
    let coarse = rolled_grid(grid, dim, factor);
    let mut out = vec![0u32; coarse.cells() as usize];
    let mut coord = vec![0u64; grid.ndims()];
    for (idx, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        // staticcheck: allow(no-unwrap) — idx enumerates counts, whose length equals the grid's cell count.
        let fine = grid.coord_of_linear(idx as u64).expect("index in range");
        coord.copy_from_slice(&fine);
        coord[dim] /= factor;
        out[coarse.linear_index(&coord) as usize] += c;
    }
    out
}

/// Average points per *non-empty* cell — the statistic that motivates
/// rolling up in the first place (cells must hold enough points).
pub fn mean_points_per_occupied_cell(counts: &[u32]) -> f64 {
    let occupied = counts.iter().filter(|&&c| c > 0).count();
    if occupied == 0 {
        0.0
    } else {
        counts.iter().map(|&c| c as u64).sum::<u64>() as f64 / occupied as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{full_cube, rolled_up_cube};

    #[test]
    fn paper_rollup_shape() {
        let rolled = rolled_grid(&full_cube(), 0, 2);
        // ceil(2361/2) = 1181; the paper reports 1182 — its own grid uses
        // the rounded figure, but the operation itself is exact.
        assert_eq!(rolled.extent(0), 1181);
        assert_eq!(rolled.extent(1), rolled_up_cube().extent(1));
    }

    #[test]
    fn rollup_preserves_total_points() {
        let grid = GridSpec::new([6u64, 3]);
        let counts: Vec<u32> = (1..=18).collect();
        let rolled = rollup_counts(&grid, &counts, 0, 2);
        assert_eq!(rolled.len(), 9);
        assert_eq!(
            rolled.iter().map(|&c| c as u64).sum::<u64>(),
            counts.iter().map(|&c| c as u64).sum::<u64>()
        );
        // First coarse cell merges fine cells (0,0) and (1,0): 1 + 2.
        assert_eq!(rolled[0], 3);
    }

    #[test]
    fn rollup_raises_occupancy() {
        // Sparse histogram: every second cell empty.
        let grid = GridSpec::new([8u64, 2]);
        let counts: Vec<u32> = (0..16).map(|i| (i % 2) as u32).collect();
        let before = mean_points_per_occupied_cell(&counts);
        let rolled = rollup_counts(&grid, &counts, 0, 2);
        let after = mean_points_per_occupied_cell(&rolled);
        assert!(after >= before);
        assert_eq!(after, 1.0);
    }

    #[test]
    fn odd_extents_round_up() {
        let grid = GridSpec::new([5u64]);
        let counts = vec![1u32, 1, 1, 1, 1];
        let rolled = rollup_counts(&grid, &counts, 0, 2);
        assert_eq!(rolled, vec![2, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn length_mismatch_panics() {
        let grid = GridSpec::new([4u64]);
        let _ = rollup_counts(&grid, &[1, 2], 0, 2);
    }
}
