//! The paper's five OLAP queries (Section 5.5), as query regions over a
//! per-disk chunk.

use multimap_core::{BoxRegion, GridSpec};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::cube::OlapDim;

/// One of the paper's OLAP queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OlapQuery {
    /// "How much profit is made on product P with a quantity of Q to
    /// country C over all dates?" — beam along OrderDay (the major
    /// order).
    Q1,
    /// "… on product P with a quantity of Q ordered on a specific date
    /// over all countries?" — beam along NationID.
    Q2,
    /// "… on product P of all quantities to country C in one year?" —
    /// 2-D range over OrderDay × Quantity.
    Q3,
    /// "… on product P over all countries, quantities in one year?" —
    /// 3-D range over OrderDay × NationID × Quantity.
    Q4,
    /// "… on 10 products with 10 quantities over 10 countries within 20
    /// days?" — 4-D range (20 days = 10 rolled-up OrderDay cells).
    Q5,
}

/// All five queries in figure order.
pub const ALL_QUERIES: [OlapQuery; 5] = [
    OlapQuery::Q1,
    OlapQuery::Q2,
    OlapQuery::Q3,
    OlapQuery::Q4,
    OlapQuery::Q5,
];

/// Cells of one year of order days after the 2-day roll-up.
const YEAR_CELLS: u64 = 183;

impl OlapQuery {
    /// Figure label ("Q1"…"Q5").
    pub fn label(&self) -> &'static str {
        match self {
            OlapQuery::Q1 => "Q1",
            OlapQuery::Q2 => "Q2",
            OlapQuery::Q3 => "Q3",
            OlapQuery::Q4 => "Q4",
            OlapQuery::Q5 => "Q5",
        }
    }

    /// Whether the query is a beam (Q1, Q2) or a range (Q3–Q5).
    pub fn is_beam(&self) -> bool {
        matches!(self, OlapQuery::Q1 | OlapQuery::Q2)
    }

    /// Dimensions the query spans (the rest are fixed at random values).
    fn spans(&self) -> Vec<(OlapDim, SpanLen)> {
        use OlapDim::*;
        use SpanLen::*;
        match self {
            OlapQuery::Q1 => vec![(OrderDay, Full)],
            OlapQuery::Q2 => vec![(Nation, Full)],
            OlapQuery::Q3 => vec![(OrderDay, Cells(YEAR_CELLS)), (Quantity, Full)],
            OlapQuery::Q4 => vec![
                (OrderDay, Cells(YEAR_CELLS)),
                (Nation, Full),
                (Quantity, Full),
            ],
            OlapQuery::Q5 => vec![
                (OrderDay, Cells(10)),
                (Product, Cells(10)),
                (Nation, Cells(10)),
                (Quantity, Cells(10)),
            ],
        }
    }

    /// Build the concrete query region over `chunk`; dimensions the query
    /// does not span are pinned to random coordinates from `rng`.
    pub fn region(&self, chunk: &GridSpec, rng: &mut StdRng) -> BoxRegion {
        assert_eq!(chunk.ndims(), 4, "OLAP chunk must be 4-D");
        let spans = self.spans();
        let mut lo = Vec::with_capacity(4);
        let mut hi = Vec::with_capacity(4);
        'dims: for d in 0..4 {
            let extent = chunk.extent(d);
            for (dim, len) in &spans {
                if dim.axis() == d {
                    let cells = match len {
                        SpanLen::Full => extent,
                        SpanLen::Cells(c) => (*c).min(extent),
                    };
                    let start = rng.random_range(0..=(extent - cells));
                    lo.push(start);
                    hi.push(start + cells - 1);
                    continue 'dims;
                }
            }
            let fixed = rng.random_range(0..extent);
            lo.push(fixed);
            hi.push(fixed);
        }
        BoxRegion::new(lo, hi)
    }
}

enum SpanLen {
    Full,
    Cells(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::disk_chunk;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn q1_is_an_orderday_beam() {
        let chunk = disk_chunk();
        let r = OlapQuery::Q1.region(&chunk, &mut rng());
        assert_eq!(r.extent(0), 591);
        for d in 1..4 {
            assert_eq!(r.extent(d), 1);
        }
        assert!(r.fits(&chunk));
        assert!(OlapQuery::Q1.is_beam());
    }

    #[test]
    fn q2_is_a_nation_beam() {
        let chunk = disk_chunk();
        let r = OlapQuery::Q2.region(&chunk, &mut rng());
        assert_eq!(r.extent(2), 25);
        assert_eq!(r.extent(0), 1);
        assert!(OlapQuery::Q2.is_beam());
    }

    #[test]
    fn q3_spans_orderday_and_quantity() {
        let chunk = disk_chunk();
        let r = OlapQuery::Q3.region(&chunk, &mut rng());
        assert_eq!(r.extent(0), 183); // one year of 2-day cells
        assert_eq!(r.extent(1), 1);
        assert_eq!(r.extent(2), 1);
        assert_eq!(r.extent(3), 25);
        assert!(!OlapQuery::Q3.is_beam());
    }

    #[test]
    fn q4_spans_three_dims() {
        let chunk = disk_chunk();
        let r = OlapQuery::Q4.region(&chunk, &mut rng());
        assert_eq!(r.cells(), 183 * 25 * 25);
    }

    #[test]
    fn q5_is_a_10x10x10x10_cube() {
        let chunk = disk_chunk();
        let r = OlapQuery::Q5.region(&chunk, &mut rng());
        assert_eq!(r.cells(), 10_000);
    }

    #[test]
    fn regions_always_fit_small_chunks() {
        let chunk = crate::cube::small_chunk();
        let mut rng = rng();
        for q in ALL_QUERIES {
            for _ in 0..50 {
                let r = q.region(&chunk, &mut rng);
                assert!(r.fits(&chunk), "{q:?} region {r:?}");
            }
        }
    }
}
