//! Cube shapes of the OLAP experiment.

use multimap_core::GridSpec;

/// The four dimensions of the OLAP cube, in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OlapDim {
    /// Order date, in 2-day buckets after roll-up (the major order).
    OrderDay = 0,
    /// Product group.
    Product = 1,
    /// Customer nation.
    Nation = 2,
    /// Order quantity.
    Quantity = 3,
}

impl OlapDim {
    /// Axis index of this dimension in the cube grids.
    #[inline]
    pub fn axis(self) -> usize {
        self as usize
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OlapDim::OrderDay => "OrderDay",
            OlapDim::Product => "Product",
            OlapDim::Nation => "NationID",
            OlapDim::Quantity => "Quantity",
        }
    }
}

/// Number of per-disk chunks the rolled-up cube splits into
/// (`2 × 2 × 1 × 2`).
pub const CHUNKS_PER_CUBE: u64 = 8;

/// The raw cube before roll-up: one cell per unique attribute
/// combination, `(2361, 150, 25, 50)`.
pub fn full_cube() -> GridSpec {
    GridSpec::new([2361u64, 150, 25, 50])
}

/// After rolling up OrderDay by two days: `(1182, 150, 25, 50)`.
pub fn rolled_up_cube() -> GridSpec {
    GridSpec::new([1182u64, 150, 25, 50])
}

/// One per-disk chunk: `(591, 75, 25, 25)`.
pub fn disk_chunk() -> GridSpec {
    GridSpec::new([591u64, 75, 25, 25])
}

/// A proportionally shrunken chunk for fast tests and CI-scale
/// experiments (keeps every extent ratio of [`disk_chunk`]).
pub fn small_chunk() -> GridSpec {
    GridSpec::new([118u64, 15, 5, 5])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        assert_eq!(full_cube().extents(), &[2361, 150, 25, 50]);
        assert_eq!(rolled_up_cube().extents(), &[1182, 150, 25, 50]);
        assert_eq!(disk_chunk().extents(), &[591, 75, 25, 25]);
    }

    #[test]
    fn rollup_halves_orderday_only() {
        let full = full_cube();
        let rolled = rolled_up_cube();
        // The paper reports 1182 (we keep its figure; exact ceil(2361/2)
        // would be 1181).
        assert_eq!(rolled.extent(0), 1182);
        assert!(rolled.extent(0) >= full.extent(0).div_ceil(2));
        for d in 1..4 {
            assert_eq!(rolled.extent(d), full.extent(d));
        }
    }

    #[test]
    fn chunks_tile_the_rolled_cube() {
        let rolled = rolled_up_cube();
        let chunk = disk_chunk();
        let mut chunks = 1u64;
        for d in 0..4 {
            chunks *= rolled.extent(d).div_ceil(chunk.extent(d));
        }
        assert_eq!(chunks, CHUNKS_PER_CUBE);
    }

    #[test]
    fn dim_axes() {
        assert_eq!(OlapDim::OrderDay.axis(), 0);
        assert_eq!(OlapDim::Quantity.axis(), 3);
        assert_eq!(OlapDim::Nation.name(), "NationID");
    }
}
