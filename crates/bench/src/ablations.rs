//! Ablation experiments for the design choices DESIGN.md calls out.
//! None of these appear in the paper; they quantify how much each
//! mechanism contributes.

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_core::{
    hilbert_mapping, BoxRegion, Mapping, MultiMapOptions, MultiMapping, NaiveMapping,
    ZonedMultiMapping,
};
use multimap_disksim::{profiles, DiskBuilder, Request, ZoneSpec};
use multimap_lvm::{LogicalVolume, SchedulePolicy};
use multimap_query::{
    random_range, workload_rng, BeamPolicy, ExecOptions, QueryExecutor, QueryRequest, RangeOrder,
};

use crate::harness::{ms, Scale, Table};

fn grid(scale: Scale) -> multimap_core::GridSpec {
    scale.synthetic_grid()
}

/// Basic-cube shape: the cube-count-minimising solver choice vs a
/// paper-style "K1 as large as D allows" override.
pub fn cube_shape(scale: Scale) -> Table {
    let grid = grid(scale);
    let geom = profiles::cheetah_36es();
    let solver = MultiMapping::new(&geom, grid.clone()).expect("fits");
    // Paper-style: K1 = D (or the extent), K2 from the zone budget.
    let d = geom.adjacency_limit as u64;
    let k1 = grid.extent(1).min(d);
    let zone_tracks = geom.zones()[0].tracks(geom.surfaces);
    let k2 = grid.extent(2).min(zone_tracks / k1);
    let paper_style = MultiMapping::with_options(
        &geom,
        grid.clone(),
        MultiMapOptions {
            first_zone: 0,
            shape_override: Some(vec![grid.extent(0).min(740), k1, k2]),
            zone_limit: None,
        },
    )
    .expect("override is valid");

    let mut table = Table::new(
        "Ablation: basic-cube shape (Cheetah 36ES, avg ms/cell beams + 1% range total ms)",
        &["shape", "beam_Dim1", "beam_Dim2", "range1pct_total"],
    );
    let volume = LogicalVolume::new(geom.clone(), 1);
    let exec = QueryExecutor::new(&volume, 0);
    for (label, m) in [
        (format!("{:?}", solver.shape().k), &solver),
        (format!("{:?}", paper_style.shape().k), &paper_style),
    ] {
        let mut rng = workload_rng(0xab1);
        let anchor = multimap_query::random_anchor(&grid, &mut rng);
        let mut cells = Vec::new();
        for dim in 1..3 {
            let region = BoxRegion::beam(&grid, dim, &anchor);
            volume.idle_all(7.3);
            cells.push(ms(exec.execute(QueryRequest::beam(m, &region)).expect("figure query runs in-grid").per_cell_ms()));
        }
        let region = random_range(&grid, 1.0, &mut rng);
        volume.idle_all(7.3);
        let range = exec.execute(QueryRequest::range(m, &region)).expect("figure query runs in-grid").total_io_ms;
        table.row(vec![label, cells[0].clone(), cells[1].clone(), ms(range)]);
    }
    table
}

/// Command-queue depth: how much the disk's internal scheduler
/// contributes to range-query performance.
pub fn queue_depth(scale: Scale) -> Table {
    let grid = grid(scale);
    let geom = profiles::cheetah_36es();
    let naive = NaiveMapping::new(grid.clone(), 0);
    let mm = MultiMapping::new(&geom, grid.clone()).expect("fits");
    let volume = LogicalVolume::new(geom.clone(), 1);

    let mut table = Table::new(
        "Ablation: disk command-queue depth (10% range, total ms)",
        &["queue_depth", "Naive", "MultiMap"],
    );
    for depth in [1usize, 8, 64, 256] {
        let exec = QueryExecutor::with_options(
            &volume,
            0,
            ExecOptions::builder().queue_depth(depth).build(),
        );
        let mut rng = workload_rng(0xab2);
        let region = random_range(&grid, 10.0, &mut rng);
        volume.idle_all(5.0);
        let t_naive = exec.execute(QueryRequest::range(&naive, &region)).expect("figure query runs in-grid").total_io_ms;
        volume.idle_all(5.0);
        let t_mm = exec.execute(QueryRequest::range(&mm, &region)).expect("figure query runs in-grid").total_io_ms;
        table.row(vec![depth.to_string(), ms(t_naive), ms(t_mm)]);
    }
    table
}

/// Request sorting: the paper notes that sorting ascending before issue
/// "significantly improves performance in practice".
pub fn request_sorting(scale: Scale) -> Table {
    let grid = grid(scale);
    let geom = profiles::cheetah_36es();
    let hilb = hilbert_mapping(grid.clone(), 0, 1).expect("fits");
    let mm = MultiMapping::new(&geom, grid.clone()).expect("fits");
    let volume = LogicalVolume::new(geom.clone(), 1);

    let mut table = Table::new(
        "Ablation: request ordering for 1% range queries (total ms)",
        &["mapping", "natural_order", "sorted_fifo", "sorted_tcq"],
    );
    let orders = [
        RangeOrder::NaturalCellOrder,
        RangeOrder::SortedCoalescedFifo,
        RangeOrder::SortedCoalesced,
    ];
    for m in [&hilb as &dyn Mapping, &mm] {
        let mut row = vec![m.name().to_string()];
        for order in orders {
            let exec = QueryExecutor::with_options(
                &volume,
                0,
                ExecOptions::builder().range(order).build(),
            );
            let mut rng = workload_rng(0xab3);
            let region = random_range(&grid, 1.0, &mut rng);
            volume.idle_all(5.0);
            row.push(ms(exec.execute(QueryRequest::range(m, &region)).expect("figure query runs in-grid").total_io_ms));
        }
        table.row(row);
    }
    table
}

/// Adjacency depth `D`: MultiMap's non-primary beam cost as the disk
/// exposes fewer adjacent blocks (C shrinks).
pub fn adjacency_depth(scale: Scale) -> Table {
    let grid = grid(scale);
    let mut table = Table::new(
        "Ablation: adjacency depth D (MultiMap beams, avg ms/cell)",
        &["D", "beam_Dim1", "beam_Dim2"],
    );
    for c in [8u32, 16, 32] {
        let geom = DiskBuilder::new(format!("cheetah-like C={c}"))
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![ZoneSpec {
                cylinders: 26_300,
                sectors_per_track: 740,
            }])
            .settle_ms(1.3)
            .settle_cylinders(c)
            .head_switch_ms(1.0)
            .command_overhead_ms(0.025)
            .avg_seek_ms(5.2)
            .max_seek_ms(10.5)
            .build()
            .expect("valid geometry");
        let d = geom.adjacency_limit;
        let mm = MultiMapping::new(&geom, grid.clone()).expect("fits");
        let volume = LogicalVolume::new(geom, 1);
        let exec = QueryExecutor::with_options(
            &volume,
            0,
            ExecOptions::builder().beam(BeamPolicy::Auto).build(),
        );
        let mut rng = workload_rng(0xab4);
        let anchor = multimap_query::random_anchor(&grid, &mut rng);
        let mut row = vec![d.to_string()];
        for dim in 1..3 {
            let region = BoxRegion::beam(&grid, dim, &anchor);
            volume.idle_all(7.3);
            row.push(ms(exec.execute(QueryRequest::beam(&mm, &region)).expect("figure query runs in-grid").per_cell_ms()));
        }
        table.row(row);
    }
    table
}

/// Adjacency slack: the firmware's conservative settle margin trades
/// semi-sequential beam latency for range-query robustness (runs longer
/// than the margin miss their adjacency window).
pub fn adjacency_slack(scale: Scale) -> Table {
    let grid = grid(scale);
    let mut table = Table::new(
        "Ablation: adjacency slack (MultiMap Dim1 beam ms/cell, 0.1% range total ms)",
        &["slack_ms", "beam_Dim1", "range0.1pct_total"],
    );
    for slack in [0.0f64, 0.15, 0.3, 0.6] {
        let geom = DiskBuilder::new(format!("cheetah-like slack={slack}"))
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![ZoneSpec {
                cylinders: 26_300,
                sectors_per_track: 740,
            }])
            .settle_ms(1.3)
            .settle_cylinders(32)
            .head_switch_ms(1.0)
            .command_overhead_ms(0.025)
            .adjacency_slack_ms(slack)
            .avg_seek_ms(5.2)
            .max_seek_ms(10.5)
            .adjacency_limit(128)
            .build()
            .expect("valid geometry");
        let mm = MultiMapping::new(&geom, grid.clone()).expect("fits");
        let volume = LogicalVolume::new(geom, 1);
        let exec = QueryExecutor::new(&volume, 0);
        let mut rng = workload_rng(0xab5);
        let anchor = multimap_query::random_anchor(&grid, &mut rng);
        let region = BoxRegion::beam(&grid, 1, &anchor);
        volume.idle_all(7.3);
        let beam = exec.execute(QueryRequest::beam(&mm, &region)).expect("figure query runs in-grid").per_cell_ms();
        let range_region = random_range(&grid, 0.1, &mut rng);
        volume.idle_all(7.3);
        let range = exec.execute(QueryRequest::range(&mm, &range_region)).expect("figure query runs in-grid").total_io_ms;
        table.row(vec![format!("{slack}"), ms(beam), ms(range)]);
    }
    table
}

/// Curve clustering numbers (Moon et al.): why Hilbert beats Z-order on
/// range queries — fewer, longer runs for the same query box.
pub fn curve_clustering(_scale: Scale) -> Table {
    use multimap_sfc::{average_clusters, GrayCurve, HilbertCurve, ZCurve};
    let bits = 5; // 32^2 domain: exhaustive yet fast
    let z = ZCurve::new(2, bits).expect("valid curve");
    let h = HilbertCurve::new(2, bits).expect("valid curve");
    let g = GrayCurve::new(2, bits).expect("valid curve");
    let mut table = Table::new(
        "Ablation: average cluster count of square queries (2-D, 32x32 domain)",
        &["edge", "Z-order", "Hilbert", "Gray"],
    );
    for edge in [2u64, 4, 8, 16] {
        table.row(vec![
            edge.to_string(),
            format!("{:.2}", average_clusters(&z, edge, 1)),
            format!("{:.2}", average_clusters(&h, edge, 1)),
            format!("{:.2}", average_clusters(&g, edge, 1)),
        ]);
    }
    table
}

/// Track waste: MultiMap packs `floor(T / K0)` cubes per track and skips
/// the remainder, so a full-dataset scan runs at the layout's space
/// utilization. With T an exact multiple of K0 the waste vanishes and
/// MultiMap converges with Naive at 100% selectivity — explaining the
/// 100% endpoint of Figure 6(b).
pub fn track_waste(scale: Scale) -> Table {
    let grid = grid(scale);
    let k0 = grid.extent(0);
    let mut table = Table::new(
        "Ablation: track waste at 100% selectivity (full scan, total ms)",
        &[
            "track_len",
            "utilization",
            "Naive",
            "MultiMap",
            "mm_speedup",
        ],
    );
    // A Cheetah-like disk with the stock T=740 (30% waste for K0=259)
    // vs one whose track length is exactly K0 (zero waste).
    for spt in [740u32, k0 as u32] {
        let geom = DiskBuilder::new(format!("cheetah-like T={spt}"))
            .rpm(10_000.0)
            .surfaces(4)
            .zones(vec![ZoneSpec {
                cylinders: 26_300,
                sectors_per_track: spt,
            }])
            .settle_ms(1.3)
            .settle_cylinders(32)
            .head_switch_ms(1.0)
            .command_overhead_ms(0.025)
            .avg_seek_ms(5.2)
            .max_seek_ms(10.5)
            .adjacency_limit(128)
            .build()
            .expect("valid geometry");
        let naive = NaiveMapping::new(grid.clone(), 0);
        let mm = MultiMapping::new(&geom, grid.clone()).expect("fits");
        let util = mm.space_utilization();
        let volume = LogicalVolume::new(geom, 1);
        let exec = QueryExecutor::new(&volume, 0);
        let region = grid.bounding_region();
        volume.idle_all(5.0);
        let t_naive = exec.execute(QueryRequest::range(&naive, &region)).expect("figure query runs in-grid").total_io_ms;
        volume.idle_all(5.0);
        let t_mm = exec.execute(QueryRequest::range(&mm, &region)).expect("figure query runs in-grid").total_io_ms;
        table.row(vec![
            spt.to_string(),
            format!("{util:.2}"),
            ms(t_naive),
            ms(t_mm),
            format!("{:.2}", t_naive / t_mm),
        ]);
    }
    table
}

/// Technology trend (Section 3.1): track density doublings grow `D`,
/// and with it the number of dimensions MultiMap can support (Eq. 5),
/// without changing the semi-sequential step cost.
pub fn density_trend(scale: Scale) -> Table {
    let grid = grid(scale);
    let mut table = Table::new(
        "Ablation: track-density trend (D, N_max, MultiMap Dim1 beam ms/cell)",
        &["generation", "D", "N_max", "beam_Dim1"],
    );
    for generation in 0..=3u32 {
        let geom = multimap_disksim::profiles::density_trend(generation);
        let d = geom.adjacency_limit as u64;
        let nmax = multimap_core::max_dimensions(d);
        let mm = MultiMapping::new(&geom, grid.clone()).expect("fits");
        let volume = LogicalVolume::new(geom, 1);
        let exec = QueryExecutor::new(&volume, 0);
        let mut rng = workload_rng(0xab6);
        let anchor = multimap_query::random_anchor(&grid, &mut rng);
        let region = BoxRegion::beam(&grid, 1, &anchor);
        volume.idle_all(7.3);
        let beam = exec.execute(QueryRequest::beam(&mm, &region)).expect("figure query runs in-grid").per_cell_ms();
        table.row(vec![
            generation.to_string(),
            d.to_string(),
            nmax.to_string(),
            ms(beam),
        ]);
    }
    table
}

/// Settle jitter vs adjacency slack: with realistic settle variation, a
/// zero-slack adjacency offset misses whole revolutions on marginally
/// slow settles; the default 0.3 ms margin absorbs them.
pub fn settle_jitter(scale: Scale) -> Table {
    let grid = grid(scale);
    let mut table = Table::new(
        "Ablation: settle jitter x adjacency slack (MultiMap Dim1 beam, ms/cell)",
        &["jitter_ms", "slack_0", "slack_0.3"],
    );
    for jitter in [0.0f64, 0.1, 0.25] {
        let mut row = vec![format!("{jitter}")];
        for slack in [0.0f64, 0.3] {
            let geom = DiskBuilder::new(format!("jitter={jitter} slack={slack}"))
                .rpm(10_000.0)
                .surfaces(4)
                .zones(vec![ZoneSpec {
                    cylinders: 26_300,
                    sectors_per_track: 740,
                }])
                .settle_ms(1.3)
                .settle_cylinders(32)
                .head_switch_ms(1.0)
                .command_overhead_ms(0.025)
                .settle_jitter_ms(jitter)
                .adjacency_slack_ms(slack)
                .avg_seek_ms(5.2)
                .max_seek_ms(10.5)
                .adjacency_limit(128)
                .build()
                .expect("valid geometry");
            let mm = MultiMapping::new(&geom, grid.clone()).expect("fits");
            let volume = LogicalVolume::new(geom, 1);
            let exec = QueryExecutor::new(&volume, 0);
            let mut rng = workload_rng(0xab7);
            let anchor = multimap_query::random_anchor(&grid, &mut rng);
            let region = BoxRegion::beam(&grid, 1, &anchor);
            volume.idle_all(7.3);
            row.push(ms(exec.execute(QueryRequest::beam(&mm, &region)).expect("figure query runs in-grid").per_cell_ms()));
        }
        table.row(row);
    }
    table
}

/// Per-zone cube shapes (Section 4.4's refinement): when `Dim0` exceeds
/// the inner zones' track lengths, a single cube shape is confined to
/// the outer zones while the zoned layout exploits every zone with its
/// own `K0`.
pub fn zoned_shapes(_scale: Scale) -> Table {
    let geom = profiles::cheetah_36es(); // T = 740..470
                                         // Dim0 = 700 fits only the two outermost zones' tracks, and Dim2 is
                                         // deep enough that the dataset must span several zones.
    let grid = multimap_core::GridSpec::new([700u64, 16, 2000]);
    let mut table = Table::new(
        "Ablation: per-zone cube shapes (Dim0=700 vs zone tracks 740..470)",
        &["layout", "segments", "utilization", "beam_Dim1"],
    );
    let volume = LogicalVolume::new(geom.clone(), 1);
    let exec = QueryExecutor::new(&volume, 0);
    let mut rng = workload_rng(0xab8);
    let anchor = multimap_query::random_anchor(&grid, &mut rng);
    let region = BoxRegion::beam(&grid, 1, &anchor);

    let single = MultiMapping::new(&geom, grid.clone()).expect("fits");
    volume.idle_all(7.3);
    let b1 = exec.execute(QueryRequest::beam(&single, &region)).expect("figure query runs in-grid").per_cell_ms();
    table.row(vec![
        "single-shape".into(),
        "1".into(),
        format!("{:.2}", single.space_utilization()),
        ms(b1),
    ]);

    let zoned = ZonedMultiMapping::new(&geom, grid.clone()).expect("fits");
    volume.reset();
    volume.idle_all(7.3);
    let b2 = exec.execute(QueryRequest::beam(&zoned, &region)).expect("figure query runs in-grid").per_cell_ms();
    table.row(vec![
        "per-zone".into(),
        zoned.segment_count().to_string(),
        format!("{:.2}", zoned.space_utilization()),
        ms(b2),
    ]);
    table
}

/// Queued vs full SPTF: with the profiled estimator the full scheduler's
/// per-round work is a memoized seek plus a rotational phase — cheap
/// enough that the executor's default `sptf_limit` (4096) comfortably
/// covers paper-scale beams (≤ 259 cells), so the queued fallback no
/// longer binds there. Columns are *simulated* service time only; the
/// full scheduler sees the whole batch and should never lose to the
/// admission-windowed queue.
pub fn sptf_crossover(scale: Scale) -> Table {
    let grid = grid(scale);
    let geom = profiles::cheetah_36es();
    let mm = MultiMapping::new(&geom, grid.clone()).expect("fits");
    let mut table = Table::new(
        "Ablation: queued (TCQ-64) vs full SPTF on MultiMap cell batches (simulated total ms)",
        &["batch_cells", "full_sptf_ms", "queued_tcq64_ms", "queued_over_full"],
    );
    let paper_beam = grid.extents().iter().copied().max().unwrap_or(1) as usize;
    for n in [64usize, paper_beam, 1024, 2048] {
        let mut rng = workload_rng(0xab9 + n as u64);
        let requests: Vec<Request> = (0..n)
            .map(|_| {
                let anchor = multimap_query::random_anchor(&grid, &mut rng);
                Request::single(mm.lbn_of(&anchor).expect("anchor in grid"))
            })
            .collect();
        let volume = LogicalVolume::new(geom.clone(), 1);
        let full = volume
            .service_batch(0, &requests, SchedulePolicy::Sptf)
            .expect("batch serves")
            .total_ms;
        volume.reset();
        let queued = volume
            .service_batch(0, &requests, SchedulePolicy::QueuedSptf(64))
            .expect("batch serves")
            .total_ms;
        table.row(vec![
            n.to_string(),
            ms(full),
            ms(queued),
            format!("{:.2}", queued / full),
        ]);
    }
    table
}

/// All ablations, fanned across the experiment engine (each table is an
/// independent seeded experiment; output order is fixed).
pub fn run_all(scale: Scale) -> Vec<Table> {
    let experiments: Vec<fn(Scale) -> Table> = vec![
        cube_shape,
        queue_depth,
        request_sorting,
        adjacency_depth,
        adjacency_slack,
        curve_clustering,
        track_waste,
        density_trend,
        settle_jitter,
        zoned_shapes,
        sptf_crossover,
    ];
    multimap_engine::sweep(&experiments, |f| f(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_one_is_worst_for_multimap() {
        let t = queue_depth(Scale::Quick);
        let d1: f64 = t.rows[0][2].parse().unwrap();
        let d64: f64 = t.rows[2][2].parse().unwrap();
        assert!(d64 <= d1, "TCQ must help MultiMap ranges: {d64} vs {d1}");
    }

    #[test]
    fn hilbert_clusters_better_than_zorder() {
        let t = curve_clustering(Scale::Quick);
        for row in &t.rows {
            let z: f64 = row[1].parse().unwrap();
            let h: f64 = row[2].parse().unwrap();
            assert!(h <= z + 1e-9, "edge {}: hilbert {h} vs z {z}", row[0]);
        }
    }

    #[test]
    fn slack_zero_hurts_ranges() {
        let t = adjacency_slack(Scale::Quick);
        let r0: f64 = t.rows[0][2].parse().unwrap(); // slack 0
        let r3: f64 = t.rows[2][2].parse().unwrap(); // slack 0.3
        assert!(r3 < r0 * 1.15, "slack 0.3 range {r3} vs slack 0 {r0}");
        // Beams get (slightly) slower with slack.
        let b0: f64 = t.rows[0][1].parse().unwrap();
        let b3: f64 = t.rows[2][1].parse().unwrap();
        assert!(b3 >= b0 - 0.05, "beam {b3} vs {b0}");
    }

    #[test]
    fn zoned_layout_spans_more_zones() {
        let t = zoned_shapes(Scale::Quick);
        let single_util: f64 = t.rows[0][2].parse().unwrap();
        let zoned_segments: usize = t.rows[1][1].parse().unwrap();
        let zoned_util: f64 = t.rows[1][2].parse().unwrap();
        assert!(zoned_segments >= 2);
        assert!(zoned_util >= single_util - 1e-9);
        // Both keep beams settle-bound.
        for row in &t.rows {
            let beam: f64 = row[3].parse().unwrap();
            assert!(beam < 3.0, "{}: {beam}", row[0]);
        }
    }

    #[test]
    fn slack_absorbs_settle_jitter() {
        let t = settle_jitter(Scale::Quick);
        // At the highest jitter, slack 0.3 must beat slack 0 clearly.
        let last = t.rows.last().unwrap();
        let no_slack: f64 = last[1].parse().unwrap();
        let with_slack: f64 = last[2].parse().unwrap();
        assert!(
            with_slack < no_slack,
            "slack must absorb jitter: {with_slack} vs {no_slack}"
        );
        // Without jitter, slack costs a little but not much.
        let first = &t.rows[0];
        let base: f64 = first[1].parse().unwrap();
        let padded: f64 = first[2].parse().unwrap();
        assert!(padded < base + 0.5);
    }

    #[test]
    fn density_trend_monotone_nmax() {
        let t = density_trend(Scale::Quick);
        let nmax: Vec<u32> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(nmax.windows(2).all(|w| w[1] == w[0] + 1), "{nmax:?}");
        // Semi-sequential step cost stays settle-bound across generations.
        for row in &t.rows {
            let beam: f64 = row[3].parse().unwrap();
            assert!(beam < 2.5, "gen {}: {beam}", row[0]);
        }
    }

    #[test]
    fn zero_waste_track_length_converges_full_scans() {
        let t = track_waste(Scale::Quick);
        let stock: f64 = t.rows[0][4].parse().unwrap();
        let exact: f64 = t.rows[1][4].parse().unwrap();
        // With T = 2*K0 the full scan converges with Naive; with the
        // stock track length it runs at the utilization.
        assert!(exact > stock, "exact-fit {exact} vs stock {stock}");
        assert!(
            exact > 0.85,
            "exact-fit speedup {exact} should approach 1.0"
        );
    }

    #[test]
    fn full_sptf_no_worse_than_queued_at_beam_scale() {
        let t = sptf_crossover(Scale::Quick);
        // Paper-scale beam row (the grid's largest extent) and below:
        // the full scheduler must not lose to the admission window, so
        // raising sptf_limit past those sizes is sound.
        for row in &t.rows[..2] {
            let full: f64 = row[1].parse().unwrap();
            let queued: f64 = row[2].parse().unwrap();
            assert!(
                full <= queued * 1.02 + 0.5,
                "batch {}: full {full} vs queued {queued}",
                row[0]
            );
        }
    }

    #[test]
    fn sorting_beats_natural_order() {
        let t = request_sorting(Scale::Quick);
        for row in &t.rows {
            let natural: f64 = row[1].parse().unwrap();
            let tcq: f64 = row[3].parse().unwrap();
            assert!(
                tcq <= natural * 1.05,
                "{}: {tcq} vs natural {natural}",
                row[0]
            );
        }
    }
}
