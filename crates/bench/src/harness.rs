//! Shared experiment scaffolding.

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use multimap_core::{
    hilbert_mapping, zorder_mapping, GridSpec, Mapping, MultiMapping, NaiveMapping,
};
use multimap_disksim::DiskGeometry;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Shrunken datasets and fewer repetitions (seconds, for CI).
    Quick,
    /// Quick-sized figures plus a selection-throughput stress pass of
    /// tens of millions of scheduler serve decisions across both
    /// evaluation drives (the scale the checked-in `BENCH_pr6.json`
    /// baseline is generated at).
    Large,
    /// The paper's dataset sizes and repetition counts (minutes).
    Paper,
}

impl Scale {
    /// The synthetic 3-D chunk per disk (Section 5.3: ≤ 259³).
    pub fn synthetic_grid(&self) -> GridSpec {
        match self {
            // Keep the paper's Dim0 extent: it sets the stride that
            // makes Naive's non-primary beams pay rotational latency.
            // `Large` stresses the scheduler, not the figure sweeps, so
            // its figure datasets stay quick-sized.
            Scale::Quick | Scale::Large => GridSpec::new([259u64, 64, 32]),
            Scale::Paper => GridSpec::new([259u64, 259, 259]),
        }
    }

    /// Beam-query repetitions (paper: 15 runs). Quick scale still
    /// averages enough anchors that mapping comparisons are stable
    /// across workload-RNG streams.
    pub fn beam_runs(&self) -> usize {
        match self {
            Scale::Quick | Scale::Large => 10,
            Scale::Paper => 15,
        }
    }

    /// Range-query repetitions per selectivity.
    pub fn range_runs(&self) -> usize {
        match self {
            Scale::Quick | Scale::Large => 2,
            Scale::Paper => 3,
        }
    }

    /// Range selectivities for Figure 6(b), in percent.
    pub fn selectivities(&self) -> Vec<f64> {
        match self {
            Scale::Quick | Scale::Large => vec![0.01, 0.1, 1.0, 10.0, 40.0, 100.0],
            Scale::Paper => vec![0.01, 0.1, 1.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0],
        }
    }

    /// Serve decisions per `(profile, window)` cell of the selection
    /// bench (see [`crate::selection`]). At `Large` the full trendline
    /// streams tens of millions of requests through the incremental
    /// selector across both evaluation drives.
    pub fn selection_decisions(&self) -> u64 {
        match self {
            Scale::Quick => 40_000,
            Scale::Paper => 500_000,
            Scale::Large => 2_500_000,
        }
    }

    /// Slug used in bench reports.
    pub fn slug(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Large => "large",
            Scale::Paper => "paper",
        }
    }
}

/// The four placements of the paper's figures, built for one disk.
pub fn build_mappings(geom: &DiskGeometry, grid: &GridSpec) -> Vec<Box<dyn Mapping>> {
    vec![
        Box::new(NaiveMapping::new(grid.clone(), 0)),
        Box::new(zorder_mapping(grid.clone(), 0, 1).expect("grid fits a 64-bit curve")),
        Box::new(hilbert_mapping(grid.clone(), 0, 1).expect("grid fits a 64-bit curve")),
        Box::new(MultiMapping::new(geom, grid.clone()).expect("grid fits the disk")),
    ]
}

/// A printable, saveable result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (figure id + description).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Load a table back from a TSV written by [`Self::save_tsv`].
    pub fn load_tsv(path: &Path, title: impl Into<String>) -> std::io::Result<Self> {
        let text = fs::read_to_string(path)?;
        let mut lines = text.lines();
        let header: Vec<String> = lines
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty TSV"))?
            .split('\t')
            .map(|s| s.to_string())
            .collect();
        let mut table = Table {
            title: title.into(),
            header,
            rows: Vec::new(),
        };
        for line in lines {
            if line.is_empty() {
                continue;
            }
            table.row(line.split('\t').map(|s| s.to_string()).collect());
        }
        Ok(table)
    }

    /// Save as TSV under `dir/<name>.tsv`.
    pub fn save_tsv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        fs::write(dir.join(format!("{name}.tsv")), out)
    }
}

/// Format milliseconds with three decimals.
pub fn ms(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use multimap_disksim::profiles;

    #[test]
    fn scales_differ() {
        assert!(Scale::Quick.synthetic_grid().cells() < Scale::Paper.synthetic_grid().cells());
        assert!(Scale::Quick.beam_runs() < Scale::Paper.beam_runs());
        assert!(Scale::Paper.selectivities().contains(&100.0));
        // Large stresses selection, not the figure sweeps.
        assert_eq!(
            Scale::Large.synthetic_grid().cells(),
            Scale::Quick.synthetic_grid().cells()
        );
        assert!(Scale::Quick.selection_decisions() < Scale::Paper.selection_decisions());
        assert!(Scale::Paper.selection_decisions() < Scale::Large.selection_decisions());
        assert_eq!(Scale::Large.slug(), "large");
    }

    #[test]
    fn mapping_set_has_the_figure_lineup() {
        let geom = profiles::small();
        let grid = GridSpec::new([60u64, 8, 6]);
        let ms = build_mappings(&geom, &grid);
        let names: Vec<&str> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["Naive", "Z-order", "Hilbert", "MultiMap"]);
    }

    #[test]
    fn table_renders_and_saves() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("bb"));
        let dir = std::env::temp_dir().join("multimap-bench-test");
        t.save_tsv(&dir, "demo").unwrap();
        let read = std::fs::read_to_string(dir.join("demo.tsv")).unwrap();
        assert!(read.starts_with("a\tbb"));
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("roundtrip", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        let dir = std::env::temp_dir().join("multimap-bench-tsv");
        t.save_tsv(&dir, "rt").unwrap();
        let back = Table::load_tsv(&dir.join("rt.tsv"), "roundtrip").unwrap();
        assert_eq!(back.header, t.header);
        assert_eq!(back.rows, t.rows);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
