//! Figure 6: beam and range queries on the synthetic uniform 3-D dataset
//! (Section 5.3). The paper's dataset is 1024³ cells partitioned into
//! ≤259³ chunks, one per disk; performance is reported per disk, so the
//! experiment runs one chunk on each evaluation drive.

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_core::{
    hilbert_mapping, zorder_mapping, BoxRegion, Mapping, MultiMapping, NaiveMapping,
};
use multimap_disksim::profiles;
use multimap_lvm::LogicalVolume;
use multimap_query::{random_anchor, random_range, workload_rng, QueryExecutor, QueryResult};

use crate::harness::{ms, Scale, Table};

/// Figure 6(a): average I/O time per cell for beam queries along each
/// dimension, for all four mappings on both disks.
pub fn run_beams(scale: Scale) -> Table {
    let grid = scale.synthetic_grid();
    let runs = scale.beam_runs();
    // The linearised mappings are geometry-independent: build them once.
    let naive = NaiveMapping::new(grid.clone(), 0);
    let zord = zorder_mapping(grid.clone(), 0, 1).expect("grid fits");
    let hilb = hilbert_mapping(grid.clone(), 0, 1).expect("grid fits");

    let mut table = Table::new(
        format!(
            "Figure 6(a): beam queries on the synthetic 3-D dataset {:?} (avg ms/cell, {} runs)",
            grid.extents(),
            runs
        ),
        &["disk", "mapping", "Dim0", "Dim1", "Dim2"],
    );

    for geom in profiles::evaluation_disks() {
        let mm = MultiMapping::new(&geom, grid.clone()).expect("chunk fits the disk");
        let mappings: Vec<&dyn Mapping> = vec![&naive, &zord, &hilb, &mm];
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);

        // Same anchors for every mapping (paper: random fixed coords).
        let mut rng = workload_rng(0x6a61);
        let anchors: Vec<Vec<u64>> = (0..runs).map(|_| random_anchor(&grid, &mut rng)).collect();

        for m in &mappings {
            let mut per_dim = Vec::new();
            for dim in 0..3 {
                let mut acc = QueryResult::default();
                for anchor in &anchors {
                    let region = BoxRegion::beam(&grid, dim, anchor);
                    volume.idle_all(7.3); // decorrelate rotational phase
                    acc.accumulate(&exec.beam(*m, &region).expect("figure query runs in-grid"));
                }
                per_dim.push(acc.per_cell_ms());
            }
            table.row(vec![
                geom.name.clone(),
                m.name().to_string(),
                ms(per_dim[0]),
                ms(per_dim[1]),
                ms(per_dim[2]),
            ]);
        }
    }
    table
}

/// Figure 6(b): range-query speedup relative to Naive as a function of
/// selectivity.
pub fn run_ranges(scale: Scale) -> Table {
    let grid = scale.synthetic_grid();
    let runs = scale.range_runs();
    let naive = NaiveMapping::new(grid.clone(), 0);
    let zord = zorder_mapping(grid.clone(), 0, 1).expect("grid fits");
    let hilb = hilbert_mapping(grid.clone(), 0, 1).expect("grid fits");

    let mut table = Table::new(
        format!(
            "Figure 6(b): range queries on the synthetic 3-D dataset {:?} (speedup vs Naive, {} runs)",
            grid.extents(),
            runs
        ),
        &[
            "disk",
            "selectivity_pct",
            "naive_total_ms",
            "zorder_speedup",
            "hilbert_speedup",
            "multimap_speedup",
        ],
    );

    // The two disks are independent simulations: run them on separate
    // threads (time inside each simulator is virtual, so parallelism
    // cannot change any result).
    let disks = profiles::evaluation_disks();
    let mut per_disk_rows: Vec<Vec<Vec<String>>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = disks
            .iter()
            .map(|geom| {
                let grid = grid.clone();
                let naive = &naive;
                let zord = &zord;
                let hilb = &hilb;
                scope.spawn(move |_| {
                    let mm = MultiMapping::new(geom, grid.clone()).expect("chunk fits the disk");
                    let mappings: Vec<&dyn Mapping> = vec![naive, zord, hilb, &mm];
                    let volume = LogicalVolume::new(geom.clone(), 1);
                    let exec = QueryExecutor::new(&volume, 0);
                    let mut rows = Vec::new();
                    for sel in scale.selectivities() {
                        // Identical query boxes for every mapping.
                        let mut rng = workload_rng(0x6b00 + (sel * 100.0) as u64);
                        let regions: Vec<BoxRegion> = (0..runs)
                            .map(|_| random_range(&grid, sel, &mut rng))
                            .collect();
                        let mut totals = [0.0f64; 4];
                        for (i, m) in mappings.iter().enumerate() {
                            for region in &regions {
                                volume.idle_all(11.7);
                                totals[i] += exec.range(*m, region).expect("figure query runs in-grid").total_io_ms;
                            }
                        }
                        rows.push(vec![
                            geom.name.clone(),
                            format!("{sel}"),
                            ms(totals[0]),
                            format!("{:.2}", totals[0] / totals[1]),
                            format!("{:.2}", totals[0] / totals[2]),
                            format!("{:.2}", totals[0] / totals[3]),
                        ]);
                    }
                    rows
                })
            })
            .collect();
        for h in handles {
            per_disk_rows.push(h.join().expect("disk thread panicked"));
        }
    })
    .expect("crossbeam scope");
    for rows in per_disk_rows {
        for row in rows {
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_beams_have_paper_shape() {
        let t = run_beams(Scale::Quick);
        assert_eq!(t.rows.len(), 8); // 2 disks x 4 mappings
                                     // Per disk: Naive Dim0 streams; MultiMap Dim1/Dim2 beat Naive.
        for disk_rows in t.rows.chunks(4) {
            let naive: Vec<f64> = disk_rows[0][2..5]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect();
            let mm: Vec<f64> = disk_rows[3][2..5]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect();
            assert!(naive[0] < 0.3, "Naive Dim0 should stream: {naive:?}");
            assert!(mm[1] < naive[1], "MultiMap must beat Naive on Dim1");
            assert!(mm[2] < naive[2], "MultiMap must beat Naive on Dim2");
        }
    }
}
