//! Figure 6: beam and range queries on the synthetic uniform 3-D dataset
//! (Section 5.3). The paper's dataset is 1024³ cells partitioned into
//! ≤259³ chunks, one per disk; performance is reported per disk, so the
//! experiment runs one chunk on each evaluation drive.

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_core::{
    hilbert_mapping, zorder_mapping, BoxRegion, Mapping, MultiMapping, NaiveMapping,
};
use multimap_disksim::profiles;
use multimap_lvm::LogicalVolume;
use multimap_query::{
    random_anchor, random_range, workload_rng, QueryExecutor, QueryRequest, QueryResult,
};
use multimap_telemetry::Metrics;

use crate::harness::{ms, Scale, Table};

/// Merge per-cell metrics in submission order and record the fold under
/// `label` in the global registry — a no-op while telemetry is disabled.
/// Submission-order folding matches `multimap_engine::sweep`'s result
/// order, so the merged record is identical at any thread count.
pub(crate) fn record_cells(label: &str, cells: Vec<Metrics>) {
    if multimap_telemetry::enabled() {
        multimap_telemetry::global().record(label, Metrics::merge_ordered(cells.iter()));
    }
}

/// Figure 6(a): average I/O time per cell for beam queries along each
/// dimension, for all four mappings on both disks.
pub fn run_beams(scale: Scale) -> Table {
    let grid = scale.synthetic_grid();
    let runs = scale.beam_runs();
    // The linearised mappings are geometry-independent: build them once.
    let naive = NaiveMapping::new(grid.clone(), 0);
    let zord = zorder_mapping(grid.clone(), 0, 1).expect("grid fits");
    let hilb = hilbert_mapping(grid.clone(), 0, 1).expect("grid fits");

    let mut table = Table::new(
        format!(
            "Figure 6(a): beam queries on the synthetic 3-D dataset {:?} (avg ms/cell, {} runs)",
            grid.extents(),
            runs
        ),
        &["disk", "mapping", "Dim0", "Dim1", "Dim2"],
    );

    // Every (disk, mapping) pair is an independent cell: each gets a
    // fresh volume and the same anchor workload (seeded rng), so rows
    // are reproducible and identical at any thread count.
    let disks = profiles::evaluation_disks();
    let cells: Vec<(usize, usize)> = (0..disks.len())
        .flat_map(|d| (0..4usize).map(move |m| (d, m)))
        .collect();
    let rows = multimap_engine::sweep(&cells, |&(d, mi)| {
        let geom = &disks[d];
        let mm;
        let m: &dyn Mapping = match mi {
            0 => &naive,
            1 => &zord,
            2 => &hilb,
            _ => {
                mm = MultiMapping::new(geom, grid.clone()).expect("chunk fits the disk");
                &mm
            }
        };
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);

        // Same anchors for every mapping (paper: random fixed coords).
        let mut rng = workload_rng(0x6a61);
        let anchors: Vec<Vec<u64>> = (0..runs).map(|_| random_anchor(&grid, &mut rng)).collect();

        let mut metrics = Metrics::new();
        let record = multimap_telemetry::enabled();
        let mut per_dim = Vec::new();
        for dim in 0..3 {
            let mut acc = QueryResult::default();
            for anchor in &anchors {
                let region = BoxRegion::beam(&grid, dim, anchor);
                volume.idle_all(7.3); // decorrelate rotational phase
                let mut req = QueryRequest::beam(m, &region);
                if record {
                    req = req.with_sink(&mut metrics);
                }
                acc.accumulate(&exec.execute(req).expect("figure query runs in-grid"));
            }
            per_dim.push(acc.per_cell_ms());
        }
        let row = vec![
            geom.name.clone(),
            m.name().to_string(),
            ms(per_dim[0]),
            ms(per_dim[1]),
            ms(per_dim[2]),
        ];
        (row, metrics)
    });
    let mut cell_metrics = Vec::with_capacity(rows.len());
    for (row, m) in rows {
        table.row(row);
        cell_metrics.push(m);
    }
    record_cells("fig6a_beams", cell_metrics);
    table
}

/// Figure 6(b): range-query speedup relative to Naive as a function of
/// selectivity.
pub fn run_ranges(scale: Scale) -> Table {
    let grid = scale.synthetic_grid();
    let runs = scale.range_runs();
    let naive = NaiveMapping::new(grid.clone(), 0);
    let zord = zorder_mapping(grid.clone(), 0, 1).expect("grid fits");
    let hilb = hilbert_mapping(grid.clone(), 0, 1).expect("grid fits");

    let mut table = Table::new(
        format!(
            "Figure 6(b): range queries on the synthetic 3-D dataset {:?} (speedup vs Naive, {} runs)",
            grid.extents(),
            runs
        ),
        &[
            "disk",
            "selectivity_pct",
            "naive_total_ms",
            "zorder_speedup",
            "hilbert_speedup",
            "multimap_speedup",
        ],
    );

    // Every (disk, selectivity) pair is an independent cell with its own
    // seeded workload and fresh volume — the experiment engine fans them
    // out and returns rows in submission order (simulator time is
    // virtual, so parallelism cannot change any number).
    let disks = profiles::evaluation_disks();
    let sels = scale.selectivities();
    let cells: Vec<(usize, f64)> = disks
        .iter()
        .enumerate()
        .flat_map(|(d, _)| sels.iter().map(move |&s| (d, s)))
        .collect();
    let rows = multimap_engine::sweep(&cells, |&(d, sel)| {
        let geom = &disks[d];
        let mm = MultiMapping::new(geom, grid.clone()).expect("chunk fits the disk");
        let mappings: Vec<&dyn Mapping> = vec![&naive, &zord, &hilb, &mm];
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);
        // Identical query boxes for every mapping.
        let mut rng = workload_rng(0x6b00 + (sel * 100.0) as u64);
        let regions: Vec<BoxRegion> = (0..runs)
            .map(|_| random_range(&grid, sel, &mut rng))
            .collect();
        let mut metrics = Metrics::new();
        let record = multimap_telemetry::enabled();
        let mut totals = [0.0f64; 4];
        for (i, m) in mappings.iter().enumerate() {
            for region in &regions {
                volume.idle_all(11.7);
                let mut req = QueryRequest::range(*m, region);
                if record {
                    req = req.with_sink(&mut metrics);
                }
                totals[i] += exec
                    .execute(req)
                    .expect("figure query runs in-grid")
                    .total_io_ms;
            }
        }
        let row = vec![
            geom.name.clone(),
            format!("{sel}"),
            ms(totals[0]),
            format!("{:.2}", totals[0] / totals[1]),
            format!("{:.2}", totals[0] / totals[2]),
            format!("{:.2}", totals[0] / totals[3]),
        ];
        (row, metrics)
    });
    let mut cell_metrics = Vec::with_capacity(rows.len());
    for (row, m) in rows {
        table.row(row);
        cell_metrics.push(m);
    }
    record_cells("fig6b_ranges", cell_metrics);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_beams_have_paper_shape() {
        let t = run_beams(Scale::Quick);
        assert_eq!(t.rows.len(), 8); // 2 disks x 4 mappings
                                     // Per disk: Naive Dim0 streams; MultiMap Dim1/Dim2 beat Naive.
        for disk_rows in t.rows.chunks(4) {
            let naive: Vec<f64> = disk_rows[0][2..5]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect();
            let mm: Vec<f64> = disk_rows[3][2..5]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect();
            assert!(naive[0] < 0.3, "Naive Dim0 should stream: {naive:?}");
            assert!(mm[1] < naive[1], "MultiMap must beat Naive on Dim1");
            assert!(mm[2] < naive[2], "MultiMap must beat Naive on Dim2");
        }
    }
}
