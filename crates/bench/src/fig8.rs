//! Figure 8: OLAP queries Q1–Q5 on the TPC-H-derived 4-D cube
//! (Section 5.5).

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_core::{hilbert_mapping, zorder_mapping, Mapping, MultiMapping, NaiveMapping};
use multimap_disksim::profiles;
use multimap_lvm::LogicalVolume;
use multimap_olap::{cube, ALL_QUERIES};
use multimap_query::{workload_rng, QueryExecutor, QueryOp, QueryRequest, QueryResult};
use multimap_telemetry::Metrics;

use crate::fig6::record_cells;
use crate::harness::{ms, Scale, Table};

/// Figure 8: average I/O time per cell for Q1–Q5 on both disks.
pub fn run(scale: Scale) -> Table {
    let chunk = match scale {
        Scale::Quick | Scale::Large => cube::small_chunk(),
        Scale::Paper => cube::disk_chunk(),
    };
    let runs = scale.range_runs().max(3);
    let naive = NaiveMapping::new(chunk.clone(), 0);
    let zord = zorder_mapping(chunk.clone(), 0, 1).expect("chunk fits");
    let hilb = hilbert_mapping(chunk.clone(), 0, 1).expect("chunk fits");

    let mut table = Table::new(
        format!(
            "Figure 8: OLAP queries on the {:?} chunk (avg ms/cell, {} runs)",
            chunk.extents(),
            runs
        ),
        &["disk", "mapping", "Q1", "Q2", "Q3", "Q4", "Q5"],
    );

    // One engine cell per (disk, mapping); each query draws from its own
    // seeded rng, so regions are identical across mappings and threads.
    let disks = profiles::evaluation_disks();
    let cells: Vec<(usize, usize)> = (0..disks.len())
        .flat_map(|d| (0..4usize).map(move |m| (d, m)))
        .collect();
    let rows = multimap_engine::sweep(&cells, |&(d, mi)| {
        let geom = &disks[d];
        let mm;
        let m: &dyn Mapping = match mi {
            0 => &naive,
            1 => &zord,
            2 => &hilb,
            _ => {
                mm = MultiMapping::new(geom, chunk.clone()).expect("chunk fits the disk");
                &mm
            }
        };
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);

        let mut metrics = Metrics::new();
        let record = multimap_telemetry::enabled();
        let mut row = vec![geom.name.clone(), m.name().to_string()];
        for q in ALL_QUERIES {
            // Same regions per query across mappings.
            let mut rng = workload_rng(0x8000 + q.label().as_bytes()[1] as u64);
            let mut acc = QueryResult::default();
            for _ in 0..runs {
                let region = q.region(&chunk, &mut rng);
                volume.idle_all(9.1);
                let op = if q.is_beam() {
                    QueryOp::Beam
                } else {
                    QueryOp::Range
                };
                let mut req = QueryRequest::new(op, m, &region);
                if record {
                    req = req.with_sink(&mut metrics);
                }
                acc.accumulate(&exec.execute(req).expect("figure query runs in-grid"));
            }
            row.push(ms(acc.per_cell_ms()));
        }
        (row, metrics)
    });
    let mut cell_metrics = Vec::with_capacity(rows.len());
    for (row, m) in rows {
        table.row(row);
        cell_metrics.push(m);
    }
    record_cells("fig8_olap", cell_metrics);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_olap_shape() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 8);
        for disk_rows in t.rows.chunks(4) {
            // Q1 (major-order beam): Naive streams, curves are orders of
            // magnitude slower; MultiMap close to Naive.
            let naive_q1: f64 = disk_rows[0][2].parse().unwrap();
            let hilb_q1: f64 = disk_rows[2][2].parse().unwrap();
            let mm_q1: f64 = disk_rows[3][2].parse().unwrap();
            assert!(hilb_q1 > 5.0 * naive_q1, "curves must lose Q1 badly");
            assert!(
                mm_q1 < 3.0 * naive_q1,
                "MultiMap must stay near Naive on Q1"
            );
            // Q2 (nation beam): MultiMap beats Naive.
            let naive_q2: f64 = disk_rows[0][3].parse().unwrap();
            let mm_q2: f64 = disk_rows[3][3].parse().unwrap();
            assert!(mm_q2 < naive_q2, "MultiMap must beat Naive on Q2");
        }
    }
}
