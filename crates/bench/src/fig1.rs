//! Figure 1(a): the conceptual seek profile of modern disks — a settle
//! plateau up to `C` cylinders, then a growing tail.

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_disksim::profiles;

use crate::harness::{ms, Table};

/// Seek time vs cylinder distance for both evaluation disks.
pub fn run() -> Table {
    let disks = profiles::evaluation_disks();
    let mut header = vec!["cyl_distance".to_string()];
    for d in &disks {
        header.push(d.name.clone());
    }
    let mut table = Table {
        title: "Figure 1(a): seek time vs cylinder distance [ms]".into(),
        header,
        rows: Vec::new(),
    };
    let mut distances: Vec<u64> = vec![1, 2, 4, 8, 16, 32, 33, 48, 64, 128, 256, 512];
    let mut d = 1024u64;
    let max = disks
        .iter()
        .map(|g| g.total_cylinders())
        .min()
        .expect("two disks")
        - 1;
    while d < max {
        distances.push(d);
        d *= 2;
    }
    distances.push(max);
    for d in distances {
        let mut row = vec![d.to_string()];
        for g in &disks {
            row.push(ms(g.seek_ms(d)));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_has_plateau_then_growth() {
        let t = run();
        // Distances 1 and 32 share the settle plateau; the last row is
        // the full stroke, well above it.
        let first: f64 = t.rows[0][1].parse().unwrap();
        let at_c: f64 = t.rows.iter().find(|r| r[0] == "32").expect("row for C")[1]
            .parse()
            .unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert_eq!(first, at_c, "settle plateau must be flat");
        assert!(last > 4.0 * first, "full stroke must dominate settle");
    }
}
