//! Figure 7: beam and range queries on the (synthetic) earthquake
//! dataset (Section 5.4).

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_disksim::profiles;
use multimap_lvm::LogicalVolume;
use multimap_octree::{
    earthquake_tree, EarthquakeConfig, LeafLinearMapping, LeafOrder, LeafPlacement,
    LeafQueryExecutor, Octree, SkewedMultiMap,
};
use multimap_query::workload_rng;
use rand::RngExt;

use crate::harness::{ms, Scale, Table};

fn config(scale: Scale) -> EarthquakeConfig {
    match scale {
        Scale::Quick | Scale::Large => EarthquakeConfig::quick(),
        Scale::Paper => EarthquakeConfig::default(),
    }
}

fn min_region_cells(scale: Scale) -> u64 {
    match scale {
        Scale::Quick | Scale::Large => 64,
        Scale::Paper => 4_096,
    }
}

/// Figure 7(a): beam queries along X, Y, Z (avg ms per element).
pub fn run_beams(scale: Scale) -> Table {
    let tree = earthquake_tree(&config(scale));
    run_beams_on(&tree, scale)
}

fn run_beams_on(tree: &Octree, scale: Scale) -> Table {
    let runs = scale.beam_runs();
    let baselines = [
        LeafLinearMapping::new(tree, LeafOrder::XMajor, 0),
        LeafLinearMapping::new(tree, LeafOrder::ZOrder, 0),
        LeafLinearMapping::new(tree, LeafOrder::Hilbert, 0),
    ];

    let mut table = Table::new(
        format!(
            "Figure 7(a): beam queries on the earthquake dataset ({} elements, avg ms/cell, {} runs)",
            tree.leaf_count(),
            runs
        ),
        &["disk", "mapping", "X", "Y", "Z"],
    );

    // One engine cell per (disk, placement); the skewed MultiMap layout
    // is rebuilt inside its cell (same inputs → same layout), baselines
    // are shared read-only.
    let disks = profiles::evaluation_disks();
    let cells: Vec<(usize, usize)> = (0..disks.len())
        .flat_map(|d| (0..4usize).map(move |p| (d, p)))
        .collect();
    let rows = multimap_engine::sweep(&cells, |&(d, pi)| {
        let geom = &disks[d];
        let skewed;
        let placement = if pi < 3 {
            LeafPlacement::Linear(&baselines[pi])
        } else {
            skewed = SkewedMultiMap::build(geom, tree, min_region_cells(scale))
                .expect("dataset fits")
                .0;
            LeafPlacement::MultiMap(&skewed)
        };
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = LeafQueryExecutor::new(&volume, 0);

        let mut rng = workload_rng(0x7a);
        let anchors: Vec<[u64; 3]> = (0..runs)
            .map(|_| {
                [
                    rng.random_range(0..tree.domain_size()),
                    rng.random_range(0..tree.domain_size()),
                    rng.random_range(0..tree.domain_size()),
                ]
            })
            .collect();

        let mut per_dim = Vec::new();
        for dim in 0..3 {
            let mut total = 0.0;
            let mut cells = 0u64;
            for anchor in &anchors {
                volume.idle_all(7.3);
                let r = exec
                    .beam(tree, &placement, dim, *anchor)
                    .expect("figure query runs in-grid");
                total += r.total_io_ms;
                cells += r.cells;
            }
            per_dim.push(total / cells.max(1) as f64);
        }
        vec![
            geom.name.clone(),
            placement.name().to_string(),
            ms(per_dim[0]),
            ms(per_dim[1]),
            ms(per_dim[2]),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table
}

/// Figure 7(b): range queries at the paper's selectivities (total ms).
pub fn run_ranges(scale: Scale) -> Table {
    let tree = earthquake_tree(&config(scale));
    // Query boxes land in dense slabs or coarse background at random, so
    // totals have high variance; more repetitions than Fig. 6(b).
    let runs = match scale {
        Scale::Quick | Scale::Large => 3,
        Scale::Paper => 9,
    };
    // The paper's selectivities (0.0001-0.003%) target a 114M-element
    // dataset; our synthetic tree has ~35x fewer elements, so the same
    // *spatial* selectivity fetches ~35x fewer elements and lands in a
    // different regime. Report the paper's values plus element-count-
    // matched ones (scaled by the element ratio).
    let selectivities = [0.0001f64, 0.001, 0.003, 0.01, 0.05, 0.1];
    let baselines = [
        LeafLinearMapping::new(&tree, LeafOrder::XMajor, 0),
        LeafLinearMapping::new(&tree, LeafOrder::ZOrder, 0),
        LeafLinearMapping::new(&tree, LeafOrder::Hilbert, 0),
    ];

    let mut table = Table::new(
        format!(
            "Figure 7(b): range queries on the earthquake dataset (total ms, {} runs)",
            runs
        ),
        &[
            "disk",
            "selectivity_pct",
            "Naive",
            "Z-order",
            "Hilbert",
            "MultiMap",
        ],
    );

    let domain_cells = (tree.domain_size() as f64).powi(3);
    // One engine cell per disk (the skewed layout build is the dominant
    // per-disk cost, so finer cells would rebuild it per selectivity).
    let disks = profiles::evaluation_disks();
    let per_disk = multimap_engine::sweep(&disks, |geom| {
        let (skewed, _) =
            SkewedMultiMap::build(geom, &tree, min_region_cells(scale)).expect("dataset fits");
        let mut placements: Vec<LeafPlacement> =
            baselines.iter().map(LeafPlacement::Linear).collect();
        placements.push(LeafPlacement::MultiMap(&skewed));
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = LeafQueryExecutor::new(&volume, 0);

        let mut rows = Vec::new();
        for sel in selectivities {
            let edge =
                ((domain_cells * sel / 100.0).cbrt().round() as u64).clamp(1, tree.domain_size());
            let mut rng = workload_rng(0x7b00 + (sel * 1e5) as u64);
            let boxes: Vec<([u64; 3], [u64; 3])> = (0..runs)
                .map(|_| {
                    let lo = [
                        rng.random_range(0..=(tree.domain_size() - edge)),
                        rng.random_range(0..=(tree.domain_size() - edge)),
                        rng.random_range(0..=(tree.domain_size() - edge)),
                    ];
                    (lo, [lo[0] + edge - 1, lo[1] + edge - 1, lo[2] + edge - 1])
                })
                .collect();

            let mut row = vec![geom.name.clone(), format!("{sel}")];
            for p in &placements {
                let mut total = 0.0;
                for (lo, hi) in &boxes {
                    volume.idle_all(11.7);
                    total += exec
                        .range(&tree, p, *lo, *hi)
                        .expect("figure query runs in-grid")
                        .total_io_ms;
                }
                row.push(ms(total / runs as f64));
            }
            rows.push(row);
        }
        rows
    });
    for rows in per_disk {
        for row in rows {
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_beams_favor_multimap_on_y_and_z() {
        let t = run_beams(Scale::Quick);
        assert_eq!(t.rows.len(), 8);
        for disk_rows in t.rows.chunks(4) {
            let naive_y: f64 = disk_rows[0][3].parse().unwrap();
            let naive_z: f64 = disk_rows[0][4].parse().unwrap();
            let mm_y: f64 = disk_rows[3][3].parse().unwrap();
            let mm_z: f64 = disk_rows[3][4].parse().unwrap();
            // At quick scale Naive's Y stride fits inside a track, so
            // its Y beams are near-sequential while MultiMap pays one
            // settle per cell: demand MultiMap stays within the
            // settle/sequential cost gap on Y. Z must be a clear
            // MultiMap win (Naive strides a full plane per cell).
            assert!(mm_y < naive_y * 2.5, "MultiMap Y {mm_y} vs Naive {naive_y}");
            assert!(mm_z * 2.0 < naive_z, "MultiMap Z {mm_z} vs Naive {naive_z}");
        }
    }
}
