//! Backend × mapping benchmark matrix (the PR 9 headline): the same
//! beam and range workloads run through every registry device backend
//! (rotating disk, multi-queue SSD, IMR) on every mapping, via the
//! backend-generic [`BackendExecutor`]. The payload checksum is a
//! *per-mapping* invariant across backends — every backend must deliver
//! exactly the mapping's block set, however it scheduled or overlapped
//! the batch — while the timing columns show each backend's own
//! semantics (see `docs/backends.md`).
//!
//! A separate write sweep drives each backend through the store's
//! write-back flusher ([`DeviceStore`]) on interlaced track pairs:
//! only the IMR backend amplifies the flush with neighbor-track
//! read-modify-writes, and that amplification is the sweep's headline.
//!
//! Cells fan out through [`multimap_engine::sweep`], so both tables are
//! bit-identical at any thread count.

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_core::{BoxRegion, GridSpec};
use multimap_disksim::{profiles, BACKEND_NAMES};
use multimap_lvm::backend_volume;
use multimap_query::{BackendExecutor, QueryOp, QueryRequest};
use multimap_store::{CacheConfig, DeviceStore};

use crate::harness::{build_mappings, ms, Scale, Table};

/// One `(backend, mapping)` measurement: a deterministic beam workload
/// plus one interior range query.
#[derive(Clone, Debug)]
pub struct BackendCell {
    /// Registry name of the backend (`"disk"`, `"ssd"`, `"imr"`).
    pub backend: &'static str,
    /// Mapping family name (`Naive`, `Z-order`, `Hilbert`, `MultiMap`).
    pub mapping: String,
    /// Beam queries executed.
    pub beams: u64,
    /// Total simulated I/O time of the beam workload, ms.
    pub beam_io_ms: f64,
    /// Simulated I/O time of the range query, ms.
    pub range_io_ms: f64,
    /// Device requests issued across the whole cell.
    pub requests: u64,
    /// Order-independent payload checksum of the range query — must be
    /// identical across backends for a given mapping.
    pub payload: u64,
}

impl BackendCell {
    /// Mean simulated time per beam query, ms.
    pub fn beam_ms_per_query(&self) -> f64 {
        if self.beams == 0 {
            0.0
        } else {
            self.beam_io_ms / self.beams as f64
        }
    }
}

/// One backend's pass through the store's write-back flusher on
/// interlaced track pairs.
#[derive(Clone, Debug)]
pub struct WriteCell {
    /// Registry name of the backend.
    pub backend: &'static str,
    /// Dirty pages flushed (across both flush phases).
    pub pages: u64,
    /// User blocks written (excludes RMW amplification).
    pub blocks: u64,
    /// Total simulated flush time, ms.
    pub io_ms: f64,
    /// Neighbor-track rewrites the backend performed — nonzero only on
    /// the IMR backend, whose bottom-track writes must read-modify-write
    /// the written interlaced top tracks.
    pub neighbor_rewrites: u64,
}

/// The matrix grid. Kept small: each cell replays the full workload on
/// a fresh volume, and the cross-backend invariants saturate quickly.
fn bench_grid(scale: Scale) -> GridSpec {
    match scale {
        Scale::Quick | Scale::Large => GridSpec::new([96u64, 16, 12]),
        Scale::Paper => GridSpec::new([160u64, 24, 16]),
    }
}

/// Beam queries per cell (anchor positions stepped along Dim0/Dim2).
fn beam_count(scale: Scale) -> u64 {
    match scale {
        Scale::Quick | Scale::Large => 6,
        Scale::Paper => 12,
    }
}

/// Interlaced track pairs driven through the write sweep.
fn write_pairs(scale: Scale) -> u64 {
    match scale {
        Scale::Quick | Scale::Large => 16,
        Scale::Paper => 64,
    }
}

/// The registry backends the sweep covers: all of them, or just the one
/// named by a `--backend` CLI filter.
pub fn selected_backends(filter: Option<&str>) -> Vec<&'static str> {
    BACKEND_NAMES
        .iter()
        .copied()
        .filter(|b| filter.map(|f| f == *b).unwrap_or(true))
        .collect()
}

/// Run the backend × mapping matrix: every selected backend serves the
/// same deterministic beam workload and interior range query on every
/// mapping, through [`BackendExecutor`] over a registry-built volume.
pub fn run(scale: Scale, filter: Option<&str>) -> Vec<BackendCell> {
    let geom = &profiles::evaluation_disks()[0];
    let grid = bench_grid(scale);
    let mappings = build_mappings(geom, &grid);
    let backends = selected_backends(filter);
    let beams = beam_count(scale);
    let range = BoxRegion::new(
        [1u64, 1, 1],
        [
            grid.extent(0) / 4,
            grid.extent(1) - 2,
            grid.extent(2) / 2,
        ],
    );

    let items: Vec<(&'static str, usize)> = backends
        .iter()
        .flat_map(|&b| (0..mappings.len()).map(move |m| (b, m)))
        .collect();

    multimap_engine::sweep(&items, |&(backend, mi)| {
        let mapping = mappings[mi].as_ref();
        let volume = backend_volume(backend, geom, 1).expect("registry backend builds");
        let exec = BackendExecutor::new(&volume, 0);
        let step = grid.extent(0) / beams;
        let mut beam_io_ms = 0.0;
        let mut requests = 0u64;
        for a in 0..beams {
            let anchor = [a * step, 0, a % grid.extent(2)];
            let r = exec
                .execute(QueryRequest::new(
                    QueryOp::Beam,
                    mapping,
                    &BoxRegion::beam(&grid, 1, &anchor),
                ))
                .expect("bench beam runs in-grid");
            beam_io_ms += r.total_io_ms;
            requests += r.requests;
        }
        let r = exec
            .execute(QueryRequest::new(QueryOp::Range, mapping, &range))
            .expect("bench range runs in-grid");
        requests += r.requests;
        BackendCell {
            backend,
            mapping: mapping.name().to_string(),
            beams,
            beam_io_ms,
            range_io_ms: r.total_io_ms,
            requests,
            payload: r.payload,
        }
    })
}

/// Run the write sweep: each selected backend flushes the same
/// interlaced track-pair write workload through [`DeviceStore`]. Top
/// (odd-cylinder) tracks are written and flushed first, then the
/// interlaced bottom (even-cylinder) neighbors — the order that forces
/// an IMR backend to pay read-modify-write on every bottom write.
pub fn write_sweep(scale: Scale, filter: Option<&str>) -> Vec<WriteCell> {
    let backends = selected_backends(filter);
    let pairs = write_pairs(scale);
    multimap_engine::sweep(&backends, |&backend| {
        let geom = profiles::small();
        let volume = backend_volume(backend, &geom, 1).expect("registry backend builds");
        let mut store = DeviceStore::new(volume, CacheConfig::default());
        let mut cell = WriteCell {
            backend,
            pages: 0,
            blocks: 0,
            io_ms: 0.0,
            neighbor_rewrites: 0,
        };
        let absorb = |cell: &mut WriteCell, r: multimap_store::BackendFlushReport| {
            cell.pages += r.pages;
            cell.blocks += r.blocks;
            cell.io_ms += r.total_io_ms;
            cell.neighbor_rewrites += r.neighbor_rewrites;
        };
        // Phase 1: top tracks (odd cylinders). Never amplified.
        for p in 0..pairs {
            let top = geom.lbn_of(2 * p + 1, 0, 0).expect("cylinder in range");
            store.write(0, top, 4).expect("write dirties the cache");
        }
        absorb(&mut cell, store.flush_all().expect("flush serves"));
        // Phase 2: the interlaced bottom neighbors (even cylinders).
        for p in 0..pairs {
            let bottom = geom.lbn_of(2 * p + 2, 0, 0).expect("cylinder in range");
            store.write(0, bottom, 4).expect("write dirties the cache");
        }
        absorb(&mut cell, store.flush_all().expect("flush serves"));
        cell
    })
}

/// `true` iff, for every mapping, all backends delivered an identical
/// payload checksum — the matrix's universal correctness invariant.
pub fn payload_match(cells: &[BackendCell]) -> bool {
    let mut reference: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    cells.iter().all(|c| {
        *reference.entry(c.mapping.as_str()).or_insert(c.payload) == c.payload
    })
}

/// Headline figure: mean per-beam simulated time for the MultiMap
/// mapping on `backend` — the number the CI backend-smoke gate tracks.
pub fn headline_beam_ms(cells: &[BackendCell], backend: &str) -> f64 {
    cells
        .iter()
        .find(|c| c.backend == backend && c.mapping == "MultiMap")
        .map(BackendCell::beam_ms_per_query)
        .expect("sweep covers every backend")
}

/// Total neighbor rewrites one backend performed in the write sweep.
pub fn sweep_rewrites(cells: &[WriteCell], backend: &str) -> u64 {
    cells
        .iter()
        .find(|c| c.backend == backend)
        .map(|c| c.neighbor_rewrites)
        .expect("sweep covers every backend")
}

/// Render the query matrix as a table, backends grouped per mapping.
pub fn table(scale: Scale, cells: &[BackendCell]) -> Table {
    let mut t = Table::new(
        format!(
            "Backend matrix: beam/range vs mapping x device backend, grid {:?}",
            bench_grid(scale).extents()
        ),
        &[
            "backend", "mapping", "beams", "beam_ms", "range_ms", "requests", "payload",
        ],
    );
    for c in cells {
        t.row(vec![
            c.backend.to_string(),
            c.mapping.clone(),
            c.beams.to_string(),
            ms(c.beam_ms_per_query()),
            ms(c.range_io_ms),
            c.requests.to_string(),
            format!("{:#018x}", c.payload),
        ]);
    }
    t
}

/// Render the write sweep as a table (rewrite amplification headline).
pub fn write_table(scale: Scale, cells: &[WriteCell]) -> Table {
    let mut t = Table::new(
        format!(
            "Backend write sweep: {} interlaced track pairs through the write-back flusher",
            write_pairs(scale)
        ),
        &["backend", "pages", "blocks", "io_ms", "neighbor_rewrites"],
    );
    for c in cells {
        t.row(vec![
            c.backend.to_string(),
            c.pages.to_string(),
            c.blocks.to_string(),
            ms(c.io_ms),
            c.neighbor_rewrites.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_backends_times_mappings_with_matching_payloads() {
        let cells = run(Scale::Quick, None);
        assert_eq!(cells.len(), BACKEND_NAMES.len() * 4);
        assert!(payload_match(&cells), "payloads diverged across backends");
        for c in &cells {
            assert!(c.beam_io_ms > 0.0, "{}/{}", c.backend, c.mapping);
            assert!(c.range_io_ms > 0.0, "{}/{}", c.backend, c.mapping);
        }
    }

    #[test]
    fn backend_filter_restricts_the_matrix() {
        let cells = run(Scale::Quick, Some("ssd"));
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.backend == "ssd"));
        assert_eq!(selected_backends(Some("imr")), vec!["imr"]);
        assert_eq!(selected_backends(None), BACKEND_NAMES.to_vec());
    }

    #[test]
    fn imr_reads_are_bit_identical_to_the_rotating_disk() {
        // The IMR read path delegates to the rotating mechanics, so the
        // whole query matrix must agree bit-for-bit between the two.
        let cells = run(Scale::Quick, None);
        for mapping in ["Naive", "Z-order", "Hilbert", "MultiMap"] {
            let pick = |backend: &str| {
                cells
                    .iter()
                    .find(|c| c.backend == backend && c.mapping == mapping)
                    .expect("cell present")
            };
            let disk = pick("disk");
            let imr = pick("imr");
            assert_eq!(disk.beam_io_ms.to_bits(), imr.beam_io_ms.to_bits(), "{mapping}");
            assert_eq!(
                disk.range_io_ms.to_bits(),
                imr.range_io_ms.to_bits(),
                "{mapping}"
            );
            assert_eq!(disk.requests, imr.requests, "{mapping}");
        }
    }

    #[test]
    fn only_the_imr_backend_amplifies_the_write_sweep() {
        let cells = write_sweep(Scale::Quick, None);
        assert_eq!(cells.len(), BACKEND_NAMES.len());
        assert!(
            sweep_rewrites(&cells, "imr") > 0,
            "bottom-track writes beside written top tracks must amplify"
        );
        assert_eq!(sweep_rewrites(&cells, "disk"), 0);
        assert_eq!(sweep_rewrites(&cells, "ssd"), 0);
        for c in &cells {
            assert_eq!(c.pages, 2 * write_pairs(Scale::Quick), "{}", c.backend);
            assert!(c.io_ms > 0.0, "{}", c.backend);
        }
    }
}
