//! Analytical-model validation table: the cost model's predictions next
//! to the simulator's measurements for beams and ranges (the paper
//! validates its tech-report model the same way).

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_core::{BoxRegion, MultiMapping, NaiveMapping};
use multimap_disksim::profiles;
use multimap_lvm::LogicalVolume;
use multimap_model::{
    multimap_beam_per_cell_ms, multimap_range_total_ms, naive_beam_per_cell_ms,
    naive_range_total_ms, ModelParams,
};
use multimap_query::{random_anchor, random_range, workload_rng, QueryExecutor, QueryRequest};

use crate::harness::{ms, Scale, Table};

/// Model vs simulator on beams (per cell) and ranges (total), Cheetah.
pub fn run(scale: Scale) -> Table {
    let grid = scale.synthetic_grid();
    let geom = profiles::cheetah_36es();
    let params = ModelParams::from_geometry(&geom, 0);
    let naive = NaiveMapping::new(grid.clone(), 0);
    let mm = MultiMapping::new(&geom, grid.clone()).expect("fits");

    let mut table = Table::new(
        "Model validation: analytical cost model vs simulator (Cheetah 36ES)",
        &["workload", "naive_sim", "naive_model", "mm_sim", "mm_model"],
    );

    // Each row is an independent engine cell with a per-row workload
    // seed (so rows no longer share one rng sequence and can run on any
    // thread without changing numbers).
    enum RowSpec {
        Beam(usize),
        Range(f64),
    }
    let mut specs: Vec<RowSpec> = (0..grid.ndims()).map(RowSpec::Beam).collect();
    specs.extend([0.01f64, 0.1, 1.0].map(RowSpec::Range));

    let rows = multimap_engine::sweep(&specs, |spec| {
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);
        match *spec {
            RowSpec::Beam(dim) => {
                let mut rng = workload_rng(0x30de1 + dim as u64);
                let anchor = random_anchor(&grid, &mut rng);
                let region = BoxRegion::beam(&grid, dim, &anchor);
                volume.reset();
                let ns = exec
                    .execute(QueryRequest::beam(&naive, &region))
                    .expect("figure query runs in-grid")
                    .per_cell_ms();
                volume.reset();
                let ms_sim = exec
                    .execute(QueryRequest::beam(&mm, &region))
                    .expect("figure query runs in-grid")
                    .per_cell_ms();
                vec![
                    format!("beam_dim{dim}_per_cell"),
                    ms(ns),
                    ms(naive_beam_per_cell_ms(&params, grid.extents(), dim)),
                    ms(ms_sim),
                    ms(multimap_beam_per_cell_ms(&params, grid.extents(), dim)),
                ]
            }
            // Average several random boxes per selectivity: a single
            // tiny range is dominated by one request's rotational phase,
            // which the steady-state model deliberately ignores.
            RowSpec::Range(sel) => {
                let range_draws = 4 * scale.range_runs();
                let mut rng = workload_rng(0x30de1 + 0x100 + (sel * 100.0) as u64);
                let mut sums = [0.0f64; 4];
                for _ in 0..range_draws {
                    let region = random_range(&grid, sel, &mut rng);
                    let qext: Vec<u64> = (0..grid.ndims()).map(|d| region.extent(d)).collect();
                    volume.reset();
                    sums[0] += exec
                        .execute(QueryRequest::range(&naive, &region))
                        .expect("figure query runs in-grid")
                        .total_io_ms;
                    sums[1] += naive_range_total_ms(&params, grid.extents(), &qext);
                    volume.reset();
                    sums[2] += exec
                        .execute(QueryRequest::range(&mm, &region))
                        .expect("figure query runs in-grid")
                        .total_io_ms;
                    sums[3] += multimap_range_total_ms(&params, grid.extents(), &qext);
                }
                vec![
                    format!("range_{sel}pct_total"),
                    ms(sums[0] / range_draws as f64),
                    ms(sums[1] / range_draws as f64),
                    ms(sums[2] / range_draws as f64),
                    ms(sums[3] / range_draws as f64),
                ]
            }
        }
    });
    for row in rows {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_simulator_within_2x() {
        let t = run(Scale::Quick);
        for row in &t.rows {
            for (sim_col, model_col) in [(1usize, 2usize), (3, 4)] {
                let sim: f64 = row[sim_col].parse().unwrap();
                let model: f64 = row[model_col].parse().unwrap();
                if sim > 0.1 {
                    let ratio = (sim / model).max(model / sim);
                    assert!(ratio < 2.0, "{}: sim {sim} vs model {model}", row[0]);
                }
            }
        }
    }
}
