//! Multi-tenant serving sweep: mapping × backend × tenant-count ×
//! fairness policy (the PR 10 headline).
//!
//! Each cell runs one standard serving scenario — a mixed population of
//! open-loop (Poisson) and closed-loop (think-time) tenants streaming
//! beam queries along rotated dimensions — through
//! [`multimap_server::serve_scenario`] on a fresh registry-built
//! backend volume, and reports per-tenant p50/p99/p999 with admission
//! counters. The research question (ROADMAP item 1, which the paper
//! never measured): does MultiMap's adjacency advantage survive
//! queueing and interleaved multi-tenant access? The table answers by
//! holding the workload fixed and swapping only the mapping: every
//! non-primary-dimension beam that Naive linearisation turns into
//! strided seeks inflates its queue, and the tail latencies diverge.
//!
//! Cells fan out through [`multimap_engine::sweep`], so the whole table
//! is bit-identical at any thread count.

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_core::{GridSpec, Mapping, MultiMapping, NaiveMapping};
use multimap_disksim::{profiles, BACKEND_NAMES};
use multimap_lvm::backend_volume;
use multimap_server::{
    serve_scenario, FairnessPolicy, LoadModel, Scenario, ServingReport, TenantSpec,
};

use crate::harness::{Scale, Table};

/// The serving dataset: small enough that a cell serves in well under a
/// second, large enough that non-primary beams pay real repositioning.
pub fn serving_grid() -> GridSpec {
    GridSpec::new([48u64, 24, 12])
}

/// Tenant populations the sweep compares (the acceptance criterion
/// wants tail latency under at least 4 concurrent tenants).
pub const TENANT_COUNTS: [usize; 2] = [4, 8];

/// Mappings the sweep compares: the paper's placement vs the linearised
/// baseline.
pub const SERVING_MAPPINGS: [&str; 2] = ["Naive", "MultiMap"];

/// All fairness policies, sweep order.
pub const SERVING_POLICIES: [FairnessPolicy; 3] = [
    FairnessPolicy::Fifo,
    FairnessPolicy::EarliestDeadline,
    FairnessPolicy::WeightedTenant,
];

/// One cell descriptor of the serving sweep.
#[derive(Clone, Copy, Debug)]
pub struct ServingCellSpec {
    /// Registry backend name.
    pub backend: &'static str,
    /// Mapping family ("Naive" or "MultiMap").
    pub mapping: &'static str,
    /// Concurrent tenants.
    pub tenants: usize,
    /// Request-selection policy.
    pub policy: FairnessPolicy,
}

/// A measured cell: the descriptor plus its serving report.
#[derive(Clone, Debug)]
pub struct ServingCell {
    /// What was run.
    pub spec: ServingCellSpec,
    /// The full per-tenant report.
    pub report: ServingReport,
}

impl ServingCell {
    /// Merged-across-tenants quantile, upper bucket edge.
    pub fn merged_quantile(&self, q: f64) -> Option<f64> {
        self.report.merged_latency().quantile(q)
    }

    /// Merged-across-tenants exact mean latency (ms). Unlike the
    /// bucketed quantiles this resolves sub-bucket differences, so the
    /// mapping comparison is not rounded away at the bucket edges.
    pub fn merged_mean(&self) -> Option<f64> {
        let h = self.report.merged_latency();
        if h.count() == 0 {
            None
        } else {
            Some(h.mean_ms())
        }
    }

    /// Total completed requests across tenants.
    pub fn completed(&self) -> u64 {
        self.report.tenants.iter().map(|t| t.completed).sum()
    }

    /// Total deadline-shed requests across tenants.
    pub fn shed(&self) -> u64 {
        self.report.tenants.iter().map(|t| t.shed_deadline).sum()
    }

    /// Total queue-cap rejections across tenants.
    pub fn rejected(&self) -> u64 {
        self.report.tenants.iter().map(|t| t.rejected_queue_full).sum()
    }
}

/// The standard scenario for `tenants` concurrent clients: alternating
/// open-loop and closed-loop tenants, beam dimensions rotating through
/// the grid, uneven weights, one shared deadline. Deterministic in
/// `(tenants, policy)` — the seed folds both, so every cell replays.
pub fn standard_scenario(tenants: usize, policy: FairnessPolicy, scale: Scale) -> Scenario {
    let requests = match scale {
        Scale::Quick | Scale::Large => 60,
        Scale::Paper => 240,
    };
    let specs = (0..tenants)
        .map(|i| TenantSpec {
            name: format!("t{i}"),
            weight: 1.0 + (i % 2) as f64,
            load: if i % 2 == 0 {
                LoadModel::OpenLoop {
                    rate_rps: 2.0 + 0.5 * (i % 3) as f64,
                }
            } else {
                LoadModel::ClosedLoop {
                    think_ms: 80.0 + 20.0 * (i % 3) as f64,
                }
            },
            requests,
            deadline_ms: 400.0,
            dim: i % serving_grid().ndims(),
        })
        .collect();
    Scenario {
        seed: 0x5E17_1CE0 ^ ((tenants as u64) << 8) ^ policy.slug().len() as u64,
        tenants: specs,
        policy,
        queue_cap: 64,
        batch_window: 8,
        // A modest on-device queue: deep SPTF queues let the controller
        // re-sort Naive's strided beams into near-optimal sweeps, hiding
        // exactly the layout difference this sweep measures. Depth 4
        // matches command-queue depths of commodity controllers.
        queue_depth: 4,
    }
}

/// Build the mapping a cell asks for over the serving grid.
fn build_serving_mapping(name: &str) -> Box<dyn Mapping> {
    let geom = profiles::small();
    match name {
        "Naive" => Box::new(NaiveMapping::new(serving_grid(), 0)),
        "MultiMap" => {
            Box::new(MultiMapping::new(&geom, serving_grid()).expect("grid fits the disk"))
        }
        other => panic!("unknown serving mapping {other}"),
    }
}

/// Run one cell: fresh volume, fresh mapping, one scenario.
pub fn run_cell(spec: ServingCellSpec, scale: Scale) -> ServingCell {
    let geom = profiles::small();
    let volume = backend_volume(spec.backend, &geom, 1).expect("registry backend builds");
    let mapping = build_serving_mapping(spec.mapping);
    let scenario = standard_scenario(spec.tenants, spec.policy, scale);
    let report = serve_scenario(&volume, mapping.as_ref(), &scenario).expect("scenario serves");
    ServingCell { spec, report }
}

/// Every cell of the full sweep, in table order.
pub fn sweep_specs() -> Vec<ServingCellSpec> {
    let mut specs = Vec::new();
    for backend in BACKEND_NAMES {
        for mapping in SERVING_MAPPINGS {
            for tenants in TENANT_COUNTS {
                for policy in SERVING_POLICIES {
                    specs.push(ServingCellSpec {
                        backend,
                        mapping,
                        tenants,
                        policy,
                    });
                }
            }
        }
    }
    specs
}

/// Run the full serving sweep, cells fanned across engine workers.
pub fn serving_sweep(scale: Scale) -> Vec<ServingCell> {
    let specs = sweep_specs();
    multimap_engine::sweep(&specs, |spec| run_cell(*spec, scale))
}

/// Render the sweep as a table (one row per cell, merged quantiles).
pub fn serving_table(cells: &[ServingCell]) -> Table {
    let mut t = Table::new(
        "serving: per-tenant SLOs under multi-tenant load (mapping x backend x tenants x policy)",
        &[
            "backend", "mapping", "tenants", "policy", "completed", "shed", "rejected",
            "p50 ms", "p99 ms", "p999 ms", "mean ms", "makespan ms",
        ],
    );
    let q = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}"),
        None => "n/a".to_string(),
    };
    for c in cells {
        t.row(vec![
            c.spec.backend.to_string(),
            c.spec.mapping.to_string(),
            c.spec.tenants.to_string(),
            c.spec.policy.slug().to_string(),
            c.completed().to_string(),
            c.shed().to_string(),
            c.rejected().to_string(),
            q(c.merged_quantile(0.50)),
            q(c.merged_quantile(0.99)),
            q(c.merged_quantile(0.999)),
            q(c.merged_mean()),
            format!("{:.1}", c.report.makespan_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_full_matrix() {
        let specs = sweep_specs();
        assert_eq!(
            specs.len(),
            BACKEND_NAMES.len() * SERVING_MAPPINGS.len() * TENANT_COUNTS.len()
                * SERVING_POLICIES.len()
        );
    }

    #[test]
    fn one_cell_serves_and_reconciles() {
        let cell = run_cell(
            ServingCellSpec {
                backend: "disk",
                mapping: "MultiMap",
                tenants: 4,
                policy: FairnessPolicy::Fifo,
            },
            Scale::Quick,
        );
        assert_eq!(cell.report.tenants.len(), 4);
        let submitted: u64 = cell.report.tenants.iter().map(|t| t.submitted).sum();
        assert_eq!(submitted, 240, "4 tenants x 60 requests");
        assert_eq!(submitted, cell.completed() + cell.shed() + cell.rejected());
        assert!(cell.merged_quantile(0.99).is_some());
    }
}
