//! Minimal dependency-free SVG charts for the regenerated figures:
//! grouped bars (Figures 6a, 7a, 8) and line plots with optional log-x
//! (Figures 1 and 6b).

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Chart canvas constants.
const W: f64 = 760.0;
const H: f64 = 420.0;
const ML: f64 = 64.0; // left margin
const MR: f64 = 24.0;
const MT: f64 = 48.0;
const MB: f64 = 72.0;

/// A qualitative colour per series (colour-blind-safe-ish).
const COLORS: [&str; 6] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn svg_header(title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif">"#
    );
    let _ = writeln!(out, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
    let _ = writeln!(
        out,
        r#"<text x="{}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        W / 2.0,
        esc(title)
    );
    out
}

/// A line plot: one or more named series over shared x values.
pub struct LinePlot {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Plot x on a log10 scale.
    pub log_x: bool,
    /// `(series name, points)`.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LinePlot {
    /// Render to an SVG string.
    pub fn render(&self) -> String {
        let mut out = svg_header(&self.title);
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|p| p.1))
            .collect();
        if xs.is_empty() {
            out.push_str("</svg>");
            return out;
        }
        let tx = |x: f64| if self.log_x { x.max(1e-12).log10() } else { x };
        let (xmin, xmax) = min_max(&xs.iter().map(|&x| tx(x)).collect::<Vec<_>>());
        let (ymin, ymax) = min_max(&ys);
        let ymin = ymin.min(0.0);
        let sx = |x: f64| ML + (tx(x) - xmin) / (xmax - xmin).max(1e-12) * (W - ML - MR);
        let sy = |y: f64| H - MB - (y - ymin) / (ymax - ymin).max(1e-12) * (H - MT - MB);

        // Axes.
        let _ = writeln!(
            out,
            r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            H - MB,
            W - MR,
            H - MB
        );
        let _ = writeln!(
            out,
            r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
            H - MB
        );
        // Y ticks.
        for i in 0..=4 {
            let v = ymin + (ymax - ymin) * i as f64 / 4.0;
            let y = sy(v);
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{y}" x2="{ML}" y2="{y}" stroke="black"/><text x="{}" y="{}" text-anchor="end" font-size="11">{v:.2}</text>"#,
                ML - 4.0,
                ML - 8.0,
                y + 4.0
            );
        }
        // X ticks: the distinct x values themselves.
        let mut uxs: Vec<f64> = xs.clone();
        uxs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        uxs.dedup();
        for &x in &uxs {
            let px = sx(x);
            let _ = writeln!(
                out,
                r#"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="black"/><text x="{px}" y="{}" text-anchor="middle" font-size="10">{}</text>"#,
                H - MB,
                H - MB + 4.0,
                H - MB + 18.0,
                trim_float(x)
            );
        }
        // Labels.
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
            (ML + W - MR) / 2.0,
            H - 28.0,
            esc(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
            (MT + H - MB) / 2.0,
            (MT + H - MB) / 2.0,
            esc(&self.y_label)
        );
        // Series.
        for (i, (name, pts)) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let path: Vec<String> = pts
                .iter()
                .enumerate()
                .map(|(j, &(x, y))| {
                    format!(
                        "{}{:.1},{:.1}",
                        if j == 0 { "M" } else { "L" },
                        sx(x),
                        sy(y)
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                r#"<path d="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            );
            for &(x, y) in pts {
                let _ = writeln!(
                    out,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend.
            let lx = ML + 12.0 + 150.0 * (i as f64 % 4.0);
            let ly = MT - 12.0 + 14.0 * (i as f64 / 4.0).floor();
            let _ = writeln!(
                out,
                r#"<rect x="{lx}" y="{}" width="10" height="10" fill="{color}"/><text x="{}" y="{}" font-size="11">{}</text>"#,
                ly - 9.0,
                lx + 14.0,
                ly,
                esc(name)
            );
        }
        out.push_str("</svg>");
        out
    }
}

/// A grouped bar chart: per group (x category), one bar per series.
pub struct BarPlot {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Group labels (x categories).
    pub groups: Vec<String>,
    /// `(series name, one value per group)`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl BarPlot {
    /// Render to an SVG string.
    pub fn render(&self) -> String {
        let mut out = svg_header(&self.title);
        let ymax = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let sy = |y: f64| H - MB - y / ymax * (H - MT - MB);
        // Axes and ticks.
        let _ = writeln!(
            out,
            r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            H - MB,
            W - MR,
            H - MB
        );
        let _ = writeln!(
            out,
            r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
            H - MB
        );
        for i in 0..=4 {
            let v = ymax * i as f64 / 4.0;
            let y = sy(v);
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{y}" x2="{ML}" y2="{y}" stroke="black"/><text x="{}" y="{}" text-anchor="end" font-size="11">{v:.2}</text>"#,
                ML - 4.0,
                ML - 8.0,
                y + 4.0
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
            (MT + H - MB) / 2.0,
            (MT + H - MB) / 2.0,
            esc(&self.y_label)
        );
        let ngroups = self.groups.len().max(1) as f64;
        let nseries = self.series.len().max(1) as f64;
        let group_w = (W - ML - MR) / ngroups;
        let bar_w = (group_w * 0.8) / nseries;
        for (g, label) in self.groups.iter().enumerate() {
            let gx = ML + g as f64 * group_w;
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" text-anchor="middle" font-size="11">{}</text>"#,
                gx + group_w / 2.0,
                H - MB + 18.0,
                esc(label)
            );
            for (s, (_, values)) in self.series.iter().enumerate() {
                let v = values.get(g).copied().unwrap_or(0.0);
                let x = gx + group_w * 0.1 + s as f64 * bar_w;
                let y = sy(v);
                let _ = writeln!(
                    out,
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="{}"/>"#,
                    bar_w * 0.92,
                    (H - MB - y).max(0.0),
                    COLORS[s % COLORS.len()]
                );
            }
        }
        for (s, (name, _)) in self.series.iter().enumerate() {
            let lx = ML + 12.0 + 150.0 * (s as f64 % 4.0);
            let ly = MT - 12.0 + 14.0 * (s as f64 / 4.0).floor();
            let _ = writeln!(
                out,
                r#"<rect x="{lx}" y="{}" width="10" height="10" fill="{}"/><text x="{}" y="{}" font-size="11">{}</text>"#,
                ly - 9.0,
                COLORS[s % COLORS.len()],
                lx + 14.0,
                ly,
                esc(name)
            );
        }
        out.push_str("</svg>");
        out
    }
}

/// Save rendered SVG under `dir/<name>.svg`.
pub fn save_svg(svg: &str, dir: &Path, name: &str) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{name}.svg")), svg)
}

fn min_max(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if lo == hi {
        hi = lo + 1.0;
    }
    (lo, hi)
}

fn trim_float(x: f64) -> String {
    if x == x.floor() && x.abs() < 1e6 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_plot_renders_series_and_labels() {
        let p = LinePlot {
            title: "demo".into(),
            x_label: "selectivity".into(),
            y_label: "speedup".into(),
            log_x: true,
            series: vec![
                (
                    "MultiMap".into(),
                    vec![(0.01, 1.2), (1.0, 1.0), (100.0, 0.7)],
                ),
                (
                    "Hilbert".into(),
                    vec![(0.01, 2.0), (1.0, 2.2), (100.0, 1.0)],
                ),
            ],
        };
        let svg = p.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("MultiMap"));
        assert!(svg.contains("speedup"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn bar_plot_renders_groups() {
        let p = BarPlot {
            title: "beams".into(),
            y_label: "ms/cell".into(),
            groups: vec!["Dim0".into(), "Dim1".into()],
            series: vec![
                ("Naive".into(), vec![0.05, 2.5]),
                ("MultiMap".into(), vec![0.07, 1.3]),
            ],
        };
        let svg = p.render();
        // 2 groups x 2 series bars + 2 legend rects.
        assert_eq!(svg.matches("<rect").count(), 1 + 4 + 2); // + background
        assert!(svg.contains("Dim1"));
    }

    #[test]
    fn escaping_and_save() {
        let p = BarPlot {
            title: "a < b & c".into(),
            y_label: "y".into(),
            groups: vec!["g".into()],
            series: vec![("s".into(), vec![1.0])],
        };
        let svg = p.render();
        assert!(svg.contains("a &lt; b &amp; c"));
        let dir = std::env::temp_dir().join("multimap-plot-test");
        save_svg(&svg, &dir, "t").unwrap();
        assert!(dir.join("t.svg").exists());
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let p = LinePlot {
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_x: false,
            series: vec![],
        };
        assert!(p.render().ends_with("</svg>"));
        let p = BarPlot {
            title: "flat".into(),
            y_label: "y".into(),
            groups: vec!["g".into()],
            series: vec![("s".into(), vec![0.0])],
        };
        assert!(p.render().ends_with("</svg>"));
    }
}
