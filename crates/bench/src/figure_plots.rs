//! Derive SVG charts from the figure tables (schema-aware).

use crate::harness::Table;
use crate::plot::{BarPlot, LinePlot};

fn parse(cell: &str) -> f64 {
    cell.parse().unwrap_or(f64::NAN)
}

/// Distinct values of column 0, in first-appearance order.
fn distinct_disks(table: &Table) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for row in &table.rows {
        if !out.contains(&row[0]) {
            out.push(row[0].clone());
        }
    }
    out
}

/// Charts for a figure table; returns `(file name, svg)` pairs.
pub fn auto_plots(fig: &str, table: &Table) -> Vec<(String, String)> {
    match fig {
        "fig1" => {
            let series = (1..table.header.len())
                .map(|c| {
                    (
                        table.header[c].clone(),
                        table
                            .rows
                            .iter()
                            .map(|r| (parse(&r[0]), parse(&r[c])))
                            .collect(),
                    )
                })
                .collect();
            vec![(
                "fig1_seek_profile".into(),
                LinePlot {
                    title: "Figure 1(a): seek time vs cylinder distance".into(),
                    x_label: "cylinder distance (log)".into(),
                    y_label: "seek time [ms]".into(),
                    log_x: true,
                    series,
                }
                .render(),
            )]
        }
        // Per-disk grouped bars: rows are (disk, mapping, v1, v2, ...).
        "fig6a" | "fig7a" | "fig8" => {
            let groups: Vec<String> = table.header[2..].to_vec();
            distinct_disks(table)
                .into_iter()
                .map(|disk| {
                    let series = table
                        .rows
                        .iter()
                        .filter(|r| r[0] == disk)
                        .map(|r| {
                            (
                                r[1].clone(),
                                r[2..].iter().map(|c| parse(c)).collect::<Vec<f64>>(),
                            )
                        })
                        .collect();
                    let name = format!("{fig}_{}", disk.to_lowercase().replace([' ', '.'], "_"));
                    (
                        name,
                        BarPlot {
                            title: format!("{} — {disk}", table.title),
                            y_label: "avg I/O time per cell [ms]".into(),
                            groups: groups.clone(),
                            series,
                        }
                        .render(),
                    )
                })
                .collect()
        }
        // Per-disk lines over selectivity: rows are (disk, sel, v...).
        // fig6b's third column is Naive's absolute total, not a speedup:
        // skip it so the speedup series share a sane y-scale.
        "fig6b" | "fig7b" => {
            let first_value_col = if fig == "fig6b" { 3 } else { 2 };
            let value_cols: Vec<usize> = (first_value_col..table.header.len()).collect();
            distinct_disks(table)
                .into_iter()
                .map(|disk| {
                    let series = value_cols
                        .iter()
                        .map(|&c| {
                            (
                                table.header[c].clone(),
                                table
                                    .rows
                                    .iter()
                                    .filter(|r| r[0] == disk)
                                    .map(|r| (parse(&r[1]), parse(&r[c])))
                                    .collect(),
                            )
                        })
                        .collect();
                    let y_label = if fig == "fig6b" {
                        "speedup vs Naive"
                    } else {
                        "total I/O time [ms]"
                    };
                    let name = format!("{fig}_{}", disk.to_lowercase().replace([' ', '.'], "_"));
                    (
                        name,
                        LinePlot {
                            title: format!("{} — {disk}", table.title),
                            x_label: "selectivity [%] (log)".into(),
                            y_label: y_label.into(),
                            log_x: true,
                            series,
                        }
                        .render(),
                    )
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beam_table() -> Table {
        let mut t = Table::new("beam demo", &["disk", "mapping", "Dim0", "Dim1"]);
        for disk in ["A", "B"] {
            for m in ["Naive", "MultiMap"] {
                t.row(vec![disk.into(), m.into(), "0.05".into(), "1.3".into()]);
            }
        }
        t
    }

    #[test]
    fn beam_tables_produce_one_bar_chart_per_disk() {
        let plots = auto_plots("fig6a", &beam_table());
        assert_eq!(plots.len(), 2);
        assert!(plots[0].0.starts_with("fig6a_"));
        assert!(plots[0].1.contains("Dim1"));
        assert!(plots[0].1.contains("MultiMap"));
    }

    #[test]
    fn selectivity_tables_produce_line_charts() {
        let mut t = Table::new(
            "range demo",
            &[
                "disk",
                "sel",
                "naive_total_ms",
                "zorder",
                "hilbert",
                "multimap",
            ],
        );
        for sel in ["0.01", "1", "100"] {
            t.row(vec![
                "A".into(),
                sel.into(),
                "5000".into(),
                "1.5".into(),
                "2.0".into(),
                "1.1".into(),
            ]);
        }
        let plots = auto_plots("fig6b", &t);
        assert_eq!(plots.len(), 1);
        assert!(plots[0].1.contains("speedup"));
        // The absolute-time column is excluded: three speedup series.
        assert_eq!(plots[0].1.matches("<path").count(), 3);
    }

    #[test]
    fn unknown_figures_produce_nothing() {
        assert!(auto_plots("ablations", &beam_table()).is_empty());
    }
}
