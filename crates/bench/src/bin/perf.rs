//! Perf smoke benchmark: times the standard quick figure sweep serially
//! and in parallel, checks the two runs are byte-identical, measures
//! telemetry overhead (figures with the sink recording vs without —
//! tables must stay byte-identical and the slowdown must stay under 5%),
//! measures the profiled SPTF estimator's throughput, measures the
//! simulated-time cost of degraded-mode recovery under a seeded fault
//! plan (payloads must match the fault-free run), runs the
//! selection-throughput trendline (incremental rotational-band SPTF
//! selector vs the linear-rescan reference across TCQ windows, both
//! evaluation drives), sweeps the page cache over mapping × eviction
//! policy × capacity × prefetch mode on the streaming-beam workload
//! (hit rate vs mapping is the headline), runs the backend × mapping
//! matrix (rotating disk, multi-queue SSD, IMR through the
//! backend-generic executor, plus the interlaced-track write sweep
//! whose IMR read-modify-write amplification is the PR 9 headline),
//! and writes `BENCH_pr9.json`.
//!
//! ```text
//! cargo run --release -p multimap-bench --bin perf -- \
//!     [--out BENCH_pr9.json] [--scale quick|large|paper] \
//!     [--backend disk|ssd|imr]
//! ```
//!
//! `--scale` picks the selection-bench stream length (the figure sweep
//! always runs at quick scale); the checked-in baseline is generated
//! with `--scale large`, tens of millions of serve decisions.
//! `--backend` restricts the backend matrix to one registry backend
//! (the cross-backend payload and RMW gates only run on the full
//! matrix).
//!
//! Exit status is non-zero if any parallel table diverges from its
//! serial reference, any telemetry-on table diverges from telemetry-off,
//! the telemetry overhead exceeds the budget, a faulted query's payload
//! differs from its fault-free reference, the incremental selector's
//! window-4096 speedup over the linear rescan falls under the gate
//! (5x at `large`/`paper` scale — the acceptance figure — or a softer
//! 3x at `quick`, where short cells are fill/drain- and noise-bound),
//! the adjacency prefetcher fails to beat plain sequential readahead
//! on the MultiMap streaming-beam workload, any backend delivers a
//! payload differing from its mapping's cross-backend reference, the
//! IMR write sweep fails to amplify, or the IMR read path diverges
//! bit-for-bit from the rotating disk.


// staticcheck: allow-file(det-wall-clock) — wall-clock measurement is this binary's purpose: it times real runs and reports slowdowns, while asserting the simulated outputs stay byte-identical.
// staticcheck: allow-file(no-unwrap) — benchmark/CLI binary: aborting with a message on a malformed run is the intended failure mode.

use std::fmt::Write as _;
use std::time::Instant;

use multimap_bench::{
    ablations, backends, fig6, fig7, fig8, model_fig, pagecache, selection, Scale, Table,
};
use multimap_core::{
    hilbert_mapping, zorder_mapping, BoxRegion, GridSpec, Mapping, MultiMapping, NaiveMapping,
};
use multimap_disksim::{profiles, Discipline, DiskSim, FaultPlan, Request, BACKEND_NAMES};
use multimap_lvm::{LogicalVolume, RecoveryConfig};
use multimap_query::{QueryExecutor, QueryOp, QueryRequest};
use multimap_telemetry::{Counter, Metrics};

/// Telemetry must cost less than this fraction of the sweep's wall time.
const TELEMETRY_OVERHEAD_BUDGET: f64 = 0.05;

/// The incremental selector must beat the linear rescan by at least
/// this factor at window 4096 on both evaluation drives when the
/// selection bench runs at `large` or `paper` scale — the acceptance
/// figure the checked-in `BENCH_pr6.json` baseline is held to.
const SELECTION_SPEEDUP_GATE_LARGE: f64 = 5.0;

/// Softer floor for `quick` scale (the CI smoke run): at 40k decisions
/// per cell the window-4096 measurements carry proportionally large
/// fill/drain phases plus shared-runner timing noise, so a hard 5x
/// wall-clock gate there would flag regressions that aren't real. The
/// large-scale figure above remains the acceptance number.
const SELECTION_SPEEDUP_GATE_QUICK: f64 = 3.0;

/// One timed pass over the standard quick sweep. Returns the rendered
/// tables (the determinism witness) and per-figure cell counts.
fn run_sweep() -> (Vec<(String, String, usize)>, f64) {
    let scale = Scale::Quick;
    let start = Instant::now();
    // (label, table, engine cells) — cells mirror each figure's sweep
    // decomposition so cells/sec is meaningful.
    let figs: Vec<(String, Table, usize)> = vec![
        ("fig6a".into(), fig6::run_beams(scale), 8),
        ("fig6b".into(), fig6::run_ranges(scale), 12),
        ("fig7a".into(), fig7::run_beams(scale), 8),
        ("fig8".into(), fig8::run(scale), 8),
        ("model".into(), model_fig::run(scale), 6),
    ];
    let elapsed = start.elapsed().as_secs_f64();
    let rendered = figs
        .into_iter()
        .map(|(label, t, cells)| (label, t.render(), cells))
        .collect();
    (rendered, elapsed)
}

/// Profiled-SPTF throughput: schedule a 1024-request scattered batch and
/// report estimator calls per second (the selection loop performs
/// `n·(n+1)/2` estimates), plus the unprofiled estimator's rate on the
/// same requests for comparison.
fn sptf_throughput() -> (f64, f64, u64) {
    let n: u64 = 1024;
    let geom = profiles::cheetah_36es();
    let requests: Vec<Request> = (0..n)
        .map(|i| Request::single((i * 7_907_693) % geom.total_blocks()))
        .collect();

    let mut sim = DiskSim::new(geom.clone());
    let before = multimap_disksim::locate_call_count();
    let start = Instant::now();
    multimap_disksim::DeviceModel::service_batch(&mut sim, &requests, Discipline::Sptf)
        .expect("batch serves");
    let t_profiled = start.elapsed().as_secs_f64();
    let locates = multimap_disksim::locate_call_count() - before;
    let estimates = n * (n + 1) / 2;
    let profiled_rate = estimates as f64 / t_profiled;

    // Unprofiled baseline: the raw estimator on the same request set.
    let sim = DiskSim::new(geom);
    let baseline_calls = 200_000u64;
    let start = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..baseline_calls {
        acc += sim
            .estimate(requests[(i % n) as usize])
            .expect("estimate runs");
    }
    let t_raw = start.elapsed().as_secs_f64();
    assert!(acc > 0.0);
    let raw_rate = baseline_calls as f64 / t_raw;
    (profiled_rate, raw_rate, locates)
}

/// What degraded-mode recovery costs: one range query across all four
/// mappings on a pristine volume vs a volume carrying a seeded fault
/// plan (media errors forcing remaps + transients + slow reads). All
/// times are *simulated* milliseconds, so the figure is deterministic.
struct FaultOverhead {
    clean_io_ms: f64,
    degraded_io_ms: f64,
    /// `degraded/clean − 1`, the degraded-mode overhead figure.
    overhead_pct: f64,
    /// Every faulted payload matched its fault-free reference.
    payload_match: bool,
    retries: u64,
    remaps: u64,
}

fn fault_overhead() -> FaultOverhead {
    let geom = profiles::small();
    let grid = GridSpec::new([24u64, 8, 6]);
    let region = BoxRegion::new([0u64, 0, 0], [20u64, 7, 5]);
    let plan = FaultPlan::new(0x5EED)
        .with_media_errors([7, 301, 860])
        .with_transients(0.05, 2.5)
        .with_slow_reads(0.05, 0.8);

    let naive = NaiveMapping::new(grid.clone(), 0);
    let zord = zorder_mapping(grid.clone(), 0, 1).expect("grid fits");
    let hilb = hilbert_mapping(grid.clone(), 0, 1).expect("grid fits");
    let mm = MultiMapping::new(&geom, grid.clone()).expect("chunk fits the disk");
    let mappings: [&dyn Mapping; 4] = [&naive, &zord, &hilb, &mm];

    let mut out = FaultOverhead {
        clean_io_ms: 0.0,
        degraded_io_ms: 0.0,
        overhead_pct: 0.0,
        payload_match: true,
        retries: 0,
        remaps: 0,
    };
    for m in mappings {
        let clean_volume = LogicalVolume::new(geom.clone(), 1);
        let clean = QueryExecutor::new(&clean_volume, 0)
            .execute(QueryRequest::new(QueryOp::Range, m, &region))
            .expect("clean query runs");

        let volume =
            LogicalVolume::with_recovery(geom.clone(), 1, plan.clone(), RecoveryConfig::default())
                .expect("recovering volume builds");
        let faulted = QueryExecutor::new(&volume, 0)
            .execute(QueryRequest::new(QueryOp::Range, m, &region))
            .expect("faulted query recovers");

        out.clean_io_ms += clean.total_io_ms;
        out.degraded_io_ms += faulted.total_io_ms;
        out.payload_match &= faulted.payload == clean.payload;
        let stats = volume.recovery_stats();
        out.retries += stats.retries;
        out.remaps += stats.remaps;
    }
    out.overhead_pct = (out.degraded_io_ms / out.clean_io_ms - 1.0) * 100.0;
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr9.json".to_string());
    let backend_filter: Option<String> = args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(name) = backend_filter.as_deref() {
        if !BACKEND_NAMES.contains(&name) {
            eprintln!(
                "error: unknown --backend '{name}' (expected one of {})",
                BACKEND_NAMES.join("|")
            );
            std::process::exit(2);
        }
    }
    let selection_scale = match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("quick") => Scale::Quick,
        Some("large") => Scale::Large,
        Some("paper") => Scale::Paper,
        Some(other) => {
            eprintln!("error: unknown --scale '{other}' (expected quick|large|paper)");
            std::process::exit(2);
        }
    };

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // All timing passes run with telemetry off except the dedicated
    // telemetry-on passes at the end.
    multimap_telemetry::set_enabled(false);

    // Warm-up pass so the shared translation cache is populated for both
    // timed passes — otherwise the second pass gets a free cache win and
    // the speedup conflates parallelism with caching.
    eprintln!("warm-up pass...");
    multimap_engine::set_threads(1);
    let _ = run_sweep();

    eprintln!("serial pass (1 thread)...");
    let (serial_tables, serial_s) = run_sweep();

    multimap_engine::set_threads(0);
    let parallel_threads = multimap_engine::threads().max(1);
    eprintln!("parallel pass ({parallel_threads} of {host_threads} host threads)...");
    let (parallel_tables, parallel_s) = run_sweep();

    // Telemetry overhead: two passes each way at the parallel thread
    // count, min-of-2 to damp scheduler noise. The telemetry-off
    // reference reuses the parallel pass above as its first sample.
    eprintln!("telemetry-off reference pass...");
    let (_, off_2) = run_sweep();
    let off_s = parallel_s.min(off_2);

    multimap_telemetry::set_enabled(true);
    eprintln!("telemetry-on pass 1...");
    let (on_tables, on_1) = run_sweep();
    eprintln!("telemetry-on pass 2...");
    multimap_telemetry::global().clear();
    let (_, on_2) = run_sweep();
    let on_s = on_1.min(on_2);
    let overhead = on_s / off_s - 1.0;

    // The registry now holds exactly the second telemetry-on pass.
    let sections = multimap_telemetry::global().sections();
    let merged = Metrics::merge_ordered(sections.iter().map(|(_, m)| m));
    multimap_telemetry::set_enabled(false);

    let mut telemetry_divergent: Vec<&str> = Vec::new();
    for ((label, off, _), (_, on, _)) in parallel_tables.iter().zip(&on_tables) {
        if off != on {
            telemetry_divergent.push(label);
        }
    }

    // Ablations ride along in the parallel pass only (they are one
    // engine sweep themselves); time them for the report.
    let start = Instant::now();
    let ablation_tables = ablations::run_all(Scale::Quick);
    let ablations_s = start.elapsed().as_secs_f64();

    let mut divergent: Vec<&str> = Vec::new();
    for ((label, serial, _), (_, parallel, _)) in serial_tables.iter().zip(&parallel_tables) {
        if serial != parallel {
            divergent.push(label);
        }
    }

    let cells: usize = serial_tables.iter().map(|&(_, _, c)| c).sum();
    let speedup = serial_s / parallel_s;
    let (profiled_rate, raw_rate, locates) = sptf_throughput();

    eprintln!("degraded-mode fault sweep...");
    let fault = fault_overhead();

    // Page-cache sweep: every mapping × eviction policy × capacity ×
    // prefetch mode replays the same streaming-beam workload (runs on
    // the engine at the parallel thread count; simulated time, so the
    // numbers are deterministic).
    eprintln!("page-cache sweep (mapping x policy x capacity x prefetch)...");
    let start = Instant::now();
    let cache_cells = pagecache::run(Scale::Quick);
    let cache_wall_s = start.elapsed().as_secs_f64();
    eprint!("{}", pagecache::table(Scale::Quick, &cache_cells).render());
    let cache_mm_adj = pagecache::headline(&cache_cells, "MultiMap", "adjacency");
    let cache_mm_seq = pagecache::headline(&cache_cells, "MultiMap", "sequential");

    // Backend × mapping matrix: every registry backend serves the same
    // beam/range workload on every mapping through the backend-generic
    // executor, plus the interlaced-track write sweep. All simulated
    // time, so the numbers are deterministic.
    let filter = backend_filter.as_deref();
    eprintln!(
        "backend matrix (mapping x {})...",
        filter.unwrap_or("every registry backend")
    );
    let start = Instant::now();
    let backend_cells = backends::run(Scale::Quick, filter);
    let backend_writes = backends::write_sweep(Scale::Quick, filter);
    let backend_wall_s = start.elapsed().as_secs_f64();
    eprint!("{}", backends::table(Scale::Quick, &backend_cells).render());
    eprint!(
        "{}",
        backends::write_table(Scale::Quick, &backend_writes).render()
    );
    let full_matrix = filter.is_none();
    let backend_payload_match = backends::payload_match(&backend_cells);
    let backend_beam_ms = |backend: &str| -> Option<f64> {
        backend_cells
            .iter()
            .find(|c| c.backend == backend && c.mapping == "MultiMap")
            .map(backends::BackendCell::beam_ms_per_query)
    };
    let backend_imr_rewrites = backend_writes
        .iter()
        .find(|c| c.backend == "imr")
        .map(|c| c.neighbor_rewrites);
    // The IMR read path delegates to the rotating mechanics, so on the
    // full matrix its query timings must match the disk bit-for-bit.
    let backend_imr_reads_identical = !full_matrix
        || backend_cells
            .iter()
            .filter(|c| c.backend == "imr")
            .all(|imr| {
                backend_cells
                    .iter()
                    .find(|c| c.backend == "disk" && c.mapping == imr.mapping)
                    .is_some_and(|disk| {
                        // staticcheck: allow(float-cmp) — bit-identity is the gate: IMR reads must equal disk exactly.
                        disk.beam_io_ms.to_bits() == imr.beam_io_ms.to_bits()
                            // staticcheck: allow(float-cmp) — same: exact-bits witness.
                            && disk.range_io_ms.to_bits() == imr.range_io_ms.to_bits()
                    })
            });

    let sel_gate = match selection_scale {
        Scale::Quick => SELECTION_SPEEDUP_GATE_QUICK,
        Scale::Large | Scale::Paper => SELECTION_SPEEDUP_GATE_LARGE,
    };

    eprintln!(
        "selection-throughput trendline ({} scale, {} decisions/cell)...",
        selection_scale.slug(),
        selection_scale.selection_decisions()
    );
    let sel_cells = selection::run(selection_scale);
    eprint!("{}", selection::table(&sel_cells).render());
    let sel_speedup_w4096 = selection::min_speedup_at(&sel_cells, 4096);
    let sel_inc_w4096 = sel_cells
        .iter()
        .filter(|c| c.window == 4096)
        .map(|c| c.incremental_per_s)
        .fold(f64::INFINITY, f64::min);

    // Hit rates computed over fewer than HIT_RATE_FLOOR lookups are
    // start-up transient, not steady state (a handful of warm lookups
    // reads as a flawless 1.0000 at quick scale): render those as
    // `null` (n/a) rather than a misleading number. See
    // docs/performance.md for why the seek memo's rate saturates low.
    let rate_or_null = |r: Option<f64>| match r {
        Some(v) => format!("{v:.4}"),
        None => "null".to_string(),
    };
    let seek_hit_rate =
        rate_or_null(merged.hit_rate_floored(Counter::SeekMemoHit, Counter::SeekMemoMiss));
    let xlat_hit_rate = rate_or_null(
        merged.hit_rate_floored(Counter::TranslationCacheHit, Counter::TranslationCacheMiss),
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"pr9_backend_matrix\",");
    let _ = writeln!(
        json,
        "  \"backend_filter\": {},",
        match filter {
            Some(b) => format!("\"{}\"", json_escape(b)),
            None => "null".to_string(),
        }
    );
    let _ = writeln!(json, "  \"figure_scale\": \"quick\",");
    let _ = writeln!(
        json,
        "  \"selection_scale\": \"{}\",",
        selection_scale.slug()
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"engine_threads\": {parallel_threads},");
    let _ = writeln!(json, "  \"sweep_cells\": {cells},");
    let _ = writeln!(json, "  \"serial_wall_s\": {serial_s:.3},");
    let _ = writeln!(json, "  \"parallel_wall_s\": {parallel_s:.3},");
    let _ = writeln!(json, "  \"parallel_speedup\": {speedup:.2},");
    let _ = writeln!(
        json,
        "  \"serial_cells_per_s\": {:.2},",
        cells as f64 / serial_s
    );
    let _ = writeln!(
        json,
        "  \"parallel_cells_per_s\": {:.2},",
        cells as f64 / parallel_s
    );
    let _ = writeln!(json, "  \"telemetry_off_wall_s\": {off_s:.3},");
    let _ = writeln!(json, "  \"telemetry_on_wall_s\": {on_s:.3},");
    let _ = writeln!(
        json,
        "  \"telemetry_overhead_pct\": {:.2},",
        overhead * 100.0
    );
    let _ = writeln!(
        json,
        "  \"telemetry_overhead_budget_pct\": {:.1},",
        TELEMETRY_OVERHEAD_BUDGET * 100.0
    );
    let _ = writeln!(
        json,
        "  \"telemetry_identical_figures\": {},",
        telemetry_divergent.is_empty()
    );
    let _ = writeln!(
        json,
        "  \"hit_rate_floor\": {},",
        multimap_telemetry::HIT_RATE_FLOOR
    );
    let _ = writeln!(json, "  \"seek_memo_hit_rate\": {seek_hit_rate},");
    let _ = writeln!(json, "  \"translation_cache_hit_rate\": {xlat_hit_rate},");
    let _ = writeln!(json, "  \"telemetry\": {},", merged.to_json(2));
    let _ = writeln!(json, "  \"ablations_wall_s\": {ablations_s:.3},");
    let _ = writeln!(json, "  \"ablation_tables\": {},", ablation_tables.len());
    let _ = writeln!(
        json,
        "  \"sptf_profiled_estimates_per_s\": {profiled_rate:.0},"
    );
    let _ = writeln!(json, "  \"sptf_raw_estimates_per_s\": {raw_rate:.0},");
    let _ = writeln!(
        json,
        "  \"sptf_estimator_speedup\": {:.2},",
        profiled_rate / raw_rate
    );
    let _ = writeln!(json, "  \"sptf_batch_locate_calls\": {locates},");
    let _ = writeln!(
        json,
        "  \"selection_windows\": [{}],",
        selection::WINDOWS
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"selection_cells\": [");
    for (i, c) in sel_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"profile\": \"{}\", \"window\": {}, \
             \"incremental_decisions\": {}, \"incremental_per_s\": {:.0}, \
             \"reference_decisions\": {}, \"reference_per_s\": {:.0}, \
             \"speedup\": {:.2}, \"candidates_per_decision\": {:.2}}}{}",
            json_escape(c.profile),
            c.window,
            c.incremental_decisions,
            c.incremental_per_s,
            c.reference_decisions,
            c.reference_per_s,
            c.speedup,
            c.candidates_per_decision,
            if i + 1 == sel_cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"selection_speedup_w4096\": {sel_speedup_w4096:.2},"
    );
    let _ = writeln!(
        json,
        "  \"selection_incremental_per_s_w4096\": {sel_inc_w4096:.0},"
    );
    let _ = writeln!(json, "  \"selection_speedup_gate\": {sel_gate:.1},");
    let _ = writeln!(json, "  \"fault_clean_io_ms\": {:.3},", fault.clean_io_ms);
    let _ = writeln!(
        json,
        "  \"fault_degraded_io_ms\": {:.3},",
        fault.degraded_io_ms
    );
    let _ = writeln!(
        json,
        "  \"degraded_overhead_pct\": {:.2},",
        fault.overhead_pct
    );
    let _ = writeln!(
        json,
        "  \"fault_payload_match\": {},",
        fault.payload_match
    );
    let _ = writeln!(json, "  \"fault_retries\": {},", fault.retries);
    let _ = writeln!(json, "  \"fault_remaps\": {},", fault.remaps);
    let _ = writeln!(json, "  \"cache_wall_s\": {cache_wall_s:.3},");
    let _ = writeln!(
        json,
        "  \"cache_capacities\": [{}],",
        pagecache::CAPACITIES
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"cache_cells\": [");
    for (i, c) in cache_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mapping\": \"{}\", \"policy\": \"{}\", \"prefetch\": \"{}\", \
             \"capacity\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
             \"prefetch_issued\": {}, \"prefetch_used\": {}, \
             \"prefetch_efficiency\": {:.4}, \"evictions\": {}, \"io_ms\": {:.3}}}{}",
            json_escape(&c.mapping),
            c.policy,
            c.prefetch,
            c.capacity,
            c.hits,
            c.misses,
            c.hit_rate(),
            c.prefetch_issued,
            c.prefetch_used,
            c.prefetch_efficiency(),
            c.evictions,
            c.io_ms,
            if i + 1 == cache_cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"cache_mm_adjacency_hit_rate\": {cache_mm_adj:.4},"
    );
    let _ = writeln!(
        json,
        "  \"cache_mm_sequential_hit_rate\": {cache_mm_seq:.4},"
    );
    let _ = writeln!(json, "  \"backend_wall_s\": {backend_wall_s:.3},");
    let _ = writeln!(json, "  \"backend_cells\": [");
    for (i, c) in backend_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"mapping\": \"{}\", \"beams\": {}, \
             \"beam_ms\": {:.4}, \"range_ms\": {:.4}, \"requests\": {}, \
             \"payload\": {}}}{}",
            c.backend,
            json_escape(&c.mapping),
            c.beams,
            c.beam_ms_per_query(),
            c.range_io_ms,
            c.requests,
            c.payload,
            if i + 1 == backend_cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"backend_write_cells\": [");
    for (i, c) in backend_writes.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"pages\": {}, \"blocks\": {}, \
             \"io_ms\": {:.4}, \"neighbor_rewrites\": {}}}{}",
            c.backend,
            c.pages,
            c.blocks,
            c.io_ms,
            c.neighbor_rewrites,
            if i + 1 == backend_writes.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");
    let num_or_null = |v: Option<f64>| match v {
        Some(v) => format!("{v:.4}"),
        None => "null".to_string(),
    };
    let _ = writeln!(
        json,
        "  \"backend_disk_mm_beam_ms\": {},",
        num_or_null(backend_beam_ms("disk"))
    );
    let _ = writeln!(
        json,
        "  \"backend_ssd_mm_beam_ms\": {},",
        num_or_null(backend_beam_ms("ssd"))
    );
    let _ = writeln!(
        json,
        "  \"backend_imr_mm_beam_ms\": {},",
        num_or_null(backend_beam_ms("imr"))
    );
    let _ = writeln!(
        json,
        "  \"backend_imr_rmw_rewrites\": {},",
        match backend_imr_rewrites {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        }
    );
    let _ = writeln!(
        json,
        "  \"backend_payload_match\": {backend_payload_match},"
    );
    let _ = writeln!(
        json,
        "  \"backend_imr_reads_identical\": {backend_imr_reads_identical},"
    );
    let _ = writeln!(
        json,
        "  \"divergent_figures\": [{}],",
        divergent
            .iter()
            .map(|d| format!("\"{}\"", json_escape(d)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"deterministic\": {}", divergent.is_empty());
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(2);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");

    if !divergent.is_empty() {
        eprintln!("FAIL: parallel tables diverged from serial reference: {divergent:?}");
        std::process::exit(1);
    }
    if !telemetry_divergent.is_empty() {
        eprintln!(
            "FAIL: telemetry-on tables diverged from telemetry-off: {telemetry_divergent:?}"
        );
        std::process::exit(1);
    }
    if overhead > TELEMETRY_OVERHEAD_BUDGET {
        eprintln!(
            "FAIL: telemetry overhead {:.1}% exceeds the {:.0}% budget \
             ({off_s:.3}s off vs {on_s:.3}s on)",
            overhead * 100.0,
            TELEMETRY_OVERHEAD_BUDGET * 100.0
        );
        std::process::exit(1);
    }
    if !fault.payload_match {
        eprintln!("FAIL: a faulted query's payload diverged from its fault-free reference");
        std::process::exit(1);
    }
    if sel_speedup_w4096 < sel_gate {
        eprintln!(
            "FAIL: incremental selector speedup {sel_speedup_w4096:.2}x at window 4096 \
             is under the {sel_gate:.1}x gate ({} scale)",
            selection_scale.slug()
        );
        std::process::exit(1);
    }
    if cache_mm_adj <= cache_mm_seq {
        eprintln!(
            "FAIL: adjacency prefetch hit rate {cache_mm_adj:.4} does not beat plain \
             sequential readahead {cache_mm_seq:.4} on the MultiMap streaming-beam workload"
        );
        std::process::exit(1);
    }
    if !backend_payload_match {
        eprintln!(
            "FAIL: a backend delivered a payload differing from its mapping's \
             cross-backend reference"
        );
        std::process::exit(1);
    }
    if full_matrix && backend_imr_rewrites == Some(0) {
        eprintln!(
            "FAIL: the IMR write sweep performed zero neighbor rewrites \
             (bottom-track writes beside written top tracks must amplify)"
        );
        std::process::exit(1);
    }
    if !backend_imr_reads_identical {
        eprintln!(
            "FAIL: the IMR backend's read-path timings diverged bit-for-bit \
             from the rotating disk"
        );
        std::process::exit(1);
    }
    eprintln!(
        "OK: {} figures byte-identical serial vs parallel ({parallel_threads} threads), \
         {:.1}x sweep speedup, telemetry overhead {:.1}%, degraded-mode overhead {:.1}% \
         ({} retries, {} remaps, payloads identical), selection speedup {:.1}x at window \
         4096, MultiMap cache hit rate {cache_mm_adj:.4} adjacency vs {cache_mm_seq:.4} \
         sequential, backend matrix payloads identical ({} IMR neighbor rewrites)",
        serial_tables.len(),
        speedup,
        overhead.max(0.0) * 100.0,
        fault.overhead_pct,
        fault.retries,
        fault.remaps,
        sel_speedup_w4096,
        backend_imr_rewrites.unwrap_or(0)
    );
}
