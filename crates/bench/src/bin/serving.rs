//! Serving smoke benchmark: runs the quick-scale multi-tenant serving
//! sweep (mapping × backend × tenant-count × policy) serially and in
//! parallel, checks the two runs are byte-identical, and writes
//! `BENCH_pr10.json` with per-tenant p50/p99/p999 and admission
//! counters for every cell.
//!
//! ```text
//! cargo run --release -p multimap-bench --bin serving -- \
//!     [--out BENCH_pr10.json] [--scale quick|large|paper]
//! ```
//!
//! Exit status is non-zero if the parallel sweep diverges from the
//! serial reference, the sweep covers fewer than 4 concurrent tenants,
//! or — the headline — MultiMap's merged p99 exceeds Naive's on the
//! rotating disk at any tenant count and policy (the adjacency
//! advantage must survive queueing, which is the research question the
//! paper never measured).

// staticcheck: allow-file(no-unwrap) — benchmark/CLI binary: aborting with a message on a malformed run is the intended failure mode.

use std::fmt::Write as _;

use multimap_bench::serving::{serving_sweep, serving_table, ServingCell, TENANT_COUNTS};
use multimap_bench::Scale;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn quant(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    }
}

/// The byte-identity witness of one sweep: every report's JSON plus its
/// digest, concatenated in cell order.
fn sweep_witness(cells: &[ServingCell]) -> String {
    let mut out = String::new();
    for c in cells {
        let _ = writeln!(out, "{:016x}", c.report.digest);
        out.push_str(&c.report.to_json());
        out.push('\n');
    }
    out
}

fn main() {
    let mut out_path = "BENCH_pr10.json".to_string();
    let mut scale = Scale::Quick;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--scale" => {
                scale = match args.next().expect("--scale needs a value").as_str() {
                    "quick" => Scale::Quick,
                    "large" => Scale::Large,
                    "paper" => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    // Serial reference, then a 4-worker replay: the sweep must be
    // byte-identical at any thread count.
    multimap_engine::set_threads(1);
    let serial = serving_sweep(scale);
    multimap_engine::set_threads(4);
    let parallel = serving_sweep(scale);
    multimap_engine::set_threads(0);
    let identity = sweep_witness(&serial) == sweep_witness(&parallel);

    let table = serving_table(&serial);
    println!("{}", table.render());

    let max_tenants = serial.iter().map(|c| c.spec.tenants).max().unwrap_or(0);

    // Tail-advantage gate: fixed workload, swap only the mapping. On
    // the rotating disk MultiMap's merged p99 must not exceed Naive's
    // (bucketed quantiles can tie at an edge) and its exact mean must be
    // strictly lower, for every (tenants, policy) combination.
    let mut tail_advantage = true;
    let mut advantage_rows = Vec::new();
    for c in serial.iter().filter(|c| {
        c.spec.backend == "disk" && c.spec.mapping == "MultiMap"
    }) {
        let naive = serial
            .iter()
            .find(|n| {
                n.spec.backend == "disk"
                    && n.spec.mapping == "Naive"
                    && n.spec.tenants == c.spec.tenants
                    && n.spec.policy == c.spec.policy
            })
            .expect("matching Naive cell");
        let (mp99, np99) = (c.merged_quantile(0.99), naive.merged_quantile(0.99));
        let (mmean, nmean) = (c.merged_mean(), naive.merged_mean());
        let holds = match (mp99, np99, mmean, nmean) {
            (Some(mq), Some(nq), Some(mm), Some(nm)) => mq <= nq && mm < nm,
            _ => false,
        };
        if !holds {
            tail_advantage = false;
        }
        advantage_rows.push((
            c.spec.tenants,
            c.spec.policy.slug(),
            mp99,
            np99,
            mmean,
            nmean,
            holds,
        ));
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"pr10-serving\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.slug());
    let _ = writeln!(json, "  \"gates\": {{");
    let _ = writeln!(json, "    \"serving_identity\": {identity},");
    let _ = writeln!(json, "    \"max_concurrent_tenants\": {max_tenants},");
    let _ = writeln!(json, "    \"tail_advantage_disk\": {tail_advantage}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"tail_advantage\": [");
    for (i, (tenants, policy, mq, nq, mm, nm, holds)) in advantage_rows.iter().enumerate() {
        let comma = if i + 1 < advantage_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tenants\": {tenants}, \"policy\": \"{policy}\", \
             \"multimap_p99_ms\": {}, \"naive_p99_ms\": {}, \
             \"multimap_mean_ms\": {}, \"naive_mean_ms\": {}, \"holds\": {holds}}}{comma}",
            quant(*mq),
            quant(*nq),
            quant(*mm),
            quant(*nm),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in serial.iter().enumerate() {
        let comma = if i + 1 < serial.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"backend\": \"{}\",", json_escape(c.spec.backend));
        let _ = writeln!(json, "      \"mapping\": \"{}\",", json_escape(c.spec.mapping));
        let _ = writeln!(json, "      \"tenants\": {},", c.spec.tenants);
        let _ = writeln!(json, "      \"policy\": \"{}\",", c.spec.policy.slug());
        let _ = writeln!(json, "      \"completed\": {},", c.completed());
        let _ = writeln!(json, "      \"shed\": {},", c.shed());
        let _ = writeln!(json, "      \"rejected\": {},", c.rejected());
        let _ = writeln!(json, "      \"p50_ms\": {},", quant(c.merged_quantile(0.50)));
        let _ = writeln!(json, "      \"p99_ms\": {},", quant(c.merged_quantile(0.99)));
        let _ = writeln!(json, "      \"p999_ms\": {},", quant(c.merged_quantile(0.999)));
        let _ = writeln!(json, "      \"mean_ms\": {},", quant(c.merged_mean()));
        let _ = writeln!(json, "      \"makespan_ms\": {:.3},", c.report.makespan_ms);
        let _ = writeln!(json, "      \"digest\": \"{:016x}\",", c.report.digest);
        let _ = writeln!(json, "      \"tenant_detail\": [");
        for (j, t) in c.report.tenants.iter().enumerate() {
            let tcomma = if j + 1 < c.report.tenants.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "        {{\"name\": \"{}\", \"submitted\": {}, \"completed\": {}, \
                 \"shed_deadline\": {}, \"rejected_queue_full\": {}, \"disk_requests\": {}, \
                 \"p50_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}}}{tcomma}",
                json_escape(&t.name),
                t.submitted,
                t.completed,
                t.shed_deadline,
                t.rejected_queue_full,
                t.disk_requests,
                quant(t.p50()),
                quant(t.p99()),
                quant(t.p999()),
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    if !identity {
        eprintln!("GATE FAILED: parallel serving sweep diverged from serial reference");
        std::process::exit(1);
    }
    if max_tenants < TENANT_COUNTS[0].max(4) {
        eprintln!("GATE FAILED: sweep covers fewer than 4 concurrent tenants");
        std::process::exit(1);
    }
    if !tail_advantage {
        eprintln!(
            "GATE FAILED: MultiMap merged p99 exceeds Naive on the rotating disk: {advantage_rows:?}"
        );
        std::process::exit(1);
    }
    println!(
        "gates: serving_identity ok, {max_tenants} concurrent tenants, tail advantage holds"
    );
}
