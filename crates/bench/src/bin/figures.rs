//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run --release -p multimap-bench --bin figures -- all
//! cargo run --release -p multimap-bench --bin figures -- fig6a fig6b
//! cargo run --release -p multimap-bench --bin figures -- --quick all
//! cargo run --release -p multimap-bench --bin figures -- --replot all
//! cargo run --release -p multimap-bench --bin figures -- --quick --backend ssd backends
//! ```
//!
//! `--replot` rebuilds the SVG charts from previously saved TSVs without
//! re-running any experiment. `--backend` restricts the `backends`
//! matrix to one registry device backend (`disk`, `ssd` or `imr`).
//!
//! Results are printed and saved as TSV under `results/<scale>/`.

use std::path::PathBuf;
use std::time::Instant;

use multimap_bench::figure_plots::auto_plots;
use multimap_bench::plot::save_svg;
use multimap_bench::{ablations, backends, fig1, fig6, fig7, fig8, model_fig, Scale, Table};

/// TSV file name for each figure id.
fn tsv_name(fig: &str) -> Option<&'static str> {
    Some(match fig {
        "fig1" => "fig1_seek_profile",
        "fig6a" => "fig6a_synthetic_beams",
        "fig6b" => "fig6b_synthetic_ranges",
        "fig7a" => "fig7a_earthquake_beams",
        "fig7b" => "fig7b_earthquake_ranges",
        "fig8" => "fig8_olap_queries",
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let replot = args.iter().any(|a| a == "--replot");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let backend: Option<String> = args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(name) = backend.as_deref() {
        if !multimap_disksim::BACKEND_NAMES.contains(&name) {
            eprintln!(
                "error: unknown --backend '{name}' (expected one of {})",
                multimap_disksim::BACKEND_NAMES.join("|")
            );
            std::process::exit(2);
        }
    }
    // Figure ids are the positional args, minus `--backend`'s value.
    let mut figures: Vec<&str> = Vec::new();
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--backend" {
            skip_value = true;
            continue;
        }
        if !a.starts_with("--") {
            figures.push(a.as_str());
        }
    }
    if figures.is_empty() || figures.contains(&"all") {
        figures = vec![
            "fig1",
            "fig6a",
            "fig6b",
            "fig7a",
            "fig7b",
            "fig8",
            "ablations",
            "model",
            "backends",
        ];
    }
    let out_dir = PathBuf::from("results").join(if quick { "quick" } else { "paper" });
    println!(
        "running {:?} at {} scale (results -> {})\n",
        figures,
        if quick { "quick" } else { "paper" },
        out_dir.display()
    );

    let save = |table: &Table, name: &str| {
        table.print();
        println!();
        if let Err(e) = table.save_tsv(&out_dir, name) {
            eprintln!("warning: could not save {name}.tsv: {e}");
        }
    };
    let save_plots = |fig: &str, table: &Table| {
        let plot_dir = out_dir.join("plots");
        for (name, svg) in auto_plots(fig, table) {
            if let Err(e) = save_svg(&svg, &plot_dir, &name) {
                eprintln!("warning: could not save {name}.svg: {e}");
            }
        }
    };

    if replot {
        // Rebuild SVGs from previously saved TSVs without re-running the
        // experiments.
        for fig in figures {
            let Some(name) = tsv_name(fig) else { continue };
            let path = out_dir.join(format!("{name}.tsv"));
            match Table::load_tsv(&path, name) {
                Ok(table) => {
                    for (plot_name, svg) in auto_plots(fig, &table) {
                        if let Err(e) = save_svg(&svg, &out_dir.join("plots"), &plot_name) {
                            eprintln!("warning: could not save {plot_name}.svg: {e}");
                        } else {
                            println!("replotted {plot_name}.svg");
                        }
                    }
                }
                Err(e) => eprintln!("skipping {fig}: {e}"),
            }
        }
        return;
    }

    for fig in figures {
        // staticcheck: allow(det-wall-clock) — progress reporting only: the elapsed time is printed to stderr and never reaches a figure table.
        let started = Instant::now();
        match fig {
            "fig1" => {
                let t = fig1::run();
                save(&t, "fig1_seek_profile");
                save_plots("fig1", &t);
            }
            "fig6a" => {
                let t = fig6::run_beams(scale);
                save(&t, "fig6a_synthetic_beams");
                save_plots("fig6a", &t);
            }
            "fig6b" => {
                let t = fig6::run_ranges(scale);
                save(&t, "fig6b_synthetic_ranges");
                save_plots("fig6b", &t);
            }
            "fig7a" => {
                let t = fig7::run_beams(scale);
                save(&t, "fig7a_earthquake_beams");
                save_plots("fig7a", &t);
            }
            "fig7b" => {
                let t = fig7::run_ranges(scale);
                save(&t, "fig7b_earthquake_ranges");
                save_plots("fig7b", &t);
            }
            "fig8" => {
                let t = fig8::run(scale);
                save(&t, "fig8_olap_queries");
                save_plots("fig8", &t);
            }
            "model" => save(&model_fig::run(scale), "model_validation"),
            "ablations" => {
                for (i, t) in ablations::run_all(scale).iter().enumerate() {
                    save(t, &format!("ablation_{i}"));
                }
            }
            "backends" => {
                let filter = backend.as_deref();
                let cells = backends::run(scale, filter);
                save(&backends::table(scale, &cells), "backend_matrix");
                let writes = backends::write_sweep(scale, filter);
                save(&backends::write_table(scale, &writes), "backend_write_sweep");
            }
            other => {
                eprintln!("unknown figure id: {other}");
                eprintln!(
                    "known: fig1 fig6a fig6b fig7a fig7b fig8 ablations model backends all"
                );
                std::process::exit(2);
            }
        }
        eprintln!("[{fig} took {:.1}s]\n", started.elapsed().as_secs_f64());
    }

    // Telemetry sidecar: the figure generators record merged per-figure
    // metrics into the global registry; dump them next to the TSVs.
    // TSV/SVG contents never depend on telemetry (see docs/observability.md).
    let registry = multimap_telemetry::global();
    if multimap_telemetry::enabled() && !registry.is_empty() {
        let path = out_dir.join("telemetry.json");
        match std::fs::write(&path, format!("{}\n", registry.to_json())) {
            Ok(()) => println!("telemetry -> {}", path.display()),
            Err(e) => eprintln!("warning: could not save telemetry.json: {e}"),
        }
    }
}
