//! Page-cache benchmark: hit rate versus mapping on a streaming beam
//! workload (the PR 8 headline). A client sweeps a beam along one
//! dimension while stepping its anchor along another — the access
//! pattern MultiMap's semi-sequential layout is built for — and the
//! cache either notices (adjacency prefetch, which asks the mapping for
//! the next region's blocks) or doesn't (plain LBN readahead, which
//! fetches whatever happens to follow on disk).
//!
//! Every `(mapping, eviction policy, capacity, prefetch mode)` cell is
//! independent: a fresh volume, executor and cache, the same
//! deterministic query stream. Cells fan out through
//! [`multimap_engine::sweep`], so the table is bit-identical at any
//! thread count.

// staticcheck: allow-file(no-unwrap) — figure/CLI generator: aborting with a message on a malformed experiment is the intended failure mode.

use multimap_core::{BoxRegion, GridSpec};
use multimap_disksim::profiles;
use multimap_lvm::LogicalVolume;
use multimap_query::{QueryExecutor, QueryRequest};
use multimap_store::{CacheConfig, EvictionKind, PageCache, PrefetchMode};

use crate::harness::{build_mappings, Scale, Table};

/// Cache capacities swept by the bench, in pages. The small one holds a
/// fraction of the working set (constant eviction pressure); the large
/// one holds all of it (retention is what distinguishes policies).
pub const CAPACITIES: [usize; 2] = [64, 1024];

/// Eviction policies swept by the bench.
pub const POLICIES: [EvictionKind; 3] = [EvictionKind::Clock, EvictionKind::Lru, EvictionKind::TwoQ];

/// One `(mapping, policy, capacity, prefetch)` measurement.
#[derive(Clone, Debug)]
pub struct CacheCell {
    /// Mapping family name (`Naive`, `Z-order`, `Hilbert`, `MultiMap`).
    pub mapping: String,
    /// Eviction policy name (`clock`, `lru`, `2q`).
    pub policy: &'static str,
    /// Prefetch mode name (`sequential`, `adjacency`).
    pub prefetch: &'static str,
    /// Cache capacity in pages.
    pub capacity: usize,
    /// Demand probes served from memory.
    pub hits: u64,
    /// Demand probes that went to disk.
    pub misses: u64,
    /// Speculative pages fetched.
    pub prefetch_issued: u64,
    /// Speculative pages later demanded before eviction.
    pub prefetch_used: u64,
    /// Pages evicted under capacity pressure.
    pub evictions: u64,
    /// Total simulated I/O time across the workload, ms.
    pub io_ms: f64,
}

impl CacheCell {
    /// Demand hit rate, `hits / (hits + misses)`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of issued prefetches the workload actually consumed.
    pub fn prefetch_efficiency(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            self.prefetch_used as f64 / self.prefetch_issued as f64
        }
    }
}

/// The bench grid. Much smaller than the figure chunk: each of the 48
/// cells replays the full stream, and hit rates saturate long before
/// figure-scale extents add information.
fn bench_grid(scale: Scale) -> GridSpec {
    match scale {
        Scale::Quick | Scale::Large => GridSpec::new([96u64, 16, 12]),
        Scale::Paper => GridSpec::new([160u64, 24, 16]),
    }
}

/// Number of distinct beam streams (anchor positions along Dim0).
fn stream_count(scale: Scale) -> u64 {
    match scale {
        Scale::Quick | Scale::Large => 3,
        Scale::Paper => 6,
    }
}

/// The deterministic streaming workload: for each of `streams` anchor
/// positions, sweep a Dim1 beam along the last dimension; then revisit
/// the first stream end to end (retention under eviction pressure).
fn streaming_beams(grid: &GridSpec, streams: u64) -> Vec<BoxRegion> {
    let depth = grid.extent(2);
    let step = grid.extent(0) / streams;
    let mut regions = Vec::new();
    let sweep = |regions: &mut Vec<BoxRegion>, x: u64| {
        for z in 0..depth {
            regions.push(BoxRegion::beam(grid, 1, &[x, 0, z]));
        }
    };
    for s in 0..streams {
        sweep(&mut regions, s * step);
    }
    sweep(&mut regions, 0);
    regions
}

/// Run the full sweep: 4 mappings × 3 eviction policies × 2 capacities
/// × {sequential, adjacency} prefetch, each cell an independent cached
/// replay of the same streaming-beam workload.
pub fn run(scale: Scale) -> Vec<CacheCell> {
    let geom = &profiles::evaluation_disks()[0];
    let grid = bench_grid(scale);
    let regions = streaming_beams(&grid, stream_count(scale));
    let mappings = build_mappings(geom, &grid);
    // A beam holds `extent(1)` cells; give sequential readahead the same
    // speculative budget per query as a depth-1 adjacency prediction.
    let window = grid.extent(1);
    let modes = [
        PrefetchMode::Sequential { window },
        PrefetchMode::Adjacency { depth: 1 },
    ];

    let cells: Vec<(usize, usize, usize, usize)> = (0..mappings.len())
        .flat_map(|m| {
            (0..POLICIES.len()).flat_map(move |p| {
                (0..CAPACITIES.len()).flat_map(move |c| (0..modes.len()).map(move |f| (m, p, c, f)))
            })
        })
        .collect();

    multimap_engine::sweep(&cells, |&(mi, pi, ci, fi)| {
        let mapping = mappings[mi].as_ref();
        let volume = LogicalVolume::new(geom.clone(), 1);
        let exec = QueryExecutor::new(&volume, 0);
        let cache = PageCache::new(&CacheConfig {
            capacity_pages: CAPACITIES[ci],
            eviction: POLICIES[pi],
            prefetch: modes[fi],
            ..CacheConfig::default()
        });
        let mut io_ms = 0.0;
        for region in &regions {
            io_ms += exec
                .execute(QueryRequest::beam(mapping, region).with_cache(&cache))
                .expect("bench query runs in-grid")
                .total_io_ms;
        }
        let stats = cache.stats();
        CacheCell {
            mapping: mapping.name().to_string(),
            policy: POLICIES[pi].name(),
            prefetch: modes[fi].name(),
            capacity: CAPACITIES[ci],
            hits: stats.hits,
            misses: stats.misses,
            prefetch_issued: stats.prefetch_issued,
            prefetch_used: stats.prefetch_used,
            evictions: stats.evictions,
            io_ms,
        }
    })
}

/// Render the sweep as a table, hit rate per mapping in the rightmost
/// columns (the headline comparison).
pub fn table(scale: Scale, cells: &[CacheCell]) -> Table {
    let mut t = Table::new(
        format!(
            "Page cache: streaming-beam hit rate vs mapping, grid {:?}",
            bench_grid(scale).extents()
        ),
        &[
            "mapping", "policy", "prefetch", "capacity", "hit_rate", "pf_eff", "io_ms",
        ],
    );
    for c in cells {
        t.row(vec![
            c.mapping.clone(),
            c.policy.to_string(),
            c.prefetch.to_string(),
            c.capacity.to_string(),
            format!("{:.4}", c.hit_rate()),
            format!("{:.4}", c.prefetch_efficiency()),
            format!("{:.3}", c.io_ms),
        ]);
    }
    t
}

/// Headline figure: the hit rate a given mapping achieves under
/// `prefetch` with the default (clock) policy at the roomy capacity —
/// the number the CI cache-smoke gate tracks.
pub fn headline(cells: &[CacheCell], mapping: &str, prefetch: &str) -> f64 {
    cells
        .iter()
        .find(|c| {
            c.mapping == mapping
                && c.prefetch == prefetch
                && c.policy == EvictionKind::Clock.name()
                && c.capacity == *CAPACITIES.iter().max().expect("non-empty")
        })
        .map(CacheCell::hit_rate)
        .expect("sweep covers every (mapping, prefetch) pair")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_beats_sequential_readahead_for_every_mapping() {
        let cells = run(Scale::Quick);
        assert_eq!(cells.len(), 4 * 3 * 2 * 2);
        for mapping in ["Naive", "Z-order", "Hilbert", "MultiMap"] {
            let adj = headline(&cells, mapping, "adjacency");
            let seq = headline(&cells, mapping, "sequential");
            assert!(
                adj > seq,
                "{mapping}: adjacency {adj:.4} does not beat sequential {seq:.4}"
            );
        }
        // The geometry-aware prefetcher sustains the stream: most of the
        // sweep is served from memory once the stride is detected.
        assert!(headline(&cells, "MultiMap", "adjacency") > 0.8);
    }

    #[test]
    fn small_capacity_evicts_and_large_retains_the_revisit() {
        let cells = run(Scale::Quick);
        let pick = |capacity: usize| {
            cells
                .iter()
                .find(|c| {
                    c.mapping == "MultiMap"
                        && c.policy == "lru"
                        && c.prefetch == "adjacency"
                        && c.capacity == capacity
                })
                .expect("cell present")
        };
        let small = pick(CAPACITIES[0]);
        let large = pick(CAPACITIES[1]);
        assert!(small.evictions > 0, "small capacity never evicted");
        assert_eq!(large.evictions, 0, "roomy capacity should hold the set");
        assert!(large.hit_rate() > small.hit_rate());
        assert!(large.io_ms < small.io_ms);
    }
}
