//! # multimap-bench — experiment harness
//!
//! Regenerates every figure of the paper's evaluation (Section 5). Each
//! `figN` module produces the data behind one figure; the `figures`
//! binary dispatches on the command line and writes TSV files next to a
//! human-readable table.
//!
//! Three scales are supported: `Scale::Paper` uses the paper's dataset
//! sizes (a 259³ synthetic chunk, the (591,75,25,25) OLAP chunk, the
//! full earthquake configuration); `Scale::Quick` shrinks everything
//! proportionally for smoke tests and CI; `Scale::Large` keeps the
//! quick figure datasets but streams tens of millions of requests
//! through the [`selection`] throughput bench.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod backends;
pub mod fig1;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod figure_plots;
pub mod harness;
pub mod model_fig;
pub mod pagecache;
pub mod plot;
pub mod selection;
pub mod serving;

pub use harness::{Scale, Table};
