//! Selection-throughput benchmark: the incremental rotational-band
//! SPTF selector against the retained linear-rescan reference, across
//! the TCQ window spectrum on both paper evaluation drives.
//!
//! Each cell streams a scattered request batch through
//! `service_batch_queued_sptf_{incremental,reference}` at a fixed
//! window depth. At steady state both implementations hold exactly
//! `window` requests pending, so serve decisions per second is a pure
//! selection-speed figure — and because the equivalence suite pins the
//! two to identical serve orders and timings, the ratio compares the
//! *same* decisions, made faster. The reference path is the scheduler
//! the pre-PR6 figures (`BENCH_pr5.json` and earlier) ran on, so the
//! `speedup` column is the selection-throughput trendline against that
//! baseline.
//!
//! The reference scan costs `O(window)` estimates per decision, so it
//! is timed over a bounded prefix of the stream; the incremental
//! selector is timed over the full batch
//! ([`Scale::selection_decisions`] per cell). Before timing, both
//! implementations run the reference-sized prefix and the cell asserts
//! bit-identical simulated time, payload, and eviction counts — a
//! cheap in-bench restatement of the equivalence guarantee.

// staticcheck: allow-file(no-unwrap) — benchmark code: aborting with a message on a malformed run is the intended failure mode.

use std::time::Instant;

use multimap_disksim::{
    plain_serve, profiles, service_batch_queued_sptf_incremental,
    service_batch_queued_sptf_reference, BatchTiming, DiskGeometry, DiskSim, Request,
    SPTF_INCREMENTAL_MIN_WINDOW,
};

use crate::harness::{Scale, Table};

/// TCQ window depths of the selection trendline. All are at or above
/// [`SPTF_INCREMENTAL_MIN_WINDOW`], so the incremental measurements
/// exercise the rotational-band selector, never the reference scan.
pub const WINDOWS: [usize; 4] = [64, 256, 1024, 4096];

/// One `(profile, window)` cell of the selection bench.
#[derive(Clone, Debug)]
pub struct SelectionCell {
    /// Disk profile slug.
    pub profile: &'static str,
    /// TCQ window depth.
    pub window: usize,
    /// Serve decisions timed on the incremental selector.
    pub incremental_decisions: u64,
    /// Incremental wall time, seconds.
    pub incremental_wall_s: f64,
    /// Incremental serve decisions per second.
    pub incremental_per_s: f64,
    /// Serve decisions timed on the linear-rescan reference.
    pub reference_decisions: u64,
    /// Reference wall time, seconds.
    pub reference_wall_s: f64,
    /// Reference serve decisions per second.
    pub reference_per_s: f64,
    /// `incremental_per_s / reference_per_s`.
    pub speedup: f64,
    /// Candidates the incremental selector actually estimated per
    /// decision, averaged (the reference examines `window` per
    /// decision at steady state).
    pub candidates_per_decision: f64,
}

/// Deterministic scattered request stream over the drive's LBN space.
fn scattered(geom: &DiskGeometry, n: u64) -> Vec<Request> {
    let span = geom.total_blocks() - 8;
    (0..n)
        .map(|i| Request::new(i.wrapping_mul(7_907_693) % span, 1 + i % 4))
        .collect()
}

fn run_queued(
    geom: &DiskGeometry,
    requests: &[Request],
    window: usize,
    incremental: bool,
) -> (f64, BatchTiming) {
    let mut sim = DiskSim::new(geom.clone());
    // staticcheck: allow(det-wall-clock) — measures real elapsed selection time for the throughput trendline; simulated results are checked byte-identical separately.
    let start = Instant::now();
    let out = if incremental {
        service_batch_queued_sptf_incremental(
            &mut sim,
            requests,
            window,
            &mut plain_serve,
            &mut |_| {},
        )
    } else {
        service_batch_queued_sptf_reference(
            &mut sim,
            requests,
            window,
            &mut plain_serve,
            &mut |_| {},
        )
    }
    .expect("scattered requests are in range");
    (start.elapsed().as_secs_f64(), out)
}

/// Run the full trendline: both evaluation drives × [`WINDOWS`], with
/// [`Scale::selection_decisions`] serve decisions per cell on the
/// incremental side.
pub fn run(scale: Scale) -> Vec<SelectionCell> {
    let n_inc = scale.selection_decisions();
    let mut out = Vec::new();
    for (profile, geom) in [
        ("cheetah_36es", profiles::cheetah_36es()),
        ("atlas_10k_iii", profiles::atlas_10k_iii()),
    ] {
        let requests = scattered(&geom, n_inc);
        for window in WINDOWS {
            assert!(window >= SPTF_INCREMENTAL_MIN_WINDOW);
            // The reference is O(window) estimates per decision: time it
            // over a prefix long enough that steady-state selection
            // dominates the window fill/drain.
            let n_ref = (4_096 + window as u64).min(n_inc) as usize;

            // Equivalence check on the reference-sized prefix before
            // any timing: both paths must serve the exact same batch.
            let (_, inc_prefix) = run_queued(&geom, &requests[..n_ref], window, true);
            let (ref_wall, ref_out) = run_queued(&geom, &requests[..n_ref], window, false);
            assert_eq!(
                inc_prefix.total_ms.to_bits(),
                ref_out.total_ms.to_bits(),
                "{profile} w={window}: simulated time diverged"
            );
            assert_eq!(
                inc_prefix.payload, ref_out.payload,
                "{profile} w={window}: serve payload diverged"
            );
            assert_eq!(
                inc_prefix.sched.window_evictions, ref_out.sched.window_evictions,
                "{profile} w={window}: eviction decisions diverged"
            );

            let (inc_wall, inc_out) = run_queued(&geom, &requests, window, true);
            let incremental_per_s = n_inc as f64 / inc_wall;
            let reference_per_s = n_ref as f64 / ref_wall;
            out.push(SelectionCell {
                profile,
                window,
                incremental_decisions: n_inc,
                incremental_wall_s: inc_wall,
                incremental_per_s,
                reference_decisions: n_ref as u64,
                reference_wall_s: ref_wall,
                reference_per_s,
                speedup: incremental_per_s / reference_per_s,
                candidates_per_decision: inc_out.sched.candidates_examined as f64
                    / inc_out.requests as f64,
            });
        }
    }
    out
}

/// Smallest speedup across both profiles at the given window (the CI
/// gate reads this at window 4096).
pub fn min_speedup_at(cells: &[SelectionCell], window: usize) -> f64 {
    cells
        .iter()
        .filter(|c| c.window == window)
        .map(|c| c.speedup)
        .fold(f64::INFINITY, f64::min)
}

/// Render the trendline as a table.
pub fn table(cells: &[SelectionCell]) -> Table {
    let mut t = Table::new(
        "selection: incremental vs linear-rescan SPTF (decisions/s)",
        &[
            "profile",
            "window",
            "incremental/s",
            "reference/s",
            "speedup",
            "cand/decision",
        ],
    );
    for c in cells {
        t.row(vec![
            c.profile.to_string(),
            c.window.to_string(),
            format!("{:.0}", c.incremental_per_s),
            format!("{:.0}", c.reference_per_s),
            format!("{:.2}", c.speedup),
            format!("{:.1}", c.candidates_per_decision),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny trendline cell end to end: the in-bench equivalence
    /// assertions fire, rates are positive, and the incremental side
    /// examined fewer candidates per decision than the window size.
    #[test]
    fn tiny_cell_runs_and_counts_candidates() {
        let geom = profiles::cheetah_36es();
        let requests = scattered(&geom, 2_000);
        let (wall, out) = run_queued(&geom, &requests, 64, true);
        assert!(wall > 0.0);
        assert_eq!(out.requests, 2_000);
        assert!(out.sched.selector_repairs > 0, "incremental path engaged");
        let per_decision = out.sched.candidates_examined as f64 / out.requests as f64;
        assert!(
            per_decision < 64.0,
            "selector examined {per_decision:.1} candidates/decision, not fewer than the window"
        );
    }

    #[test]
    fn min_speedup_picks_the_weakest_profile() {
        let mk = |profile, window, speedup| SelectionCell {
            profile,
            window,
            incremental_decisions: 1,
            incremental_wall_s: 1.0,
            incremental_per_s: 1.0,
            reference_decisions: 1,
            reference_wall_s: 1.0,
            reference_per_s: 1.0,
            speedup,
            candidates_per_decision: 1.0,
        };
        let cells = vec![
            mk("a", 4096, 9.0),
            mk("b", 4096, 6.0),
            mk("a", 64, 2.0),
        ];
        // staticcheck: allow(float-cmp) — exact literals, no arithmetic.
        assert_eq!(min_speedup_at(&cells, 4096), 6.0);
    }
}
