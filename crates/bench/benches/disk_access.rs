//! Criterion micro-benchmarks of the disk simulator primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use multimap_disksim::{adjacent_lbn, profiles, semi_sequential_path, DiskSim, Request};

fn bench_locate(c: &mut Criterion) {
    let geom = profiles::cheetah_36es();
    let total = geom.total_blocks();
    c.bench_function("disksim/locate", |b| {
        let mut lbn = 0u64;
        b.iter(|| {
            lbn = (lbn
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
                % total;
            black_box(geom.locate(black_box(lbn)).unwrap())
        })
    });
}

fn bench_adjacent(c: &mut Criterion) {
    let geom = profiles::cheetah_36es();
    c.bench_function("disksim/adjacent_lbn", |b| {
        let mut step = 1u32;
        b.iter(|| {
            step = step % geom.adjacency_limit + 1;
            black_box(adjacent_lbn(&geom, black_box(1_000_000), step).unwrap())
        })
    });
}

fn bench_service_sequential(c: &mut Criterion) {
    let geom = profiles::cheetah_36es();
    c.bench_function("disksim/service_sequential_block", |b| {
        let mut sim = DiskSim::new(geom.clone());
        let mut lbn = 0u64;
        b.iter(|| {
            if lbn >= 1_000_000 {
                sim.reset();
                lbn = 0;
            }
            let t = sim.service(Request::single(lbn)).unwrap();
            lbn += 1;
            black_box(t)
        })
    });
}

fn bench_service_semi_sequential(c: &mut Criterion) {
    let geom = profiles::cheetah_36es();
    let path = semi_sequential_path(&geom, 0, 1, 4096);
    c.bench_function("disksim/service_semi_sequential_block", |b| {
        let mut sim = DiskSim::new(geom.clone());
        let mut i = 0usize;
        b.iter(|| {
            if i >= path.len() {
                sim.reset();
                i = 0;
            }
            let t = sim.service(Request::single(path[i])).unwrap();
            i += 1;
            black_box(t)
        })
    });
}

fn bench_service_random(c: &mut Criterion) {
    let geom = profiles::cheetah_36es();
    let total = geom.total_blocks();
    c.bench_function("disksim/service_random_block", |b| {
        let mut sim = DiskSim::new(geom.clone());
        let mut x = 0x2545F4914F6CDD1Du64;
        b.iter(|| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            black_box(sim.service(Request::single(x % total)).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_locate,
    bench_adjacent,
    bench_service_sequential,
    bench_service_semi_sequential,
    bench_service_random
);
criterion_main!(benches);
