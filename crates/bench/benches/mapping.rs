//! Criterion micro-benchmarks of the mapping implementations: cell
//! placement throughput (`lbn_of`) and the inverse (`coord_of`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use multimap_core::{
    gray_mapping, hilbert_mapping, zorder_mapping, GridSpec, Mapping, MultiMapping, NaiveMapping,
};
use multimap_disksim::profiles;
use multimap_sfc::{HilbertCurve, SpaceFillingCurve, ZCurve};

fn grid() -> GridSpec {
    GridSpec::new([100u64, 40, 20])
}

fn bench_lbn_of(c: &mut Criterion) {
    let geom = profiles::cheetah_36es();
    let grid = grid();
    let mappings: Vec<(&str, Box<dyn Mapping>)> = vec![
        ("naive", Box::new(NaiveMapping::new(grid.clone(), 0))),
        (
            "zorder",
            Box::new(zorder_mapping(grid.clone(), 0, 1).unwrap()),
        ),
        (
            "hilbert",
            Box::new(hilbert_mapping(grid.clone(), 0, 1).unwrap()),
        ),
        ("gray", Box::new(gray_mapping(grid.clone(), 0, 1).unwrap())),
        (
            "multimap",
            Box::new(MultiMapping::new(&geom, grid.clone()).unwrap()),
        ),
    ];
    let mut group = c.benchmark_group("mapping/lbn_of");
    for (name, m) in &mappings {
        group.bench_function(name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7919) % grid.cells();
                let coord = grid.coord_of_linear(i).unwrap();
                black_box(m.lbn_of(black_box(&coord)).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_coord_of(c: &mut Criterion) {
    let geom = profiles::cheetah_36es();
    let grid = grid();
    let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
    let lbns: Vec<u64> = (0..grid.cells())
        .step_by(17)
        .map(|i| mm.lbn_of(&grid.coord_of_linear(i).unwrap()).unwrap())
        .collect();
    c.bench_function("mapping/multimap_coord_of", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % lbns.len();
            black_box(mm.coord_of(black_box(lbns[i])).unwrap())
        })
    });
}

fn bench_curves(c: &mut Criterion) {
    let z = ZCurve::new(3, 10).unwrap();
    let h = HilbertCurve::new(3, 10).unwrap();
    let mut group = c.benchmark_group("sfc/encode");
    group.bench_function("zorder", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = (x * 31) % 1024;
            black_box(z.index(black_box(&[x, (x * 7) % 1024, (x * 13) % 1024])))
        })
    });
    group.bench_function("hilbert", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = (x * 31) % 1024;
            black_box(h.index(black_box(&[x, (x * 7) % 1024, (x * 13) % 1024])))
        })
    });
    group.finish();
}

fn bench_zoned(c: &mut Criterion) {
    use multimap_core::ZonedMultiMapping;
    let geom = profiles::small();
    let grid = GridSpec::new([100u64, 8, 500]);
    let zoned = ZonedMultiMapping::new(&geom, grid.clone()).unwrap();
    c.bench_function("mapping/zoned_lbn_of", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % grid.cells();
            let coord = grid.coord_of_linear(i).unwrap();
            black_box(zoned.lbn_of(black_box(&coord)).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_lbn_of,
    bench_coord_of,
    bench_curves,
    bench_zoned
);
criterion_main!(benches);
