//! Criterion benchmarks of end-to-end query execution (simulation
//! throughput, not simulated I/O time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use multimap_core::{BoxRegion, GridSpec, MultiMapping, NaiveMapping};
use multimap_disksim::profiles;
use multimap_lvm::LogicalVolume;
use multimap_query::{random_range, workload_rng, QueryExecutor, QueryRequest};

fn bench_beam(c: &mut Criterion) {
    let geom = profiles::cheetah_36es();
    let grid = GridSpec::new([259u64, 64, 32]);
    let volume = LogicalVolume::new(geom.clone(), 1);
    let naive = NaiveMapping::new(grid.clone(), 0);
    let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
    let exec = QueryExecutor::new(&volume, 0);
    let mut group = c.benchmark_group("query/beam_dim1");
    group.bench_function("naive", |b| {
        b.iter(|| {
            let region = BoxRegion::beam(&grid, 1, &[10, 0, 5]);
            black_box(exec.execute(QueryRequest::beam(&naive, &region)).unwrap())
        })
    });
    group.bench_function("multimap", |b| {
        b.iter(|| {
            let region = BoxRegion::beam(&grid, 1, &[10, 0, 5]);
            black_box(exec.execute(QueryRequest::beam(&mm, &region)).unwrap())
        })
    });
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let geom = profiles::cheetah_36es();
    let grid = GridSpec::new([259u64, 64, 32]);
    let volume = LogicalVolume::new(geom.clone(), 1);
    let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
    let exec = QueryExecutor::new(&volume, 0);
    c.bench_function("query/range_1pct_multimap", |b| {
        b.iter_batched(
            || {
                let mut rng = workload_rng(42);
                random_range(&grid, 1.0, &mut rng)
            },
            |region| black_box(exec.execute(QueryRequest::range(&mm, &region)).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_store_insert(c: &mut Criterion) {
    use multimap_core::GridSpec as G;
    use multimap_store::{LayoutChoice, StorageManager};
    c.bench_function("store/insert_hot_cell", |b| {
        b.iter_batched(
            || {
                let mut db = StorageManager::new(profiles::small(), 1);
                db.create_table("t", G::new([60u64, 8, 4]), LayoutChoice::MultiMap)
                    .unwrap();
                db.load("t").unwrap();
                db
            },
            |mut db| {
                for _ in 0..32 {
                    db.insert("t", &[30, 4, 2]).unwrap();
                }
                black_box(db.table("t").unwrap().cells().stats())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_explain(c: &mut Criterion) {
    use multimap_query::{explain_range, ExecOptions};
    let geom = profiles::cheetah_36es();
    let grid = GridSpec::new([259u64, 64, 32]);
    let mm = MultiMapping::new(&geom, grid.clone()).unwrap();
    c.bench_function("query/explain_1pct_range", |b| {
        b.iter_batched(
            || {
                let mut rng = workload_rng(9);
                random_range(&grid, 1.0, &mut rng)
            },
            |region| black_box(explain_range(&geom, &mm, &region, &ExecOptions::default()).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_beam,
    bench_range,
    bench_store_insert,
    bench_explain
);
criterion_main!(benches);
