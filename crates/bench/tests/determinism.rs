//! The experiment engine's headline guarantee: a parallel figure sweep
//! renders byte-identically to a serial one, with telemetry on or off.

use multimap_bench::{fig6, fig7, pagecache, Scale};
use multimap_telemetry::Counter;

/// Serialise tests that flip the global engine override or the global
/// telemetry gate (both are process-wide).
static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    multimap_engine::set_threads(n);
    let out = f();
    multimap_engine::set_threads(0);
    out
}

#[test]
fn quick_fig6a_parallel_matches_serial_byte_for_byte() {
    let serial = with_threads(1, || fig6::run_beams(Scale::Quick).render());
    for threads in [2usize, 4, 8] {
        let parallel = with_threads(threads, || fig6::run_beams(Scale::Quick).render());
        assert_eq!(serial, parallel, "fig6a diverged at {threads} threads");
    }
}

#[test]
fn quick_fig7a_parallel_matches_serial_byte_for_byte() {
    let serial = with_threads(1, || fig7::run_beams(Scale::Quick).render());
    for threads in [2usize, 4, 8] {
        let parallel = with_threads(threads, || fig7::run_beams(Scale::Quick).render());
        assert_eq!(serial, parallel, "fig7a diverged at {threads} threads");
    }
}

#[test]
fn quick_fig6b_parallel_matches_serial_byte_for_byte() {
    let serial = with_threads(1, || fig6::run_ranges(Scale::Quick).render());
    let parallel = with_threads(4, || fig6::run_ranges(Scale::Quick).render());
    assert_eq!(serial, parallel, "fig6b diverged at 4 threads");
}

/// Telemetry is observational: running a figure with the sinks recording
/// renders byte-identically to running it with telemetry disabled.
#[test]
fn quick_fig6a_is_byte_identical_with_telemetry_on_and_off() {
    let on = with_threads(4, || {
        multimap_telemetry::set_enabled(true);
        fig6::run_beams(Scale::Quick).render()
    });
    let off = with_threads(4, || {
        multimap_telemetry::set_enabled(false);
        let rendered = fig6::run_beams(Scale::Quick).render();
        multimap_telemetry::set_enabled(true);
        rendered
    });
    assert_eq!(on, off, "telemetry changed fig6a output");
}

/// The incremental SPTF selector under the engine: a sweep whose every
/// cell crosses the incremental-dispatch threshold (256-request SPTF
/// batches and 192-request queued batches at depth 64, both evaluation
/// drives) produces byte-identical results at 1, 2, 4 and 8 threads —
/// the same pin the quick fig6a/fig6b/fig7a tests place on the
/// reference path.
#[test]
fn incremental_sptf_sweep_identical_at_all_thread_counts() {
    use multimap_disksim::{profiles, DeviceModel, Discipline, DiskSim, Request};

    let run = |threads: usize| {
        with_threads(threads, || {
            let disks = profiles::evaluation_disks();
            let cells: Vec<(usize, u64)> = (0..disks.len())
                .flat_map(|d| (0..6u64).map(move |s| (d, s)))
                .collect();
            multimap_engine::sweep(&cells, |&(d, seed)| {
                let geom = &disks[d];
                let total = geom.total_blocks();
                let reqs: Vec<Request> = (0..256u64)
                    .map(|i| {
                        let lbn = i
                            .wrapping_mul(48_611)
                            .wrapping_add(seed.wrapping_mul(7_907_693))
                            % (total - 8);
                        Request::new(lbn, 1 + (i + seed) % 4)
                    })
                    .collect();
                let mut sim = DiskSim::new(geom.clone());
                let full = sim
                    .service_batch(&reqs, Discipline::Sptf)
                    .expect("in-range");
                // The dispatch threshold is crossed: these cells really
                // ran the incremental selector, not the reference scan.
                assert!(full.sched.selector_repairs > 0, "full batch took reference path");
                let mut sim = DiskSim::new(geom.clone());
                let queued = sim
                    .service_batch(&reqs[..192], Discipline::QueuedSptf(64))
                    .expect("in-range");
                assert!(queued.sched.selector_repairs > 0, "queued batch took reference path");
                (
                    full.total_ms.to_bits(),
                    full.payload,
                    queued.total_ms.to_bits(),
                    queued.payload,
                    queued.sched.window_evictions,
                )
            })
        })
    };
    let baseline = run(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(
            baseline,
            run(threads),
            "incremental-scheduler sweep diverged at {threads} threads"
        );
    }
}

/// The page-cache sweep under the engine: 48 independent cached replays
/// (mapping × policy × capacity × prefetch), each with its own cache and
/// volume, render byte-identically at 1, 2, 4 and 8 threads — the same
/// determinism pin the figure sweeps carry, now covering the cache,
/// prefetcher and eviction policies.
#[test]
fn page_cache_sweep_identical_at_all_thread_counts() {
    let run = |threads: usize| {
        with_threads(threads, || {
            pagecache::table(Scale::Quick, &pagecache::run(Scale::Quick)).render()
        })
    };
    let baseline = run(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(
            baseline,
            run(threads),
            "page-cache sweep diverged at {threads} threads"
        );
    }
}

/// The merged per-figure record in the global registry is bit-identical
/// at any thread count (submission-order fold under the engine sweep).
#[test]
fn quick_fig6a_registry_record_identical_across_thread_counts() {
    let harvest = |threads: usize| {
        with_threads(threads, || {
            multimap_telemetry::set_enabled(true);
            multimap_telemetry::global().clear();
            fig6::run_beams(Scale::Quick);
            let merged = multimap_telemetry::global().merged();
            multimap_telemetry::global().clear();
            merged
        })
    };
    let baseline = harvest(1);
    assert!(baseline.counter_value(Counter::RequestsServiced) > 0);
    for threads in [2usize, 4, 8] {
        let merged = harvest(threads);
        assert!(
            merged.identical(&baseline),
            "fig6a registry record diverged at {threads} threads"
        );
    }
}
