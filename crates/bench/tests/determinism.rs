//! The experiment engine's headline guarantee: a parallel figure sweep
//! renders byte-identically to a serial one.

use multimap_bench::{fig6, fig7, Scale};

/// Serialise against other tests that might flip the global engine
/// override (none today, but cheap insurance).
static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    multimap_engine::set_threads(n);
    let out = f();
    multimap_engine::set_threads(0);
    out
}

#[test]
fn quick_fig6a_parallel_matches_serial_byte_for_byte() {
    let serial = with_threads(1, || fig6::run_beams(Scale::Quick).render());
    for threads in [2usize, 4, 8] {
        let parallel = with_threads(threads, || fig6::run_beams(Scale::Quick).render());
        assert_eq!(serial, parallel, "fig6a diverged at {threads} threads");
    }
}

#[test]
fn quick_fig7a_parallel_matches_serial_byte_for_byte() {
    let serial = with_threads(1, || fig7::run_beams(Scale::Quick).render());
    for threads in [2usize, 4, 8] {
        let parallel = with_threads(threads, || fig7::run_beams(Scale::Quick).render());
        assert_eq!(serial, parallel, "fig7a diverged at {threads} threads");
    }
}

#[test]
fn quick_fig6b_parallel_matches_serial_byte_for_byte() {
    let serial = with_threads(1, || fig6::run_ranges(Scale::Quick).render());
    let parallel = with_threads(4, || fig6::run_ranges(Scale::Quick).render());
    assert_eq!(serial, parallel, "fig6b diverged at 4 threads");
}
