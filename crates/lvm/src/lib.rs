//! # multimap-lvm — logical volume manager exposing the adjacency model
//!
//! The paper's prototype (Section 5.1) runs queries through a logical
//! volume manager that (a) exports a logical volume striped across
//! multiple disks at basic-cube granularity and (b) exposes the adjacency
//! model to applications through two interface calls, reproduced here as
//! [`LogicalVolume::get_adjacent`] and
//! [`LogicalVolume::get_track_boundaries`].
//!
//! Time is simulated, so multi-disk parallelism needs no threads: a
//! striped batch is serviced per disk and the volume reports the
//! *makespan* (the slowest disk), which is exactly how parallel I/O would
//! complete in wall-clock time.
//!
//! ```
//! use multimap_disksim::profiles;
//! use multimap_lvm::LogicalVolume;
//!
//! let volume = LogicalVolume::new(profiles::small(), 2);
//! // The paper's two interface calls:
//! let adjacent = volume.get_adjacent(0, 1).unwrap();
//! let (first, last) = volume.get_track_boundaries(adjacent).unwrap();
//! assert!(first <= adjacent && adjacent <= last);
//! assert_eq!(volume.adjacency_limit(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decluster;
pub mod devices;
pub mod error;
pub mod recovery;
pub mod striped;
pub mod volume;

pub use decluster::{Cyclic, Declustering, RoundRobin};
pub use devices::{backend_volume, DeviceVolume};
pub use error::{LvmError, Result};
pub use recovery::{RecoveryConfig, RecoveryStats, RemapTable};
pub use striped::{StripedVolume, VolumeLbn};
pub use volume::{LogicalVolume, SchedulePolicy, VolumeBatchTiming};
