//! Backend-generic volumes: [`DeviceVolume`] is the multi-device
//! container over any [`DeviceModel`] backend, the generic counterpart
//! of the rotating-disk [`crate::LogicalVolume`].
//!
//! A `DeviceVolume<DiskSim>` behaves exactly like a recovery-free
//! `LogicalVolume` (both route batches through the same trait method);
//! `DeviceVolume<Box<dyn DeviceModel>>` holds registry-built backends so
//! bins can select `disk`/`ssd`/`imr` with a CLI flag — see
//! [`backend_volume`].

use multimap_disksim::{
    build_backend, AccessStats, BatchTiming, DeviceModel, DiskGeometry, Request, RequestTiming,
    ServiceEvent, ServiceLog, Transition,
};
use parking_lot::Mutex;

use crate::error::{LvmError, Result};
use crate::volume::SchedulePolicy;

/// A volume of one or more identical devices behind any
/// [`DeviceModel`] backend.
///
/// Addressing is explicit (`device` index + per-device LBN), matching
/// [`crate::LogicalVolume`]. The volume adds no recovery path — fault
/// injection is a rotating-disk feature and stays on `LogicalVolume`.
pub struct DeviceVolume<D: DeviceModel> {
    devices: Vec<Mutex<D>>,
}

impl<D: DeviceModel> DeviceVolume<D> {
    /// Create a volume from pre-built devices, or
    /// [`LvmError::EmptyVolume`] when `devices` is empty.
    pub fn new(devices: Vec<D>) -> Result<Self> {
        if devices.is_empty() {
            return Err(LvmError::EmptyVolume);
        }
        Ok(DeviceVolume {
            devices: devices.into_iter().map(Mutex::new).collect(),
        })
    }

    /// Number of devices in the volume.
    #[inline]
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The device behind `device`, or [`LvmError::NoSuchDisk`].
    fn device(&self, device: usize) -> Result<&Mutex<D>> {
        self.devices.get(device).ok_or(LvmError::NoSuchDisk {
            disk: device,
            ndisks: self.devices.len(),
        })
    }

    /// Backend name of device 0 (all devices share one backend in
    /// practice; the registry key, e.g. `"disk"`).
    pub fn backend_name(&self) -> &'static str {
        self.devices[0].lock().name()
    }

    /// Addressable blocks of one device.
    pub fn capacity_blocks(&self, device: usize) -> Result<u64> {
        Ok(self.device(device)?.lock().capacity_blocks())
    }

    /// Service one read on one device.
    pub fn service(&self, device: usize, req: Request) -> Result<RequestTiming> {
        // staticcheck: allow(no-direct-service) — the backend-generic volume service primitive itself; conformance audits the observed paths.
        Ok(self.device(device)?.lock().service(req)?)
    }

    /// Service one write on one device (IMR backends may amplify it
    /// with neighbor-track rewrites).
    pub fn service_write(&self, device: usize, req: Request) -> Result<RequestTiming> {
        Ok(self.device(device)?.lock().service_write(req)?)
    }

    /// Service a read batch on one device under the given policy.
    pub fn service_batch(
        &self,
        device: usize,
        requests: &[Request],
        policy: SchedulePolicy,
    ) -> Result<BatchTiming> {
        Ok(self.device(device)?.lock().service_batch(requests, policy)?)
    }

    /// [`DeviceVolume::service_batch`] with a per-request observer.
    pub fn service_batch_observed(
        &self,
        device: usize,
        requests: &[Request],
        policy: SchedulePolicy,
        observe: &mut dyn FnMut(ServiceEvent),
    ) -> Result<BatchTiming> {
        Ok(self
            .device(device)?
            .lock()
            .service_batch_observed(requests, policy, observe)?)
    }

    /// [`DeviceVolume::service_batch`] that collects every scheduler
    /// decision into a returned [`ServiceLog`].
    pub fn service_batch_logged(
        &self,
        device: usize,
        requests: &[Request],
        policy: SchedulePolicy,
    ) -> Result<(BatchTiming, ServiceLog)> {
        let mut log = ServiceLog::new();
        let timing = self.service_batch_observed(device, requests, policy, &mut log.recorder())?;
        Ok((timing, log))
    }

    /// Classify a batch of events through one device's backend-specific
    /// transition semantics, under a single lock acquisition.
    pub fn classify_events(
        &self,
        device: usize,
        events: &[ServiceEvent],
    ) -> Result<Vec<Transition>> {
        let dev = self.device(device)?.lock();
        Ok(events.iter().map(|e| dev.classify(e)).collect())
    }

    /// Accumulated statistics of one device.
    pub fn stats(&self, device: usize) -> Result<AccessStats> {
        Ok(self.device(device)?.lock().stats())
    }

    /// Statistics merged across all devices.
    pub fn merged_stats(&self) -> AccessStats {
        let mut out = AccessStats::default();
        for d in &self.devices {
            out.merge(&d.lock().stats());
        }
        out
    }

    /// Backend-specific counters of one device (see
    /// [`DeviceModel::counters`]).
    pub fn counters(&self, device: usize) -> Result<Vec<(String, u64)>> {
        Ok(self.device(device)?.lock().counters())
    }

    /// Reset every device to its freshly-constructed state.
    pub fn reset(&self) {
        for d in &self.devices {
            d.lock().reset();
        }
    }

    /// Clear statistics on every device without disturbing device state.
    pub fn reset_stats(&self) {
        for d in &self.devices {
            d.lock().reset_stats();
        }
    }

    /// Let every device idle for `ms` simulated milliseconds.
    pub fn idle_all(&self, ms: f64) {
        for d in &self.devices {
            d.lock().idle(ms);
        }
    }

    /// Run a closure with mutable access to one device (for callers
    /// that need backend-specific inspection or custom scheduling).
    pub fn with_device<T>(&self, device: usize, f: impl FnOnce(&mut D) -> T) -> Result<T> {
        Ok(f(&mut self.device(device)?.lock()))
    }
}

/// Build a [`DeviceVolume`] of `ndevices` registry-selected backends
/// addressed through `geom` — the CLI-flag entry point
/// (`"disk"`, `"ssd"`, `"imr"`; see
/// [`multimap_disksim::BACKEND_NAMES`]).
pub fn backend_volume(
    name: &str,
    geom: &DiskGeometry,
    ndevices: usize,
) -> Result<DeviceVolume<Box<dyn DeviceModel>>> {
    let mut devices = Vec::with_capacity(ndevices);
    for _ in 0..ndevices {
        devices.push(build_backend(name, geom)?);
    }
    DeviceVolume::new(devices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicalVolume;
    use multimap_disksim::{profiles, DiskSim};

    #[test]
    fn generic_disk_volume_matches_logical_volume() {
        let geom = profiles::small();
        let reqs: Vec<Request> = (0..50u64)
            .map(|i| Request::new((i * 7919) % 150_000, 1 + i % 3))
            .collect();
        for policy in [
            SchedulePolicy::AscendingLbn,
            SchedulePolicy::Sptf,
            SchedulePolicy::QueuedSptf(16),
        ] {
            let lv = LogicalVolume::new(geom.clone(), 1);
            let (tl, log_l) = lv.service_batch_logged(0, &reqs, policy).unwrap();
            let dv = DeviceVolume::new(vec![DiskSim::new(geom.clone())]).unwrap();
            let (td, log_d) = dv.service_batch_logged(0, &reqs, policy).unwrap();
            assert_eq!(tl, td, "{policy:?}");
            assert_eq!(tl.total_ms.to_bits(), td.total_ms.to_bits());
            assert_eq!(log_l, log_d);
        }
    }

    #[test]
    fn registry_volume_serves_all_backends() {
        let geom = profiles::small();
        let reqs: Vec<Request> = (0..20u64).map(|i| Request::single(i * 401)).collect();
        let mut payloads = Vec::new();
        for name in multimap_disksim::BACKEND_NAMES {
            let v = backend_volume(name, &geom, 2).unwrap();
            assert_eq!(v.num_devices(), 2);
            assert_eq!(v.backend_name(), name);
            let t = v.service_batch(0, &reqs, SchedulePolicy::Sptf).unwrap();
            assert_eq!(t.requests, 20);
            payloads.push(t.payload);
            assert_eq!(v.stats(0).unwrap().requests, 20);
            assert_eq!(v.stats(1).unwrap().requests, 0);
        }
        // Payload identity across backends: same logical data delivered.
        assert!(payloads.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn unknown_backend_is_typed_error() {
        let geom = profiles::small();
        match backend_volume("tape", &geom, 1).err() {
            Some(LvmError::Disk(multimap_disksim::DiskError::UnknownBackend { name })) => {
                assert_eq!(name, "tape")
            }
            other => panic!("expected UnknownBackend, got {other:?}"),
        }
    }

    #[test]
    fn empty_volume_is_typed_error() {
        let devices: Vec<DiskSim> = Vec::new();
        match DeviceVolume::new(devices) {
            Err(LvmError::EmptyVolume) => {}
            _ => panic!("empty device volume must be rejected"),
        }
    }

    #[test]
    fn bad_device_index_is_typed_error() {
        let v = backend_volume("ssd", &profiles::small(), 1).unwrap();
        match v.service(3, Request::single(0)) {
            Err(LvmError::NoSuchDisk { disk: 3, ndisks: 1 }) => {}
            other => panic!("expected NoSuchDisk, got {other:?}"),
        }
    }
}
